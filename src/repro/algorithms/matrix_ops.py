"""Matrix pAlgorithms over pMatrix views.

The scientific-computing kernels the pMatrix exists for ([15], the POOMA
comparison of Ch. II): distributed matrix-vector product, row/column
reductions, Frobenius norm.  With a row partition (pr = P, pc = 1) every
kernel is a vectorised local NumPy sweep plus one collective.
"""

from __future__ import annotations

import numpy as np

from ..core.domains import RangeDomain
from ..core.pcontainer import SLAB_ACCESS_FACTOR


def p_matvec(pmatrix, x: list, y_parray=None):
    """y = A @ x (collective).

    ``x`` is a replicated dense vector of length ``A.cols`` (the paper's
    pAlgorithms replicate small operands; distributing x would add an
    allgather).  Returns the result as a list on every location, and also
    writes into ``y_parray`` (a pArray of size ``A.rows``) if given.
    """
    ctx = pmatrix.ctx
    if len(x) != pmatrix.cols:
        raise ValueError(f"x has {len(x)} entries, matrix has "
                         f"{pmatrix.cols} columns")
    xv = np.asarray(x, dtype=float)
    m = ctx.machine
    local = []
    for bc in pmatrix.local_bcontainers():
        d = bc.domain
        ctx.charge(m.t_access * bc.size())
        part = bc.data @ xv[d.c0:d.c1]
        local.append((d.r0, part.tolist()))
    gathered = ctx.allgather_rmi(local, group=pmatrix.group)
    y = [0.0] * pmatrix.rows
    for per_loc in gathered:
        for r0, part in per_loc:
            for k, v in enumerate(part):
                y[r0 + k] += v
    if y_parray is not None:
        yv = np.asarray(y)
        for bc in y_parray.local_bcontainers():
            d = bc.domain
            if isinstance(d, RangeDomain) and hasattr(bc, "set_range"):
                # contiguous slab assignment (bulk storage path)
                ctx.charge(m.t_access * SLAB_ACCESS_FACTOR * d.size())
                bc.set_range(d.lo, yv[d.lo:d.hi])
            else:
                ctx.charge_access(bc.size())
                for gid in d:
                    bc.set(gid, y[gid])
        ctx.rmi_fence(y_parray.group)
    return y


def p_row_sums(pmatrix) -> list:
    """Sum of each row, gathered on every location."""
    return _axis_reduce(pmatrix, np.sum, axis=1)


def p_col_sums(pmatrix) -> list:
    """Sum of each column, gathered on every location."""
    return _axis_reduce(pmatrix, np.sum, axis=0)


def _axis_reduce(pmatrix, reducer, axis: int) -> list:
    ctx = pmatrix.ctx
    m = ctx.machine
    n_out = pmatrix.rows if axis == 1 else pmatrix.cols
    partials = []
    for bc in pmatrix.local_bcontainers():
        d = bc.domain
        ctx.charge(m.t_access * bc.size())
        vals = reducer(bc.data, axis=axis)
        base = d.r0 if axis == 1 else d.c0
        partials.append((base, np.asarray(vals).tolist()))
    gathered = ctx.allgather_rmi(partials, group=pmatrix.group)
    out = [0.0] * n_out
    for per_loc in gathered:
        for base, vals in per_loc:
            for k, v in enumerate(vals):
                out[base + k] += v
    return out


def p_frobenius_norm(pmatrix) -> float:
    """sqrt(sum of squared entries) — one local sweep + one allreduce."""
    ctx = pmatrix.ctx
    m = ctx.machine
    local = 0.0
    for bc in pmatrix.local_bcontainers():
        ctx.charge(m.t_access * bc.size())
        local += float((bc.data * bc.data).sum())
    total = ctx.allreduce_rmi(local, group=pmatrix.group)
    return float(np.sqrt(total))


def p_matrix_fill(pmatrix, fn) -> None:
    """A[r, c] = fn(r, c) via local vectorisable sweeps (collective)."""
    ctx = pmatrix.ctx
    m = ctx.machine
    for bc in pmatrix.local_bcontainers():
        d = bc.domain
        ctx.charge(m.t_access * bc.size())
        for r in range(d.r0, d.r1):
            bc.set_row_slice(r, [fn(r, c) for c in range(d.c0, d.c1)])
    ctx.barrier(pmatrix.group)
