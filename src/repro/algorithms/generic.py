"""Generic pAlgorithms (Ch. VIII.C): parallel counterparts of STL algorithms.

All algorithms are SPMD-collective over the view's group: every member calls
them, each processes its local chunks, and global results come from runtime
collectives.  They end on the automatic synchronisation point of Ch. VII.H.

``p_generate``, ``p_for_each`` and ``p_accumulate`` are the paper's
representative map / map-reduce kernels (Figs. 33, 40, 60); the rest round
out the STL surface (count/find/min/max/copy/fill/equal/inner product/
adjacent difference/partial sum).
"""

from __future__ import annotations

import operator

import numpy as np

from ..core.domains import RangeDomain
from ..views.base import Workfunction, bulk_transport_enabled
from .prange import Executor, Paragraph, PRange, dataflow_enabled


def _finish(view) -> None:
    view.post_execute()


def _read_slab(view, dom: RangeDomain) -> list:
    """Read ``[dom.lo, dom.hi)`` through the bulk transport when the view
    supports it (one slab per owning location), else element-wise."""
    rr = getattr(view, "read_range", None)
    if bulk_transport_enabled() and rr is not None:
        vals = rr(dom.lo, dom.hi)
        if vals is not None:
            return vals.tolist() if hasattr(vals, "tolist") else list(vals)
    return [view.read(i) for i in dom]


def _write_slab(view, lo: int, values) -> None:
    """Write ``values`` at consecutive indices from ``lo``, bulk if
    possible."""
    wr = getattr(view, "write_range", None)
    if bulk_transport_enabled() and wr is not None and len(values):
        if wr(lo, values):
            return
    for k, v in enumerate(values):
        view.write(lo + k, v)


# ---------------------------------------------------------------------------
# map-style algorithms
# ---------------------------------------------------------------------------

def p_generate(view, gen, vector=None, cost=None) -> None:
    """Assign ``gen(index)`` to every element (Fig. 33's ``p_generate``)."""
    wf = Workfunction(gen, vector=vector, cost=cost)
    pr = PRange.map_over(view, lambda ch: ch.generate(wf))
    Executor().run(pr)


def p_for_each(view, fn, vector=None, cost=None) -> None:
    """Apply a mutating function: ``x <- fn(x)`` for every element."""
    wf = Workfunction(fn, vector=vector, cost=cost)
    pr = PRange.map_over(view, lambda ch: ch.map_values(wf))
    Executor().run(pr)


def p_visit(view, fn, cost=None) -> None:
    """Apply ``fn(x)`` for side effects only (read-only traversal)."""
    wf = Workfunction(fn, cost=cost)
    pr = PRange.map_over(view, lambda ch: ch.visit(wf))
    Executor().run(pr)


def p_fill(view, value) -> None:
    """Set every element to ``value``."""
    wf = Workfunction(lambda _v: value,
                      vector=lambda a: np.full(len(a), value))
    for chunk in view.local_chunks():
        bc = getattr(chunk, "bc", None)
        if bc is not None and hasattr(bc, "bulk_fill"):
            chunk._charge(wf, per_elem_accesses=1)
            bc.bulk_fill(value)
        else:
            chunk.map_values(wf)
    _finish(view)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def p_accumulate(view, init=0, op=operator.add):
    """Global reduction of all elements (map-reduce pattern, Fig. 33)."""
    acc = None
    for chunk in view.local_chunks():
        part = chunk.reduce_values(op, init if acc is None else acc)
        acc = part
    local = init if acc is None else acc
    ctx = view.ctx
    total = ctx.allreduce_rmi(local, op, group=view.group)
    _finish(view)
    return total


p_reduce = p_accumulate


def p_count_if(view, pred):
    """Number of elements satisfying ``pred``."""
    local = 0
    for chunk in view.local_chunks():
        local = chunk.reduce_values(
            lambda acc, v: acc + (1 if pred(v) else 0), local)
    total = view.ctx.allreduce_rmi(local, group=view.group)
    _finish(view)
    return total


def p_count(view, value):
    return p_count_if(view, lambda v: v == value)


def p_find_if(view, pred):
    """Index of the first element (in domain order) satisfying ``pred``,
    or None."""
    best = None
    for chunk in view.local_chunks():
        for gid in chunk.gids():
            if pred(chunk.read(gid)):
                if best is None or gid < best:
                    best = gid
                break
    found = view.ctx.allreduce_rmi(
        best, lambda a, b: b if a is None else (a if b is None else min(a, b)),
        group=view.group)
    _finish(view)
    return found


def p_find(view, value):
    return p_find_if(view, lambda v: v == value)


def _extreme(view, better):
    best = None  # (gid, value)
    for chunk in view.local_chunks():
        for gid, val in chunk.items():
            if best is None or better(val, best[1]) or (
                    val == best[1] and gid < best[0]):
                best = (gid, val)
    def combine(a, b):
        if a is None:
            return b
        if b is None:
            return a
        if better(b[1], a[1]) or (b[1] == a[1] and b[0] < a[0]):
            return b
        return a
    out = view.ctx.allreduce_rmi(best, combine, group=view.group)
    _finish(view)
    return out


def p_min_element(view):
    """(index, value) of the minimum element."""
    return _extreme(view, operator.lt)


def p_max_element(view):
    """(index, value) of the maximum element."""
    return _extreme(view, operator.gt)


def p_equal(view_a, view_b) -> bool:
    """True iff both views have equal size and element-wise equal values."""
    if view_a.size() != view_b.size():
        view_a.ctx.rmi_fence(view_a.group)
        return False
    sl = view_a.balanced_slices()
    ok = _read_slab(view_a, sl) == _read_slab(view_b, sl)
    out = view_a.ctx.allreduce_rmi(ok, lambda a, b: a and b,
                                   group=view_a.group)
    _finish(view_a)
    return out


# ---------------------------------------------------------------------------
# two-view algorithms
# ---------------------------------------------------------------------------

def _aligned_native_pairs(src, dst):
    """If src and dst are identity views over identically-partitioned
    containers, return the paired local bContainers for bulk processing."""
    from ..views.array_views import Array1DView

    for v in (src, dst):
        if not isinstance(v, Array1DView) or v.mapping is not None:
            return None
    a, b = src.container, dst.container
    if a.domain.size() != b.domain.size():
        return None
    abcs = a.local_bcontainers()
    bbcs = b.local_bcontainers()
    if len(abcs) != len(bbcs):
        return None
    for x, y in zip(abcs, bbcs):
        if list(x.domain) != list(y.domain):
            return None
    return list(zip(abcs, bbcs))


def p_transform(src, dst, fn, vector=None, cost=None) -> None:
    """``dst[i] <- fn(src[i])``.

    Runs as a two-view pRange, so the closing synchronisation point
    commits *both* containers (source metadata and destination writes) —
    not just the first view's."""
    pairs = _aligned_native_pairs(src, dst)
    ctx = src.ctx
    m = ctx.machine
    pr = PRange([src, dst])
    if pairs is not None:
        def xf(pair):
            sbc, dbc = pair
            ctx.charge((m.t_access * 2 + (cost or m.t_access)) * sbc.size())
            if vector is not None and hasattr(sbc, "values") and hasattr(
                    dbc, "values"):
                dbc.data[:] = vector(sbc.values())
            else:
                for gid in sbc.domain:
                    dbc.set(gid, fn(sbc.get(gid)))
        for pair in pairs:
            pr.add_task(xf, pair)
    else:
        def xf_slice(_c):
            for i in src.balanced_slices():
                dst.write(i, fn(src.read(i)))
        pr.add_task(xf_slice)
    Executor().run(pr)


def p_copy(src, dst) -> None:
    """``dst[i] <- src[i]``."""
    p_transform(src, dst, lambda v: v, vector=lambda a: a)


def p_inner_product(view_a, view_b, init=0):
    """Sum of ``a[i] * b[i]`` plus ``init``."""
    pairs = _aligned_native_pairs(view_a, view_b)
    ctx = view_a.ctx
    m = ctx.machine
    local = 0
    if pairs is not None:
        for abc, bbc in pairs:
            ctx.charge(m.t_access * 3 * abc.size())
            if hasattr(abc, "values") and hasattr(bbc, "values"):
                local += float((abc.values() * bbc.values()).sum())
            else:
                for gid in abc.domain:
                    local += abc.get(gid) * bbc.get(gid)
    else:
        for i in view_a.balanced_slices():
            local += view_a.read(i) * view_b.read(i)
    total = ctx.allreduce_rmi(local, group=view_a.group)
    _finish(view_a)
    return init + total


def p_adjacent_difference(src, dst) -> None:
    """STL semantics: ``dst[0] = src[0]``; ``dst[i] = src[i] - src[i-1]``.

    Data-flow mode: a neighbour edge — each location forwards the last
    value seen so far to its right neighbour as a dependence message
    (empty slices forward unchanged), so no location blocks on a remote
    boundary read.  Fenced baseline: one sync remote boundary read per
    location — the overlap-view pattern (Fig. 2) with window
    (c=1, l=1, r=0)."""
    if dataflow_enabled():
        _adjacent_difference_dataflow(src, dst)
        return
    ctx = src.ctx
    sl = src.balanced_slices()
    if sl.size():
        prev = src.read(sl.lo - 1) if sl.lo > 0 else None
        vals = _read_slab(src, sl)
        out = []
        for k, i in enumerate(sl):
            if i == 0:
                out.append(vals[0])
            else:
                left = vals[k - 1] if k > 0 else prev
                out.append(vals[k] - left)
        _write_slab(dst, sl.lo, out)
    _finish(dst)


def _diff_outputs(vals, prev):
    """Adjacent differences of one location's run given the last value on
    any lower location (None at the global start or when all lower runs
    are empty); returns (outputs, last value seen so far)."""
    out = []
    left = prev
    for v in vals:
        out.append(v if left is None else v - left)
        left = v
    return out, left


def _adjacent_difference_dataflow(src, dst) -> None:
    pg = Paragraph(src.ctx, views=(src, dst))
    sl = src.balanced_slices()
    build_diff_tasks(pg, dst, lambda: _read_slab(src, sl), lambda: sl.lo)
    pg.run()
    pg.destroy()


def _prefix_outputs(prefix, carry, op, inclusive):
    """Final prefix values for one location given the carry folded over all
    lower locations (None when nothing precedes)."""
    out = []
    for k in range(len(prefix)):
        if inclusive:
            out.append(prefix[k] if carry is None else op(carry, prefix[k]))
        elif k == 0:
            out.append(carry)
        else:
            out.append(prefix[k - 1] if carry is None
                       else op(carry, prefix[k - 1]))
    return out


def _write_prefix(dst, lo, out) -> None:
    if out and out[0] is None:
        # exclusive scan leaves dst[0] untouched on the first location
        _write_slab(dst, lo + 1, out[1:])
    elif out:
        _write_slab(dst, lo, out)


def p_partial_sum(src, dst, op=operator.add, inclusive: bool = True) -> None:
    """Parallel prefix (Ch. III: "important parallel algorithmic
    techniques"): local prefix, then the carry over lower locations.

    Data-flow mode: the carry travels as a neighbour chain of dependence
    messages (location i folds in its total and forwards), pipelining the
    tail of the computation instead of synchronising every member at a
    scan collective.  Fenced baseline: exclusive scan collective of local
    totals."""
    if dataflow_enabled():
        _partial_sum_dataflow(src, dst, op, inclusive)
        return
    ctx = src.ctx
    m = ctx.machine
    sl = src.balanced_slices()
    vals = _read_slab(src, sl)
    ctx.charge(m.t_access * len(vals))
    prefix = []
    acc = None
    for v in vals:
        acc = v if acc is None else op(acc, v)
        prefix.append(acc)

    def scan_op(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return op(a, b)

    carry, _total = ctx.scan_rmi(acc, scan_op, exclusive=True,
                                 group=src.group)
    _write_prefix(dst, sl.lo, _prefix_outputs(prefix, carry, op, inclusive))
    _finish(dst)


def build_scan_tasks(pg, dst, source, offset_of, op, inclusive,
                     after=()):
    """Add this location's carry-chain prefix tasks to ``pg``: a parallel
    O(n) task folding the local prefix over ``source()``, then an O(1)
    chain task that folds the local total into the carry from the left
    neighbour, forwards it (before writing, pipelining the chain
    downstream), and writes the outputs at ``offset_of()``.  Shared by
    the standalone ``p_partial_sum`` and the sort→scan pipeline."""
    ctx = pg.ctx
    m = ctx.machine
    members = pg.group.members
    me = members.index(ctx.id)
    P = len(members)
    st = {}

    def t_local(_c):
        vals = source()
        ctx.charge(m.t_access * len(vals))
        prefix = []
        acc = None
        for v in vals:
            acc = v if acc is None else op(acc, v)
            prefix.append(acc)
        st["prefix"] = prefix
        st["total"] = acc

    local_t = pg.add_task(t_local, deps=after)

    def t_out(_c, inputs=None):
        carry = inputs["carry"] if me else None
        total = st["total"]
        if me + 1 < P:
            nxt = (carry if total is None
                   else total if carry is None else op(carry, total))
            pg.send(members[me + 1], "scan", nxt, tag="carry")
        _write_prefix(dst, offset_of(),
                      _prefix_outputs(st["prefix"], carry, op, inclusive))

    return pg.add_task(t_out, deps=(local_t,), key="scan",
                       needs=1 if me else 0)


def build_diff_tasks(pg, dst, source, offset_of, after=()):
    """Add this location's adjacent-difference tasks to ``pg``: read the
    run via ``source()``, then an O(1) boundary chain — forward the last
    value seen so far (unchanged through empty runs) and write the
    differences at ``offset_of()``.  Shared by the standalone
    ``p_adjacent_difference`` and the sort→scan pipeline."""
    ctx = pg.ctx
    members = pg.group.members
    me = members.index(ctx.id)
    P = len(members)
    st = {}

    def t_read(_c):
        st["vals"] = source()

    rd = pg.add_task(t_read, deps=after)

    def t_diff(_c, inputs=None):
        vals = st["vals"]
        prev = inputs["bound"] if me else None
        if me + 1 < P:
            # forward the boundary before computing: the right neighbour
            # can start as soon as its own run is in hand
            pg.send(members[me + 1], "diff", vals[-1] if vals else prev,
                    tag="bound")
        out, _last = _diff_outputs(vals, prev)
        if out:
            _write_slab(dst, offset_of(), out)

    return pg.add_task(t_diff, deps=(rd,), key="diff",
                       needs=1 if me else 0)


def _partial_sum_dataflow(src, dst, op, inclusive) -> None:
    pg = Paragraph(src.ctx, views=(src, dst))
    sl = src.balanced_slices()
    build_scan_tasks(pg, dst, lambda: _read_slab(src, sl), lambda: sl.lo,
                     op, inclusive)
    pg.run()
    pg.destroy()
