"""pRange and the dependence-driven task-graph executor (Ch. III / Fig. 1).

The paper's Fig. 1 stack places an executor/scheduler between pViews and
the runtime: a computation is a *task graph* over view chunks, and tasks
fire when their dependences are satisfied — the PARAGRAPH engine of later
STAPL work.  Two layers live here:

* :class:`PRange` + :class:`Executor` — this location's portion of a task
  graph with intra-location dependencies.  The executor is a ready-queue
  scheduler: every task carries a successor list and an unmet-dependence
  count, so completing a task triggers its successors in O(1) instead of
  rescanning the pending list (the seed's O(n²) behaviour).  The run closes
  with the automatic synchronisation point of Ch. VII.H applied to *every*
  view (fence per distinct group, ``post_execute`` per distinct container).

* :class:`Paragraph` — a collectively-constructed task graph with
  **cross-location data-flow edges**.  A producer task's completion sends a
  split-phase "dependence satisfied" RMI carrying the produced value to the
  consumer task registered under a key on another location; consumers with
  outstanding inputs block without fencing — the executor drains incoming
  RMIs and yields the baton (``Location.task_yield``) until the inputs
  arrive.  Multi-phase algorithms built this way (sample sort, prefix sums,
  level-async SSSP) need no global ``rmi_fence`` between phases: one fence
  at the very end commits container writes.  Dynamic graphs terminate by a
  quiescence reduction: all locations idle and #dependence messages sent ==
  #executed, snapshot consistently at an allreduce rendezvous.  ``run`` is
  re-entrant: a task may spawn and drain an *inner* Paragraph over a nested
  container (two-level parallelism, Ch. IV.C) — see :meth:`Paragraph._enter`.

The data-parallel pAlgorithms of :mod:`repro.algorithms.generic` compile to
single-phase pRanges; the sorting/scan/SSSP algorithms build Paragraphs when
the data-flow path is on (:func:`set_dataflow`) and fall back to their
fence-per-phase forms when it is off, so both remain measurable head-to-head
(``evaluation/paragraph_figs.py``).
"""

from __future__ import annotations

from collections import deque

from ..runtime.p_object import PObject
from ..views.base import as_wf, sync_views

#: process-wide switch for the dependence-driven (PARAGRAPH) algorithm
#: paths.  On, multi-phase algorithms replace per-phase fences/collectives
#: with cross-location data-flow edges; off, they run their legacy
#: fence-per-phase forms.  Exists so the evaluation can assert
#: byte-identical results and measure the fence/time win head-to-head.
_DATAFLOW = True


def dataflow_enabled() -> bool:
    return _DATAFLOW


def set_dataflow(on: bool) -> bool:
    """Toggle the dependence-driven algorithm paths; returns the previous
    setting."""
    global _DATAFLOW
    prev = _DATAFLOW
    _DATAFLOW = bool(on)
    return prev


class Task:
    """One unit of work: run ``action(chunk)`` once its dependences are
    satisfied.

    Intra-location edges are ``deps`` (other Task objects).  Cross-location
    edges (Paragraph tasks only) are counted by ``needs``: the task also
    waits for ``needs`` distinct tagged input values delivered by
    :meth:`Paragraph.send`; the action then runs as
    ``action(chunk, inputs)`` with the tag→value dict."""

    __slots__ = ("action", "chunk", "deps", "done", "result", "key", "needs",
                 "inputs", "succs", "_unmet", "_queued")

    def __init__(self, action, chunk, deps=(), key=None, needs=0):
        self.action = action
        self.chunk = chunk
        self.deps = tuple(deps)
        self.done = False
        self.result = None
        self.key = key
        self.needs = needs
        self.inputs: dict = {}
        self.succs: list = []
        self._unmet = 0
        self._queued = False

    def run(self):
        if self.needs:
            self.result = self.action(self.chunk, self.inputs)
        else:
            self.result = self.action(self.chunk)
        self.done = True
        return self.result


class PRange:
    """This location's portion of a computation's task graph."""

    def __init__(self, views):
        self.views = views if isinstance(views, (list, tuple)) else [views]
        self.tasks: list[Task] = []

    def add_task(self, action, chunk=None, deps=()) -> Task:
        t = Task(action, chunk, deps)
        self.tasks.append(t)
        return t

    @classmethod
    def map_over(cls, view, action) -> "PRange":
        """One task per local chunk of ``view``."""
        pr = cls(view)
        for chunk in view.local_chunks():
            pr.add_task(action, chunk)
        return pr


class Executor:
    """Executes a pRange's local tasks respecting dependencies, then
    synchronises (the executor + scheduler of Fig. 1).

    Scheduling is a ready queue with successor-count triggering: one pass
    wires each task's successor list and unmet-dependence count (computed
    at run time, so dependences edited after construction still hold), then
    every completion decrements its successors' counts and enqueues the
    ones that reach zero — O(V + E) overall."""

    def __init__(self, fence: bool = True):
        self.fence = fence

    def run(self, prange: PRange) -> list:
        tasks = prange.tasks
        runnable = 0
        for t in tasks:
            t.succs = []
            t._unmet = 0
        for t in tasks:
            if t.done:
                continue
            runnable += 1
            for d in t.deps:
                if not d.done:
                    d.succs.append(t)
                    t._unmet += 1
        ready = deque(t for t in tasks if not t.done and t._unmet == 0)
        loc = prange.views[0].ctx if prange.views else None
        results = []
        executed = 0
        while ready:
            t = ready.popleft()
            results.append(t.run())
            executed += 1
            for s in t.succs:
                s._unmet -= 1
                if s._unmet == 0:
                    ready.append(s)
        if loc is not None and executed:
            loc.count_task(executed)
        if executed < runnable:
            raise RuntimeError("pRange dependency cycle")
        if self.fence and prange.views:
            sync_views(prange.views)
        return results


class Paragraph(PObject):
    """A dependence-driven task graph spanning locations (the PARAGRAPH).

    Collectively constructed (each location registers a representative
    under a common handle); each location adds its local tasks.  Tasks are
    wired three ways:

    * ``deps`` — intra-location edges to earlier tasks of this Paragraph;
    * ``key``/``needs`` — the consumer side of cross-location data-flow
      edges: the task waits for ``needs`` tagged values addressed to its
      key;
    * :meth:`send` — the producer side: deliver one value to the task
      registered under ``key`` on location ``dest``.  Remote sends travel
      as split-phase "dependence satisfied" RMIs (counted in
      ``dependence_messages``); local sends deliver in place.

    :meth:`run` executes local tasks in dependence order, draining RMIs
    and yielding the baton while blocked — no fence between phases; one
    closing fence commits container writes.  :meth:`run_quiescent` is the
    termination protocol for dynamic graphs (tasks spawned by incoming
    messages): repeat until a quiescence reduction observes every location
    idle with all dependence messages executed.
    """

    def __init__(self, ctx, views=(), group=None):
        if group is None:
            group = views[0].group if views else ctx.runtime.world
        self.views = list(views)
        self.tasks: list[Task] = []
        self._by_key: dict = {}
        self._early: dict = {}
        self._ready: deque = deque()
        self._executed = 0
        self._sent = 0
        self._received = 0
        # fields must exist before collective_register publishes this
        # representative: with the zero-copy fast path a peer that finished
        # construction can deliver a _dependence RMI eagerly while we are
        # still inside the registration collective.
        super().__init__(ctx, group)

    # -- graph construction ----------------------------------------------
    def add_task(self, action, chunk=None, deps=(), key=None,
                 needs: int = 0) -> Task:
        """Add a local task.  ``deps`` must be tasks of this Paragraph that
        were added earlier (edges are wired incrementally so tasks can be
        spawned while the graph runs)."""
        t = Task(action, chunk, deps, key=key, needs=needs)
        for d in t.deps:
            if not d.done:
                d.succs.append(t)
                t._unmet += 1
        self.tasks.append(t)
        if key is not None:
            if key in self._by_key:
                raise ValueError(f"duplicate Paragraph task key {key!r}")
            self._by_key[key] = t
            for tag, value in self._early.pop(key, ()):
                t.inputs[tag] = value
        self._maybe_ready(t)
        return t

    # -- data-flow edges ---------------------------------------------------
    def send(self, dest: int, key, value, tag=None) -> None:
        """Producer side of a data-flow edge: satisfy one tagged input of
        the consumer task registered under ``key`` on location ``dest``.

        ``tag`` defaults to the sending location's id; a consumer expecting
        ``needs`` inputs must receive ``needs`` *distinct* tags (its inputs
        dict is keyed by tag).  Local delivery is immediate; remote delivery
        is a fire-and-forget RMI completing when the consumer location
        drains it (poll / task_yield / fence)."""
        loc = self.here
        rep = (self if loc.id == self._ctx.id
               else self._runtime.lookup(self._handle, loc.id))
        if tag is None:
            tag = loc.id
        if dest == loc.id:
            loc.charge_access()
            rep._dependence(key, tag, value, _local=True)
            return
        rep._sent += 1
        loc.stats.dependence_messages += 1
        loc.async_rmi(dest, self._handle, "_dependence", key, tag, value)

    def _dependence(self, key, tag, value, _local: bool = False) -> None:
        """Handler for one "dependence satisfied" message (runs on the
        destination representative)."""
        if not _local:
            self._received += 1
        t = self._by_key.get(key)
        if t is None:
            # arrived before its consumer task was registered: park it
            self._early.setdefault(key, []).append((tag, value))
            return
        t.inputs[tag] = value
        self._maybe_ready(t)

    def _maybe_ready(self, t: Task) -> None:
        if (not t.done and not t._queued and t._unmet == 0
                and len(t.inputs) >= t.needs):
            t._queued = True
            self._ready.append(t)

    # -- execution ---------------------------------------------------------
    def _drain_until_ready(self, loc) -> int:
        """Execute buffered incoming RMIs one at a time, stopping as soon
        as a task unblocks.  Executing a message advances this location's
        clock to the message's arrival time, so draining eagerly would
        charge us for messages later phases raced ahead to send; leaving
        them buffered until a task actually needs them keeps independent
        per-location work parallel in the cost model."""
        rt = self._runtime
        n = 0
        while not self._ready and rt.drain_one(loc.id):
            n += 1
        return n

    def _run_ready(self, loc) -> int:
        n = 0
        while self._ready:
            t = self._ready.popleft()
            t.run()
            self._executed += 1
            n += 1
            for s in t.succs:
                s._unmet -= 1
                self._maybe_ready(s)
        if n:
            loc.count_task(n)
            stack = loc._paragraph_stack
            if len(stack) > 1 and stack[-1] is self:
                loc.stats.nested_tasks_executed += n
        return n

    def _group_progress(self) -> int:
        """Messages executed by plus tasks run on the group's members —
        the progress metric deadlock detection watches.  Scoped to the
        group where the backend can see it: traffic among outside
        locations must not mask a stuck subgroup Paragraph."""
        return self._runtime.group_progress(self.group.members)

    def _blocked_wait(self, loc, stall: int) -> int:
        """One blocked-executor step: yield the baton, drain RMIs, and
        track group progress for deadlock detection.  Returns the updated
        stall count; raises after a full conductor round with no progress
        anywhere in the group."""
        rt = self._runtime
        # anything this location buffered (combining-path container ops)
        # must reach the wire before it waits on others' progress
        loc.flush_combining()
        before = self._group_progress()
        loc.task_yield(drain=False)
        self._drain_until_ready(loc)
        if self._group_progress() != before:
            return 0
        stall += 1
        # patience scoped to this graph's (innermost) group: a sub-team
        # deadlocks when *its* members stop moving, regardless of world size
        if stall > rt.stall_limit(len(self.group)):
            waiting = [t.key for t in self.tasks
                       if not t.done and t.needs and len(t.inputs) < t.needs]
            raise RuntimeError(
                f"Paragraph deadlock on location {loc.id}: tasks blocked on "
                f"unsatisfied dependences (keys {waiting!r})")
        return stall

    def _enter(self, loc) -> None:
        """Push this graph on the location's executor stack.  ``run`` is
        re-entrant: a task of the currently-running graph may construct an
        inner Paragraph (usually over a nested container on a singleton
        group, Ch. IV.C) and drain it to completion before returning —
        the outer graph's ready queue, key registry and quiescence
        counters are all per-instance, so the inner graph never observes
        outer state.  While the inner graph blocks it yields the *outer*
        baton (``task_yield``), so other locations keep progressing and
        outer dependence messages drained meanwhile simply park on the
        outer instance."""
        if loc._paragraph_stack:
            loc.stats.nested_paragraphs += 1
            if len(self.group) > 1:
                loc.stats.nested_multi_paragraphs += 1
        loc._paragraph_stack.append(self)

    def run(self, fence: bool = True) -> int:
        """Execute until every local task has run (tasks added while
        running — by incoming messages — extend the goal).  Returns the
        number of tasks executed.  ``fence=True`` closes with the
        Ch. VII.H synchronisation point over the Paragraph's views."""
        loc = self.ctx
        self._enter(loc)
        try:
            stall = 0
            while True:
                ran = self._run_ready(loc)
                if self._executed >= len(self.tasks):
                    break
                if ran or self._drain_until_ready(loc):
                    stall = 0
                    continue
                stall = self._blocked_wait(loc, stall)
        finally:
            loc._paragraph_stack.pop()
        if fence:
            self.post_execute()
        return self._executed

    def run_quiescent(self) -> int:
        """Execute until global quiescence: every group member idle (no
        ready tasks) and every dependence message sent has been executed —
        checked by an allreduce over (sent, received) counter snapshots,
        which are stable while their location waits in the rendezvous.
        Returns the number of quiescence reduction rounds."""
        loc = self.ctx
        rounds = 0
        self._enter(loc)
        try:
            while True:
                progress = True
                while progress:
                    progress = bool(self._run_ready(loc) or loc.poll())
                    if not progress and loc.flush_combining():
                        # buffered combining-path ops (e.g. apply_vertex
                        # relaxations) count as sent the moment they were
                        # issued: push them into the channels before the
                        # quiescence snapshot, or sent == received never
                        # holds
                        progress = True
                rounds += 1
                sent, received = loc.allreduce_rmi(
                    (self._sent, self._received),
                    lambda a, b: (a[0] + b[0], a[1] + b[1]), group=self.group)
                if sent == received:
                    return rounds
        finally:
            loc._paragraph_stack.pop()

    def post_execute(self) -> None:
        """Closing synchronisation: fence the group, then commit every
        distinct container exactly once."""
        if self.views:
            sync_views(self.views)
        else:
            self.ctx.rmi_fence(self.group)


def run_map(view, action, fence: bool = True) -> list:
    """Convenience: map ``action`` over local chunks and synchronise."""
    return Executor(fence=fence).run(PRange.map_over(view, action))


__all__ = ["Executor", "PRange", "Paragraph", "Task", "as_wf",
           "dataflow_enabled", "run_map", "set_dataflow"]
