"""pRange and executor (Ch. III): computation = task graph over view chunks.

A :class:`PRange` holds this location's tasks — (workfunction, chunk) pairs
plus optional intra-location dependencies.  The :class:`Executor` runs local
tasks in dependency order and closes the computation with the automatic
synchronisation point of Ch. VII.H (fence + ``post_execute`` on the views).

The data-parallel pAlgorithms of :mod:`repro.algorithms.generic` all compile
to single-phase pRanges; the Euler-tour and sorting algorithms chain several.
"""

from __future__ import annotations

from ..views.base import as_wf


class Task:
    """One unit of work: run ``action(chunk)``."""

    __slots__ = ("action", "chunk", "deps", "done", "result")

    def __init__(self, action, chunk, deps=()):
        self.action = action
        self.chunk = chunk
        self.deps = tuple(deps)
        self.done = False
        self.result = None

    def ready(self) -> bool:
        return all(d.done for d in self.deps)

    def run(self):
        self.result = self.action(self.chunk)
        self.done = True
        return self.result


class PRange:
    """This location's portion of a computation's task graph."""

    def __init__(self, views):
        self.views = views if isinstance(views, (list, tuple)) else [views]
        self.tasks: list[Task] = []

    def add_task(self, action, chunk=None, deps=()) -> Task:
        t = Task(action, chunk, deps)
        self.tasks.append(t)
        return t

    @classmethod
    def map_over(cls, view, action) -> "PRange":
        """One task per local chunk of ``view``."""
        pr = cls(view)
        for chunk in view.local_chunks():
            pr.add_task(action, chunk)
        return pr


class Executor:
    """Executes a pRange's local tasks respecting dependencies, then
    synchronises (the executor + scheduler of Fig. 1)."""

    def __init__(self, fence: bool = True):
        self.fence = fence

    def run(self, prange: PRange) -> list:
        pending = list(prange.tasks)
        results = []
        while pending:
            ready = [t for t in pending if t.ready()]
            if not ready:
                raise RuntimeError("pRange dependency cycle")
            for t in ready:
                results.append(t.run())
                pending.remove(t)
        if self.fence and prange.views:
            prange.views[0].post_execute()
        return results


def run_map(view, action, fence: bool = True) -> list:
    """Convenience: map ``action`` over local chunks and synchronise."""
    return Executor(fence=fence).run(PRange.map_over(view, action))


__all__ = ["Executor", "PRange", "Task", "as_wf", "run_map"]
