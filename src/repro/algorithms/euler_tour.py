"""Euler-tour technique and its tree applications (Ch. X.H, Figs. 43/44).

Pipeline, following the classic PRAM technique the paper implements on
stapl containers:

1. each undirected tree edge {u, v} becomes two arcs ``2i`` (u→v) and
   ``2i+1`` (v→u); the successor of arc (u, v) is the arc leaving v after
   (v, u) in v's cyclic adjacency order — this linked structure *is* the
   Euler tour;
2. **list ranking** converts the linked tour into tour positions using
   Wyllie pointer jumping over pArrays: O(log n) fenced rounds of
   split-phase remote reads (the communication pattern Fig. 43 scales);
3. the applications — rooting, vertex levels, pre/post-order numbering,
   subtree sizes — are prefix sums over the ranked tour (Fig. 44).
"""

from __future__ import annotations

from ..containers.parray import PArray
from ..views.array_views import Array1DView


class EulerTour:
    """The arc structure of a tree's Euler tour.

    Arrays are distributed pArrays of size ``2 * (n - 1)``; ``arc_src`` /
    ``arc_tgt`` give each arc's endpoints, ``succ`` the tour successor
    (NIL = -1 for the tour's final arc) and, after :meth:`rank`, ``pos``
    the arc's position in tour order.
    """

    NIL = -1

    def __init__(self, ctx, edges: list, num_vertices: int, root: int = 0,
                 group=None):
        self.ctx = ctx
        self.num_vertices = num_vertices
        self.root = root
        self.edges = list(edges)
        self.num_arcs = 2 * len(self.edges)
        # replicated adjacency: arcs leaving each vertex in insertion order
        out = [[] for _ in range(num_vertices)]
        for i, (u, v) in enumerate(self.edges):
            out[u].append(2 * i)      # arc u -> v
            out[v].append(2 * i + 1)  # arc v -> u
        self._out = out
        na = max(1, self.num_arcs)
        self.arc_src = PArray(ctx, na, dtype=int, group=group)
        self.arc_tgt = PArray(ctx, na, dtype=int, group=group)
        self.succ = PArray(ctx, na, dtype=int, group=group)
        self.pos = PArray(ctx, na, dtype=int, group=group)
        self._build()

    # -- arc helpers -------------------------------------------------------
    def arc_ends(self, a: int) -> tuple:
        i, back = divmod(a, 2)
        u, v = self.edges[i]
        return (v, u) if back else (u, v)

    @staticmethod
    def twin(a: int) -> int:
        return a ^ 1

    def _first_arc(self) -> int:
        return self._out[self.root][0]

    def _build(self) -> None:
        """Fill src/tgt/succ for this location's native slice."""
        ctx = self.ctx
        last = self.twin(self._first_arc())
        # position of each arc within its source vertex's out list
        index_at = {}
        for v in range(self.num_vertices):
            for k, a in enumerate(self._out[v]):
                index_at[a] = (v, k)
        for bc in self.arc_src.local_bcontainers():
            for a in bc.domain:
                if a >= self.num_arcs:
                    continue
                u, v = self.arc_ends(a)
                self.arc_src.set_element(a, u)
                self.arc_tgt.set_element(a, v)
                # successor: arc after twin(a) in v's cyclic out order
                if a == last:
                    s = self.NIL
                else:
                    tv, k = index_at[self.twin(a)]
                    nxt = self._out[tv][(k + 1) % len(self._out[tv])]
                    s = nxt
                self.succ.set_element(a, s)
        ctx.rmi_fence(self.arc_src.group)

    # -- list ranking --------------------------------------------------------
    def rank(self) -> PArray:
        """Wyllie pointer jumping: fills ``pos`` with tour positions
        (first arc = 0) and returns it."""
        ctx = self.ctx
        group = self.arc_src.group
        na = self.num_arcs
        # dist[a] = number of arcs after a in the tour (distance to tail)
        dist = PArray(ctx, max(1, na), dtype=int, group=group)
        nxt = PArray(ctx, max(1, na), dtype=int, group=group)
        for bc in dist.local_bcontainers():
            for a in bc.domain:
                if a >= na:
                    continue
                s = self.succ.get_element(a)
                dist.set_element(a, 0 if s == self.NIL else 1)
                nxt.set_element(a, s)
        ctx.rmi_fence(group)
        rounds = 0
        while True:
            # split-phase reads of (dist[next], next[next]) for all arcs
            updates = []
            for bc in dist.local_bcontainers():
                for a in bc.domain:
                    if a >= na:
                        continue
                    s = nxt.get_element(a)
                    if s == self.NIL:
                        continue
                    fd = dist.split_phase_get_element(s)
                    fs = nxt.split_phase_get_element(s)
                    updates.append((a, fd, fs))
            hops = 0
            staged = []
            for a, fd, fs in updates:
                d = fd.get()
                s2 = fs.get()
                staged.append((a, d, s2))
                hops += 1
            ctx.rmi_fence(group)  # all reads done before any write
            for a, d, s2 in staged:
                if d:
                    dist.apply_set(a, lambda old, inc=d: old + inc)
                nxt.set_element(a, s2)
            ctx.rmi_fence(group)
            rounds += 1
            total_hops = ctx.allreduce_rmi(hops, group=group)
            if total_hops == 0:
                break
        # pos = (num_arcs - 1) - dist
        for bc in self.pos.local_bcontainers():
            for a in bc.domain:
                if a >= na:
                    continue
                self.pos.set_element(a, (na - 1) - dist.get_element(a))
        ctx.rmi_fence(group)
        dist.destroy()
        nxt.destroy()
        self._rounds = rounds
        return self.pos


# ---------------------------------------------------------------------------
# applications (Fig. 44)
# ---------------------------------------------------------------------------

def tree_rooting(tour: EulerTour) -> PArray:
    """Parent of every vertex w.r.t. the tour root: for arc a = (u, v),
    u is v's parent iff pos(a) < pos(twin(a))."""
    ctx = tour.ctx
    group = tour.arc_src.group
    parent = PArray(ctx, tour.num_vertices, dtype=int, group=group)
    if ctx.id == group.members[0]:
        parent.set_element(tour.root, tour.root)
    for bc in tour.pos.local_bcontainers():
        for a in bc.domain:
            if a >= tour.num_arcs:
                continue
            p = tour.pos.get_element(a)
            pt = tour.pos.get_element(tour.twin(a))
            if p < pt:
                u, v = tour.arc_ends(a)
                parent.set_element(v, u)
    ctx.rmi_fence(group)
    return parent


def _advance_flags(tour: EulerTour, parent: PArray) -> PArray:
    """In tour order: +1 where the arc descends (parent→child), -1 where it
    retreats.  Returned pArray is indexed by tour *position*."""
    ctx = tour.ctx
    group = tour.arc_src.group
    w = PArray(ctx, max(1, tour.num_arcs), dtype=int, group=group)
    for bc in tour.pos.local_bcontainers():
        for a in bc.domain:
            if a >= tour.num_arcs:
                continue
            u, v = tour.arc_ends(a)
            advance = parent.get_element(v) == u
            w.set_element(tour.pos.get_element(a), 1 if advance else -1)
    ctx.rmi_fence(group)
    return w


def vertex_levels(tour: EulerTour, parent: PArray) -> PArray:
    """Depth of every vertex (root = 0) via a prefix sum of ±1 arc weights
    in tour order."""
    from .generic import p_partial_sum

    ctx = tour.ctx
    group = tour.arc_src.group
    w = _advance_flags(tour, parent)
    pref = PArray(ctx, max(1, tour.num_arcs), dtype=int, group=group)
    p_partial_sum(Array1DView(w), Array1DView(pref))
    level = PArray(ctx, tour.num_vertices, dtype=int, group=group)
    if ctx.id == group.members[0]:
        level.set_element(tour.root, 0)
    for bc in tour.pos.local_bcontainers():
        for a in bc.domain:
            if a >= tour.num_arcs:
                continue
            u, v = tour.arc_ends(a)
            if parent.get_element(v) == u:  # arc entering v from its parent
                level.set_element(v, pref.get_element(tour.pos.get_element(a)))
    ctx.rmi_fence(group)
    w.destroy()
    pref.destroy()
    return level


def preorder_numbering(tour: EulerTour, parent: PArray) -> PArray:
    """Preorder number of every vertex: count of advance arcs up to (and
    including) the arc that first enters the vertex; root gets 0."""
    from .generic import p_partial_sum

    ctx = tour.ctx
    group = tour.arc_src.group
    w = _advance_flags(tour, parent)
    ones = PArray(ctx, max(1, tour.num_arcs), dtype=int, group=group)
    for bc in w.local_bcontainers():
        for p in bc.domain:
            ones.set_element(p, 1 if bc.get(p) == 1 else 0)
    ctx.rmi_fence(group)
    pref = PArray(ctx, max(1, tour.num_arcs), dtype=int, group=group)
    p_partial_sum(Array1DView(ones), Array1DView(pref))
    order = PArray(ctx, tour.num_vertices, dtype=int, group=group)
    if ctx.id == group.members[0]:
        order.set_element(tour.root, 0)
    for bc in tour.pos.local_bcontainers():
        for a in bc.domain:
            if a >= tour.num_arcs:
                continue
            u, v = tour.arc_ends(a)
            if parent.get_element(v) == u:
                order.set_element(v, pref.get_element(tour.pos.get_element(a)))
    ctx.rmi_fence(group)
    w.destroy(); ones.destroy(); pref.destroy()
    return order


def subtree_sizes(tour: EulerTour, parent: PArray) -> PArray:
    """Number of vertices in each subtree, from the advance-arc counts
    between a vertex's entering and leaving arcs."""
    from .generic import p_partial_sum

    ctx = tour.ctx
    group = tour.arc_src.group
    w = _advance_flags(tour, parent)
    ones = PArray(ctx, max(1, tour.num_arcs), dtype=int, group=group)
    for bc in w.local_bcontainers():
        for p in bc.domain:
            ones.set_element(p, 1 if bc.get(p) == 1 else 0)
    ctx.rmi_fence(group)
    pref = PArray(ctx, max(1, tour.num_arcs), dtype=int, group=group)
    p_partial_sum(Array1DView(ones), Array1DView(pref))
    size = PArray(ctx, tour.num_vertices, dtype=int, group=group)
    if ctx.id == group.members[0]:
        size.set_element(tour.root, tour.num_vertices)
    for bc in tour.pos.local_bcontainers():
        for a in bc.domain:
            if a >= tour.num_arcs:
                continue
            u, v = tour.arc_ends(a)
            if parent.get_element(v) == u:
                enter = pref.get_element(tour.pos.get_element(a))
                leave = pref.get_element(tour.pos.get_element(tour.twin(a)))
                size.set_element(v, leave - enter + 1)
    ctx.rmi_fence(group)
    w.destroy(); ones.destroy(); pref.destroy()
    return size
