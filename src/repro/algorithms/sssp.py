"""Single-source shortest paths on pGraph (Bellman–Ford relaxation).

Two execution modes:

* **Level-asynchronous** (default, the PARAGRAPH path of
  :mod:`repro.algorithms.prange`): every improvement spawns a per-vertex
  relax task at the vertex's owner; relaxations to remote vertices ride the
  graph's asynchronous visitor routing and are counted as dependence
  messages, so waves propagate as fast as the network delivers them — no
  per-round fence.  Termination is the Paragraph quiescence reduction: all
  locations idle and every relaxation message executed.

* **Level-synchronous baseline** (``set_dataflow(False)``): rounds of
  relaxations separated by fences, termination by a global no-change
  reduction.

Both modes leave byte-identical distances (Bellman–Ford is confluent: the
final property is the pointwise minimum over path weights regardless of
relaxation order).  Edge weights come from the edge property (default
weight 1).
"""

from __future__ import annotations

from .graph_algorithms import _AlgoState, _init_properties, _local_bc_of
from .prange import Paragraph, dataflow_enabled

INF = float("inf")


def sssp(graph, source: int, default_weight: float = 1.0):
    """Bellman–Ford; leaves each vertex property set to its distance (or
    ``inf`` if unreachable).  Returns the number of rounds: relaxation
    rounds in level-synchronous mode, quiescence-reduction rounds in the
    asynchronous data-flow mode."""
    if dataflow_enabled():
        return _sssp_async(graph, source, default_weight)
    return _sssp_level_sync(graph, source, default_weight)


def _sssp_async(graph, source: int, default_weight: float):
    """Level-asynchronous relaxation on a dynamic Paragraph."""
    ctx = graph.ctx
    rt = graph.runtime
    group = graph.group
    pg = Paragraph(ctx, group=group)
    phandle = pg.handle
    ghandle = graph.handle

    def expand(arg):
        """Per-vertex relax task: push this vertex's (already committed)
        distance across its out-edges.  Runs in the owner's executor
        loop, so the sends happen outside any RMI handler."""
        vd, dist = arg
        loc = rt.current_location
        g = rt.lookup(ghandle, loc.id)
        rep = rt.lookup(phandle, loc.id)
        bc = _local_bc_of(g, vd)
        if bc.vertex_property(vd) < dist:
            return  # a better relaxation superseded this task
        for (_s, tgt, prop) in bc.edges_of(vd):
            w = prop if isinstance(prop, (int, float)) else default_weight
            rep._sent += 1
            g.apply_vertex(tgt, _make_visit(dist + w))

    def _make_visit(dist):
        def visit(vrec):
            loc = rt.current_location
            rep = rt.lookup(phandle, loc.id)
            rep._received += 1
            if rt.current_origin != loc.id:
                # the relaxation crossed locations: one dependence message
                loc.stats.dependence_messages += 1
            if dist < vrec.property:
                vrec.property = dist
                rep.add_task(expand, (vrec.vd, dist))
        return visit

    _init_properties(graph, lambda _vd: INF)
    ctx.barrier(group)
    if ctx.id == group.members[0]:
        pg._sent += 1
        graph.apply_vertex(source, _make_visit(0.0))
    rounds = pg.run_quiescent()
    pg.destroy()
    return rounds


def _sssp_level_sync(graph, source: int, default_weight: float):
    """Fence-per-round baseline (kept testable via ``set_dataflow``)."""
    ctx = graph.ctx
    rt = graph.runtime
    group = graph.group
    state = _AlgoState(ctx, group)
    shandle = state.handle

    def make_relax(dist):
        def visit(vrec):
            if dist < vrec.property:
                vrec.property = dist
                rt.lookup(shandle, rt.current_location.id).flag = True
        return visit

    _init_properties(graph, lambda _vd: INF)
    ctx.barrier(group)
    if ctx.id == group.members[0]:
        graph.apply_vertex(source, make_relax(0.0))
    ctx.rmi_fence(group)
    state.flag = False

    rounds = 0
    while True:
        for bc in graph.local_bcontainers():
            for vd in bc.vertices():
                d = bc.vertex_property(vd)
                if d == INF:
                    continue
                for (_, tgt, prop) in bc.edges_of(vd):
                    w = prop if isinstance(prop, (int, float)) else default_weight
                    graph.apply_vertex(tgt, make_relax(d + w))
        ctx.rmi_fence(group)
        changed = ctx.allreduce_rmi(state.flag, lambda a, b: a or b,
                                    group=group)
        state.flag = False
        rounds += 1
        if not changed:
            break
    state.destroy()
    return rounds


def distances_of(graph, vertices) -> list:
    """Convenience: read back distances for a list of vertices (sync)."""
    return [graph.vertex_property(v) for v in vertices]
