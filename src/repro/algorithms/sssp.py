"""Single-source shortest paths on pGraph (Bellman–Ford, level-synchronous).

A natural companion to the Ch. XI algorithm suite: per-edge relaxations are
asynchronous vertex visitors routed through the graph's address
translation; rounds are fenced; termination is a global no-change
reduction.  Edge weights come from the edge property (default weight 1).
"""

from __future__ import annotations

from .graph_algorithms import _AlgoState, _init_properties

INF = float("inf")


def sssp(graph, source: int, default_weight: float = 1.0):
    """Bellman–Ford; leaves each vertex property set to its distance (or
    ``inf`` if unreachable) and returns the number of relaxation rounds."""
    ctx = graph.ctx
    rt = graph.runtime
    group = graph.group
    state = _AlgoState(ctx, group)
    shandle = state.handle

    def make_relax(dist):
        def visit(vrec):
            if dist < vrec.property:
                vrec.property = dist
                rt.lookup(shandle, rt.current_location.id).flag = True
        return visit

    _init_properties(graph, lambda _vd: INF)
    ctx.barrier(group)
    if ctx.id == group.members[0]:
        graph.apply_vertex(source, make_relax(0.0))
    ctx.rmi_fence(group)
    state.flag = False

    rounds = 0
    while True:
        for bc in graph.local_bcontainers():
            for vd in bc.vertices():
                d = bc.vertex_property(vd)
                if d == INF:
                    continue
                for (_, tgt, prop) in bc.edges_of(vd):
                    w = prop if isinstance(prop, (int, float)) else default_weight
                    graph.apply_vertex(tgt, make_relax(d + w))
        ctx.rmi_fence(group)
        changed = ctx.allreduce_rmi(state.flag, lambda a, b: a or b,
                                    group=group)
        state.flag = False
        rounds += 1
        if not changed:
            break
    state.destroy()
    return rounds


def distances_of(graph, vertices) -> list:
    """Convenience: read back distances for a list of vertices (sync)."""
    return [graph.vertex_property(v) for v in vertices]
