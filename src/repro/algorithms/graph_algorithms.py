"""pGraph algorithms (Ch. XI.F.3): BFS, find-sources, connected components,
PageRank and graph coloring.

All algorithms follow the paper's execution style: per-edge updates are
*asynchronous vertex visitors* shipped through the graph's address
translation (``apply_vertex``), so the choice of partition — static,
dynamic-with-forwarding, dynamic-without — changes the measured traffic
exactly as in Figs. 51/52.  Rounds are separated by fences (level-synchronous
execution).

Algorithms store their per-vertex state in the vertex *property* field and
return summaries; callers who need the original properties should use a
fresh graph or save them first.
"""

from __future__ import annotations

from ..core.partitions import stable_hash
from ..runtime.p_object import PObject


class _AlgoState(PObject):
    """Per-location scratch state for level-synchronous algorithms:
    a next-frontier buffer and a change flag, addressable from visitors."""

    def __init__(self, ctx, group=None):
        super().__init__(ctx, group)
        self.next: list = []
        self.flag = False

    def local(self):
        """The representative on the location currently executing."""
        return self.runtime.lookup(self.handle, self.runtime.current_location.id)


def _init_properties(graph, value_fn) -> None:
    """Set every local vertex property (cheap local sweep)."""
    loc = graph.ctx
    n = 0
    for bc in graph.local_bcontainers():
        for rec in bc.vertex_records():
            rec.property = value_fn(rec.vd)
            n += 1
    loc.charge_access(n)


def _local_bc_of(graph, vd):
    """bContainer holding a vertex known to be local (frontier vertices).
    Bypasses the directory: the owner can always find its own vertices."""
    graph.ctx.charge_lookup()
    for bc in graph.local_bcontainers():
        if bc.has_vertex(vd):
            return bc
    raise KeyError(f"vertex {vd} is not local to location {graph.ctx.id}")


def bfs(graph, source: int):
    """Level-synchronous breadth-first traversal from ``source``.

    Leaves each reached vertex's property set to its BFS level and returns
    ``(num_reached, num_levels)`` on every location.
    """
    ctx = graph.ctx
    rt = graph.runtime
    group = graph.group
    state = _AlgoState(ctx, group)
    shandle = state.handle

    def make_visitor(level: int):
        def visit(vrec):
            if vrec.property is None:
                vrec.property = level
                rt.lookup(shandle, rt.current_location.id).next.append(vrec.vd)
        return visit

    _init_properties(graph, lambda _vd: None)
    ctx.barrier(group)
    if ctx.id == group.members[0]:
        graph.apply_vertex(source, make_visitor(0))
    level = 0
    reached = 0
    while True:
        ctx.rmi_fence(group)  # deliver this level's visits
        frontier, state.next = state.next, []
        counted = ctx.allreduce_rmi(len(frontier), group=group)
        if counted == 0:
            break
        reached += counted
        level += 1
        visitor = make_visitor(level)
        for vd in frontier:
            bc = _local_bc_of(graph, vd)
            for tgt in bc.adjacents(vd):
                graph.apply_vertex(tgt, visitor)
    state.destroy()
    return reached, level


def find_sources(graph) -> list:
    """Vertices with in-degree zero in a directed graph (Fig. 51).

    Property field is used as an in-degree counter; the per-edge counter
    increments travel through the graph's address translation, which is
    precisely what distinguishes the three partition regimes.
    """
    ctx = graph.ctx
    group = graph.group

    def incr(vrec):
        vrec.property += 1

    _init_properties(graph, lambda _vd: 0)
    ctx.barrier(group)
    for bc in graph.local_bcontainers():
        for vd in bc.vertices():
            for tgt in bc.adjacents(vd):
                graph.apply_vertex(tgt, incr)
    ctx.rmi_fence(group)
    local_sources = [vd for bc in graph.local_bcontainers()
                     for vd in bc.vertices() if bc.vertex_property(vd) == 0]
    gathered = ctx.allgather_rmi(local_sources, group=group)
    return sorted(v for chunk in gathered for v in chunk)


def connected_components(graph, symmetric: bool | None = None):
    """Label propagation: property becomes the component label (min vertex
    id in the component).  Returns the number of components.

    ``symmetric=False`` propagates along directed edges only (weakly
    connected components require an undirected graph or symmetric edges).
    """
    ctx = graph.ctx
    rt = graph.runtime
    group = graph.group
    state = _AlgoState(ctx, group)
    shandle = state.handle

    def make_min_visitor(label):
        def visit(vrec):
            if label < vrec.property:
                vrec.property = label
                rt.lookup(shandle, rt.current_location.id).flag = True
        return visit

    _init_properties(graph, lambda vd: vd)
    ctx.barrier(group)
    while True:
        for bc in graph.local_bcontainers():
            for vd in bc.vertices():
                label = bc.vertex_property(vd)
                visitor = make_min_visitor(label)
                for tgt in bc.adjacents(vd):
                    graph.apply_vertex(tgt, visitor)
        ctx.rmi_fence(group)
        changed = ctx.allreduce_rmi(state.flag, lambda a, b: a or b,
                                    group=group)
        state.flag = False
        if not changed:
            break
    local_labels = {bc.vertex_property(vd)
                    for bc in graph.local_bcontainers()
                    for vd in bc.vertices()}
    gathered = ctx.allgather_rmi(sorted(local_labels), group=group)
    state.destroy()
    return len({l for chunk in gathered for l in chunk})


def page_rank(graph, iterations: int = 10, damping: float = 0.85):
    """Classic iterative PageRank (Fig. 56).  Vertex property becomes
    ``[rank, accumulator]``; returns the global rank sum (≈1) on every
    location so callers can sanity-check convergence mass."""
    ctx = graph.ctx
    group = graph.group
    n = graph.num_vertices_sync()
    if n == 0:
        return 0.0
    _init_properties(graph, lambda _vd: [1.0 / n, 0.0])
    ctx.barrier(group)
    for _ in range(iterations):
        dangling_local = 0.0
        for bc in graph.local_bcontainers():
            for vd in bc.vertices():
                rank = bc.vertex_property(vd)[0]
                deg = bc.out_degree(vd)
                if deg == 0:
                    dangling_local += rank
                    continue
                contrib = rank / deg

                def add(vrec, c=contrib):
                    vrec.property[1] += c

                for tgt in bc.adjacents(vd):
                    graph.apply_vertex(tgt, add)
        ctx.rmi_fence(group)
        dangling = ctx.allreduce_rmi(dangling_local, group=group)
        base = (1.0 - damping) / n + damping * dangling / n
        for bc in graph.local_bcontainers():
            for rec in bc.vertex_records():
                rec.property = [base + damping * rec.property[1], 0.0]
        ctx.barrier(group)
    local_sum = sum(rec.property[0] for bc in graph.local_bcontainers()
                    for rec in bc.vertex_records())
    return ctx.allreduce_rmi(local_sum, group=group)


def graph_coloring(graph) -> int:
    """Distributed Jones–Plassmann greedy coloring: each vertex colors
    itself once all higher-priority neighbours (hash priority, vertex-id
    tie-break) have announced their colors.  Returns the number of colors
    used.  Requires a symmetric (undirected) edge set."""
    ctx = graph.ctx
    group = graph.group

    def prio(vd):
        return (stable_hash(vd), vd)

    def init(vd):
        return {"color": None, "got": {}}

    _init_properties(graph, init)
    ctx.barrier(group)

    def make_recv(sender, color):
        def visit(vrec):
            vrec.property["got"][sender] = color
        return visit

    remaining = 1
    while remaining:
        # color every vertex whose higher-priority neighbours all reported
        newly = []
        for bc in graph.local_bcontainers():
            for vd in bc.vertices():
                prop = bc.vertex_property(vd)
                if prop["color"] is not None:
                    continue
                higher = [t for t in bc.adjacents(vd) if prio(t) > prio(vd)]
                if all(t in prop["got"] for t in higher):
                    used = set(prop["got"].values())
                    color = 0
                    while color in used:
                        color += 1
                    prop["color"] = color
                    newly.append((vd, color))
        # announce to lower-priority neighbours
        for vd, color in newly:
            bc = _local_bc_of(graph, vd)
            for tgt in bc.adjacents(vd):
                if prio(tgt) < prio(vd):
                    graph.apply_vertex(tgt, make_recv(vd, color))
        ctx.rmi_fence(group)
        local_remaining = sum(
            1 for bc in graph.local_bcontainers()
            for vd in bc.vertices() if bc.vertex_property(vd)["color"] is None)
        remaining = ctx.allreduce_rmi(local_remaining, group=group)
    local_max = max((bc.vertex_property(vd)["color"]
                     for bc in graph.local_bcontainers()
                     for vd in bc.vertices()), default=-1)
    return ctx.allreduce_rmi(local_max, max, group=group) + 1


def out_degree_histogram(graph, buckets: int = 8) -> list:
    """Degree distribution summary (a cheap 'graph statistics' kernel)."""
    ctx = graph.ctx
    local = [0] * buckets
    for bc in graph.local_bcontainers():
        for vd in bc.vertices():
            d = bc.out_degree(vd)
            local[min(buckets - 1, d)] += 1
            ctx.charge_access()
    return ctx.allreduce_rmi(local,
                             lambda a, b: [x + y for x, y in zip(a, b)],
                             group=graph.group)
