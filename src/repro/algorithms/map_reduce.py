"""Generic MapReduce over associative pContainers (Ch. XII.C.1, Fig. 59).

Each location maps its local input items to (key, value) pairs and streams
them into a pHashMap with asynchronous *combining* inserts
(``accumulate``); the hash partition routes every key to its owner, and the
closing fence completes the reduction.  Word count is the paper's workload.
"""

from __future__ import annotations

from ..containers.associative import PHashMap


def map_reduce(ctx, local_items, map_fn, output: PHashMap | None = None,
               group=None, combine_locally: bool = True) -> PHashMap:
    """Run MapReduce; returns the output pHashMap (collective).

    ``map_fn(item)`` yields (key, value) pairs.  With ``combine_locally``
    (the paper's aggregation-friendly configuration) pairs are pre-combined
    in a local dictionary before being shipped, exactly like a combiner.
    """
    out = output or PHashMap(ctx, group=group)
    m = ctx.machine
    if combine_locally:
        combined: dict = {}
        for item in local_items:
            for k, v in map_fn(item):
                combined[k] = combined.get(k, 0) + v
                ctx.charge(m.t_access)
        # ship the combined pairs through the combining buffers: one
        # physical message per (dest, window) instead of one RMI per key
        out.accumulate_batch(combined.items())
    else:
        for item in local_items:
            for k, v in map_fn(item):
                ctx.charge(m.t_access)
                out.accumulate(k, v)
    ctx.rmi_fence(out.group)
    out.update_size()
    return out


def word_count(ctx, documents, output: PHashMap | None = None,
               group=None, combine_locally: bool = True) -> PHashMap:
    """The Fig. 59 kernel: count word occurrences across all documents."""

    def split_words(doc):
        for w in doc.split():
            yield w, 1

    return map_reduce(ctx, documents, split_words, output=output,
                      group=group, combine_locally=combine_locally)
