"""Nested-parallel workloads (Fig. 1 / Ch. IV.C): the composed-container
scenario family — a 1-D iterative stencil over overlap views, per-bucket
sample sort with an inner PARAGRAPH per bucket, and segmented reduce/scan
over :class:`~repro.views.derived_views.SegmentedView`.

The stencil is the headline trade the overlap view buys: the fenced
baseline re-reads its halo cells with per-element sync RMIs and pays one
``rmi_fence`` *per iteration* (writes of iteration k must commit before
any neighbour may read them in k+1).  The data-flow form materializes the
initial core+halo slab through the overlap view (one bulk read covering
boundary and interior alike), then lets subsequent halos travel as
PARAGRAPH dependence messages between neighbour tasks — iteration k+1 on
one location fires as soon as *its* neighbours finish k, and the whole
run closes with a single fence.  Results are byte-identical: both forms
evaluate the same windows in the same order.
"""

from __future__ import annotations

import heapq

from ..core.partitions import balanced_sizes
from ..views.base import sync_views
from ..views.derived_views import overlap_view, slab_read, slab_write
from .prange import Paragraph
from .sorting import _bucket_elements, _local_sorted_sample, _select_splitters


def _blur(w: list):
    """Default stencil workfunction: integer mean of the window (order-
    and width-stable, so fenced and data-flow runs are byte-identical)."""
    return sum(w) // len(w)


# ---------------------------------------------------------------------------
# 1-D iterative stencil over overlap views
# ---------------------------------------------------------------------------

def p_stencil(view, iters: int = 1, left: int = 1, right: int = 1,
              fn=None, dataflow: bool = True, scratch_dtype=int) -> None:
    """In-place iterative stencil (collective): for each iteration,
    ``x[i] <- fn(x[i-left : i+right+1])`` for every interior index
    ``i in [left, n-right)``; the ``left`` leading and ``right`` trailing
    cells are fixed boundary conditions.

    ``dataflow=True`` runs the overlap-view PARAGRAPH form (halo slabs +
    dependence messages, one closing fence); ``dataflow=False`` the
    fence-per-iteration baseline.  Both produce identical results.  The
    data-flow form falls back to the baseline when the balanced slices
    are too small to carry the halo protocol (every slice must hold at
    least ``2 * max(left, right)`` cells)."""
    if iters <= 0:
        return
    wf = fn or _blur
    n = view.size()
    if dataflow and iters >= 2:
        # iters == 1 has no k=2 dependence to order one location's final
        # write after its neighbour's initial halo read — keep it fenced
        sizes = balanced_sizes(n, len(view.group.members))
        if min(sizes) >= 2 * max(left, right, 1):
            _stencil_dataflow(view, wf, left, right, iters)
            return
    _stencil_fenced(view, wf, left, right, iters, scratch_dtype)


def _stencil_fenced(view, wf, left, right, iters, scratch_dtype) -> None:
    """Baseline: ping-pong between the view and a scratch pArray with one
    fence per iteration; halo cells are re-read with per-element sync
    RMIs every iteration."""
    from ..containers.parray import PArray
    from ..views.array_views import Array1DView

    ctx = view.ctx
    n = view.size()
    sl = view.balanced_slices()
    out_lo, out_hi = max(sl.lo, left), min(sl.hi, n - right)
    scratch = PArray(ctx, n, value=0, dtype=scratch_dtype, group=view.group)
    other = Array1DView(scratch)
    src, dst = view, other
    w = left + 1 + right
    for _ in range(iters):
        if out_hi > out_lo:
            interior = slab_read(src, out_lo, out_hi)
            halo_l = [src.read(j) for j in range(out_lo - left, out_lo)]
            halo_r = [src.read(j) for j in range(out_hi, out_hi + right)]
            # splat, not `+`: a zero-copy slab_read returns an ndarray,
            # and list + ndarray would broadcast-add instead of chaining
            buf = [*halo_l, *interior, *halo_r]
            slab_write(dst, out_lo,
                       [wf(buf[k:k + w]) for k in range(len(interior))])
        # boundary cells ping-pong unchanged
        if sl.lo < left and sl.hi > sl.lo:
            hi = min(left, sl.hi)
            slab_write(dst, sl.lo, slab_read(src, sl.lo, hi))
        if sl.hi > n - right and sl.hi > sl.lo:
            lo = max(n - right, sl.lo)
            slab_write(dst, lo, slab_read(src, lo, sl.hi))
        sync_views([src, dst])  # one fence per iteration
        src, dst = dst, src
    if src is not view:  # odd iteration count: copy the result back
        if sl.hi > sl.lo:
            slab_write(view, sl.lo, slab_read(src, sl.lo, sl.hi))
        sync_views([view, src])
    scratch.destroy()


def _stencil_dataflow(view, wf, left, right, iters) -> None:
    """One PARAGRAPH for all iterations: per-location iteration tasks
    chain locally; halo values for iteration k+1 arrive as dependence
    messages from the neighbours' iteration-k tasks.  The initial
    core+halo slab materializes through the overlap view (boundary
    elements ride the same bulk read as the cores)."""
    ctx = view.ctx
    members = view.group.members
    me = members.index(ctx.id)
    P = len(members)
    n = view.size()
    sl = view.balanced_slices()
    out_lo, out_hi = max(sl.lo, left), min(sl.hi, n - right)
    m = out_hi - out_lo
    ov = overlap_view(view, core=1, left=left, right=right)
    pg = Paragraph(ctx, views=(view,), group=view.group)
    if m > 0:
        # producers: a neighbour exists iff my halo cells on that side are
        # interior cells (computed by it) rather than fixed boundary
        left_nb = members[me - 1] if sl.lo > left else None
        right_nb = members[me + 1] if sl.hi < n - right else None
        wlo, whi = out_lo - left, out_hi - left  # my window index range
        w = left + 1 + right
        st: dict = {}

        def make_iter(k):
            def act(_c, inputs=None):
                if k == 1:
                    _base_lo, cur = ov.materialize(wlo, whi)
                    st["cur"] = cur = list(cur)
                else:
                    cur = st["cur"]
                    if left_nb is not None:
                        cur[0:left] = inputs["L"]
                    if right_nb is not None:
                        cur[m + left:] = inputs["R"]
                cur[left:left + m] = [wf(cur[j:j + w]) for j in range(m)]
                if k < iters:
                    if left_nb is not None:
                        pg.send(left_nb, ("st", k + 1),
                                cur[left:left + right], tag="R")
                    if right_nb is not None:
                        pg.send(right_nb, ("st", k + 1),
                                cur[m:m + left], tag="L")
            return act

        prev = pg.add_task(make_iter(1))
        needs = (left_nb is not None) + (right_nb is not None)
        for k in range(2, iters + 1):
            prev = pg.add_task(make_iter(k), deps=(prev,),
                               key=("st", k), needs=needs)
        pg.add_task(lambda _c: slab_write(view, out_lo,
                                          st["cur"][left:left + m]),
                    deps=(prev,))
    pg.run()  # the single closing fence
    pg.destroy()


# ---------------------------------------------------------------------------
# per-bucket sample sort: an inner PARAGRAPH sorts each bucket (Fig. 1)
# ---------------------------------------------------------------------------

def p_bucket_sort_nested(view, oversample: int = 4, fanout: int = 4,
                         dtype=int, inner_group_size: int = 1) -> None:
    """Sort a 1D view in place; the bucket each location receives is
    stored in a *nested* pArray and sorted by a real inner PARAGRAPH
    spawned from the outer graph's bucket task — two-level parallelism
    observable in the ``nested_paragraphs`` / ``nested_tasks_executed``
    counters.  With the default ``inner_group_size=1`` the nested pArray
    lives on the owner's singleton group and the inner graph runs
    ``fanout`` local sort tasks feeding a merge task.  With
    ``inner_group_size > 1`` each bucket's pArray is *distributed* over a
    contiguous team of locations and every team member contributes a sort
    task to a genuinely multi-location inner PARAGRAPH (its registration,
    data-flow and closing fence all scope to the team — counted by
    ``nested_multi_paragraphs`` / ``subgroup_fences``); the sorted runs
    flow to the bucket owner over inner dependence edges and merge in
    team rank order.  Output is identical to
    :func:`~repro.algorithms.sorting.p_sample_sort` either way (both
    produce the globally sorted sequence)."""
    from ..containers.composition import (make_nested, run_nested_paragraph,
                                          team_of)
    from ..containers.parray import PArray

    ctx = view.ctx
    group = view.group
    members = group.members
    me = members.index(ctx.id)
    P = len(members)
    mach = ctx.machine
    sl = view.balanced_slices()
    pg = Paragraph(ctx, views=(view,), group=group)
    st: dict = {}

    def t_sample(_c):
        local, samples = _local_sorted_sample(view, sl, oversample)
        st["local"] = local
        for lid in members:
            pg.send(lid, "samples", samples, tag=me)

    sample_t = pg.add_task(t_sample)

    def t_split(_c, inputs):
        splitters = _select_splitters([inputs[i] for i in range(P)], P)
        buckets = _bucket_elements(st["local"], splitters, P)
        ctx.charge(mach.t_access * len(st["local"]))
        for idx, lid in enumerate(members):
            pg.send(lid, "bucket", buckets[idx], tag=me)

    split_t = pg.add_task(t_split, deps=(sample_t,), key="samples", needs=P)

    def t_sort(_c, inputs):
        data: list = []
        for i in range(P):
            data.extend(inputs[i])
        if not data:
            st["merged"] = []
            return
        ref = make_nested(
            ctx, lambda c, g: PArray(c, len(data), value=0, dtype=dtype,
                                     group=g))
        st["ref"] = ref
        ref.resolve(ctx.runtime).set_range(0, data)

        def build(ipg, iv, _inner):
            parts = balanced_sizes(len(data), max(1, fanout))
            runs: dict = {}
            stasks = []
            lo = 0
            for j, ln in enumerate(parts):
                if not ln:
                    continue

                def make_sorter(j=j, lo=lo, hi=lo + ln):
                    def s(_c2):
                        runs[j] = sorted(slab_read(iv, lo, hi))
                        slab_write(iv, lo, runs[j])
                    return s

                stasks.append(ipg.add_task(make_sorter()))
                lo += ln

            def t_merge(_c2):
                merged = list(heapq.merge(*runs.values()))
                ctx.charge(mach.t_access * len(merged))
                slab_write(iv, 0, merged)
                st["merged"] = merged

            ipg.add_task(t_merge, deps=tuple(stasks))

        run_nested_paragraph(ctx, ref, build)

    def t_sort_team(_c, inputs):
        # Multi-location inner sections: this location's bucket team sorts
        # every team member's bucket, one collective inner section per
        # non-empty bucket in team rank order.  All members walk the same
        # canonical sequence of team collectives (allgather, nested
        # registration, fence, inner PARAGRAPH), which is what makes the
        # in-task rendezvous deadlock-free.
        data: list = []
        for i in range(P):
            data.extend(inputs[i])
        team = team_of(group, ctx.id, inner_group_size)
        g = len(team)
        lens = ctx.allgather_rmi(len(data), group=team)
        if not data:
            st["merged"] = []
        refs = st.setdefault("team_refs", [])
        for r in range(g):
            if not lens[r]:
                continue
            owner = team.lid_of(r)
            ref = make_nested(
                ctx, lambda c, tg, n=lens[r]: PArray(c, n, value=0,
                                                     dtype=dtype, group=tg),
                group=team, owner=owner)
            refs.append(ref)
            if ctx.id == owner:
                ref.resolve(ctx.runtime, ctx.id).set_range(0, data)
            ctx.rmi_fence(team)  # commit the owner's scatter (team-scoped)

            def build(ipg, iv, _inner, owner=owner, r=r):
                me_r = team.rank_of(ctx.id)
                isl = iv.balanced_slices()

                def s(_c2):
                    run = []
                    if isl.hi > isl.lo:
                        run = sorted(slab_read(iv, isl.lo, isl.hi))
                        slab_write(iv, isl.lo, run)
                    ipg.send(owner, ("merge", r), run, tag=me_r)

                ipg.add_task(s)
                if ctx.id == owner:
                    def t_merge(_c2, runs):
                        merged = list(heapq.merge(
                            *(runs[q] for q in range(g))))
                        ctx.charge(mach.t_access * len(merged))
                        st["merged"] = merged

                    ipg.add_task(t_merge, key=("merge", r), needs=g)

            run_nested_paragraph(ctx, ref, build)

    sort_t = pg.add_task(t_sort if inner_group_size <= 1 else t_sort_team,
                         deps=(split_t,), key="bucket", needs=P)

    def t_offset(_c, inputs=None):
        st["offset"] = inputs["offset"] if me else 0
        if me + 1 < P:
            pg.send(members[me + 1], "offset",
                    st["offset"] + len(st["merged"]), tag="offset")

    offset_t = pg.add_task(t_offset, deps=(sort_t,), key="offset",
                           needs=1 if me else 0)

    pg.add_task(lambda _c: slab_write(view, st["offset"], st["merged"]),
                deps=(offset_t,))
    pg.run()
    pg.destroy()
    ref = st.get("ref")
    if ref is not None:
        ref.resolve(ctx.runtime).destroy()
    # team-distributed bucket arrays: collective destroys, creation order
    for tref in st.get("team_refs", ()):
        tref.resolve(ctx.runtime, ctx.id).destroy()


# ---------------------------------------------------------------------------
# segmented reduce / scan over SegmentedView (the vw_overlap.cc workload)
# ---------------------------------------------------------------------------

def p_segmented_reduce(seg_view, op, init) -> list:
    """Per-segment reductions over a :class:`SegmentedView`: each location
    reduces the segments it owns through the segment's whole-slice chunk
    (slab transport), then one allgather assembles the result list on
    every location.  ``init`` must be an identity of ``op``."""
    ctx = seg_view.ctx
    local: dict = {}
    for ch in seg_view.local_chunks():
        for si in ch.gids():
            seg = seg_view.read(si)
            local[si] = seg.whole_chunk().reduce_values(op, init)
    gathered = ctx.allgather_rmi(local, group=seg_view.group)
    merged: dict = {}
    for d in gathered:
        merged.update(d)
    return [merged[i] for i in range(seg_view.size())]


def p_segmented_scan(seg_view, op, init, exclusive: bool = False) -> None:
    """In-place prefix scan within each segment of a
    :class:`SegmentedView` (segments are independent, so no carries cross
    segment boundaries and the only synchronisation is the closing
    fence).  ``init`` must be an identity of ``op``."""
    for ch in seg_view.local_chunks():
        for si in ch.gids():
            seg = seg_view.read(si)
            vals = slab_read(seg, 0, seg.size())
            carry = init
            out = []
            for v in vals:
                if exclusive:
                    out.append(carry)
                    carry = op(carry, v)
                else:
                    carry = op(carry, v)
                    out.append(carry)
            slab_write(seg, 0, out)
    seg_view.post_execute()


__all__ = ["p_bucket_sort_nested", "p_segmented_reduce", "p_segmented_scan",
           "p_stencil"]
