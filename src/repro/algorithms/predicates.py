"""Predicate and mutating pAlgorithms rounding out the STL surface
(Ch. III: "parallel counterparts of STL algorithms").

All are SPMD-collective over the view's group, like
:mod:`repro.algorithms.generic`.
"""

from __future__ import annotations

from ..views.base import Workfunction
from .generic import _finish
from .prange import Executor, PRange


def p_all_of(view, pred) -> bool:
    """True iff ``pred`` holds for every element."""
    local = True
    for chunk in view.local_chunks():
        local = chunk.reduce_values(lambda acc, v: acc and bool(pred(v)), local)
        if not local:
            break
    out = view.ctx.allreduce_rmi(local, lambda a, b: a and b, group=view.group)
    _finish(view)
    return out


def p_any_of(view, pred) -> bool:
    """True iff ``pred`` holds for at least one element."""
    local = False
    for chunk in view.local_chunks():
        local = chunk.reduce_values(lambda acc, v: acc or bool(pred(v)), local)
        if local:
            break
    out = view.ctx.allreduce_rmi(local, lambda a, b: a or b, group=view.group)
    _finish(view)
    return out


def p_none_of(view, pred) -> bool:
    """True iff ``pred`` holds for no element."""
    return not p_any_of(view, pred)


def p_replace(view, old, new) -> int:
    """Replace every occurrence of ``old`` with ``new``; returns the count."""
    return p_replace_if(view, lambda v: v == old, new)


def p_replace_if(view, pred, new) -> int:
    """Replace elements satisfying ``pred`` with ``new``; returns the count."""
    hits = [0]

    def repl(v):
        if pred(v):
            hits[0] += 1
            return new
        return v

    wf = Workfunction(repl)
    pr = PRange.map_over(view, lambda ch: ch.map_values(wf))
    Executor(fence=False).run(pr)
    total = view.ctx.allreduce_rmi(hits[0], group=view.group)
    _finish(view)
    return total


def p_mismatch(view_a, view_b):
    """First index (domain order) where the two views differ, or None."""
    best = None
    for i in view_a.balanced_slices():
        if view_a.read(i) != view_b.read(i):
            best = i
            break
    out = view_a.ctx.allreduce_rmi(
        best, lambda a, b: b if a is None else (a if b is None else min(a, b)),
        group=view_a.group)
    _finish(view_a)
    return out


def p_swap_ranges(view_a, view_b) -> None:
    """Element-wise swap of two equal-sized views."""
    if view_a.size() != view_b.size():
        raise ValueError("p_swap_ranges requires equal sizes")
    for i in view_a.balanced_slices():
        a, b = view_a.read(i), view_b.read(i)
        view_a.write(i, b)
        view_b.write(i, a)
    view_a.ctx.rmi_fence(view_a.group)
    _finish(view_b)


def p_iota(view, start=0, step=1) -> None:
    """``view[i] = start + i * step`` (STL iota)."""
    from .generic import p_generate

    p_generate(view, lambda i: start + i * step,
               vector=lambda g: start + g * step)


def p_histogram(view, buckets: int, lo, hi) -> list:
    """Global histogram of values over ``buckets`` equal-width bins."""
    width = (hi - lo) / buckets
    local = [0] * buckets
    for chunk in view.local_chunks():
        def tally(acc, v):
            idx = int((v - lo) / width) if width else 0
            acc[min(max(idx, 0), buckets - 1)] += 1
            return acc
        local = chunk.reduce_values(tally, local)
    out = view.ctx.allreduce_rmi(
        local, lambda a, b: [x + y for x, y in zip(a, b)], group=view.group)
    _finish(view)
    return out


def p_unique_count(view) -> int:
    """Number of distinct values (hash-exchange pattern: each location
    counts the distinct values whose hash it owns)."""
    from ..core.partitions import stable_hash

    ctx = view.ctx
    members = view.group.members
    P = len(members)
    buckets = [set() for _ in range(P)]
    for chunk in view.local_chunks():
        for _gid, v in chunk.items():
            buckets[stable_hash(v) % P].add(v)
            ctx.charge(ctx.machine.t_access)
    received = ctx.alltoall_rmi([sorted(b) for b in buckets],
                                group=view.group)
    mine = set()
    for vals in received:
        mine.update(vals)
    total = ctx.allreduce_rmi(len(mine), group=view.group)
    _finish(view)
    return total
