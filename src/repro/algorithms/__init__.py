"""STAPL pAlgorithms (Ch. III, VIII.C)."""

from .euler_tour import (
    EulerTour,
    preorder_numbering,
    subtree_sizes,
    tree_rooting,
    vertex_levels,
)
from .generic import (
    p_accumulate,
    p_adjacent_difference,
    p_copy,
    p_count,
    p_count_if,
    p_equal,
    p_fill,
    p_find,
    p_find_if,
    p_for_each,
    p_generate,
    p_inner_product,
    p_max_element,
    p_min_element,
    p_partial_sum,
    p_reduce,
    p_transform,
    p_visit,
)
from .graph_algorithms import (
    bfs,
    connected_components,
    find_sources,
    graph_coloring,
    out_degree_histogram,
    page_rank,
)
from .map_reduce import map_reduce, word_count
from .matrix_ops import (
    p_col_sums,
    p_frobenius_norm,
    p_matrix_fill,
    p_matvec,
    p_row_sums,
)
from .predicates import (
    p_all_of,
    p_any_of,
    p_histogram,
    p_iota,
    p_mismatch,
    p_none_of,
    p_replace,
    p_replace_if,
    p_swap_ranges,
    p_unique_count,
)
from .nested import (
    p_bucket_sort_nested,
    p_segmented_reduce,
    p_segmented_scan,
    p_stencil,
)
from .pipelines import p_sort_scan_pipeline
from .prange import (
    Executor,
    Paragraph,
    PRange,
    Task,
    dataflow_enabled,
    run_map,
    set_dataflow,
)
from .sorting import p_is_sorted, p_sample_sort
from .sssp import distances_of, sssp
