"""Parallel sample sort (Ch. VI's motivating example: commutative bucket
inserts with per-bucket atomicity).

Phases: local sort → sample → splitter selection → bucket by splitter →
exchange → local merge → write back in globally sorted order.

Two execution modes share the phase kernels:

* data-flow (default, :func:`~repro.algorithms.prange.set_dataflow`): the
  phases run as **one PARAGRAPH** — samples, buckets, and the running
  write-back offset travel as cross-location dependence messages, so the
  whole sort needs a single closing fence and no collectives;
* fenced baseline: the classic collective pipeline (allgather samples,
  alltoall buckets, exclusive scan for offsets, closing fence).

Element transport always rides the PR-1 slabs: the local portion is read
with one ``read_range`` per owning location and the sorted run written back
with ``write_range`` — not one scalar RMI per element.

Splitter selection handles the degenerate inputs (empty locations,
heavily-duplicated keys): sample indices are clamped into the flattened
sample list, and equal splitters *widen* the bucket range that equal keys
are round-robined across, so all-equal inputs spread over all locations
instead of collapsing into one bucket.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, bisect_right

from .generic import _read_slab, _write_slab
from .prange import Paragraph, dataflow_enabled


def _select_splitters(all_samples, P: int) -> list:
    """P-1 global splitters from per-location sample lists (location
    order).  Empty locations contribute nothing; selection indices are
    clamped, so few samples simply yield repeated splitters — which is
    deliberate: repeated splitters mark heavy duplicates, and
    :func:`_bucket_elements` spreads the equal keys across the repeated
    range instead of funnelling them into a single bucket."""
    flat = sorted(s for chunk in all_samples for s in chunk)
    if not flat or P <= 1:
        return []
    return [flat[min(len(flat) - 1, k * len(flat) // P)]
            for k in range(1, P)]


def _bucket_elements(local_sorted, splitters, P: int) -> list:
    """Partition a sorted run into P per-destination buckets.

    An element strictly between splitters has exactly one home.  An
    element *equal* to one or more splitters may go to any bucket in
    ``[bisect_left, bisect_right]`` without breaking global order (all
    boundary values it crosses equal it), so equal keys are dealt
    round-robin across that range — the duplicate-heavy fix."""
    buckets = [[] for _ in range(P)]
    rr: dict = {}
    for v in local_sorted:
        lo = bisect_left(splitters, v)
        hi = bisect_right(splitters, v)
        if lo == hi:
            b = lo
        else:
            c = rr.get(v, 0)
            rr[v] = c + 1
            b = lo + c % (hi - lo + 1)
        buckets[b].append(v)
    return buckets


def _local_sorted_sample(view, sl, oversample: int):
    """Phase 1: slab-read this location's portion, sort it, pick samples."""
    ctx = view.ctx
    m = ctx.machine
    local = _read_slab(view, sl)
    local.sort()
    n = len(local)
    ctx.charge(m.t_access * max(1, n) * max(1, int(math.log2(n + 1))) * 0.2)
    step = max(1, n // oversample) if n else 1
    return local, local[::step][:oversample]


def p_sample_sort(view, oversample: int = 4) -> None:
    """Sort the elements of a 1D view in place (collective)."""
    if dataflow_enabled():
        pg = Paragraph(view.ctx, views=(view,))
        build_sort_tasks(pg, view, oversample, {})
        pg.run()
        pg.destroy()
        return
    _sample_sort_fenced(view, oversample)


def _sample_sort_fenced(view, oversample: int) -> None:
    """Baseline: one collective per phase, closing fence."""
    ctx = view.ctx
    group = view.group
    P = len(group.members)
    m = ctx.machine
    local, samples = _local_sorted_sample(view, view.balanced_slices(),
                                          oversample)
    all_samples = ctx.allgather_rmi(samples, group=group)
    splitters = _select_splitters(all_samples, P)
    buckets = _bucket_elements(local, splitters, P)
    ctx.charge(m.t_access * len(local))
    received = ctx.alltoall_rmi(buckets, group=group)
    merged = list(heapq.merge(*received))
    ctx.charge(m.t_access * len(merged))
    offset, _total = ctx.scan_rmi(len(merged), exclusive=True, group=group)
    _write_slab(view, offset or 0, merged)
    view.post_execute()


def build_sort_tasks(pg: Paragraph, view, oversample: int, st: dict):
    """Add the sample-sort phases to ``pg`` as dependence-driven tasks for
    this location; returns the final (write-back) task so pipelines can
    chain further phases onto the sorted data.

    ``st`` receives the per-location results: ``st["merged"]`` (this
    location's globally-sorted run) and ``st["offset"]`` (its starting
    index), both available once the returned task's dependences ran.

    Data-flow edges: samples fan out all-to-all (tag = sender index),
    buckets fan out all-to-all, and write-back offsets travel as a
    neighbour chain (each location adds its run length and forwards) —
    no collective anywhere; the caller's closing fence commits the
    ``write_range`` slabs."""
    ctx = view.ctx
    members = pg.group.members
    me = members.index(ctx.id)
    P = len(members)
    m = ctx.machine
    sl = view.balanced_slices()

    def t_sort(_c):
        local, samples = _local_sorted_sample(view, sl, oversample)
        st["local"] = local
        for lid in members:
            pg.send(lid, "samples", samples, tag=me)

    sort_t = pg.add_task(t_sort)

    def t_split(_c, inputs):
        splitters = _select_splitters([inputs[i] for i in range(P)], P)
        local = st["local"]
        buckets = _bucket_elements(local, splitters, P)
        ctx.charge(m.t_access * len(local))
        for idx, lid in enumerate(members):
            pg.send(lid, "merge", buckets[idx], tag=me)

    split_t = pg.add_task(t_split, deps=(sort_t,), key="samples", needs=P)

    def t_merge(_c, inputs):
        merged = list(heapq.merge(*(inputs[i] for i in range(P))))
        ctx.charge(m.t_access * len(merged))
        st["merged"] = merged

    merge_t = pg.add_task(t_merge, deps=(split_t,), key="merge", needs=P)

    # The write-back offset travels as a neighbour chain *separate* from
    # the merge: each hop is O(1) (add the local run length and forward),
    # so the expensive merges stay parallel and only the trivial offset
    # arithmetic pipelines across locations.
    def t_offset(_c, inputs=None):
        st["offset"] = inputs["offset"] if me else 0
        if me + 1 < P:
            pg.send(members[me + 1], "offset",
                    st["offset"] + len(st["merged"]), tag="offset")

    offset_t = pg.add_task(t_offset, deps=(merge_t,), key="offset",
                           needs=1 if me else 0)

    def t_write(_c):
        _write_slab(view, st["offset"], st["merged"])

    return pg.add_task(t_write, deps=(offset_t,))


def p_is_sorted(view) -> bool:
    """Collective check that a 1D view is globally non-decreasing."""
    ctx = view.ctx
    sl = view.balanced_slices()
    ok = True
    prev = view.read(sl.lo - 1) if sl.size() and sl.lo > 0 else None
    for i in sl:
        v = view.read(i)
        if prev is not None and v < prev:
            ok = False
            break
        prev = v
    return ctx.allreduce_rmi(ok, lambda a, b: a and b, group=view.group)
