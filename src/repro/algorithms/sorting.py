"""Parallel sample sort (Ch. VI's motivating example: commutative bucket
inserts with per-bucket atomicity).

Phases: local sort → sample → allgather samples → select P-1 splitters →
bucket by splitter → all-to-all exchange → local merge → write back into
the array in globally sorted order (positions from an exclusive scan of
bucket sizes).
"""

from __future__ import annotations

from bisect import bisect_right


def p_sample_sort(view, oversample: int = 4) -> None:
    """Sort the elements of a 1D view in place (collective)."""
    ctx = view.ctx
    group = view.group
    members = group.members
    P = len(members)
    m = ctx.machine

    # 1. read + sort local portion
    sl = view.balanced_slices()
    local = [view.read(i) for i in sl]
    local.sort()
    import math

    n = len(local)
    ctx.charge(m.t_access * max(1, n) * max(1, int(math.log2(n + 1))) * 0.2)

    # 2. sample and select global splitters
    step = max(1, n // oversample) if n else 1
    samples = local[::step][:oversample]
    all_samples = ctx.allgather_rmi(samples, group=group)
    flat = sorted(s for chunk in all_samples for s in chunk)
    splitters = []
    if flat and P > 1:
        for k in range(1, P):
            splitters.append(flat[min(len(flat) - 1,
                                      k * len(flat) // P)])

    # 3. bucket + exchange
    buckets = [[] for _ in range(P)]
    for v in local:
        buckets[bisect_right(splitters, v)].append(v)
        ctx.charge(m.t_access)
    received = ctx.alltoall_rmi(buckets, group=group)

    # 4. local merge (received buckets are sorted runs)
    import heapq

    merged = list(heapq.merge(*received))
    ctx.charge(m.t_access * len(merged))

    # 5. exclusive scan of final sizes -> global offsets; write back
    offset, _total = ctx.scan_rmi(len(merged), exclusive=True, group=group)
    offset = offset or 0
    for k, v in enumerate(merged):
        view.write(offset + k, v)
    view.post_execute()


def p_is_sorted(view) -> bool:
    """Collective check that a 1D view is globally non-decreasing."""
    ctx = view.ctx
    sl = view.balanced_slices()
    ok = True
    prev = view.read(sl.lo - 1) if sl.size() and sl.lo > 0 else None
    for i in sl:
        v = view.read(i)
        if prev is not None and v < prev:
            ok = False
            break
        prev = v
    return ctx.allreduce_rmi(ok, lambda a, b: a and b, group=view.group)
