"""Multi-phase algorithm pipelines compiled to a single PARAGRAPH.

The point of the dependence-driven executor is that *chained* algorithm
phases stop paying a global ``rmi_fence`` per phase: values flow from
producer tasks to consumer tasks over data-flow edges and the containers
are committed by one closing fence.  :func:`p_sort_scan_pipeline` is the
canonical multi-phase workload (sort → prefix-sum → adjacent-difference,
all over the sorted data) used by ``evaluation/paragraph_figs.py``; with
the data-flow path off it degrades to the classic fence-per-phase sequence
of the three standalone algorithms.
"""

from __future__ import annotations

import operator

from .generic import (
    build_diff_tasks,
    build_scan_tasks,
    p_adjacent_difference,
    p_partial_sum,
)
from .prange import Paragraph, dataflow_enabled
from .sorting import build_sort_tasks, p_sample_sort


def p_sort_scan_pipeline(src, sum_dst, diff_dst, oversample: int = 4,
                         op=operator.add) -> None:
    """Sort ``src`` in place, then write prefix sums of the sorted data to
    ``sum_dst`` and adjacent differences to ``diff_dst`` (collective).

    Data-flow mode: one Paragraph, one closing fence.  The scan and
    difference phases consume each location's merged run directly (it *is*
    the sorted segment at ``offset``), with the carry and the boundary
    value travelling as neighbour-chain dependence messages — locations
    whose runs came up empty (fewer elements than locations, pathological
    splitters) forward the chain unchanged.

    Fenced baseline: the three standalone algorithms back to back, one
    fence each plus their collectives.

    Results are byte-identical between the modes for exact element types
    (the evaluation drives it with integers)."""
    if not dataflow_enabled():
        p_sample_sort(src, oversample)
        p_partial_sum(src, sum_dst, op)
        p_adjacent_difference(src, diff_dst)
        return

    pg = Paragraph(src.ctx, views=(src, sum_dst, diff_dst))
    st: dict = {}
    sorted_t = build_sort_tasks(pg, src, oversample, st)
    # the scan and difference phases consume each location's merged run
    # in place — it *is* the sorted segment at st["offset"] — through the
    # same carry-/boundary-chain task builders the standalone algorithms
    # use over balanced slices
    build_scan_tasks(pg, sum_dst, lambda: st["merged"],
                     lambda: st["offset"], op, inclusive=True,
                     after=(sorted_t,))
    build_diff_tasks(pg, diff_dst, lambda: st["merged"],
                     lambda: st["offset"], after=(sorted_t,))
    pg.run()
    pg.destroy()
