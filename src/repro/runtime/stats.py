"""Per-location and aggregate runtime statistics.

The statistics mirror what the paper instruments for its evaluation chapters:
RMI traffic split by flavour (async / sync / split-phase / bulk), physical
message counts after aggregation, bytes moved, forwarded requests (Ch. XI,
Fig. 51) and lock operations performed by the thread-safety manager (Ch. VI).
``bulk_rmi_sent`` counts one per bulk-transport message regardless of how
many elements it carries; ``bulk_elements_moved`` counts the elements.
``combined_ops`` counts asynchronous op records appended to the combining
buffers; ``combining_flushes`` counts the physical messages that carried
them (one per buffer flush; a node-coalesced flush carrying several
buffers counts once).

Mixed-mode (node-topology-aware) counters: ``local_node_invocations``
counts RMIs that took the zero-copy intra-node fast path (executed directly
against the destination bContainer under ``t_lock`` instead of being
marshaled into a message); ``bytes_avoided`` accumulates the wire bytes
those RMIs would have serialized on the message path.
``coalesced_messages`` counts inter-node messages that carried payloads for
several locations on the destination node (scattered intra-node by the node
leader) — one per coalesced bulk-exchange send or combining flush.

Task-graph executor counters: ``tasks_executed`` counts work-function tasks
run by the dependence-driven executor (:mod:`repro.algorithms.prange`) —
both pRange tasks and PARAGRAPH tasks, including dynamically spawned ones;
``dependence_messages`` counts cross-location "dependence satisfied" RMIs
sent by producer tasks to consumer tasks on other locations (local edges
are satisfied in place and not counted).

Nested-parallelism counters (Ch. IV.C two-level composition):
``nested_paragraphs`` counts PARAGRAPHs entered while another PARAGRAPH
was already executing on the same location (an inner graph spawned by an
outer task, usually over a nested container on a singleton group);
``nested_multi_paragraphs`` counts the subset of those whose group has
more than one member — genuinely distributed inner sections;
``nested_tasks_executed`` counts the tasks those inner graphs ran — a
subset of ``tasks_executed``.  ``subgroup_fences`` counts the subset of
``fences`` executed on a proper subgroup of the world (quiescing only the
sub-team, never blocking outside locations).

Migration-subsystem counters: ``lookups_charged`` counts metadata lookups
actually charged to the virtual clock (``charge_lookup``);
``lookup_cache_hits`` counts address resolutions served by the
per-location lookup cache instead (no charge);
``lookup_cache_invalidations`` counts epoch bumps that dropped a cache;
``stale_redirects`` counts requests that landed at a non-owner (moved
bContainer or stale cached route) and re-forwarded through the directory;
``bcontainers_migrated`` / ``migration_elements_moved`` count whole
bContainers shipped / elements received by ``migrate``; ``rebalances``
counts load-driven ``rebalance()`` collectives.

Shared-memory transport counters (multiprocessing backend only):
``shm_segments_created`` counts fresh ``SharedMemory`` segments the arena
allocated (pool misses plus container-storage segments);
``shm_segments_reused`` counts warm segments drawn from the arena's
free lists — the create/unlink syscalls the pool avoided;
``zero_copy_slab_views`` counts receiver-side slab materialisations that
returned a read-only view instead of a copy; ``live_storage_refs`` counts
bulk replies that shipped a reference into live container storage with no
sender-side copy at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class LocationStats:
    """Counters accumulated by one location during an SPMD run."""

    async_rmi_sent: int = 0
    sync_rmi_sent: int = 0
    opaque_rmi_sent: int = 0
    bulk_rmi_sent: int = 0
    bulk_elements_moved: int = 0
    combined_ops: int = 0
    combining_flushes: int = 0
    rmi_executed: int = 0
    local_invocations: int = 0
    local_node_invocations: int = 0
    remote_invocations: int = 0
    forwarded: int = 0
    physical_messages: int = 0
    coalesced_messages: int = 0
    bytes_sent: int = 0
    bytes_avoided: int = 0
    lock_acquires: int = 0
    fences: int = 0
    subgroup_fences: int = 0
    collectives: int = 0
    tasks_executed: int = 0
    dependence_messages: int = 0
    nested_paragraphs: int = 0
    nested_multi_paragraphs: int = 0
    nested_tasks_executed: int = 0
    lookups_charged: int = 0
    lookup_cache_hits: int = 0
    lookup_cache_invalidations: int = 0
    stale_redirects: int = 0
    bcontainers_migrated: int = 0
    migration_elements_moved: int = 0
    rebalances: int = 0
    shm_segments_created: int = 0
    shm_segments_reused: int = 0
    zero_copy_slab_views: int = 0
    live_storage_refs: int = 0

    def merge(self, other: "LocationStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class RunStats:
    """Aggregate view over all locations of a finished run."""

    per_location: list = field(default_factory=list)

    @property
    def total(self) -> LocationStats:
        out = LocationStats()
        for s in self.per_location:
            out.merge(s)
        return out

    def as_dict(self) -> dict:
        return self.total.as_dict()
