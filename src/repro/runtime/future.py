"""Split-phase futures (the paper's ``pc_future``, Ch. V.B / VII.B).

A split-phase method returns immediately with a :class:`Future`.  Invoking
``get()`` returns the value if it is available or *forces progress* on the
(src, dst) channel until the request has executed — which is the simulated
equivalent of blocking until the result arrives.  Per the completion
guarantees, the acknowledgment is also received at a fence or when a
subsequent sync method on the same element completes.
"""

from __future__ import annotations


class Future:
    """Handle for the result of a split-phase RMI."""

    __slots__ = ("_runtime", "_src", "_dst", "ready", "value", "ready_time")

    def __init__(self, runtime, src: int, dst: int):
        self._runtime = runtime
        self._src = src
        self._dst = dst
        self.ready = False
        self.value = None
        self.ready_time = 0.0

    def _resolve(self, value, ready_time: float) -> None:
        self.value = value
        self.ready_time = ready_time
        self.ready = True

    def test(self) -> bool:
        """Non-blocking readiness check."""
        return self.ready

    def get(self):
        """Block (force progress) until the result is available.

        The waiting location's virtual clock advances to at least the time
        the reply arrives, so overlapping useful work between issue and
        ``get()`` is rewarded by the cost model — the benefit the paper
        attributes to split-phase execution.
        """
        rt = self._runtime
        if not self.ready:
            rt.flush_channel(self._src, self._dst, until_future=self)
        if not self.ready:  # pragma: no cover - defensive
            raise RuntimeError("split-phase request lost: future never resolved")
        loc = rt.current_location
        if loc.clock < self.ready_time:
            loc.clock = self.ready_time
        return self.value


# Alias matching the paper's spelling of the return type.
pc_future = Future
