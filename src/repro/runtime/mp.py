"""Real-parallelism execution backend: one OS process per location.

The simulated backend executes every RMI handler in one address space and
*models* parallelism with virtual clocks.  This module provides the other
half of ROADMAP item 1: the same SPMD programs, containers, views and
algorithms running with **real** concurrency — each location is a forked OS
process, scalar RMIs travel over per-destination ``multiprocessing`` queues,
and bulk slabs move through ``multiprocessing.shared_memory`` segments so
their payload bytes never pass through a pipe or the pickler.

Design (BCL-style: a handful of transport primitives behind a stable
runtime API):

* :class:`MpLocation` subclasses the simulated :class:`Location`, so the
  aggregation/combining bookkeeping, virtual-clock charging and the whole
  container-facing API are inherited verbatim.  Only the methods that
  *deliver* work are overridden: sync/split-phase RMIs become
  request/reply token exchanges, collectives ride a gather/scatter engine,
  and the fence becomes a counting protocol.
* Asynchronous sends (including combining-buffer flushes and bulk slab
  pushes) funnel unchanged through ``Location`` into
  :meth:`MpTransport.enqueue`, which hands the message to the destination
  process's queue — the narrow waist of
  :class:`~repro.runtime.comm.TransportBackend`.
* Collectives never pickle reduction operators: members exchange raw
  payloads through the group's lowest-lid coordinator and every member
  computes the result locally with
  :func:`~repro.runtime.scheduler.collective_results` — the exact code the
  simulated conductor runs, so the two backends cannot drift.
* ``rmi_fence`` is a counting fence: rounds of (messages sent, messages
  executed) exchanges until the global totals are equal and stable for two
  consecutive rounds; every blocked wait services incoming requests, so
  fences, sync RMIs and slab exchanges can never deadlock against each
  other.  ``os_fence`` uses weighted ack credits: every executed request
  acknowledges its *origin* with the number of same-origin requests its
  handler spawned, so one-sided quiescence needs no collective.
* Every blocking wait carries a deadline (``timeout``/``REPRO_MP_TIMEOUT``):
  a genuinely deadlocked program fails fast with a diagnostic instead of
  hanging the test runner, and the parent enforces a wall-clock cap on the
  whole run as a second line of defence.

Guarantees relative to the simulated oracle: per-(src, dst) FIFO holds
(one queue per destination, one feeder per producer), async completion is
guaranteed at fences exactly as Ch. VII.B specifies — asyncs may execute
*earlier* than the simulator would (any service point), which the
completion model permits.  Cross-source interleaving is real and
nondeterministic, so programs must order conflicting writes the same way
they must on any real machine; the differential suite
(``tests/backend/``) pins down byte-identical *final* results for all six
container families and the algorithm drivers.
"""

from __future__ import annotations

import glob
import importlib
import io
import marshal
import multiprocessing
import os
import pickle
import queue as queue_mod
import sys
import time
import traceback
import types
import uuid
from collections import deque

import numpy as np

from .comm import (
    Message,
    TransportBackend,
    apply_toggles,
    estimate_size,
    mp_zero_copy_enabled,
    shm_slab_threshold,
    snapshot_toggles,
)
from .machine import get_machine
from .scheduler import (
    Location,
    LocationGroup,
    SpmdError,
    SpmdReport,
    collective_results,
)
from .stats import RunStats

#: default per-blocking-operation deadline (seconds); a stuck fence,
#: collective or reply raises SpmdError instead of hanging the runner
_OP_TIMEOUT = float(os.environ.get("REPRO_MP_TIMEOUT", "60"))
#: default wall-clock cap for one whole run, enforced by the parent
_RUN_TIMEOUT = float(os.environ.get("REPRO_MP_RUN_TIMEOUT", "300"))
#: how long one task_yield blocks waiting for an incoming message
_YIELD_TIMEOUT = 0.05
#: seconds of group-wide silence before the task-graph executor's blocked
#: wait declares a dependence deadlock
_STALL_PATIENCE = 10.0

_PACK_DEPTH = 8

#: smallest arena segment size class (bytes); classes double from here
_ARENA_MIN_CLASS = 1024
#: an exchange channel's round-S segments recycle when round S+2 begins:
#: completing round S+1 proves every peer entered round S+1, i.e. finished
#: consuming round S (the slab-view validity contract below)
_CHANNEL_REUSE_LAG = 2


class ShmSlab:
    """Wire placeholder for an ndarray moved through shared memory.

    ``mode`` selects the receiver's obligation:

    * ``"copy"`` — legacy copy-out: a fresh segment owned by this slab
      alone; the receiver copies the bytes out and unlinks it.
    * ``"pooled"`` — a warm arena segment owned by the *sender*: the
      receiver maps it (cached per name) and hands out a read-only view;
      the sender recycles the segment after the next world fence (or two
      exchange rounds later on the same channel), never the receiver.
    * ``"live"`` — a reference straight into the owner's bContainer
      storage segment at ``offset``: same read-only view on the receiver,
      but the segment lives as long as the storage does.

    Validity contract for ``pooled``/``live`` views: a received zero-copy
    slab view is guaranteed stable until the receiver's next world fence
    (or its next bulk exchange on the same group, for exchange slabs).
    Consumers that retain data past that point must copy — every internal
    consumer (``set_range``/handler argument paths) already does.
    """

    __slots__ = ("name", "shape", "dtype", "offset", "mode")

    def __init__(self, name: str, shape, dtype: str, offset: int = 0,
                 mode: str = "copy"):
        self.name = name
        self.shape = shape
        self.dtype = dtype
        self.offset = offset
        self.mode = mode

    def __reduce__(self):
        return (ShmSlab,
                (self.name, self.shape, self.dtype, self.offset, self.mode))


class _TrackerShim:
    """No-op stand-in for the multiprocessing resource tracker during slab
    segment calls.  Slab lifetime is managed explicitly — the receiver
    unlinks after copy-out and the parent sweeps leftovers — while
    Python < 3.13 registers every create *and* attach with one tracker
    daemon shared by all forked workers, so the matching unregisters race
    and spam KeyErrors from the tracker thread."""

    @staticmethod
    def register(name, rtype):
        pass

    @staticmethod
    def unregister(name, rtype):
        pass


def _shm_call(fn, *args, **kwargs):
    """Invoke an ``shared_memory`` operation with tracker registration
    suppressed (single-threaded per worker, so swapping the module
    attribute is race-free within the process)."""
    from multiprocessing import shared_memory

    real = shared_memory.resource_tracker
    shared_memory.resource_tracker = _TrackerShim
    try:
        return fn(*args, **kwargs)
    finally:
        shared_memory.resource_tracker = real


class ShmArena:
    """Per-location pooled ``SharedMemory`` allocator with explicit
    epoch-based reclamation.

    Slab sends draw warm segments from per-size-class free lists instead
    of paying create/unlink per transfer.  A segment handed to the wire is
    *retired*, not freed: the owner may not rewrite it until every
    receiver has provably dropped its view.  Two reclamation triggers
    certify that:

    * **world fence** (:meth:`advance_epoch`): the counting fence proves
      every in-flight message executed, and the slab-view validity
      contract (:class:`ShmSlab`) says receivers hold no zero-copy view
      across their own fence — so everything retired before the fence
      recycles.
    * **exchange channel lag** (:meth:`channel_advance`): for
      ``bulk_exchange``/``bulk_gather`` slabs, completing round S+1 on a
      channel proves every peer entered round S+1, i.e. finished
      consuming round S — so round-S segments recycle when round S+2
      begins, without waiting for a fence.  This is what makes repeated
      un-fenced gathers (the latency kernel) reuse warm segments.

    The arena also owns the *live storage* segments backing arena-
    allocated bContainer arrays (:meth:`storage_alloc`) and can recognise
    a C-contiguous ndarray view into one (:meth:`find_live`), which is
    how a bulk reply ships a reference into live storage with no copy at
    all.  Storage segments are never pooled or retired; they die with the
    arena (:meth:`dispose`), which unlinks every owned segment — the
    leak-audit contract that ``/dev/shm`` is clean after a run.
    """

    def __init__(self, namer, stats=None):
        self._namer = namer
        self.stats = stats
        self._free: dict[int, list] = {}       # size class -> [segment]
        self._retired: list = []               # [(epoch, class, segment)]
        self._channels: dict = {}              # channel -> {seq: [(cls, seg)]}
        self._owned: dict[str, object] = {}    # name -> segment (everything)
        self._storage: list = []               # [(addr_lo, addr_hi, name)]
        self._cur_channel = None
        self._cur_seq = None
        self.epoch = 0

    @staticmethod
    def _size_class(nbytes: int) -> int:
        c = _ARENA_MIN_CLASS
        while c < nbytes:
            c <<= 1
        return c

    def alloc(self, nbytes: int):
        """A ``(segment, size_class)`` with capacity >= ``nbytes``: warm
        from the free list when possible, freshly created otherwise."""
        from multiprocessing import shared_memory

        cls = self._size_class(max(1, nbytes))
        free = self._free.get(cls)
        if free:
            if self.stats is not None:
                self.stats.shm_segments_reused += 1
            return free.pop(), cls
        seg = _shm_call(shared_memory.SharedMemory, create=True, size=cls,
                        name=self._namer())
        self._owned[seg.name] = seg
        if self.stats is not None:
            self.stats.shm_segments_created += 1
        return seg, cls

    def retire(self, seg, cls: int) -> None:
        """The segment was handed to the wire: park it until a
        reclamation trigger proves all receivers dropped their views."""
        if self._cur_channel is not None:
            self._channels.setdefault(self._cur_channel, {}) \
                .setdefault(self._cur_seq, []).append((cls, seg))
        else:
            self._retired.append((self.epoch, cls, seg))

    def begin_channel(self, channel, seq: int) -> None:
        """Packs until :meth:`end_channel` retire into round ``seq`` of
        ``channel`` (an exchange tag/group identity) instead of the fence
        pool, and rounds older than the reuse lag recycle now."""
        self._cur_channel, self._cur_seq = channel, seq
        buckets = self._channels.get(channel)
        if buckets:
            for s in [s for s in buckets if s <= seq - _CHANNEL_REUSE_LAG]:
                for cls, seg in buckets.pop(s):
                    self._free.setdefault(cls, []).append(seg)

    def end_channel(self) -> None:
        self._cur_channel = self._cur_seq = None

    def advance_epoch(self) -> None:
        """A world fence completed: recycle everything retired before it
        (including parked exchange rounds — a fence outranks the channel
        lag)."""
        self.epoch += 1
        still = []
        for ep, cls, seg in self._retired:
            if ep < self.epoch:
                self._free.setdefault(cls, []).append(seg)
            else:  # pragma: no cover - retire after advance began
                still.append((ep, cls, seg))
        self._retired = still
        for buckets in self._channels.values():
            for s in list(buckets):
                for cls, seg in buckets.pop(s):
                    self._free.setdefault(cls, []).append(seg)

    # -- live bContainer storage ------------------------------------------
    def storage_alloc(self, shape, dtype):
        """A writable ndarray living inside a dedicated owned segment, or
        None when the dtype cannot live in flat shared memory.  Installed
        as the bContainer storage allocator by the worker bootstrap, so
        numpy-backed container storage is shippable by reference."""
        dtype = np.dtype(dtype)
        if dtype == object:
            return None
        from multiprocessing import shared_memory

        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        seg = _shm_call(shared_memory.SharedMemory, create=True,
                        size=nbytes, name=self._namer())
        self._owned[seg.name] = seg
        if self.stats is not None:
            self.stats.shm_segments_created += 1
        base = np.frombuffer(seg.buf, dtype=np.uint8)
        addr = base.__array_interface__["data"][0]
        self._storage.append((addr, addr + nbytes, seg.name))
        return np.ndarray(shape, dtype=dtype, buffer=seg.buf)

    def find_live(self, arr: np.ndarray):
        """``(name, offset)`` when ``arr`` is a C-contiguous view wholly
        inside a registered storage segment, else None."""
        if not self._storage or not arr.flags.c_contiguous:
            return None
        addr = arr.__array_interface__["data"][0]
        end = addr + arr.nbytes
        for lo, hi, name in self._storage:
            if lo <= addr and end <= hi:
                return name, addr - lo
        return None

    def dispose(self) -> None:
        """Unlink every owned segment.  ``close`` may be refused while
        container arrays still export the buffer (BufferError); the
        *unlink* always proceeds, so ``/dev/shm`` is clean and the pages
        fall with the process."""
        for seg in self._owned.values():
            try:
                seg.close()
            except (BufferError, OSError):  # pragma: no cover - exports
                pass
            try:
                _shm_call(seg.unlink)
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._owned.clear()
        self._free.clear()
        self._retired.clear()
        self._channels.clear()
        self._storage.clear()


class SegmentCache:
    """Receiver-side name -> attached ``SharedMemory`` mapping cache.

    Warm pooled segments recur under the same name (the owner recycles
    them), so after the first attach a zero-copy receive is just an
    ndarray view construction — no syscalls at all."""

    def __init__(self, stats=None):
        self._segs: dict[str, object] = {}
        self.stats = stats

    def attach(self, name: str):
        from multiprocessing import shared_memory

        seg = self._segs.get(name)
        if seg is None:
            seg = _shm_call(shared_memory.SharedMemory, name=name)
            self._segs[name] = seg
        return seg

    def close(self) -> None:
        for seg in self._segs.values():
            try:
                seg.close()
            except (BufferError, OSError):  # pragma: no cover - exports
                pass
        self._segs.clear()


def _slab_view(obj: ShmSlab, seg) -> np.ndarray:
    """Read-only ndarray over ``seg`` as described by the slab ref."""
    dt = np.dtype(obj.dtype)
    count = 1
    for d in obj.shape:
        count *= d
    arr = np.frombuffer(seg.buf, dtype=dt, count=count, offset=obj.offset)
    arr.setflags(write=False)
    return arr.reshape(obj.shape)


def pack_payload(obj, namer, threshold: int | None = None, _depth: int = 0,
                 live_ok: bool = False):
    """Replace large ndarrays inside ``obj`` (recursing through tuples,
    lists and dicts) with :class:`ShmSlab` references.

    ``namer`` is either a callable returning globally fresh segment names
    — the legacy copy-out path: one fresh segment per slab, receiver
    copies and unlinks — or a :class:`ShmArena`, which produces pooled
    (warm, owner-reclaimed) segments and, when ``live_ok`` and the array
    is recognised as container storage, zero-copy ``live`` references.
    ``live_ok`` must only be set for synchronous replies, and is sound
    under the collectives' epoch discipline: a range read remotely within
    an epoch is not written until after the separating fence, so the
    requester dereferences the view before the owner's next write to it.
    A consumer that holds the view across protocol events without an
    intervening fence must snapshot it (``OverlapView.materialize``
    does)."""
    if threshold is None:
        threshold = shm_slab_threshold()
    if isinstance(obj, np.ndarray) and obj.dtype != object \
            and obj.nbytes >= threshold:
        from multiprocessing import shared_memory

        arena = namer if isinstance(namer, ShmArena) else None
        if arena is not None:
            if live_ok:
                live = arena.find_live(obj)
                if live is not None:
                    name, off = live
                    if arena.stats is not None:
                        arena.stats.live_storage_refs += 1
                    return ShmSlab(name, obj.shape, str(obj.dtype),
                                   offset=off, mode="live")
            seg, cls = arena.alloc(obj.nbytes)
            np.ndarray(obj.shape, dtype=obj.dtype, buffer=seg.buf)[...] = obj
            ref = ShmSlab(seg.name, obj.shape, str(obj.dtype), mode="pooled")
            arena.retire(seg, cls)
            return ref
        seg = _shm_call(shared_memory.SharedMemory, create=True,
                        size=obj.nbytes, name=namer())
        np.ndarray(obj.shape, dtype=obj.dtype, buffer=seg.buf)[...] = obj
        ref = ShmSlab(seg.name, obj.shape, str(obj.dtype))
        seg.close()
        return ref
    if _depth >= _PACK_DEPTH:
        return obj
    if isinstance(obj, tuple):
        return tuple(pack_payload(o, namer, threshold, _depth + 1, live_ok)
                     for o in obj)
    if isinstance(obj, list):
        return [pack_payload(o, namer, threshold, _depth + 1, live_ok)
                for o in obj]
    if isinstance(obj, dict):
        return {k: pack_payload(v, namer, threshold, _depth + 1, live_ok)
                for k, v in obj.items()}
    return obj


def unpack_payload(obj, cache: SegmentCache | None = None, _depth: int = 0):
    """Inverse of :func:`pack_payload`.

    ``"copy"`` slabs materialise the legacy way: copy out of the segment,
    then unlink it — the reader owns that segment's lifetime.  ``"pooled"``
    and ``"live"`` slabs are *owner-managed*: with a :class:`SegmentCache`
    the receiver maps the segment (cached per name) and returns a
    read-only zero-copy view; without one (standalone use) the bytes are
    copied out and the mapping dropped, but the segment is never
    unlinked."""
    if isinstance(obj, ShmSlab):
        from multiprocessing import shared_memory

        if obj.mode == "copy":
            seg = _shm_call(shared_memory.SharedMemory, name=obj.name)
            arr = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                             buffer=seg.buf).copy()
            seg.close()
            try:
                _shm_call(seg.unlink)
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
            return arr
        if cache is not None:
            if cache.stats is not None:
                cache.stats.zero_copy_slab_views += 1
            return _slab_view(obj, cache.attach(obj.name))
        seg = _shm_call(shared_memory.SharedMemory, name=obj.name)
        arr = _slab_view(obj, seg).copy()
        try:
            seg.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        return arr
    if _depth >= _PACK_DEPTH:
        return obj
    if isinstance(obj, tuple):
        return tuple(unpack_payload(o, cache, _depth + 1) for o in obj)
    if isinstance(obj, list):
        return [unpack_payload(o, cache, _depth + 1) for o in obj]
    if isinstance(obj, dict):
        return {k: unpack_payload(v, cache, _depth + 1) for k, v in obj.items()}
    return obj


# ---------------------------------------------------------------------------
# Wire serialization
#
# The simulated oracle passes *closures* in RMI arguments (SSSP's visitor
# factories, p_generate's per-gid lambdas, Paragraph task bodies) — in one
# address space that is free.  Crossing a process boundary needs two things
# plain pickle cannot do:
#
# * nested/lambda functions serialize by value: code object (marshal) plus
#   captured cell contents, rebuilt against the defining module's globals
#   on the receiving side.  Cell contents are filled through the reduce
#   state setter, so mutually recursive closures (SSSP's expand <-> visit)
#   survive the round trip.
# * a captured runtime/location resolves to the *receiver's* runtime: every
#   closure written against the simulator uses ``rt.current_location`` /
#   ``rt.lookup(handle, ...)`` idioms, and the only correct meaning on
#   another process is that process's own runtime.  MpRuntime/MpLocation
#   reduce to per-process sentinels.
#
# Messages are serialized *at the send site* (`MpRuntime._put`), not by the
# queue's feeder thread: an unserializable payload raises in the sender's
# stack with a real traceback instead of hanging the run from a daemon
# thread.
# ---------------------------------------------------------------------------

#: the process's active runtime, installed by ``_worker_main`` — the anchor
#: every deserialized runtime/location reference resolves to
_CURRENT_RUNTIME: "MpRuntime | None" = None


def _resolve_runtime() -> "MpRuntime":
    if _CURRENT_RUNTIME is None:
        raise SpmdError("no multiprocessing runtime active in this process")
    return _CURRENT_RUNTIME


def _resolve_location() -> "MpLocation":
    return _resolve_runtime().loc


def _resolve_transport() -> "MpTransport":
    return _resolve_runtime().network


def _rebuild_fn(code_bytes: bytes, modname: str, qualname: str, nfree: int):
    code = marshal.loads(code_bytes)
    mod = sys.modules.get(modname)
    if mod is None:
        # fork inherits sys.modules; a spawn worker starts fresh and must
        # import the defining module to recover its globals
        try:
            mod = importlib.import_module(modname)
        except ImportError:
            raise SpmdError(
                f"cannot rebuild function {qualname}: defining module "
                f"{modname!r} not importable in this process") from None
    closure = tuple(types.CellType() for _ in range(nfree)) or None
    fn = types.FunctionType(code, mod.__dict__, code.co_name, None, closure)
    fn.__qualname__ = qualname
    return fn


def _set_fn_state(fn, state):
    defaults, kwdefaults, cellvals = state
    fn.__defaults__ = defaults
    fn.__kwdefaults__ = kwdefaults
    if cellvals is not None:
        for cell, value in zip(fn.__closure__, cellvals):
            cell.cell_contents = value


def _lookup_qualname(obj) -> bool:
    """Is ``obj`` reachable as module.qualname (i.e. plain pickle works)?"""
    mod = sys.modules.get(getattr(obj, "__module__", None))
    if mod is None:
        return False
    found = mod
    try:
        for part in obj.__qualname__.split("."):
            found = getattr(found, part)
    except AttributeError:
        return False
    return found is obj


class _WirePickler(pickle.Pickler):
    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType) and not _lookup_qualname(obj):
            closure = obj.__closure__ or ()
            cellvals = tuple(c.cell_contents for c in closure)
            return (_rebuild_fn,
                    (marshal.dumps(obj.__code__), obj.__module__,
                     obj.__qualname__, len(closure)),
                    (obj.__defaults__, obj.__kwdefaults__,
                     cellvals if closure else None),
                    None, None, _set_fn_state)
        return NotImplemented


def wire_dumps(obj) -> bytes:
    """Serialize one wire item (closure-capable, runtime-reference-safe)."""
    buf = io.BytesIO()
    _WirePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def wire_loads(data: bytes):
    return pickle.loads(data)


class MpFuture:
    """Split-phase handle over a real request/reply token exchange.
    API-compatible with the simulated :class:`~repro.runtime.future.Future`."""

    __slots__ = ("_rt", "token", "ready", "value", "ready_time")

    def __init__(self, rt: "MpRuntime", token: int):
        self._rt = rt
        self.token = token
        self.ready = False
        self.value = None
        self.ready_time = 0.0

    def test(self) -> bool:
        return self.ready

    def get(self):
        if not self.ready:
            self._rt._service_until(lambda: self.ready,
                                    f"split-phase reply (token {self.token})")
        return self.value


class MpTransport(TransportBackend):
    """Eager queue transport: enqueue hands the message to the destination
    process immediately; there is no buffered channel to drain."""

    shared_address_space = False
    total_pending = 0  # sends are eager; nothing buffers sender-side

    def __init__(self, rt: "MpRuntime"):
        self.rt = rt

    def __reduce__(self):
        return (_resolve_transport, ())

    def enqueue(self, msg: Message) -> bool:
        rt = self.rt
        if msg.future is not None:  # pragma: no cover - defensive
            raise SpmdError("mp transport: futures ride the token protocol")
        rt.req_sent += 1
        rt.sent_to[msg.dst] += 1
        if rt._spawn_frames:
            # handler-spawned (forwarded) request: accounted by the ack
            # credit this handler sends to the message's origin
            rt._spawn_frames[-1] += 1
        elif msg.origin == rt.lid:
            rt.outstanding += 1
        rt._put(msg.dst, ("req", msg.src, msg.origin, msg.handle, msg.method,
                          rt._pack(msg.args)))
        return True


class MpRuntime:
    """Per-process runtime: one local location, queues to every peer.

    Duck-typed against the simulated :class:`~repro.runtime.scheduler.
    Runtime` surface that containers and algorithms actually touch
    (``current_location``/``current_origin``/``lookup``/``machine``/
    ``world``/progress hooks); representative lookup is local-only —
    there is no shared address space to reach across.
    """

    shared_address_space = False

    def __init__(self, lid: int, nlocs: int, machine, placement: str,
                 queues, run_id: str, op_timeout: float = _OP_TIMEOUT):
        self.lid = lid
        self.nlocs = nlocs
        self.machine = get_machine(machine)
        self.placement = placement
        self.world = LocationGroup(range(nlocs))
        self.network = MpTransport(self)
        self.op_timeout = op_timeout
        self.yield_timeout = _YIELD_TIMEOUT
        self.run_id = run_id
        self._queues = queues
        self._selfq: deque = deque()
        self.loc = MpLocation(self, lid)
        self.arena = ShmArena(self._new_shm_name, stats=self.loc.stats)
        self.seg_cache = SegmentCache(stats=self.loc.stats)
        # handles are group-scoped tuples (group.key, seq): disjoint
        # subgroups registering concurrently draw from independent
        # sequence spaces, so their counters cannot desynchronise the way
        # a single global integer counter would
        self.registry: dict[tuple, object] = {}
        self._handle_seq: dict[tuple, int] = {}
        self._exec_stack: list = []
        self._exec_depth = 0
        # transport state: totals plus per-peer splits — a fence over a
        # subgroup must count only traffic among its members, or a
        # member's sends to outside locations (whose executions the group
        # gather never sees) keep it from quiescing forever
        self.req_sent = 0
        self.req_executed = 0
        self.sent_to = [0] * nlocs
        self.exec_from = [0] * nlocs
        self.outstanding = 0
        self._spawn_frames: list[int] = []
        self._futures: dict[int, MpFuture] = {}
        self._reply_credit: dict[int, int] = {}
        self._next_token = 0
        self._shm_count = 0
        self._coll_gather: dict = {}
        self._coll_results: dict = {}
        self._slab_inbox: dict = {}
        self._stopped = False

    def __reduce__(self):
        # a runtime reference captured in a shipped closure means "the
        # runtime of whatever process executes this"
        return (_resolve_runtime, ())

    # -- identity / registry ---------------------------------------------
    @property
    def current_location(self) -> "MpLocation":
        if self._exec_stack:
            return self._exec_stack[-1][0]
        return self.loc

    @property
    def current_origin(self) -> int:
        if self._exec_stack:
            return self._exec_stack[-1][1]
        return self.lid

    def lookup(self, handle: int, lid: int):
        if lid != self.lid:
            raise SpmdError(
                f"location {self.lid}: cross-location representative access "
                f"(handle {handle} on location {lid}) — the multiprocessing "
                "backend has no shared address space")
        try:
            return self.registry[handle]
        except KeyError:
            raise SpmdError(f"unknown p_object handle {handle}") from None

    # -- wire helpers ------------------------------------------------------
    def _pack(self, obj, live_ok: bool = False):
        if mp_zero_copy_enabled():
            return pack_payload(obj, self.arena, live_ok=live_ok)
        return pack_payload(obj, self._new_shm_name)

    def _new_shm_name(self) -> str:
        self._shm_count += 1
        return f"rs{self.run_id}_{self.lid}_{self._shm_count}"

    def new_token(self) -> int:
        self._next_token += 1
        return self._next_token

    def _put(self, dest: int, item) -> None:
        if dest == self.lid:
            # self-sends bypass the queue: synchronously visible, so a
            # singleton fence can drain to true quiescence
            self._selfq.append(item)
        else:
            # serialize here, in the sender's stack — not in the queue's
            # feeder thread, whose pickle failures would hang the run —
            # with the closure-capable wire pickler
            self._queues[dest].put(wire_dumps(item))

    def _send_credit(self, origin: int, spawned: int) -> None:
        if origin == self.lid:
            self.outstanding += spawned - 1
        else:
            self._put(origin, ("ack", spawned))

    # -- handler execution -------------------------------------------------
    def _run_handler(self, dst_loc, handle, method, args, origin):
        obj = self.lookup(handle, self.lid)
        self._exec_stack.append((dst_loc, origin))
        self._exec_depth += 1
        try:
            result = getattr(obj, method)(*args)
        finally:
            self._exec_stack.pop()
            self._exec_depth -= 1
        dst_loc.stats.rmi_executed += 1
        return result

    def _execute_req(self, item) -> None:
        _, src, origin, handle, method, packed = item
        args = unpack_payload(packed, self.seg_cache)
        self.req_executed += 1
        self.exec_from[src] += 1
        self._spawn_frames.append(0)
        try:
            self._run_handler(self.loc, handle, method, args, origin)
        finally:
            spawned = self._spawn_frames.pop()
        self._send_credit(origin, spawned)

    def _execute_sync(self, item) -> None:
        _, src, token, handle, method, packed = item
        args = unpack_payload(packed, self.seg_cache)
        self.req_executed += 1
        self.exec_from[src] += 1
        self._spawn_frames.append(0)
        try:
            result = self._run_handler(self.loc, handle, method, args, src)
        finally:
            spawned = self._spawn_frames.pop()
        # sync replies may ship live-storage references: under the epoch
        # discipline a remotely-read range is not written again until the
        # next fence, which the blocked requester reaches only after
        # dereferencing (holders without a fence snapshot — see
        # pack_payload)
        self._put(src, ("reply", token, self._pack(result, live_ok=True),
                        spawned))

    # -- service engine ----------------------------------------------------
    def _next_item(self, block: bool, timeout: float):
        if self._selfq:
            return self._selfq.popleft()
        try:
            if block:
                item = self._queues[self.lid].get(timeout=timeout)
            else:
                item = self._queues[self.lid].get_nowait()
        except queue_mod.Empty:
            return None
        # peer traffic is wire-serialized; parent control messages
        # ("stop",) arrive as plain tuples
        return wire_loads(item) if isinstance(item, bytes) else item

    def _service_one(self, block: bool = False, timeout: float = 0.02):
        """Receive and process one incoming item; returns its kind, or
        None if nothing arrived.  This is the single progress point every
        blocking wait spins on — requests execute here, so two locations
        blocked on each other always make progress."""
        item = self._next_item(block, timeout)
        if item is None:
            return None
        kind = item[0]
        if kind == "req":
            self._execute_req(item)
        elif kind == "sync":
            self._execute_sync(item)
        elif kind == "reply":
            _, token, packed, spawned = item
            self.outstanding += spawned + self._reply_credit.pop(token, 0)
            fut = self._futures.pop(token)
            fut.value = unpack_payload(packed, self.seg_cache)
            fut.ready = True
        elif kind == "ack":
            self.outstanding += item[1] - 1
        elif kind == "coll":
            _, key, op, src, payload = item
            self._coll_gather.setdefault(key, {})[src] = (op, payload)
        elif kind == "collres":
            _, key, arrived = item
            self._coll_results[key] = arrived
        elif kind == "slab":
            _, key, src, packed = item
            self._slab_inbox.setdefault(key, {})[src] = packed
        elif kind == "stop":
            self._stopped = True
        return kind

    def _service_until(self, cond, desc: str, timeout: float | None = None):
        deadline = time.monotonic() + (timeout or self.op_timeout)
        while not cond():
            if self._stopped:
                raise SpmdError(
                    f"location {self.lid}: run aborted while waiting for "
                    f"{desc} (another location failed or the run was "
                    "stopped)")
            if self._service_one(block=True, timeout=0.02) is not None:
                continue
            if time.monotonic() > deadline:
                raise SpmdError(
                    f"location {self.lid}: timed out after "
                    f"{timeout or self.op_timeout:.0f}s waiting for {desc} "
                    "— likely deadlock (mismatched collectives, a lost "
                    "peer, or a dependence cycle)")

    # -- progress engine API (simulated-Runtime surface) -------------------
    def drain_available(self) -> int:
        """Process everything currently receivable; returns the number of
        requests executed."""
        before = self.req_executed
        while self._service_one(block=False) is not None:
            pass
        return self.req_executed - before

    def drain_to(self, dst: int) -> int:
        return self.drain_available()

    def drain_one(self, dst: int) -> bool:
        return self._service_one(block=False) is not None

    def flush_channel(self, src: int, dst: int, until_future=None) -> int:
        # sends are eager: there is nothing buffered sender-side.  Flushing
        # "my own channel" (the pList self-send fast path) means processing
        # what has already arrived.
        if dst != self.lid:
            return 0
        return self.drain_available()

    def drain_origin(self, origin: int) -> int:  # pragma: no cover - parity
        return self.drain_available()

    def group_progress(self, members) -> int:
        # local view: requests executed here *from the group's members*
        # plus local tasks run.  A blocked subgroup executor observes
        # progress exactly when member traffic arrives — chatter from
        # outside locations cannot mask a stuck sub-team.
        return (sum(self.exec_from[m] for m in members)
                + self.loc.stats.tasks_executed)

    def stall_limit(self, group_size: int | None = None) -> int:
        # wall-clock patience: the same window regardless of group size
        return max(16, int(_STALL_PATIENCE / self.yield_timeout))

    # -- fence protocols ---------------------------------------------------
    def fence(self, loc: "MpLocation", group: LocationGroup) -> None:
        """Counting fence: drain, exchange (sent, executed) snapshots, and
        finish once the group totals are equal and stable for two
        consecutive rounds (the second round certifies no message was in
        flight past anyone's snapshot).

        Counting is per-peer and restricted to the group: each member
        contributes its sends *to members* and executions *from members*.
        A subgroup fence therefore quiesces exactly the traffic among the
        sub-team — a member's sends to outside locations (whose execution
        counters the group gather never sees) cannot stall it, and
        non-member locations are never blocked or drained by it."""
        if len(group) == 1 or self.nlocs == 1:
            while self.drain_available():
                pass
            # anything still in the self-queue was spawned by the drain
            while self._selfq:
                self.drain_available()
            if len(group) == self.nlocs:
                self.arena.advance_epoch()
            return
        deadline = time.monotonic() + self.op_timeout
        prev = None
        while True:
            self.drain_available()
            snap = (sum(self.sent_to[m] for m in group.members),
                    sum(self.exec_from[m] for m in group.members))
            arrived = loc._gather_exchange("fence", snap, group)
            sent = sum(v[0] for v in arrived.values())
            done = sum(v[1] for v in arrived.values())
            if sent == done and prev == (sent, done):
                # world quiescence: every receiver-side zero-copy view is
                # dropped (the validity contract), so retired segments
                # recycle.  Subgroup fences prove nothing about outside
                # receivers, so only a world fence advances the epoch.
                if len(group) == self.nlocs:
                    self.arena.advance_epoch()
                return
            prev = (sent, done)
            if time.monotonic() > deadline:
                raise SpmdError(
                    f"location {self.lid}: fence never quiesced "
                    f"(sent={sent}, executed={done}) — likely deadlock")

    # -- SPMD entry --------------------------------------------------------
    def run_local(self, fn, args: tuple):
        return fn(self.loc, *args)


class MpLocation(Location):
    """Location whose transport is real: overrides exactly the delivery
    paths; identity, timers, charging, aggregation and combining-buffer
    bookkeeping are inherited from the simulated :class:`Location`."""

    def __init__(self, runtime: MpRuntime, lid: int):
        super().__init__(runtime, lid)
        self._slab_seq: dict = {}

    def __reduce__(self):
        # like MpRuntime: a captured location reference re-anchors to the
        # executing process's own location
        return (_resolve_location, ())

    # real transport: the simulated intra-node shortcut does not exist —
    # *every* same-node message already moves through shared memory
    def zero_copy_local(self, dest: int) -> bool:
        return False

    # -- point-to-point ----------------------------------------------------
    # async_rmi / bulk_set_range / combine_rmi / flush_combining are
    # inherited: they funnel into MpTransport.enqueue.

    def sync_rmi(self, dest: int, handle: int, method: str, *args):
        rt = self.runtime
        m = rt.machine
        self.stats.sync_rmi_sent += 1
        if self._combining:
            self.flush_combining(dest)
        size = 32 + estimate_size(args)
        if dest == self.id:
            rt.drain_available()  # source FIFO with pending self-sends
            self.clock += m.o_send + m.o_recv
            return rt._run_handler(rt.loc, handle, method, args, self.id)
        self.clock += m.o_send
        self.stats.bytes_sent += size
        self.stats.physical_messages += 2  # request + reply
        rt.req_sent += 1
        rt.sent_to[dest] += 1
        token = rt.new_token()
        fut = MpFuture(rt, token)
        rt._futures[token] = fut
        rt._put(dest, ("sync", self.id, token, handle, method,
                       rt._pack(args)))
        rt._service_until(lambda: fut.ready,
                          f"sync_rmi reply from location {dest} "
                          f"({method})")
        return fut.value

    def opaque_rmi(self, dest: int, handle: int, method: str, *args) -> MpFuture:
        rt = self.runtime
        m = rt.machine
        if self._combining:
            self.flush_combining(dest)
        size = 32 + estimate_size(args)
        self.stats.opaque_rmi_sent += 1
        self.clock += m.o_send
        self.stats.bytes_sent += size
        self.stats.physical_messages += 1
        rt.req_sent += 1
        rt.sent_to[dest] += 1
        token = rt.new_token()
        fut = MpFuture(rt, token)
        rt._futures[token] = fut
        if not rt._spawn_frames:
            # top-level split-phase request: os_fence must wait for it, so
            # count it outstanding until its reply (credit -1) arrives
            rt.outstanding += 1
            rt._reply_credit[token] = -1
        rt._put(dest, ("sync", self.id, token, handle, method,
                       rt._pack(args)))
        return fut

    # -- bulk transport ----------------------------------------------------
    def bulk_get_range(self, dest: int, handle: int, method: str, *args,
                       nelems: int = 0):
        rt = self.runtime
        m = rt.machine
        self.stats.bulk_rmi_sent += 1
        self.stats.bulk_elements_moved += nelems
        if self._combining:
            self.flush_combining(dest)
        size = 64 + estimate_size(args)
        if dest == self.id:
            rt.drain_available()
            self.clock += m.o_send + m.o_recv
            return rt._run_handler(rt.loc, handle, method, args, self.id)
        self.clock += m.o_send
        self.stats.bytes_sent += size
        self.stats.physical_messages += 2  # request + slab reply
        rt.req_sent += 1
        rt.sent_to[dest] += 1
        token = rt.new_token()
        fut = MpFuture(rt, token)
        rt._futures[token] = fut
        rt._put(dest, ("sync", self.id, token, handle, method,
                       rt._pack(args)))
        rt._service_until(lambda: fut.ready,
                          f"bulk slab reply from location {dest}")
        return fut.value

    def _slab_exchange(self, tag: str, per_dest, group: LocationGroup):
        """Common engine of bulk_exchange/bulk_gather: eager point-to-point
        slab sends (shared-memory backed) plus a parked-inbox collection —
        no coordinator in the data path.  ``per_dest(member)`` yields the
        payload for one destination."""
        rt = self.runtime
        seq = self._slab_seq.get((tag, group.key), 0)
        self._slab_seq[(tag, group.key)] = seq + 1
        key = (tag, group.key, seq)
        others = [m for m in group.members if m != self.id]
        zero_copy = mp_zero_copy_enabled()
        if zero_copy:
            # retire this round's segments into the exchange channel:
            # completing round seq-1 proved every peer consumed round
            # seq-2, so those recycle now without waiting for a fence
            rt.arena.begin_channel((tag, group.key), seq)
        packed_once: dict = {}  # id(payload) -> packed (gather multicast)
        keep_alive: list = []   # pins ids: no reuse while packed_once lives
        try:
            for member in others:
                payload = per_dest(member)
                size = 64 + estimate_size(payload)
                self.clock += rt.machine.o_send
                self.stats.bulk_rmi_sent += 1
                self.stats.bytes_sent += size
                self.stats.physical_messages += 1
                if zero_copy:
                    packed = packed_once.get(id(payload))
                    if packed is None:
                        packed = rt._pack(payload)
                        packed_once[id(payload)] = packed
                        keep_alive.append(payload)
                else:
                    packed = rt._pack(payload)
                rt._put(member, ("slab", key, self.id, packed))
        finally:
            if zero_copy:
                rt.arena.end_channel()
        rt._service_until(
            lambda: len(rt._slab_inbox.get(key, ())) == len(others),
            f"bulk slab exchange {key}")
        box = rt._slab_inbox.pop(key, {})
        return {m: unpack_payload(p, rt.seg_cache) for m, p in box.items()}

    def bulk_exchange(self, slabs: list, group: LocationGroup | None = None,
                      nelems: int = 0) -> list:
        rt = self.runtime
        group = group or rt.world
        self.stats.bulk_elements_moved += nelems
        by_member = dict(zip(group.members, slabs))
        received = self._slab_exchange("x", lambda m: by_member[m], group)
        return [by_member[m] if m == self.id else received[m]
                for m in group.members]

    def bulk_gather(self, payload, group: LocationGroup | None = None,
                    nelems: int = 0) -> list:
        rt = self.runtime
        group = group or rt.world
        self.stats.bulk_elements_moved += nelems
        received = self._slab_exchange("g", lambda m: payload, group)
        return [payload if m == self.id else received[m]
                for m in group.members]

    # -- collectives -------------------------------------------------------
    def _gather_exchange(self, op: str, payload, group: LocationGroup) -> dict:
        """One collective round: every member's payload lands on every
        member (gather through the group's lowest-lid coordinator, scatter
        of the complete set back).  Returns {lid: payload}."""
        rt = self.runtime
        seq = self._coll_seq.get(group.key, 0)
        self._coll_seq[group.key] = seq + 1
        self.stats.collectives += 1
        self.clock += rt.machine.collective_cost(len(group))
        if len(group) == 1:
            return {self.id: payload}
        key = (group.key, seq)
        coord = group.members[0]
        # collective payloads ride the slab transport too: members pack
        # before sending, the coordinator scatters the *packed* refs
        # untouched (the heavy bytes cross the wire once, straight from
        # the packing member's segment to every consumer), and each
        # member unpacks on receipt — zero-copy views under the same
        # consume-before-your-next-fence contract as bulk_gather.  Only
        # pooled (arena, owner-reclaimed) slabs survive that fan-out;
        # legacy "copy" slabs are single-consumer (the first unpack
        # unlinks the segment), so copy-out mode ships payloads raw.
        pack = rt._pack if mp_zero_copy_enabled() else (lambda p: p)
        if self.id == coord:
            box = rt._coll_gather.setdefault(key, {})
            box[self.id] = (op, pack(payload))
            rt._service_until(
                lambda: len(rt._coll_gather.get(key, ())) == len(group),
                f"collective '{op}' on {group}")
            box = rt._coll_gather.pop(key)
            ops = {o for o, _ in box.values()}
            if len(ops) != 1:
                raise SpmdError(
                    f"collective mismatch on {group}: {sorted(ops)} "
                    "called concurrently")
            arrived = {lid: p for lid, (o, p) in box.items()}
            for member in group.members[1:]:
                rt._put(member, ("collres", key, arrived))
            return {lid: unpack_payload(p, rt.seg_cache)
                    for lid, p in arrived.items()}
        rt._put(coord, ("coll", key, op, self.id, pack(payload)))
        rt._service_until(lambda: key in rt._coll_results,
                          f"collective '{op}' result on {group}")
        return {lid: unpack_payload(p, rt.seg_cache)
                for lid, p in rt._coll_results.pop(key).items()}

    def _collective(self, op: str, payload, group: LocationGroup | None):
        rt = self.runtime
        group = group or rt.world
        if self.id not in group:
            raise SpmdError(f"location {self.id} not in {group}")
        if rt._exec_depth:
            raise SpmdError(
                f"location {self.id}: collective '{op}' invoked inside an "
                "RMI handler; handlers must not block")
        members = group.members
        if op == "fence":  # pragma: no cover - rmi_fence overrides
            rt.fence(self, group)
            return None
        if op == "barrier":
            self._gather_exchange("barrier", None, group)
            return None
        if op == "register":
            # group-scoped handle: (group.key, seq) from a per-group
            # sequence counter, so disjoint subgroups registering
            # concurrently (e.g. sibling nested sections) cannot
            # desynchronise each other's handle spaces
            seq = rt._handle_seq.get(group.key, 0)
            proposed = (group.key, seq)
            arrived = self._gather_exchange("register", proposed, group)
            if len(set(arrived.values())) != 1:
                raise SpmdError(
                    "p_object registration diverged across processes "
                    f"(proposed handles {sorted(set(arrived.values()))}); "
                    "the multiprocessing backend requires registrations "
                    "in one collective program order per group")
            rt.registry[proposed] = payload
            rt._handle_seq[group.key] = seq + 1
            return proposed
        if op == "unregister":
            arrived = self._gather_exchange("unregister", payload, group)
            if len(set(arrived.values())) != 1:
                raise SpmdError(
                    f"unregister called with differing handles "
                    f"{sorted(set(arrived.values()))}")
            rt.registry.pop(payload, None)
            return None
        # value-bearing collectives: exchange raw values, apply the shared
        # member-side math locally — reduction callables never cross a
        # process boundary
        if op == "allreduce":
            value, op_fn = payload
            arrived = self._gather_exchange(op, value, group)
            arrived = {i: (v, op_fn) for i, v in arrived.items()}
        elif op == "scan":
            value, op_fn, exclusive = payload
            arrived = self._gather_exchange(op, value, group)
            arrived = {i: (v, op_fn, exclusive) for i, v in arrived.items()}
        elif op == "broadcast":
            root, value = payload
            arrived = self._gather_exchange(
                op, (root, value if self.id == root else None), group)
        elif op in ("allgather", "alltoall"):
            arrived = self._gather_exchange(op, payload, group)
        else:
            raise SpmdError(f"unknown collective {op!r}")
        return collective_results(op, arrived, members)[self.id]

    def rmi_fence(self, group: LocationGroup | None = None) -> None:
        rt = self.runtime
        group = group or rt.world
        if self.id not in group:
            raise SpmdError(f"location {self.id} not in {group}")
        if rt._exec_depth:
            raise SpmdError(
                f"location {self.id}: collective 'fence' invoked inside an "
                "RMI handler; handlers must not block")
        self.stats.fences += 1
        if len(group) < rt.nlocs:
            self.stats.subgroup_fences += 1
        self.flush_combining()
        rt.fence(self, group)

    def os_fence(self) -> None:
        rt = self.runtime
        self.flush_combining()
        rt._service_until(lambda: rt.outstanding <= 0,
                          "os_fence (one-sided quiescence of originated "
                          "RMIs)")

    # -- progress / task-graph hooks ---------------------------------------
    def poll(self) -> int:
        return self.runtime.drain_available()

    def task_yield(self, drain: bool = True) -> int:
        rt = self.runtime
        if rt._exec_depth:
            raise SpmdError(
                f"location {self.id}: task_yield inside an RMI handler")
        n = rt.drain_available()
        if n == 0:
            # block briefly for an incoming message: this is the real
            # backend's analogue of handing the baton to the conductor
            if rt._service_one(block=True, timeout=rt.yield_timeout):
                n += 1
        if drain:
            n += rt.drain_available()
        return n


# ---------------------------------------------------------------------------
# Process orchestration
# ---------------------------------------------------------------------------


def _worker_main(lid, nlocs, machine, placement, queues, result_q, fn, args,
                 toggles, run_id, op_timeout):
    # re-apply the parent's toggle snapshot: inherited state under fork,
    # but explicit application keeps semantics under any start method and
    # guards against toggles mutated between runtime import and launch
    apply_toggles(toggles)
    global _CURRENT_RUNTIME
    rt = MpRuntime(lid, nlocs, machine, placement, queues, run_id,
                   op_timeout=op_timeout)
    _CURRENT_RUNTIME = rt
    if mp_zero_copy_enabled():
        # numpy bContainer storage allocates inside the arena, so bulk
        # replies can ship references into live storage
        from ..core.base_containers import set_storage_allocator
        set_storage_allocator(rt.arena.storage_alloc)
    if isinstance(fn, bytes):
        # non-fork start methods ship (fn, args) as a wire blob (closure-
        # capable); decode after the runtime is installed so captured
        # runtime/location references re-anchor to this process
        fn, args = wire_loads(fn)
    t0 = time.perf_counter()
    result, err = None, None
    try:
        result = rt.run_local(fn, args)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        err = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
    wall = time.perf_counter() - t0
    try:
        pickle.dumps(result)
    except Exception as exc:
        result, err = None, (f"location {lid} returned an unpicklable "
                             f"result: {exc}")
    try:
        result_q.put((lid, result, err, rt.loc.stats, rt.loc.clock, wall))
    except Exception as exc:  # pragma: no cover - defensive
        result_q.put((lid, None, f"result delivery failed: {exc}",
                      rt.loc.stats, rt.loc.clock, wall))
    # keep servicing peers (sync replies, collective gathers) until the
    # parent has collected every result: a location must not vanish while
    # stragglers still depend on it
    deadline = time.monotonic() + op_timeout
    try:
        while not rt._stopped and time.monotonic() < deadline:
            rt._service_one(block=True, timeout=0.05)
    finally:
        # receiver mappings first (they may pin peer segments), then the
        # owned segments: /dev/shm must be clean when this process exits
        rt.seg_cache.close()
        rt.arena.dispose()


def _cleanup_shm(run_id: str) -> None:
    for path in glob.glob(f"/dev/shm/rs{run_id}_*"):
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced with a reader
            pass


def mp_spmd_run_detailed(fn, nlocs: int = 4, machine="smp", args: tuple = (),
                         placement: str = "packed",
                         timeout: float | None = None,
                         op_timeout: float | None = None,
                         start_method: str = "fork") -> SpmdReport:
    """Run ``fn(ctx, *args)`` with one OS process per location.

    ``timeout`` caps the whole run's wall clock (default
    ``REPRO_MP_RUN_TIMEOUT``/300 s): on expiry every worker is terminated
    and an :class:`SpmdError` is raised — a deadlocked fence fails fast
    instead of hanging the runner.  ``op_timeout`` caps each worker-side
    blocking wait (default ``REPRO_MP_TIMEOUT``/60 s).

    ``start_method`` selects how workers launch.  ``"fork"`` (default)
    inherits the parent image and supports arbitrary local functions.
    ``"spawn"`` (the macOS/Windows default) starts fresh interpreters:
    ``(fn, args)`` travels as a wire blob, so ``fn``'s defining module
    must be importable in the child.
    """
    if nlocs < 1:
        raise ValueError("need at least one location")
    if start_method not in multiprocessing.get_all_start_methods():
        raise SpmdError(
            f"start method {start_method!r} unavailable on this platform "
            f"(have {multiprocessing.get_all_start_methods()}); use the "
            "simulated backend or another start method")
    ctx = multiprocessing.get_context(start_method)
    run_timeout = timeout if timeout is not None else _RUN_TIMEOUT
    worker_timeout = op_timeout if op_timeout is not None else \
        min(_OP_TIMEOUT, run_timeout)
    run_id = uuid.uuid4().hex[:8]
    queues = [ctx.Queue() for _ in range(nlocs)]
    result_q = ctx.Queue()
    toggles = snapshot_toggles()
    if start_method == "fork":
        # fork never pickles fn/args: unpicklable-but-marshalable locals
        # keep working exactly as before
        fn_payload, args_payload = fn, args
    else:
        fn_payload, args_payload = wire_dumps((fn, args)), ()
    procs = []
    for lid in range(nlocs):
        p = ctx.Process(
            target=_worker_main,
            args=(lid, nlocs, machine, placement, queues, result_q,
                  fn_payload, args_payload, toggles, run_id,
                  worker_timeout),
            name=f"repro-loc-{lid}", daemon=True)
        procs.append(p)
    t0 = time.perf_counter()
    for p in procs:
        p.start()
    collected: dict[int, tuple] = {}
    stop_sent = False

    def _stop_all():
        nonlocal stop_sent
        if not stop_sent:
            for q in queues:
                try:
                    q.put(("stop",))
                except Exception:  # pragma: no cover - defensive
                    pass
            stop_sent = True

    try:
        deadline = time.monotonic() + run_timeout
        while len(collected) < nlocs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = sorted(set(range(nlocs)) - set(collected))
                raise SpmdError(
                    f"multiprocessing run exceeded {run_timeout:.0f}s; "
                    f"locations {missing} never returned — deadlock or "
                    "worker crash")
            try:
                item = result_q.get(timeout=min(0.2, remaining))
            except queue_mod.Empty:
                dead = [p for p in procs if not p.is_alive()
                        and procs.index(p) not in collected]
                if dead:
                    missing = sorted(set(range(nlocs)) - set(collected))
                    raise SpmdError(
                        f"worker process(es) for locations {missing} died "
                        "without reporting a result")
                continue
            collected[item[0]] = item
            if item[2] is not None:
                # first failure: unblock the other workers so they report
                # promptly instead of waiting out their op timeouts
                _stop_all()
    finally:
        _stop_all()
        grace = time.monotonic() + 5.0
        for p in procs:
            p.join(timeout=max(0.1, grace - time.monotonic()))
        for p in procs:
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
                p.join(timeout=5.0)
        for q in [*queues, result_q]:
            q.cancel_join_thread()
            q.close()
        _cleanup_shm(run_id)
    wall = time.perf_counter() - t0
    ordered = [collected[lid] for lid in range(nlocs)]
    errors = [(lid, err) for lid, _, err, _, _, _ in ordered
              if err is not None]
    if errors:
        primary = next((e for e in errors if "run aborted while" not in e[1]),
                       errors[0])
        raise SpmdError(
            f"location {primary[0]} failed under the multiprocessing "
            f"backend: {primary[1]}")
    return SpmdReport(
        [res for _, res, _, _, _, _ in ordered],
        clocks=[clock for _, _, _, _, clock, _ in ordered],
        stats=RunStats([st for _, _, _, st, _, _ in ordered]),
        wall_seconds=wall,
        backend="multiprocessing")


def mp_spmd_run(fn, nlocs: int = 4, machine="smp", args: tuple = (),
                placement: str = "packed", timeout: float | None = None,
                op_timeout: float | None = None,
                start_method: str = "fork") -> list:
    """Process-per-location :func:`~repro.runtime.scheduler.spmd_run`."""
    return mp_spmd_run_detailed(fn, nlocs=nlocs, machine=machine, args=args,
                                placement=placement, timeout=timeout,
                                op_timeout=op_timeout,
                                start_method=start_method).results


__all__ = ["MpFuture", "MpLocation", "MpRuntime", "MpTransport",
           "SegmentCache", "ShmArena", "ShmSlab", "mp_spmd_run",
           "mp_spmd_run_detailed", "pack_payload", "unpack_payload"]
