"""Real-parallelism execution backend: one OS process per location.

The simulated backend executes every RMI handler in one address space and
*models* parallelism with virtual clocks.  This module provides the other
half of ROADMAP item 1: the same SPMD programs, containers, views and
algorithms running with **real** concurrency — each location is a forked OS
process, scalar RMIs travel over per-destination ``multiprocessing`` queues,
and bulk slabs move through ``multiprocessing.shared_memory`` segments so
their payload bytes never pass through a pipe or the pickler.

Design (BCL-style: a handful of transport primitives behind a stable
runtime API):

* :class:`MpLocation` subclasses the simulated :class:`Location`, so the
  aggregation/combining bookkeeping, virtual-clock charging and the whole
  container-facing API are inherited verbatim.  Only the methods that
  *deliver* work are overridden: sync/split-phase RMIs become
  request/reply token exchanges, collectives ride a gather/scatter engine,
  and the fence becomes a counting protocol.
* Asynchronous sends (including combining-buffer flushes and bulk slab
  pushes) funnel unchanged through ``Location`` into
  :meth:`MpTransport.enqueue`, which hands the message to the destination
  process's queue — the narrow waist of
  :class:`~repro.runtime.comm.TransportBackend`.
* Collectives never pickle reduction operators: members exchange raw
  payloads through the group's lowest-lid coordinator and every member
  computes the result locally with
  :func:`~repro.runtime.scheduler.collective_results` — the exact code the
  simulated conductor runs, so the two backends cannot drift.
* ``rmi_fence`` is a counting fence: rounds of (messages sent, messages
  executed) exchanges until the global totals are equal and stable for two
  consecutive rounds; every blocked wait services incoming requests, so
  fences, sync RMIs and slab exchanges can never deadlock against each
  other.  ``os_fence`` uses weighted ack credits: every executed request
  acknowledges its *origin* with the number of same-origin requests its
  handler spawned, so one-sided quiescence needs no collective.
* Every blocking wait carries a deadline (``timeout``/``REPRO_MP_TIMEOUT``):
  a genuinely deadlocked program fails fast with a diagnostic instead of
  hanging the test runner, and the parent enforces a wall-clock cap on the
  whole run as a second line of defence.

Guarantees relative to the simulated oracle: per-(src, dst) FIFO holds
(one queue per destination, one feeder per producer), async completion is
guaranteed at fences exactly as Ch. VII.B specifies — asyncs may execute
*earlier* than the simulator would (any service point), which the
completion model permits.  Cross-source interleaving is real and
nondeterministic, so programs must order conflicting writes the same way
they must on any real machine; the differential suite
(``tests/backend/``) pins down byte-identical *final* results for all six
container families and the algorithm drivers.
"""

from __future__ import annotations

import glob
import io
import marshal
import multiprocessing
import os
import pickle
import queue as queue_mod
import sys
import time
import traceback
import types
import uuid
from collections import deque

import numpy as np

from .comm import (
    Message,
    TransportBackend,
    apply_toggles,
    estimate_size,
    snapshot_toggles,
)
from .machine import get_machine
from .scheduler import (
    Location,
    LocationGroup,
    SpmdError,
    SpmdReport,
    collective_results,
)
from .stats import RunStats

#: default per-blocking-operation deadline (seconds); a stuck fence,
#: collective or reply raises SpmdError instead of hanging the runner
_OP_TIMEOUT = float(os.environ.get("REPRO_MP_TIMEOUT", "60"))
#: default wall-clock cap for one whole run, enforced by the parent
_RUN_TIMEOUT = float(os.environ.get("REPRO_MP_RUN_TIMEOUT", "300"))
#: how long one task_yield blocks waiting for an incoming message
_YIELD_TIMEOUT = 0.05
#: ndarray payloads at least this big travel as shared-memory segments
#: instead of being pickled into the queue pipe
_SHM_THRESHOLD = int(os.environ.get("REPRO_MP_SHM_THRESHOLD", "2048"))
#: seconds of group-wide silence before the task-graph executor's blocked
#: wait declares a dependence deadlock
_STALL_PATIENCE = 10.0

_PACK_DEPTH = 8


class ShmSlab:
    """Wire placeholder for an ndarray moved through shared memory."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape, dtype: str):
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __reduce__(self):
        return (ShmSlab, (self.name, self.shape, self.dtype))


class _TrackerShim:
    """No-op stand-in for the multiprocessing resource tracker during slab
    segment calls.  Slab lifetime is managed explicitly — the receiver
    unlinks after copy-out and the parent sweeps leftovers — while
    Python < 3.13 registers every create *and* attach with one tracker
    daemon shared by all forked workers, so the matching unregisters race
    and spam KeyErrors from the tracker thread."""

    @staticmethod
    def register(name, rtype):
        pass

    @staticmethod
    def unregister(name, rtype):
        pass


def _shm_call(fn, *args, **kwargs):
    """Invoke an ``shared_memory`` operation with tracker registration
    suppressed (single-threaded per worker, so swapping the module
    attribute is race-free within the process)."""
    from multiprocessing import shared_memory

    real = shared_memory.resource_tracker
    shared_memory.resource_tracker = _TrackerShim
    try:
        return fn(*args, **kwargs)
    finally:
        shared_memory.resource_tracker = real


def pack_payload(obj, namer, threshold: int = _SHM_THRESHOLD, _depth: int = 0):
    """Replace large ndarrays inside ``obj`` (recursing through tuples,
    lists and dicts) with :class:`ShmSlab` references backed by freshly
    written ``multiprocessing.shared_memory`` segments.  ``namer()`` must
    return a globally fresh segment name."""
    if isinstance(obj, np.ndarray) and obj.dtype != object \
            and obj.nbytes >= threshold:
        from multiprocessing import shared_memory

        seg = _shm_call(shared_memory.SharedMemory, create=True,
                        size=obj.nbytes, name=namer())
        np.ndarray(obj.shape, dtype=obj.dtype, buffer=seg.buf)[...] = obj
        ref = ShmSlab(seg.name, obj.shape, str(obj.dtype))
        seg.close()
        return ref
    if _depth >= _PACK_DEPTH:
        return obj
    if isinstance(obj, tuple):
        return tuple(pack_payload(o, namer, threshold, _depth + 1) for o in obj)
    if isinstance(obj, list):
        return [pack_payload(o, namer, threshold, _depth + 1) for o in obj]
    if isinstance(obj, dict):
        return {k: pack_payload(v, namer, threshold, _depth + 1)
                for k, v in obj.items()}
    return obj


def unpack_payload(obj, _depth: int = 0):
    """Inverse of :func:`pack_payload`: materialise :class:`ShmSlab`
    references (copy out of the segment, then unlink it — the reader owns
    the segment's lifetime)."""
    if isinstance(obj, ShmSlab):
        from multiprocessing import shared_memory

        seg = _shm_call(shared_memory.SharedMemory, name=obj.name)
        arr = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                         buffer=seg.buf).copy()
        seg.close()
        try:
            _shm_call(seg.unlink)
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
        return arr
    if _depth >= _PACK_DEPTH:
        return obj
    if isinstance(obj, tuple):
        return tuple(unpack_payload(o, _depth + 1) for o in obj)
    if isinstance(obj, list):
        return [unpack_payload(o, _depth + 1) for o in obj]
    if isinstance(obj, dict):
        return {k: unpack_payload(v, _depth + 1) for k, v in obj.items()}
    return obj


# ---------------------------------------------------------------------------
# Wire serialization
#
# The simulated oracle passes *closures* in RMI arguments (SSSP's visitor
# factories, p_generate's per-gid lambdas, Paragraph task bodies) — in one
# address space that is free.  Crossing a process boundary needs two things
# plain pickle cannot do:
#
# * nested/lambda functions serialize by value: code object (marshal) plus
#   captured cell contents, rebuilt against the defining module's globals
#   on the receiving side.  Cell contents are filled through the reduce
#   state setter, so mutually recursive closures (SSSP's expand <-> visit)
#   survive the round trip.
# * a captured runtime/location resolves to the *receiver's* runtime: every
#   closure written against the simulator uses ``rt.current_location`` /
#   ``rt.lookup(handle, ...)`` idioms, and the only correct meaning on
#   another process is that process's own runtime.  MpRuntime/MpLocation
#   reduce to per-process sentinels.
#
# Messages are serialized *at the send site* (`MpRuntime._put`), not by the
# queue's feeder thread: an unserializable payload raises in the sender's
# stack with a real traceback instead of hanging the run from a daemon
# thread.
# ---------------------------------------------------------------------------

#: the process's active runtime, installed by ``_worker_main`` — the anchor
#: every deserialized runtime/location reference resolves to
_CURRENT_RUNTIME: "MpRuntime | None" = None


def _resolve_runtime() -> "MpRuntime":
    if _CURRENT_RUNTIME is None:
        raise SpmdError("no multiprocessing runtime active in this process")
    return _CURRENT_RUNTIME


def _resolve_location() -> "MpLocation":
    return _resolve_runtime().loc


def _resolve_transport() -> "MpTransport":
    return _resolve_runtime().network


def _rebuild_fn(code_bytes: bytes, modname: str, qualname: str, nfree: int):
    code = marshal.loads(code_bytes)
    mod = sys.modules.get(modname)
    if mod is None:  # pragma: no cover - fork inherits sys.modules
        raise SpmdError(
            f"cannot rebuild function {qualname}: defining module "
            f"{modname!r} not loaded in this process")
    closure = tuple(types.CellType() for _ in range(nfree)) or None
    fn = types.FunctionType(code, mod.__dict__, code.co_name, None, closure)
    fn.__qualname__ = qualname
    return fn


def _set_fn_state(fn, state):
    defaults, kwdefaults, cellvals = state
    fn.__defaults__ = defaults
    fn.__kwdefaults__ = kwdefaults
    if cellvals is not None:
        for cell, value in zip(fn.__closure__, cellvals):
            cell.cell_contents = value


def _lookup_qualname(obj) -> bool:
    """Is ``obj`` reachable as module.qualname (i.e. plain pickle works)?"""
    mod = sys.modules.get(getattr(obj, "__module__", None))
    if mod is None:
        return False
    found = mod
    try:
        for part in obj.__qualname__.split("."):
            found = getattr(found, part)
    except AttributeError:
        return False
    return found is obj


class _WirePickler(pickle.Pickler):
    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType) and not _lookup_qualname(obj):
            closure = obj.__closure__ or ()
            cellvals = tuple(c.cell_contents for c in closure)
            return (_rebuild_fn,
                    (marshal.dumps(obj.__code__), obj.__module__,
                     obj.__qualname__, len(closure)),
                    (obj.__defaults__, obj.__kwdefaults__,
                     cellvals if closure else None),
                    None, None, _set_fn_state)
        return NotImplemented


def wire_dumps(obj) -> bytes:
    """Serialize one wire item (closure-capable, runtime-reference-safe)."""
    buf = io.BytesIO()
    _WirePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def wire_loads(data: bytes):
    return pickle.loads(data)


class MpFuture:
    """Split-phase handle over a real request/reply token exchange.
    API-compatible with the simulated :class:`~repro.runtime.future.Future`."""

    __slots__ = ("_rt", "token", "ready", "value", "ready_time")

    def __init__(self, rt: "MpRuntime", token: int):
        self._rt = rt
        self.token = token
        self.ready = False
        self.value = None
        self.ready_time = 0.0

    def test(self) -> bool:
        return self.ready

    def get(self):
        if not self.ready:
            self._rt._service_until(lambda: self.ready,
                                    f"split-phase reply (token {self.token})")
        return self.value


class MpTransport(TransportBackend):
    """Eager queue transport: enqueue hands the message to the destination
    process immediately; there is no buffered channel to drain."""

    shared_address_space = False
    total_pending = 0  # sends are eager; nothing buffers sender-side

    def __init__(self, rt: "MpRuntime"):
        self.rt = rt

    def __reduce__(self):
        return (_resolve_transport, ())

    def enqueue(self, msg: Message) -> bool:
        rt = self.rt
        if msg.future is not None:  # pragma: no cover - defensive
            raise SpmdError("mp transport: futures ride the token protocol")
        rt.req_sent += 1
        if rt._spawn_frames:
            # handler-spawned (forwarded) request: accounted by the ack
            # credit this handler sends to the message's origin
            rt._spawn_frames[-1] += 1
        elif msg.origin == rt.lid:
            rt.outstanding += 1
        rt._put(msg.dst, ("req", msg.src, msg.origin, msg.handle, msg.method,
                          rt._pack(msg.args)))
        return True


class MpRuntime:
    """Per-process runtime: one local location, queues to every peer.

    Duck-typed against the simulated :class:`~repro.runtime.scheduler.
    Runtime` surface that containers and algorithms actually touch
    (``current_location``/``current_origin``/``lookup``/``machine``/
    ``world``/progress hooks); representative lookup is local-only —
    there is no shared address space to reach across.
    """

    shared_address_space = False

    def __init__(self, lid: int, nlocs: int, machine, placement: str,
                 queues, run_id: str, op_timeout: float = _OP_TIMEOUT):
        self.lid = lid
        self.nlocs = nlocs
        self.machine = get_machine(machine)
        self.placement = placement
        self.world = LocationGroup(range(nlocs))
        self.network = MpTransport(self)
        self.op_timeout = op_timeout
        self.yield_timeout = _YIELD_TIMEOUT
        self.run_id = run_id
        self._queues = queues
        self._selfq: deque = deque()
        self.loc = MpLocation(self, lid)
        self.registry: dict[int, object] = {}
        self._next_handle = 0
        self._exec_stack: list = []
        self._exec_depth = 0
        # transport state
        self.req_sent = 0
        self.req_executed = 0
        self.outstanding = 0
        self._spawn_frames: list[int] = []
        self._futures: dict[int, MpFuture] = {}
        self._reply_credit: dict[int, int] = {}
        self._next_token = 0
        self._shm_count = 0
        self._coll_gather: dict = {}
        self._coll_results: dict = {}
        self._slab_inbox: dict = {}
        self._stopped = False

    def __reduce__(self):
        # a runtime reference captured in a shipped closure means "the
        # runtime of whatever process executes this"
        return (_resolve_runtime, ())

    # -- identity / registry ---------------------------------------------
    @property
    def current_location(self) -> "MpLocation":
        if self._exec_stack:
            return self._exec_stack[-1][0]
        return self.loc

    @property
    def current_origin(self) -> int:
        if self._exec_stack:
            return self._exec_stack[-1][1]
        return self.lid

    def lookup(self, handle: int, lid: int):
        if lid != self.lid:
            raise SpmdError(
                f"location {self.lid}: cross-location representative access "
                f"(handle {handle} on location {lid}) — the multiprocessing "
                "backend has no shared address space")
        try:
            return self.registry[handle]
        except KeyError:
            raise SpmdError(f"unknown p_object handle {handle}") from None

    # -- wire helpers ------------------------------------------------------
    def _pack(self, obj):
        return pack_payload(obj, self._new_shm_name)

    def _new_shm_name(self) -> str:
        self._shm_count += 1
        return f"rs{self.run_id}_{self.lid}_{self._shm_count}"

    def new_token(self) -> int:
        self._next_token += 1
        return self._next_token

    def _put(self, dest: int, item) -> None:
        if dest == self.lid:
            # self-sends bypass the queue: synchronously visible, so a
            # singleton fence can drain to true quiescence
            self._selfq.append(item)
        else:
            # serialize here, in the sender's stack — not in the queue's
            # feeder thread, whose pickle failures would hang the run —
            # with the closure-capable wire pickler
            self._queues[dest].put(wire_dumps(item))

    def _send_credit(self, origin: int, spawned: int) -> None:
        if origin == self.lid:
            self.outstanding += spawned - 1
        else:
            self._put(origin, ("ack", spawned))

    # -- handler execution -------------------------------------------------
    def _run_handler(self, dst_loc, handle, method, args, origin):
        obj = self.lookup(handle, self.lid)
        self._exec_stack.append((dst_loc, origin))
        self._exec_depth += 1
        try:
            result = getattr(obj, method)(*args)
        finally:
            self._exec_stack.pop()
            self._exec_depth -= 1
        dst_loc.stats.rmi_executed += 1
        return result

    def _execute_req(self, item) -> None:
        _, _src, origin, handle, method, packed = item
        args = unpack_payload(packed)
        self.req_executed += 1
        self._spawn_frames.append(0)
        try:
            self._run_handler(self.loc, handle, method, args, origin)
        finally:
            spawned = self._spawn_frames.pop()
        self._send_credit(origin, spawned)

    def _execute_sync(self, item) -> None:
        _, src, token, handle, method, packed = item
        args = unpack_payload(packed)
        self.req_executed += 1
        self._spawn_frames.append(0)
        try:
            result = self._run_handler(self.loc, handle, method, args, src)
        finally:
            spawned = self._spawn_frames.pop()
        self._put(src, ("reply", token, self._pack(result), spawned))

    # -- service engine ----------------------------------------------------
    def _next_item(self, block: bool, timeout: float):
        if self._selfq:
            return self._selfq.popleft()
        try:
            if block:
                item = self._queues[self.lid].get(timeout=timeout)
            else:
                item = self._queues[self.lid].get_nowait()
        except queue_mod.Empty:
            return None
        # peer traffic is wire-serialized; parent control messages
        # ("stop",) arrive as plain tuples
        return wire_loads(item) if isinstance(item, bytes) else item

    def _service_one(self, block: bool = False, timeout: float = 0.02):
        """Receive and process one incoming item; returns its kind, or
        None if nothing arrived.  This is the single progress point every
        blocking wait spins on — requests execute here, so two locations
        blocked on each other always make progress."""
        item = self._next_item(block, timeout)
        if item is None:
            return None
        kind = item[0]
        if kind == "req":
            self._execute_req(item)
        elif kind == "sync":
            self._execute_sync(item)
        elif kind == "reply":
            _, token, packed, spawned = item
            self.outstanding += spawned + self._reply_credit.pop(token, 0)
            fut = self._futures.pop(token)
            fut.value = unpack_payload(packed)
            fut.ready = True
        elif kind == "ack":
            self.outstanding += item[1] - 1
        elif kind == "coll":
            _, key, op, src, payload = item
            self._coll_gather.setdefault(key, {})[src] = (op, payload)
        elif kind == "collres":
            _, key, arrived = item
            self._coll_results[key] = arrived
        elif kind == "slab":
            _, key, src, packed = item
            self._slab_inbox.setdefault(key, {})[src] = packed
        elif kind == "stop":
            self._stopped = True
        return kind

    def _service_until(self, cond, desc: str, timeout: float | None = None):
        deadline = time.monotonic() + (timeout or self.op_timeout)
        while not cond():
            if self._stopped:
                raise SpmdError(
                    f"location {self.lid}: run aborted while waiting for "
                    f"{desc} (another location failed or the run was "
                    "stopped)")
            if self._service_one(block=True, timeout=0.02) is not None:
                continue
            if time.monotonic() > deadline:
                raise SpmdError(
                    f"location {self.lid}: timed out after "
                    f"{timeout or self.op_timeout:.0f}s waiting for {desc} "
                    "— likely deadlock (mismatched collectives, a lost "
                    "peer, or a dependence cycle)")

    # -- progress engine API (simulated-Runtime surface) -------------------
    def drain_available(self) -> int:
        """Process everything currently receivable; returns the number of
        requests executed."""
        before = self.req_executed
        while self._service_one(block=False) is not None:
            pass
        return self.req_executed - before

    def drain_to(self, dst: int) -> int:
        return self.drain_available()

    def drain_one(self, dst: int) -> bool:
        return self._service_one(block=False) is not None

    def flush_channel(self, src: int, dst: int, until_future=None) -> int:
        # sends are eager: there is nothing buffered sender-side.  Flushing
        # "my own channel" (the pList self-send fast path) means processing
        # what has already arrived.
        if dst != self.lid:
            return 0
        return self.drain_available()

    def drain_origin(self, origin: int) -> int:  # pragma: no cover - parity
        return self.drain_available()

    def group_progress(self, members) -> int:
        # local view: requests executed here plus local tasks run.  A
        # blocked location observes progress exactly when something
        # arrives — group-wide silence is what the stall limit measures.
        return self.req_executed + self.loc.stats.tasks_executed

    def stall_limit(self) -> int:
        return max(16, int(_STALL_PATIENCE / self.yield_timeout))

    # -- fence protocols ---------------------------------------------------
    def fence(self, loc: "MpLocation", group: LocationGroup) -> None:
        """Counting fence: drain, exchange (sent, executed) snapshots, and
        finish once the global totals are equal and stable for two
        consecutive rounds (the second round certifies no message was in
        flight past anyone's snapshot)."""
        if len(group) == 1 or self.nlocs == 1:
            while self.drain_available():
                pass
            # anything still in the self-queue was spawned by the drain
            while self._selfq:
                self.drain_available()
            return
        deadline = time.monotonic() + self.op_timeout
        prev = None
        while True:
            self.drain_available()
            snap = (self.req_sent, self.req_executed)
            arrived = loc._gather_exchange("fence", snap, group)
            sent = sum(v[0] for v in arrived.values())
            done = sum(v[1] for v in arrived.values())
            if sent == done and prev == (sent, done):
                return
            prev = (sent, done)
            if time.monotonic() > deadline:
                raise SpmdError(
                    f"location {self.lid}: fence never quiesced "
                    f"(sent={sent}, executed={done}) — likely deadlock")

    # -- SPMD entry --------------------------------------------------------
    def run_local(self, fn, args: tuple):
        return fn(self.loc, *args)


class MpLocation(Location):
    """Location whose transport is real: overrides exactly the delivery
    paths; identity, timers, charging, aggregation and combining-buffer
    bookkeeping are inherited from the simulated :class:`Location`."""

    def __init__(self, runtime: MpRuntime, lid: int):
        super().__init__(runtime, lid)
        self._slab_seq: dict = {}

    def __reduce__(self):
        # like MpRuntime: a captured location reference re-anchors to the
        # executing process's own location
        return (_resolve_location, ())

    # real transport: the simulated intra-node shortcut does not exist —
    # *every* same-node message already moves through shared memory
    def zero_copy_local(self, dest: int) -> bool:
        return False

    # -- point-to-point ----------------------------------------------------
    # async_rmi / bulk_set_range / combine_rmi / flush_combining are
    # inherited: they funnel into MpTransport.enqueue.

    def sync_rmi(self, dest: int, handle: int, method: str, *args):
        rt = self.runtime
        m = rt.machine
        self.stats.sync_rmi_sent += 1
        if self._combining:
            self.flush_combining(dest)
        size = 32 + estimate_size(args)
        if dest == self.id:
            rt.drain_available()  # source FIFO with pending self-sends
            self.clock += m.o_send + m.o_recv
            return rt._run_handler(rt.loc, handle, method, args, self.id)
        self.clock += m.o_send
        self.stats.bytes_sent += size
        self.stats.physical_messages += 2  # request + reply
        rt.req_sent += 1
        token = rt.new_token()
        fut = MpFuture(rt, token)
        rt._futures[token] = fut
        rt._put(dest, ("sync", self.id, token, handle, method,
                       rt._pack(args)))
        rt._service_until(lambda: fut.ready,
                          f"sync_rmi reply from location {dest} "
                          f"({method})")
        return fut.value

    def opaque_rmi(self, dest: int, handle: int, method: str, *args) -> MpFuture:
        rt = self.runtime
        m = rt.machine
        if self._combining:
            self.flush_combining(dest)
        size = 32 + estimate_size(args)
        self.stats.opaque_rmi_sent += 1
        self.clock += m.o_send
        self.stats.bytes_sent += size
        self.stats.physical_messages += 1
        rt.req_sent += 1
        token = rt.new_token()
        fut = MpFuture(rt, token)
        rt._futures[token] = fut
        if not rt._spawn_frames:
            # top-level split-phase request: os_fence must wait for it, so
            # count it outstanding until its reply (credit -1) arrives
            rt.outstanding += 1
            rt._reply_credit[token] = -1
        rt._put(dest, ("sync", self.id, token, handle, method,
                       rt._pack(args)))
        return fut

    # -- bulk transport ----------------------------------------------------
    def bulk_get_range(self, dest: int, handle: int, method: str, *args,
                       nelems: int = 0):
        rt = self.runtime
        m = rt.machine
        self.stats.bulk_rmi_sent += 1
        self.stats.bulk_elements_moved += nelems
        if self._combining:
            self.flush_combining(dest)
        size = 64 + estimate_size(args)
        if dest == self.id:
            rt.drain_available()
            self.clock += m.o_send + m.o_recv
            return rt._run_handler(rt.loc, handle, method, args, self.id)
        self.clock += m.o_send
        self.stats.bytes_sent += size
        self.stats.physical_messages += 2  # request + slab reply
        rt.req_sent += 1
        token = rt.new_token()
        fut = MpFuture(rt, token)
        rt._futures[token] = fut
        rt._put(dest, ("sync", self.id, token, handle, method,
                       rt._pack(args)))
        rt._service_until(lambda: fut.ready,
                          f"bulk slab reply from location {dest}")
        return fut.value

    def _slab_exchange(self, tag: str, per_dest, group: LocationGroup):
        """Common engine of bulk_exchange/bulk_gather: eager point-to-point
        slab sends (shared-memory backed) plus a parked-inbox collection —
        no coordinator in the data path.  ``per_dest(member)`` yields the
        payload for one destination."""
        rt = self.runtime
        seq = self._slab_seq.get((tag, group.key), 0)
        self._slab_seq[(tag, group.key)] = seq + 1
        key = (tag, group.key, seq)
        others = [m for m in group.members if m != self.id]
        for member in others:
            payload = per_dest(member)
            size = 64 + estimate_size(payload)
            self.clock += rt.machine.o_send
            self.stats.bulk_rmi_sent += 1
            self.stats.bytes_sent += size
            self.stats.physical_messages += 1
            rt._put(member, ("slab", key, self.id, rt._pack(payload)))
        rt._service_until(
            lambda: len(rt._slab_inbox.get(key, ())) == len(others),
            f"bulk slab exchange {key}")
        box = rt._slab_inbox.pop(key, {})
        return {m: unpack_payload(p) for m, p in box.items()}

    def bulk_exchange(self, slabs: list, group: LocationGroup | None = None,
                      nelems: int = 0) -> list:
        rt = self.runtime
        group = group or rt.world
        self.stats.bulk_elements_moved += nelems
        by_member = dict(zip(group.members, slabs))
        received = self._slab_exchange("x", lambda m: by_member[m], group)
        return [by_member[m] if m == self.id else received[m]
                for m in group.members]

    def bulk_gather(self, payload, group: LocationGroup | None = None,
                    nelems: int = 0) -> list:
        rt = self.runtime
        group = group or rt.world
        self.stats.bulk_elements_moved += nelems
        received = self._slab_exchange("g", lambda m: payload, group)
        return [payload if m == self.id else received[m]
                for m in group.members]

    # -- collectives -------------------------------------------------------
    def _gather_exchange(self, op: str, payload, group: LocationGroup) -> dict:
        """One collective round: every member's payload lands on every
        member (gather through the group's lowest-lid coordinator, scatter
        of the complete set back).  Returns {lid: payload}."""
        rt = self.runtime
        seq = self._coll_seq.get(group.key, 0)
        self._coll_seq[group.key] = seq + 1
        self.stats.collectives += 1
        self.clock += rt.machine.collective_cost(len(group))
        if len(group) == 1:
            return {self.id: payload}
        key = (group.key, seq)
        coord = group.members[0]
        if self.id == coord:
            box = rt._coll_gather.setdefault(key, {})
            box[self.id] = (op, payload)
            rt._service_until(
                lambda: len(rt._coll_gather.get(key, ())) == len(group),
                f"collective '{op}' on {group}")
            box = rt._coll_gather.pop(key)
            ops = {o for o, _ in box.values()}
            if len(ops) != 1:
                raise SpmdError(
                    f"collective mismatch on {group}: {sorted(ops)} "
                    "called concurrently")
            arrived = {lid: p for lid, (o, p) in box.items()}
            for member in group.members[1:]:
                rt._put(member, ("collres", key, arrived))
            return arrived
        rt._put(coord, ("coll", key, op, self.id, payload))
        rt._service_until(lambda: key in rt._coll_results,
                          f"collective '{op}' result on {group}")
        return rt._coll_results.pop(key)

    def _collective(self, op: str, payload, group: LocationGroup | None):
        rt = self.runtime
        group = group or rt.world
        if self.id not in group:
            raise SpmdError(f"location {self.id} not in {group}")
        if rt._exec_depth:
            raise SpmdError(
                f"location {self.id}: collective '{op}' invoked inside an "
                "RMI handler; handlers must not block")
        members = group.members
        if op == "fence":  # pragma: no cover - rmi_fence overrides
            rt.fence(self, group)
            return None
        if op == "barrier":
            self._gather_exchange("barrier", None, group)
            return None
        if op == "register":
            proposed = rt._next_handle
            arrived = self._gather_exchange("register", proposed, group)
            if len(set(arrived.values())) != 1:
                raise SpmdError(
                    "p_object registration diverged across processes "
                    f"(proposed handles {sorted(set(arrived.values()))}); "
                    "the multiprocessing backend requires registrations "
                    "in one collective program order")
            rt.registry[proposed] = payload
            rt._next_handle = proposed + 1
            return proposed
        if op == "unregister":
            arrived = self._gather_exchange("unregister", payload, group)
            if len(set(arrived.values())) != 1:
                raise SpmdError(
                    f"unregister called with differing handles "
                    f"{sorted(set(arrived.values()))}")
            rt.registry.pop(payload, None)
            return None
        # value-bearing collectives: exchange raw values, apply the shared
        # member-side math locally — reduction callables never cross a
        # process boundary
        if op == "allreduce":
            value, op_fn = payload
            arrived = self._gather_exchange(op, value, group)
            arrived = {i: (v, op_fn) for i, v in arrived.items()}
        elif op == "scan":
            value, op_fn, exclusive = payload
            arrived = self._gather_exchange(op, value, group)
            arrived = {i: (v, op_fn, exclusive) for i, v in arrived.items()}
        elif op == "broadcast":
            root, value = payload
            arrived = self._gather_exchange(
                op, (root, value if self.id == root else None), group)
        elif op in ("allgather", "alltoall"):
            arrived = self._gather_exchange(op, payload, group)
        else:
            raise SpmdError(f"unknown collective {op!r}")
        return collective_results(op, arrived, members)[self.id]

    def rmi_fence(self, group: LocationGroup | None = None) -> None:
        rt = self.runtime
        group = group or rt.world
        if self.id not in group:
            raise SpmdError(f"location {self.id} not in {group}")
        if rt._exec_depth:
            raise SpmdError(
                f"location {self.id}: collective 'fence' invoked inside an "
                "RMI handler; handlers must not block")
        self.stats.fences += 1
        self.flush_combining()
        rt.fence(self, group)

    def os_fence(self) -> None:
        rt = self.runtime
        self.flush_combining()
        rt._service_until(lambda: rt.outstanding <= 0,
                          "os_fence (one-sided quiescence of originated "
                          "RMIs)")

    # -- progress / task-graph hooks ---------------------------------------
    def poll(self) -> int:
        return self.runtime.drain_available()

    def task_yield(self, drain: bool = True) -> int:
        rt = self.runtime
        if rt._exec_depth:
            raise SpmdError(
                f"location {self.id}: task_yield inside an RMI handler")
        n = rt.drain_available()
        if n == 0:
            # block briefly for an incoming message: this is the real
            # backend's analogue of handing the baton to the conductor
            if rt._service_one(block=True, timeout=rt.yield_timeout):
                n += 1
        if drain:
            n += rt.drain_available()
        return n


# ---------------------------------------------------------------------------
# Process orchestration
# ---------------------------------------------------------------------------


def _worker_main(lid, nlocs, machine, placement, queues, result_q, fn, args,
                 toggles, run_id, op_timeout):
    # re-apply the parent's toggle snapshot: inherited state under fork,
    # but explicit application keeps semantics under any start method and
    # guards against toggles mutated between runtime import and launch
    apply_toggles(toggles)
    global _CURRENT_RUNTIME
    rt = MpRuntime(lid, nlocs, machine, placement, queues, run_id,
                   op_timeout=op_timeout)
    _CURRENT_RUNTIME = rt
    t0 = time.perf_counter()
    result, err = None, None
    try:
        result = rt.run_local(fn, args)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        err = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
    wall = time.perf_counter() - t0
    try:
        pickle.dumps(result)
    except Exception as exc:
        result, err = None, (f"location {lid} returned an unpicklable "
                             f"result: {exc}")
    try:
        result_q.put((lid, result, err, rt.loc.stats, rt.loc.clock, wall))
    except Exception as exc:  # pragma: no cover - defensive
        result_q.put((lid, None, f"result delivery failed: {exc}",
                      rt.loc.stats, rt.loc.clock, wall))
    # keep servicing peers (sync replies, collective gathers) until the
    # parent has collected every result: a location must not vanish while
    # stragglers still depend on it
    deadline = time.monotonic() + op_timeout
    while not rt._stopped and time.monotonic() < deadline:
        rt._service_one(block=True, timeout=0.05)


def _cleanup_shm(run_id: str) -> None:
    for path in glob.glob(f"/dev/shm/rs{run_id}_*"):
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced with a reader
            pass


def mp_spmd_run_detailed(fn, nlocs: int = 4, machine="smp", args: tuple = (),
                         placement: str = "packed",
                         timeout: float | None = None,
                         op_timeout: float | None = None) -> SpmdReport:
    """Run ``fn(ctx, *args)`` with one forked OS process per location.

    ``timeout`` caps the whole run's wall clock (default
    ``REPRO_MP_RUN_TIMEOUT``/300 s): on expiry every worker is terminated
    and an :class:`SpmdError` is raised — a deadlocked fence fails fast
    instead of hanging the runner.  ``op_timeout`` caps each worker-side
    blocking wait (default ``REPRO_MP_TIMEOUT``/60 s).
    """
    if nlocs < 1:
        raise ValueError("need at least one location")
    if "fork" not in multiprocessing.get_all_start_methods():
        raise SpmdError(
            "multiprocessing backend requires the fork start method "
            "(POSIX); use the simulated backend on this platform")
    ctx = multiprocessing.get_context("fork")
    run_timeout = timeout if timeout is not None else _RUN_TIMEOUT
    worker_timeout = op_timeout if op_timeout is not None else \
        min(_OP_TIMEOUT, run_timeout)
    run_id = uuid.uuid4().hex[:8]
    queues = [ctx.Queue() for _ in range(nlocs)]
    result_q = ctx.Queue()
    toggles = snapshot_toggles()
    procs = []
    for lid in range(nlocs):
        p = ctx.Process(
            target=_worker_main,
            args=(lid, nlocs, machine, placement, queues, result_q, fn,
                  args, toggles, run_id, worker_timeout),
            name=f"repro-loc-{lid}", daemon=True)
        procs.append(p)
    t0 = time.perf_counter()
    for p in procs:
        p.start()
    collected: dict[int, tuple] = {}
    stop_sent = False

    def _stop_all():
        nonlocal stop_sent
        if not stop_sent:
            for q in queues:
                try:
                    q.put(("stop",))
                except Exception:  # pragma: no cover - defensive
                    pass
            stop_sent = True

    try:
        deadline = time.monotonic() + run_timeout
        while len(collected) < nlocs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = sorted(set(range(nlocs)) - set(collected))
                raise SpmdError(
                    f"multiprocessing run exceeded {run_timeout:.0f}s; "
                    f"locations {missing} never returned — deadlock or "
                    "worker crash")
            try:
                item = result_q.get(timeout=min(0.2, remaining))
            except queue_mod.Empty:
                dead = [p for p in procs if not p.is_alive()
                        and procs.index(p) not in collected]
                if dead:
                    missing = sorted(set(range(nlocs)) - set(collected))
                    raise SpmdError(
                        f"worker process(es) for locations {missing} died "
                        "without reporting a result")
                continue
            collected[item[0]] = item
            if item[2] is not None:
                # first failure: unblock the other workers so they report
                # promptly instead of waiting out their op timeouts
                _stop_all()
    finally:
        _stop_all()
        grace = time.monotonic() + 5.0
        for p in procs:
            p.join(timeout=max(0.1, grace - time.monotonic()))
        for p in procs:
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
                p.join(timeout=5.0)
        for q in [*queues, result_q]:
            q.cancel_join_thread()
            q.close()
        _cleanup_shm(run_id)
    wall = time.perf_counter() - t0
    ordered = [collected[lid] for lid in range(nlocs)]
    errors = [(lid, err) for lid, _, err, _, _, _ in ordered
              if err is not None]
    if errors:
        primary = next((e for e in errors if "run aborted while" not in e[1]),
                       errors[0])
        raise SpmdError(
            f"location {primary[0]} failed under the multiprocessing "
            f"backend: {primary[1]}")
    return SpmdReport(
        [res for _, res, _, _, _, _ in ordered],
        clocks=[clock for _, _, _, _, clock, _ in ordered],
        stats=RunStats([st for _, _, _, st, _, _ in ordered]),
        wall_seconds=wall,
        backend="multiprocessing")


def mp_spmd_run(fn, nlocs: int = 4, machine="smp", args: tuple = (),
                placement: str = "packed", timeout: float | None = None,
                op_timeout: float | None = None) -> list:
    """Process-per-location :func:`~repro.runtime.scheduler.spmd_run`."""
    return mp_spmd_run_detailed(fn, nlocs=nlocs, machine=machine, args=args,
                                placement=placement, timeout=timeout,
                                op_timeout=op_timeout).results


__all__ = ["MpFuture", "MpLocation", "MpRuntime", "MpTransport", "ShmSlab",
           "mp_spmd_run", "mp_spmd_run_detailed", "pack_payload",
           "unpack_payload"]
