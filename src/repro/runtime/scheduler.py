"""Deterministic SPMD scheduler: locations, RMI primitives, collectives.

A *location* (Ch. III.B) is "a component of a parallel machine that has a
contiguous address space and associated execution capabilities".  Each
location runs the user's SPMD function on its own Python thread, but a single
baton guarantees exactly one thread executes at a time, so runs are fully
deterministic and data-race free; parallelism is *modelled* by per-location
virtual clocks (see :mod:`repro.runtime.machine`).

Blocking points are exactly the collective operations (fence, barrier,
reduction, broadcast, registration).  Everything else — including sync RMIs,
which execute the handler directly against the target representative while
charging round-trip time — runs to completion without a context switch.

Mixed-mode execution (Ch. III.B "communication ... through shared memory
within a node and message passing across nodes"): with the zero-copy fast
path enabled (:func:`repro.runtime.comm.set_zero_copy`), RMIs between
locations sharing a node skip marshaling and message charges entirely and
run directly against the destination representative under ``t_lock``;
collectives always run as two-level (intra-node, then inter-node) trees; and
bulk slabs/combining buffers bound for several locations on one remote node
coalesce into a single inter-node message scattered by a node leader.

Task-graph execution (the PARAGRAPH engine of
:mod:`repro.algorithms.prange`) adds one non-collective blocking point:
``task_yield`` hands the baton back to the conductor without a rendezvous,
so a location whose local tasks are all blocked on cross-location data-flow
edges lets producers elsewhere run, then drains the "dependence satisfied"
RMIs they sent.  ``count_task`` plus the per-location ``rmi_executed``
counters feed the executor's distributed deadlock detection (a group
where neither moves across a full conductor round is stuck).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .comm import (
    Message,
    Network,
    combining_enabled,
    combining_window,
    current_backend,
    estimate_size,
    zero_copy_enabled,
)
from .future import Future
from .machine import get_machine
from .stats import LocationStats, RunStats

_READY = "ready"
_WAITING = "waiting"
_DONE = "done"
_FAILED = "failed"

#: watchdog for a single baton hold; generous, only trips on a genuine hang.
_BATON_TIMEOUT = 900.0


class SpmdError(RuntimeError):
    """Raised for SPMD protocol violations (mismatched collectives, etc.)."""


class _Abort(BaseException):
    """Internal: unwinds location threads after another location failed."""


class LocationGroup:
    """An ordered set of locations forming a communication group (Ch. III.B).

    All RMI collectives are defined within a group, which is what enables
    nested parallelism: a nested pContainer can live on a sub-group and run
    its own fences/reductions without involving outside locations.

    Groups form a hierarchy.  :meth:`subgroup` carves an ordered sub-team
    out of an existing group without communication; :meth:`split` is the
    collective colour/key partition (the ``MPI_Comm_split`` idiom).  Member
    order is significant — it defines the group-relative ranks used by the
    rank-ordered collectives (allgather / alltoall / scan) — and the member
    tuple doubles as the rendezvous ``key``, so differently-ordered teams
    over the same locations never share a collective sequence space.
    """

    __slots__ = ("members", "key", "parent")

    def __init__(self, members, *, parent: "LocationGroup | None" = None,
                 ordered: bool = False):
        members = tuple(members)
        if not ordered:
            members = tuple(sorted(set(members)))
        elif len(set(members)) != len(members):
            raise ValueError(f"duplicate members in ordered group {members}")
        if not members:
            raise ValueError("a location group needs at least one member")
        self.members = members
        self.key = self.members
        self.parent = parent

    def __len__(self):
        return len(self.members)

    def __contains__(self, lid):
        return lid in set(self.members)

    def index_of(self, lid: int) -> int:
        return self.members.index(lid)

    # -- group-relative rank arithmetic ---------------------------------
    def rank_of(self, lid: int) -> int:
        """Group-relative rank of world location ``lid``."""
        try:
            return self.members.index(lid)
        except ValueError:
            raise ValueError(f"location {lid} not a member of {self}") from None

    def lid_of(self, rank: int) -> int:
        """World location id of group-relative ``rank``."""
        if not 0 <= rank < len(self.members):
            raise ValueError(f"rank {rank} outside {self}")
        return self.members[rank]

    # -- hierarchy -------------------------------------------------------
    def subgroup(self, members) -> "LocationGroup":
        """Carve an ordered sub-team out of this group (no communication).

        ``members`` are world location ids, each of which must belong to
        this group; their order becomes the subgroup's rank order.  Every
        member of the new group must construct it with the same member
        sequence (it is the collective rendezvous key)."""
        members = tuple(members)
        mine = set(self.members)
        for lid in members:
            if lid not in mine:
                raise ValueError(f"location {lid} not a member of {self}")
        return LocationGroup(members, parent=self, ordered=True)

    def split(self, ctx, color, key: int = 0) -> "LocationGroup | None":
        """Collective colour/key partition over this group.

        Every member must call (it allgathers over the group): members that
        passed the same ``color`` form one subgroup, rank-ordered by
        ``(key, lid)``; passing ``color=None`` opts out of every subgroup
        and returns ``None`` (the ``MPI_UNDEFINED`` idiom)."""
        arrived = ctx.allgather_rmi((color, key), group=self)
        if color is None:
            return None
        mine = sorted((k, lid) for (c, k), lid in zip(arrived, self.members)
                      if c == color)
        return LocationGroup([lid for _, lid in mine], parent=self,
                             ordered=True)

    def __repr__(self):
        return f"LocationGroup{self.members}"


def collective_results(op: str, arrived: dict, members) -> dict:
    """Member-side math of the value-bearing collectives, shared by both
    execution backends: given every member's payload (``arrived`` maps lid
    -> payload, in the per-op shape documented on the Location methods),
    return the per-member results.  The simulated conductor calls this at
    rendezvous completion; the multiprocessing backend calls it on every
    member after its gather/scatter engine delivers the full payload set —
    one implementation, so the real backend cannot drift from the oracle.

    Handles ``allreduce`` / ``broadcast`` / ``allgather`` / ``alltoall`` /
    ``scan``.  ``fence`` / ``barrier`` / ``register`` / ``unregister``
    touch backend state and stay with their backend's engine.
    """
    members = tuple(members)
    if op == "allreduce":
        ordered = [arrived[i] for i in members]
        op_fn = ordered[0][1]
        acc = ordered[0][0]
        for val, _ in ordered[1:]:
            acc = (acc + val) if op_fn is None else op_fn(acc, val)
        return {i: acc for i in members}
    if op == "broadcast":
        root, value = None, None
        for i in members:
            r, v = arrived[i]
            if i == r:
                root, value = r, v
        if root is None:
            raise SpmdError("broadcast: root did not participate")
        return {i: value for i in members}
    if op == "allgather":
        gathered = [arrived[i] for i in members]
        return {i: list(gathered) for i in members}
    if op == "alltoall":
        n = len(members)
        for i in members:
            if len(arrived[i]) != n:
                raise SpmdError(
                    f"alltoall: location {i} passed {len(arrived[i])} "
                    f"values for a group of {n}")
        results = {}
        for idx, i in enumerate(members):
            results[i] = [arrived[j][idx] for j in members]
        return results
    if op == "scan":
        op_fn = arrived[members[0]][1]
        exclusive = arrived[members[0]][2]
        vals = [arrived[i][0] for i in members]
        results = {}
        acc = None
        for idx, i in enumerate(members):
            if exclusive:
                results[i] = acc
            if acc is None:
                acc = vals[idx]
            else:
                acc = (acc + vals[idx]) if op_fn is None else op_fn(acc, vals[idx])
            if not exclusive:
                results[i] = acc
        total = acc
        return {i: (results[i], total) for i in members}
    raise SpmdError(f"unknown collective {op!r}")


class _Rendezvous:
    """One in-flight collective operation over a group."""

    __slots__ = ("key", "op", "members", "arrived", "finisher", "results")

    def __init__(self, key, op, members, finisher):
        self.key = key
        self.op = op
        self.members = members
        self.arrived: dict[int, object] = {}
        self.finisher = finisher
        self.results: dict[int, object] = {}

    def complete(self) -> bool:
        return len(self.arrived) == len(self.members)


class Location:
    """Execution context handed to the SPMD program (one per location)."""

    def __init__(self, runtime: "Runtime", lid: int):
        self.runtime = runtime
        self.id = lid
        self.clock = 0.0
        self.stats = LocationStats()
        self.result = None
        self.error = None
        self.state = _READY
        self._resume = threading.Event()
        self._waiting_on: _Rendezvous | None = None
        self._coll_payload = None
        self._coll_result = None
        self._coll_seq: dict[tuple, int] = {}
        self._thread: threading.Thread | None = None
        #: per-destination combining buffers of (handle, method, args)
        #: records — one buffer per channel, like ARMI's aggregation
        #: buffers, so issue order across p_objects is preserved and
        #: interleaved streams to different containers still batch
        self._combining: dict[int, list] = {}
        #: PARAGRAPHs currently executing on this location, outermost
        #: first — a task of the top graph may spawn and drain an inner
        #: graph (nested parallelism, Ch. IV.C); depth > 1 means nested
        self._paragraph_stack: list = []

    # -- identity ------------------------------------------------------
    @property
    def nlocs(self) -> int:
        return self.runtime.nlocs

    def get_location_id(self) -> int:
        return self.id

    def get_num_locations(self) -> int:
        return self.runtime.nlocs

    @property
    def machine(self):
        return self.runtime.machine

    def __repr__(self):
        return f"Location({self.id}/{self.runtime.nlocs})"

    # -- virtual time ----------------------------------------------------
    def charge(self, us: float) -> None:
        """Advance this location's virtual clock by ``us`` microseconds."""
        self.clock += us

    def charge_access(self, n: int = 1) -> None:
        self.clock += self.runtime.machine.t_access * n

    def charge_lookup(self, n: int = 1) -> None:
        self.clock += self.runtime.machine.t_lookup * n
        self.stats.lookups_charged += n

    def charge_lock(self, n: int = 1) -> None:
        self.clock += self.runtime.machine.t_lock * n
        self.stats.lock_acquires += n

    def start_timer(self) -> float:
        """Paper idiom ``stapl::start_timer`` — returns the virtual clock."""
        return self.clock

    def stop_timer(self, t0: float) -> float:
        """Elapsed virtual microseconds since ``t0``."""
        return self.clock - t0

    # -- zero-copy intra-node fast path -----------------------------------
    # Mixed-mode shared memory (BCL-style direct local access): an RMI whose
    # destination shares this location's node needs no marshaling and no
    # physical message — the handler runs directly against the destination
    # representative, guarded by one t_lock acquire.  The skipped wire bytes
    # are tracked in ``bytes_avoided`` so ablations can compare fast path
    # vs. message path head-to-head.

    def zero_copy_local(self, dest: int) -> bool:
        """Does ``dest`` qualify for the zero-copy intra-node fast path?"""
        rt = self.runtime
        return (zero_copy_enabled() and dest != self.id
                and rt.machine.same_node(self.id, dest, rt.nlocs, rt.placement))

    def _zero_copy_execute(self, dest: int, handle: int, method: str, args,
                           size: int):
        """Execute one RMI against the destination representative directly.
        Returns (result, destination location).  Source-FIFO order with any
        traffic still buffered on this channel is preserved by draining the
        channel first."""
        rt = self.runtime
        if rt.network.has_pending(self.id, dest):
            rt.flush_channel(self.id, dest)
        self.charge_lock()  # t_lock guards the direct bContainer access
        self.stats.local_node_invocations += 1
        self.stats.bytes_avoided += size
        dst_loc = rt.locations[dest]
        if dst_loc.clock < self.clock:
            dst_loc.clock = self.clock
        result = rt._run_handler(dst_loc, handle, method, args,
                                 rt.current_origin)
        return result, dst_loc

    # -- point-to-point RMI ---------------------------------------------
    def async_rmi(self, dest: int, handle: int, method: str, *args) -> None:
        """Fire-and-forget remote method invocation (no return value).

        Completion is guaranteed only by a subsequent fence, or by a sync /
        split-phase method to the same destination from this location
        (source FIFO ordering), per Ch. VII.B.  Intra-node destinations take
        the zero-copy fast path when enabled: the op completes eagerly with
        no message charged.
        """
        rt = self.runtime
        m = rt.machine
        if self._combining:
            self.flush_combining(dest)
        size = 32 + estimate_size(args)
        self.stats.async_rmi_sent += 1
        if self.zero_copy_local(dest):
            self._zero_copy_execute(dest, handle, method, args, size)
            return
        self.clock += m.o_send
        self.stats.bytes_sent += size
        msg = Message(self.id, dest, handle, method, args, size, self.clock,
                      rt.current_origin)
        if rt.network.enqueue(msg):
            self.clock += m.msg_overhead
            self.stats.physical_messages += 1

    def sync_rmi(self, dest: int, handle: int, method: str, *args):
        """Blocking RMI: returns the method's result; costs a round trip."""
        rt = self.runtime
        m = rt.machine
        self.stats.sync_rmi_sent += 1
        # Source FIFO: buffered combined ops, then pending asyncs to
        # `dest` execute first.
        if self._combining:
            self.flush_combining(dest)
        rt.flush_channel(self.id, dest)
        size = 32 + estimate_size(args)
        if self.zero_copy_local(dest):
            # shared-memory round trip: no request/reply serialization
            result, dst_loc = self._zero_copy_execute(
                dest, handle, method, args, size)
            self.stats.bytes_avoided += 32 + estimate_size(result)
            self.clock = dst_loc.clock
            return result
        self.clock += m.o_send
        self.stats.bytes_sent += size
        dst_loc = rt.locations[dest]
        if dest != self.id:
            # a blocking RMI cannot be aggregated: request + reply each
            # occupy one physical message
            self.stats.physical_messages += 2
            lat = m.latency(self.id, dest, rt.nlocs, rt.placement)
            bc = m.byte_cost(self.id, dest, rt.nlocs, rt.placement)
            arrival = self.clock + lat + size * bc
            if dst_loc.clock < arrival:
                dst_loc.clock = arrival
            dst_loc.clock += m.o_recv
            result = rt._run_handler(dst_loc, handle, method, args, self.id)
            rsize = 32 + estimate_size(result)
            dst_loc.stats.bytes_sent += rsize  # the reply is traffic too
            self.clock = dst_loc.clock + lat + rsize * bc + m.o_recv
        else:
            self.clock += m.o_recv
            result = rt._run_handler(dst_loc, handle, method, args, self.id)
        return result

    def opaque_rmi(self, dest: int, handle: int, method: str, *args) -> Future:
        """Split-phase RMI: returns a :class:`Future` immediately."""
        rt = self.runtime
        m = rt.machine
        if self._combining:
            self.flush_combining(dest)
        size = 32 + estimate_size(args)
        self.stats.opaque_rmi_sent += 1
        if self.zero_copy_local(dest):
            result, dst_loc = self._zero_copy_execute(
                dest, handle, method, args, size)
            self.stats.bytes_avoided += 32 + estimate_size(result)
            fut = Future(rt, self.id, dest)
            fut._resolve(result, dst_loc.clock)
            return fut
        self.clock += m.o_send
        self.stats.bytes_sent += size
        fut = Future(rt, self.id, dest)
        msg = Message(self.id, dest, handle, method, args, size, self.clock,
                      rt.current_origin, future=fut)
        if rt.network.enqueue(msg):
            self.clock += m.msg_overhead
            self.stats.physical_messages += 1
        return fut

    def poll(self) -> int:
        """Execute all buffered RMIs destined to this location; returns the
        number executed (the RTS's incoming-request processing point)."""
        return self.runtime.drain_to(self.id)

    # -- task-graph executor hooks ----------------------------------------
    # The dependence-driven executor (repro.algorithms.prange) runs local
    # tasks until they block on a data-flow edge from another location,
    # then calls ``task_yield`` so producers elsewhere can run and their
    # "dependence satisfied" RMIs can be drained.

    def count_task(self, n: int = 1) -> None:
        """Record ``n`` executed task-graph tasks.  Together with
        ``rmi_executed`` this is what the executor's deadlock detection
        watches: a location group where neither moves across a full
        conductor round is stuck."""
        self.stats.tasks_executed += n

    def task_yield(self, drain: bool = True) -> int:
        """Cooperatively hand the baton back to the conductor so every
        other ready location gets a turn, then execute RMIs that arrived
        for this location (all of them by default; ``drain=False`` lets
        the caller drain incrementally instead).  Returns the number of
        RMIs executed.

        This is the executor's blocked-task progress point: unlike a
        collective it involves no rendezvous — the location stays runnable
        and resumes on the conductor's next pass."""
        rt = self.runtime
        if rt._exec_depth:
            raise SpmdError(
                f"location {self.id}: task_yield inside an RMI handler")
        if rt.nlocs > 1:
            rt._yield_to_conductor(self)
        return self.poll() if drain else 0

    # -- bulk transport ---------------------------------------------------
    # Aggregation taken to its logical end (Ch. III.B): instead of batching
    # scalar RMIs ``aggregation`` at a time, ship a whole element range as
    # one slab.  One physical message per (src, dst) pair, payload bytes
    # charged once, per-RMI sender overhead paid once.

    def bulk_set_range(self, dest: int, handle: int, method: str, *args,
                       nelems: int = 0) -> None:
        """Fire-and-forget slab push: like :meth:`async_rmi` but the whole
        payload travels in a single physical message.  Source-FIFO ordering
        with scalar RMIs on the same channel is preserved (the slab enters
        the same per-(src, dst) queue)."""
        rt = self.runtime
        m = rt.machine
        if self._combining:
            self.flush_combining(dest)
        size = 64 + estimate_size(args)
        self.stats.bulk_rmi_sent += 1
        self.stats.bulk_elements_moved += nelems
        if self.zero_copy_local(dest):
            # whole slab lands in the destination bContainer with no
            # serialization: payload bytes never hit the wire
            self._zero_copy_execute(dest, handle, method, args, size)
            return
        self.clock += m.o_send
        self.stats.bytes_sent += size
        msg = Message(self.id, dest, handle, method, args, size, self.clock,
                      rt.current_origin, bulk=True)
        if rt.network.enqueue(msg):
            self.clock += m.msg_overhead
            self.stats.physical_messages += 1

    def bulk_get_range(self, dest: int, handle: int, method: str, *args,
                       nelems: int = 0):
        """Blocking slab fetch: one request message out, one slab reply
        back.  Pending asyncs to ``dest`` execute first (source FIFO)."""
        rt = self.runtime
        m = rt.machine
        self.stats.bulk_rmi_sent += 1
        self.stats.bulk_elements_moved += nelems
        if self._combining:
            self.flush_combining(dest)
        rt.flush_channel(self.id, dest)
        size = 64 + estimate_size(args)
        if self.zero_copy_local(dest):
            result, dst_loc = self._zero_copy_execute(
                dest, handle, method, args, size)
            self.stats.bytes_avoided += 64 + estimate_size(result)
            self.clock = dst_loc.clock
            return result
        self.clock += m.o_send
        self.stats.bytes_sent += size
        dst_loc = rt.locations[dest]
        if dest != self.id:
            self.stats.physical_messages += 2  # request + slab reply
            lat = m.latency(self.id, dest, rt.nlocs, rt.placement)
            bc = m.byte_cost(self.id, dest, rt.nlocs, rt.placement)
            arrival = self.clock + lat + size * bc
            if dst_loc.clock < arrival:
                dst_loc.clock = arrival
            dst_loc.clock += m.o_recv
            result = rt._run_handler(dst_loc, handle, method, args, self.id)
            rsize = 64 + estimate_size(result)
            dst_loc.stats.bytes_sent += rsize  # slab reply, charged to replier
            self.clock = dst_loc.clock + lat + rsize * bc + m.o_recv
        else:
            self.clock += m.o_recv
            result = rt._run_handler(dst_loc, handle, method, args, self.id)
        return result

    def bulk_exchange(self, slabs: list, group: "LocationGroup | None" = None,
                      nelems: int = 0) -> list:
        """Personalised all-to-all of per-destination slabs: ``slabs[i]``
        goes to the i-th group member; returns the slabs received, in group
        order — the coarse-grained exchange underlying redistribution
        (Ch. V.G).

        Node-aware slab routing: slabs destined for several locations on one
        *remote* node coalesce into a single inter-node message carrying
        their combined payload; the lowest-numbered destination on that node
        (the node leader) scatters the other slabs over cheap intra-node
        messages.  Same-node destinations pay intra-node rates, or nothing
        beyond ``t_lock`` when the zero-copy fast path is on.  With one
        location per node this degenerates to the classic one physical
        message per non-empty (src, dst) pair, payload bytes charged once."""
        rt = self.runtime
        m = rt.machine
        group = group or rt.world
        self.stats.bulk_elements_moved += nelems
        my_node = m.node_of(self.id, rt.nlocs, rt.placement)
        by_node: dict[int, list] = {}
        for member, payload in zip(group.members, slabs):
            if member == self.id:
                continue
            empty = payload is None or (hasattr(payload, "__len__")
                                        and len(payload) == 0)
            if empty:
                continue
            node = m.node_of(member, rt.nlocs, rt.placement)
            by_node.setdefault(node, []).append(
                (member, 64 + estimate_size(payload)))
        for node in sorted(by_node):
            targets = by_node[node]
            if node == my_node:
                for member, size in targets:
                    if self.zero_copy_local(member):
                        self.charge_lock()
                        self.stats.local_node_invocations += 1
                        self.stats.bytes_avoided += size
                        continue
                    self.clock += (m.o_send + m.msg_overhead
                                   + size * m.byte_intra)
                    self.stats.bulk_rmi_sent += 1
                    self.stats.bytes_sent += size
                    self.stats.physical_messages += 1
                continue
            if len(targets) == 1:
                member, size = targets[0]
                self.clock += m.o_send + m.msg_overhead + size * m.byte_inter
                self.stats.bulk_rmi_sent += 1
                self.stats.bytes_sent += size
                self.stats.physical_messages += 1
                continue
            # several destinations on one remote node: one coalesced
            # inter-node message to the node leader ...
            total = sum(size for _, size in targets)
            leader = rt.locations[min(member for member, _ in targets)]
            self.clock += m.o_send + m.msg_overhead + total * m.byte_inter
            self.stats.bulk_rmi_sent += 1
            self.stats.bytes_sent += total
            self.stats.physical_messages += 1
            self.stats.coalesced_messages += 1
            # ... which the leader scatters intra-node after it arrives.
            # The scatter is a shared-memory handoff (the slabs land in a
            # node-shared buffer the siblings read under t_lock), not
            # another round of physical messages.
            arrival = self.clock + m.latency_inter
            if leader.clock < arrival:
                leader.clock = arrival
            for member, size in targets:
                if member == leader.id:
                    continue
                leader.clock += m.t_lock + size * m.byte_intra
                leader.stats.lock_acquires += 1
        return self.alltoall_rmi(slabs, group)

    def bulk_gather(self, payload, group: "LocationGroup | None" = None,
                    nelems: int = 0) -> list:
        """Allgather of per-location slabs: every member receives the
        payloads in group order.  A non-empty payload costs one physical
        message per (src, dst) pair with its bytes charged once — the
        batched gather under ``to_dict``/``sorted_items``/``to_list``."""
        rt = self.runtime
        m = rt.machine
        group = group or rt.world
        self.stats.bulk_elements_moved += nelems
        empty = payload is None or (hasattr(payload, "__len__")
                                    and len(payload) == 0)
        if not empty:
            size = 64 + estimate_size(payload)
            for member in group.members:
                if member == self.id:
                    continue
                if self.zero_copy_local(member):
                    # same-node reader maps the slab directly: no wire bytes
                    self.charge_lock()
                    self.stats.local_node_invocations += 1
                    self.stats.bytes_avoided += size
                    continue
                bc = m.byte_cost(self.id, member, rt.nlocs, rt.placement)
                self.clock += m.o_send + m.msg_overhead + size * bc
                self.stats.bulk_rmi_sent += 1
                self.stats.bytes_sent += size
                self.stats.physical_messages += 1
        return self.allgather_rmi(payload, group)

    # -- combining buffers -------------------------------------------------
    # The second Ch. III.B technique: asynchronous op records destined to
    # the same (destination, p_object) are buffered locally and replayed by
    # the destination's ``_apply_combined`` handler from one bulk message.

    def combine_rmi(self, dest: int, handle: int, method: str,
                    *args) -> bool:
        """Append one async op record to the per-``dest`` combining
        buffer; returns False — having done nothing — when the op cannot
        be combined (combining disabled, self-targeted, or issued from
        inside an RMI handler, where buffering would let a forwarded
        continuation escape fence quiescence).  The caller then falls back
        to :meth:`async_rmi`.

        Buffered records flush, in append order, at the combining-window
        boundary, at a fence, before any other RMI to the same destination
        (preserving source-FIFO order with scalar RMIs on the channel), or
        on an explicit :meth:`flush_combining`.

        Destinations reachable over the zero-copy intra-node fast path are
        not buffered either (returns False): combining exists to cut
        message count, and a fast-path op produces no message — executing
        it directly is cheaper than buffering and replaying it."""
        rt = self.runtime
        if (not combining_enabled() or dest == self.id or rt._exec_depth
                or self.zero_copy_local(dest)):
            return False
        buf = self._combining.get(dest)
        if buf is None:
            buf = self._combining[dest] = []
        buf.append((handle, method, args))
        # local append: cheap compared to marshaling a full RMI
        self.clock += rt.machine.o_send * 0.25
        self.stats.combined_ops += 1
        if len(buf) >= combining_window():
            self._flush_combining_buffer(dest)
        return True

    def flush_combining(self, dest: int | None = None,
                        handle: int | None = None,
                        coalesce: bool = False) -> int:
        """Flush combining buffers — all of them, or only those to ``dest``
        and/or containing records for ``handle`` (a buffer always flushes
        whole, preserving the channel's issue order).  Returns the number
        of op records shipped.  Flushing moves records into the FIFO
        channels as bulk messages; it does not execute them (a fence or
        drain does).

        ``coalesce`` enables node-aware routing for a flush-all: buffers
        destined for several locations on one remote node travel as one
        inter-node message that the node leader scatters intra-node.  Only
        the fence paths pass it — a coalesced buffer reaches its
        destination through the leader's channel, so it is only
        source-FIFO-safe when the flush is immediately followed by a drain
        to quiescence (rmi_fence / os_fence)."""
        if not self._combining:
            return 0
        dests = [d for d, buf in self._combining.items()
                 if (dest is None or d == dest)
                 and (handle is None or any(r[0] == handle for r in buf))]
        if coalesce and dest is None and handle is None and len(dests) > 1:
            return self._flush_combining_coalesced(dests)
        n = 0
        for d in dests:
            n += self._flush_combining_buffer(d)
        return n

    def _flush_combining_buffer(self, dest: int) -> int:
        records = self._combining.pop(dest, None)
        if not records:
            return 0
        rt = self.runtime
        m = rt.machine
        size = 64 + estimate_size(records)
        self.stats.combining_flushes += 1
        if self.zero_copy_local(dest):
            # replay the whole buffer directly against the destination:
            # one lock acquire, no message, no serialized bytes
            self._zero_copy_execute(dest, records[0][0], "_apply_combined",
                                    (records,), size)
            return len(records)
        self.clock += m.o_send
        self.stats.bytes_sent += size
        # the message routes through the first record's p_object; its
        # _apply_combined handler re-routes each record by handle.  Records
        # are only buffered outside handlers, so the originating location
        # is always this one (never a forwarded origin).
        msg = Message(self.id, dest, records[0][0], "_apply_combined",
                      (records,), size, self.clock, self.id, bulk=True)
        if rt.network.enqueue(msg):
            self.clock += m.msg_overhead
            self.stats.physical_messages += 1
        return len(records)

    def _flush_combining_coalesced(self, dests: list) -> int:
        """Flush-all with node-aware routing: one inter-node message per
        remote node hosting two or more buffered destinations; the node
        leader (lowest destination lid on that node) applies its own bundle
        and forwards the rest intra-node (``_apply_node_combined``).

        Unlike :meth:`bulk_exchange` — whose leader scatter is pure cost
        bookkeeping because the slabs are delivered by the alltoall
        rendezvous — the forwarded bundles here carry *executions*, so the
        leader re-sends them as real intra-node asyncs (zero-copy when the
        fast path is on): that keeps fence quiescence and ``os_fence``
        origin tracking working through the indirection."""
        rt = self.runtime
        m = rt.machine
        my_node = m.node_of(self.id, rt.nlocs, rt.placement)
        by_node: dict[int, list] = {}
        for d in sorted(dests):
            by_node.setdefault(
                m.node_of(d, rt.nlocs, rt.placement), []).append(d)
        n = 0
        for node in sorted(by_node):
            ds = by_node[node]
            if node == my_node or len(ds) == 1:
                # own node (fast path / cheap intra messages) or a single
                # destination: nothing to coalesce
                for d in ds:
                    n += self._flush_combining_buffer(d)
                continue
            leader = ds[0]
            bundles = [(d, self._combining.pop(d)) for d in ds]
            size = 64 + estimate_size(bundles)
            self.clock += m.o_send
            self.stats.combining_flushes += 1
            self.stats.coalesced_messages += 1
            self.stats.bytes_sent += size
            # routed through the leader bundle's first record handle — a
            # p_object guaranteed to have a representative on the leader
            msg = Message(self.id, leader, bundles[0][1][0][0],
                          "_apply_node_combined", (bundles,), size,
                          self.clock, self.id, bulk=True)
            if rt.network.enqueue(msg):
                self.clock += m.msg_overhead
                self.stats.physical_messages += 1
            n += sum(len(records) for _, records in bundles)
        return n

    # -- collectives -----------------------------------------------------
    def rmi_fence(self, group: LocationGroup | None = None) -> None:
        """Collective fence: on return, no RMI issued by any group member
        before the fence is still pending (Ch. III.B / VII.B).  A fence on
        a proper subgroup quiesces only traffic among its members — it
        never blocks on (or drains) locations outside the group."""
        self.stats.fences += 1
        if group is not None and len(group) < self.runtime.nlocs:
            self.stats.subgroup_fences += 1
        self.flush_combining(coalesce=True)
        self._collective("fence", None, group)

    def barrier(self, group: LocationGroup | None = None) -> None:
        """Synchronize clocks without draining pending traffic."""
        self._collective("barrier", None, group)

    def allreduce_rmi(self, value, op: Callable = None,
                      group: LocationGroup | None = None):
        """Reduce ``value`` across the group; every member gets the result."""
        return self._collective("allreduce", (value, op), group)

    def reduce_rmi(self, value, op: Callable = None, root: int = 0,
                   group: LocationGroup | None = None):
        """Rooted reduction; non-roots receive ``None``."""
        result = self._collective("allreduce", (value, op), group)
        return result if self.id == root else None

    def broadcast_rmi(self, root: int, value=None,
                      group: LocationGroup | None = None):
        """Broadcast ``value`` from ``root`` to every group member."""
        return self._collective("broadcast", (root, value), group)

    def allgather_rmi(self, value, group: LocationGroup | None = None) -> list:
        """Gather one value per member, in group order, on every member."""
        return self._collective("allgather", value, group)

    def alltoall_rmi(self, values: list, group: LocationGroup | None = None) -> list:
        """Personalised all-to-all: ``values[i]`` goes to the i-th member."""
        return self._collective("alltoall", values, group)

    def scan_rmi(self, value, op: Callable = None, exclusive: bool = False,
                 group: LocationGroup | None = None):
        """Parallel prefix over group order; returns (prefix, total)."""
        return self._collective("scan", (value, op, exclusive), group)

    def os_fence(self) -> None:
        """One-sided fence: completes all RMIs *originated* by this location
        (including forwarded continuations) without a collective."""
        self.flush_combining(coalesce=True)
        self.runtime.drain_origin(self.id)

    # -- registration ------------------------------------------------------
    def collective_register(self, obj, group: LocationGroup | None = None) -> int:
        """Collectively register a p_object representative; all members
        receive the same RMI handle (Ch. III.B p_object registration)."""
        return self._collective("register", obj, group)

    def collective_unregister(self, handle: int,
                              group: LocationGroup | None = None) -> None:
        self._collective("unregister", handle, group)

    # -- internals -------------------------------------------------------
    def _collective(self, op: str, payload, group: LocationGroup | None):
        rt = self.runtime
        group = group or rt.world
        if self.id not in group:
            raise SpmdError(f"location {self.id} not in {group}")
        if len(group) == 1:
            # singleton groups (nested parallelism on one location) complete
            # inline: no rendezvous, no context switch
            return self._singleton_collective(op, payload)
        if rt._exec_depth:
            raise SpmdError(
                f"location {self.id}: collective '{op}' invoked inside an RMI "
                "handler; handlers must not block")
        seq = self._coll_seq.get(group.key, 0)
        self._coll_seq[group.key] = seq + 1
        key = (group.key, seq)
        rv = rt._pending_rv.get(key)
        if rv is None:
            rv = _Rendezvous(key, op, group.members, op)
            rt._pending_rv[key] = rv
        elif rv.op != op:
            raise SpmdError(
                f"collective mismatch on {group}: location {self.id} called "
                f"'{op}' but another member called '{rv.op}'")
        rv.arrived[self.id] = payload
        self._waiting_on = rv
        self.state = _WAITING
        self.stats.collectives += 1
        rt._yield_to_conductor(self)
        self._waiting_on = None
        out = self._coll_result
        self._coll_result = None
        return out

    def _singleton_collective(self, op: str, payload):
        rt = self.runtime
        self.stats.collectives += 1
        self.clock += rt.machine.coll_beta
        if op == "fence":
            rt.flush_channel(self.id, self.id)
            return None
        if op == "barrier":
            return None
        if op == "register":
            handle = rt._next_handle
            rt._next_handle += 1
            slot = [None] * rt.nlocs
            slot[self.id] = payload
            rt.registry[handle] = slot
            return handle
        if op == "unregister":
            rt.registry.pop(payload, None)
            return None
        if op == "allreduce":
            return payload[0]
        if op == "broadcast":
            root, value = payload
            if root != self.id:
                raise SpmdError("broadcast root outside singleton group")
            return value
        if op == "allgather":
            return [payload]
        if op == "alltoall":
            if len(payload) != 1:
                raise SpmdError("alltoall payload size != group size")
            return [payload[0]]
        if op == "scan":
            value, _op_fn, exclusive = payload
            return (None, value) if exclusive else (value, value)
        raise SpmdError(f"unknown collective {op!r}")  # pragma: no cover


class Runtime:
    """One SPMD execution: locations + network + registry + conductor."""

    def __init__(self, nlocs: int, machine="smp", placement: str = "packed"):
        if nlocs < 1:
            raise ValueError("need at least one location")
        self.machine = get_machine(machine)
        self.nlocs = nlocs
        self.placement = placement
        self.locations = [Location(self, i) for i in range(nlocs)]
        self.world = LocationGroup(range(nlocs))
        self.network = Network(nlocs, self.machine.aggregation)
        self.registry: dict[int, list] = {}
        self._next_handle = 0
        self._pending_rv: dict = {}
        self._conductor_evt = threading.Event()
        self._abort = False
        self._exec_stack: list[tuple[Location, int]] = []
        self._exec_depth = 0
        self._tls = threading.local()

    # -- current location tracking --------------------------------------
    @property
    def current_location(self) -> Location:
        if self._exec_stack:
            return self._exec_stack[-1][0]
        loc = getattr(self._tls, "loc", None)
        if loc is None:
            raise SpmdError("no current location (outside an SPMD run)")
        return loc

    @property
    def current_origin(self) -> int:
        if self._exec_stack:
            return self._exec_stack[-1][1]
        return self.current_location.id

    # -- registry --------------------------------------------------------
    def lookup(self, handle: int, lid: int):
        try:
            obj = self.registry[handle][lid]
        except KeyError:
            raise SpmdError(f"unknown p_object handle {handle}") from None
        if obj is None:
            raise SpmdError(
                f"p_object handle {handle} has no representative on "
                f"location {lid}")
        return obj

    # -- message execution ----------------------------------------------
    def _run_handler(self, dst_loc: Location, handle: int, method: str,
                     args, origin: int):
        obj = self.lookup(handle, dst_loc.id)
        self._exec_stack.append((dst_loc, origin))
        self._exec_depth += 1
        try:
            result = getattr(obj, method)(*args)
        finally:
            self._exec_stack.pop()
            self._exec_depth -= 1
        dst_loc.stats.rmi_executed += 1
        return result

    def execute_message(self, msg: Message) -> None:
        m = self.machine
        dst_loc = self.locations[msg.dst]
        if msg.src != msg.dst:
            lat = m.latency(msg.src, msg.dst, self.nlocs, self.placement)
            bc = m.byte_cost(msg.src, msg.dst, self.nlocs, self.placement)
            arrival = msg.depart + lat + msg.size * bc
            if dst_loc.clock < arrival:
                dst_loc.clock = arrival
        else:
            lat = 0.0
        dst_loc.clock += m.o_recv
        result = self._run_handler(dst_loc, msg.handle, msg.method, msg.args,
                                   msg.origin)
        if msg.future is not None:
            msg.future._resolve(result, dst_loc.clock + lat)

    # -- progress engines --------------------------------------------------
    def flush_channel(self, src: int, dst: int, until_future=None) -> int:
        """Execute buffered messages src->dst in FIFO order.  If
        ``until_future`` is given, stop once that future resolves."""
        n = 0
        while True:
            if until_future is not None and until_future.ready:
                break
            msg = self.network.pop(src, dst)
            if msg is None:
                break
            self.execute_message(msg)
            n += 1
        return n

    def drain_to(self, dst: int) -> int:
        n = 0
        for src in range(self.nlocs):
            n += self.flush_channel(src, dst)
        return n

    def drain_one(self, dst: int) -> bool:
        """Execute the single earliest-departed pending message to ``dst``
        (head of its FIFO channel); returns False when nothing is buffered.

        The task-graph executor drains incrementally: executing a message
        advances the receiver's clock to that message's arrival time, so a
        blocked location processes arrivals oldest-first and stops as soon
        as a task unblocks, instead of absorbing the arrival times of
        messages that later phases raced ahead to send."""
        best_src = None
        best_depart = 0.0
        for src, chan in self.network.pending_to(dst):
            depart = chan[0].depart
            if best_src is None or depart < best_depart:
                best_src, best_depart = src, depart
        if best_src is None:
            return False
        self.execute_message(self.network.pop(best_src, dst))
        return True

    def drain_among(self, members) -> int:
        """Execute buffered traffic among ``members`` to quiescence.
        Handlers may enqueue further messages (method forwarding), so loop."""
        total = 0
        ms = set(members)
        while True:
            chans = self.network.pending_among(ms)
            if not chans:
                return total
            for chan in chans:
                while chan:
                    # channels are shared deques; pop via network for
                    # aggregation bookkeeping
                    msg = chan[0]
                    self.network.pop(msg.src, msg.dst)
                    self.execute_message(msg)
                    total += 1

    def drain_origin(self, origin: int) -> int:
        """Execute every buffered message whose originating location is
        ``origin`` (transitively, through forwarding)."""
        total = 0
        progress = True
        while progress:
            progress = False
            for src in range(self.nlocs):
                for dst in range(self.nlocs):
                    chan = self.network.channel(src, dst)
                    while chan and chan[0].origin == origin:
                        msg = self.network.pop(src, dst)
                        self.execute_message(msg)
                        total += 1
                        progress = True
        return total

    # -- conductor ---------------------------------------------------------
    def run(self, fn: Callable, args: tuple = ()) -> list:
        """Run ``fn(location, *args)`` SPMD-style on every location."""
        threads = []
        for loc in self.locations:
            t = threading.Thread(
                target=self._thread_main, args=(loc, fn, args),
                name=f"loc-{loc.id}", daemon=True)
            loc._thread = t
            threads.append(t)
        for t in threads:
            t.start()
        try:
            self._conduct()
        except SpmdError:
            raise
        except Exception as exc:
            # handler failures surfacing from a conductor-side drain
            self._abort = True
            raise SpmdError(
                f"RMI handler raised {type(exc).__name__}: {exc}") from exc
        finally:
            if self._abort:
                for loc in self.locations:
                    loc._resume.set()
            for t in threads:
                t.join(timeout=30.0)
        failed = [loc for loc in self.locations if loc.state == _FAILED]
        if failed:
            loc = failed[0]
            raise SpmdError(
                f"location {loc.id} raised {type(loc.error).__name__}: "
                f"{loc.error}") from loc.error
        return [loc.result for loc in self.locations]

    def _thread_main(self, loc: Location, fn: Callable, args: tuple) -> None:
        loc._resume.wait()
        loc._resume.clear()
        if self._abort:
            loc.state = _DONE
            self._conductor_evt.set()
            return
        self._tls.loc = loc
        try:
            loc.result = fn(loc, *args)
            loc.state = _DONE
        except _Abort:
            loc.state = _DONE
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            loc.error = exc
            loc.state = _FAILED
        finally:
            self._conductor_evt.set()

    def _yield_to_conductor(self, loc: Location) -> None:
        self._conductor_evt.set()
        loc._resume.wait()
        loc._resume.clear()
        if self._abort:
            raise _Abort()

    def _give_baton(self, loc: Location) -> None:
        self._conductor_evt.clear()
        loc._resume.set()
        if not self._conductor_evt.wait(timeout=_BATON_TIMEOUT):
            self._abort = True
            raise SpmdError(f"location {loc.id} hung (baton watchdog)")

    def _conduct(self) -> None:
        try:
            while True:
                progressed = False
                for loc in self.locations:
                    if loc.state == _READY:
                        self._give_baton(loc)
                        progressed = True
                        if loc.state == _FAILED:
                            self._abort = True
                            return
                for key in list(self._pending_rv):
                    rv = self._pending_rv[key]
                    if rv.complete():
                        del self._pending_rv[key]
                        self._finish_rendezvous(rv)
                        progressed = True
                states = {loc.state for loc in self.locations}
                if states <= {_DONE}:
                    return
                if not progressed:
                    detail = ", ".join(
                        f"L{loc.id}:{loc.state}"
                        + (f"@{loc._waiting_on.op}" if loc._waiting_on else "")
                        for loc in self.locations)
                    self._abort = True
                    raise SpmdError(
                        "SPMD deadlock — mismatched collectives or a location "
                        f"exited while others wait ({detail})")
        except Exception:
            self._abort = True
            raise

    # -- rendezvous finishers ----------------------------------------------
    def _finish_rendezvous(self, rv: _Rendezvous) -> None:
        members = [self.locations[i] for i in rv.members]
        op = rv.op
        if op == "fence":
            self.drain_among(rv.members)
        t = max(loc.clock for loc in members)
        # mixed-mode collectives: intra-node tree to a node leader, then an
        # inter-node tree across leaders (flat-equivalent when every node
        # hosts one participant)
        t += self.machine.hierarchical_collective_cost(
            rv.members, self.nlocs, self.placement)
        for loc in members:
            loc.clock = t
        if op in ("fence", "barrier"):
            results = {i: None for i in rv.members}
        elif op == "register":
            handle = self._next_handle
            self._next_handle += 1
            slot = [None] * self.nlocs
            for lid, obj in rv.arrived.items():
                slot[lid] = obj
            self.registry[handle] = slot
            results = {i: handle for i in rv.members}
        elif op == "unregister":
            handles = set(rv.arrived.values())
            if len(handles) != 1:
                raise SpmdError(f"unregister called with differing handles {handles}")
            self.registry.pop(handles.pop(), None)
            results = {i: None for i in rv.members}
        else:
            results = collective_results(op, rv.arrived, rv.members)
        for loc in members:
            loc._coll_result = results[loc.id]
            loc.state = _READY

    # -- backend capability/progress hooks -----------------------------------
    #: the simulator shares one address space across representatives;
    #: containers consult this before cross-representative shortcuts
    #: (e.g. pVector's shared partition metadata)
    shared_address_space = True

    def group_progress(self, members) -> int:
        """Monotone progress metric over ``members`` watched by the
        task-graph executor's deadlock detection (messages executed plus
        tasks run).  The simulator can read every location's counters; a
        distributed backend overrides this with its local view."""
        return sum(self.locations[lid].stats.rmi_executed
                   + self.locations[lid].stats.tasks_executed
                   for lid in members)

    def stall_limit(self, group_size: int | None = None) -> int:
        """How many progress-free blocked-executor rounds mean deadlock.
        One full conductor round suffices in the deterministic simulator;
        a real backend scales this to a wall-clock patience window.
        ``group_size`` scopes the patience to the executor's own group —
        the innermost active group is what deadlock detection watches, so
        a small sub-team need not wait out a world-sized round."""
        return (group_size or self.nlocs) + 1

    # -- reporting -----------------------------------------------------------
    def stats(self) -> RunStats:
        return RunStats([loc.stats for loc in self.locations])

    def max_clock(self) -> float:
        return max(loc.clock for loc in self.locations)


def _backend_runners(backend: str | None):
    """Resolve (run, run_detailed) for the requested or current backend;
    None means the in-process simulated pair."""
    name = backend or current_backend()
    if name == "simulated":
        return None
    if name == "multiprocessing":
        from . import mp  # imported lazily: pulls in multiprocessing machinery

        return mp.mp_spmd_run, mp.mp_spmd_run_detailed
    raise SpmdError(f"unknown execution backend {name!r}")


def spmd_run(fn: Callable, nlocs: int = 4, machine="smp", args: tuple = (),
             placement: str = "packed", backend: str | None = None,
             **backend_opts) -> list:
    """Run an SPMD program; returns the per-location return values.

    ``fn(ctx, *args)`` is executed once per location with a
    :class:`Location` context, exactly like a ``stapl_main`` under
    ``mpiexec -n nlocs``.

    ``backend`` overrides the process-wide :func:`~.comm.set_backend`
    selection for this run ("simulated" or "multiprocessing");
    ``backend_opts`` (e.g. ``timeout=...``) are passed to a real backend's
    launcher and must be empty for the simulator.
    """
    runners = _backend_runners(backend)
    if runners is None:
        if backend_opts:
            raise TypeError(
                f"simulated backend takes no options {sorted(backend_opts)}")
        return Runtime(nlocs, machine, placement).run(fn, args)
    return runners[0](fn, nlocs=nlocs, machine=machine, args=args,
                      placement=placement, **backend_opts)


class SpmdReport:
    """Result bundle from :func:`spmd_run_detailed`.

    ``wall_seconds`` is real elapsed time: meaningful for the
    multiprocessing backend (the longest worker's wall clock), reported
    alongside the virtual ``clocks``/``max_clock`` of the cost model."""

    def __init__(self, results, runtime: Runtime | None = None, *,
                 clocks=None, stats=None, wall_seconds: float = 0.0,
                 backend: str = "simulated"):
        self.results = results
        self.runtime = runtime
        if runtime is not None:
            clocks = [loc.clock for loc in runtime.locations]
            stats = runtime.stats()
        self.clocks = clocks
        self.stats = stats
        self.wall_seconds = wall_seconds
        self.backend = backend

    @property
    def max_clock(self) -> float:
        return max(self.clocks)


def spmd_run_detailed(fn: Callable, nlocs: int = 4, machine="smp",
                      args: tuple = (), placement: str = "packed",
                      backend: str | None = None,
                      **backend_opts) -> SpmdReport:
    """Like :func:`spmd_run` but also returns clocks, traffic stats and —
    for a real backend — wall-clock time."""
    runners = _backend_runners(backend)
    if runners is None:
        if backend_opts:
            raise TypeError(
                f"simulated backend takes no options {sorted(backend_opts)}")
        rt = Runtime(nlocs, machine, placement)
        t0 = time.perf_counter()
        results = rt.run(fn, args)
        return SpmdReport(results, rt,
                          wall_seconds=time.perf_counter() - t0)
    return runners[1](fn, nlocs=nlocs, machine=machine, args=args,
                      placement=placement, **backend_opts)
