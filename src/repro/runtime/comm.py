"""Messages, FIFO channels and aggregation for the simulated ARMI layer.

The RTS guarantee reproduced here (Ch. III.B): *requests from a location to
another location are executed in order of invocation at the source*.  Each
(src, dst) pair owns one FIFO channel.  Async RMIs are buffered in the
channel and executed when the channel is flushed (by a fence, a poll, a
``Future.get`` or a sync RMI to the same destination) — exactly the
completion guarantees of Ch. VII.B.

Aggregation (Ch. III.B "major techniques used are aggregation ... and
combining") is modelled by charging the fixed physical-message overhead only
once per ``machine.aggregation`` RMIs enqueued on a channel.

Bulk transport: a :class:`Message` flagged ``bulk=True`` carries a whole
element range (a slab) as its payload.  It always occupies a physical
message of its own — it is never merged into the scalar aggregation window,
and it closes the window so the next scalar RMI starts a fresh physical
message.  Payload bytes are charged exactly once per (src, dst) slab.

Combining (the second Ch. III.B technique) is modelled by the
per-destination *combining buffers* owned by each
:class:`~.scheduler.Location`: asynchronous operation records
(insert / set / accumulate / erase and friends, each tagged with its
p_object handle) are appended locally and shipped as one bulk message when
the buffer reaches the combining window, at a fence, before any other RMI
to the same destination (source-FIFO order), or on an explicit
``flush_combining()``.  One buffer per channel — like ARMI's aggregation
buffers — keeps issue order across p_objects intact.  The module-level
toggle below exists so the evaluation can assert batched == scalar results
head-to-head.
"""

from __future__ import annotations

import abc
import os
from itertools import islice
from collections import deque

import numpy as np

_SCALAR_SIZE = 8
_DEFAULT_SIZE = 64

#: process-wide switch + window for the combining-buffer path.  On, async
#: container ops named in a container's ``COMBINING_METHODS`` are buffered
#: per (destination, handle) and flushed as one bulk message per window.
_COMBINING = True
_COMBINING_WINDOW = 1024

#: process-wide switch for the zero-copy intra-node fast path: RMIs between
#: locations sharing a node skip serialization/payload-byte charges and
#: execute directly against the destination representative under ``t_lock``.
#: Off by default — message-path buffering (asyncs invisible until a fence)
#: is the reference semantics the tests pin down; the mixed-mode ablation
#: toggles this on to measure the shared-memory half of the runtime.
_ZERO_COPY = False


def zero_copy_enabled() -> bool:
    return _ZERO_COPY


def set_zero_copy(on: bool) -> bool:
    """Toggle the zero-copy intra-node fast path; returns the previous
    setting.  With the fast path on, intra-node asyncs complete eagerly
    (they no longer wait for a fence); results are unchanged for programs
    that only rely on the source-FIFO ordering guarantee."""
    global _ZERO_COPY
    prev = _ZERO_COPY
    _ZERO_COPY = bool(on)
    return prev


#: process-wide switch for the multiprocessing backend's *true* zero-copy
#: slab transport: bulk ndarray payloads travel as references into pooled
#: shared-memory arena segments (or straight into live bContainer storage)
#: that the receiver maps read-only, instead of the copy-out path (fresh
#: segment per slab, receiver copies and unlinks).  On by default; the
#: simulator ignores it — its shared address space has no slab transport
#: to optimize, and every simulated bulk accessor keeps returning copies.
_MP_ZERO_COPY = True

#: ndarray payloads at least this big (bytes) ride shared-memory segments
#: under the multiprocessing backend instead of being pickled into the
#: queue pipe; sweepable by the bench ablation suite.
_SHM_SLAB_THRESHOLD = int(os.environ.get("REPRO_MP_SHM_THRESHOLD", "2048"))


def mp_zero_copy_enabled() -> bool:
    return _MP_ZERO_COPY


def set_mp_zero_copy(on: bool) -> bool:
    """Toggle the multiprocessing backend's zero-copy slab transport;
    returns the previous setting.  Off means the copy-out ablation: every
    slab is written to a fresh segment, copied out by the receiver and
    unlinked.  Results are byte-identical either way (the differential
    suite pins this down); only wall-clock cost changes."""
    global _MP_ZERO_COPY
    prev = _MP_ZERO_COPY
    _MP_ZERO_COPY = bool(on)
    return prev


def shm_slab_threshold() -> int:
    return _SHM_SLAB_THRESHOLD


def set_shm_slab_threshold(nbytes: int) -> int:
    """Set the minimum ndarray payload size (bytes) that travels through
    shared memory under the multiprocessing backend; returns the previous
    threshold.  Smaller payloads are pickled into the queue pipe."""
    global _SHM_SLAB_THRESHOLD
    if nbytes < 0:
        raise ValueError("shm slab threshold must be >= 0")
    prev = _SHM_SLAB_THRESHOLD
    _SHM_SLAB_THRESHOLD = int(nbytes)
    return prev


def combining_enabled() -> bool:
    return _COMBINING


def set_combining(on: bool) -> bool:
    """Toggle the combining-buffer path; returns the previous setting."""
    global _COMBINING
    prev = _COMBINING
    _COMBINING = bool(on)
    return prev


def combining_window() -> int:
    return _COMBINING_WINDOW


def set_combining_window(n: int) -> int:
    """Set how many op records a combining buffer holds before it flushes
    as one physical message; returns the previous window."""
    global _COMBINING_WINDOW
    if n < 1:
        raise ValueError("combining window must be >= 1")
    prev = _COMBINING_WINDOW
    _COMBINING_WINDOW = int(n)
    return prev


# ---------------------------------------------------------------------------
# Execution backends
#
# The transport is pluggable.  Everything above the narrow waist (containers,
# views, algorithms, the PARAGRAPH executor) talks to a ``Location`` whose
# sends funnel into a :class:`TransportBackend`; the simulated ``Network``
# below is the default backend and the correctness *oracle*, and
# :mod:`repro.runtime.mp` provides a real ``multiprocessing`` backend where
# each location is an OS process, scalar RMIs travel over per-destination
# queues and bulk slabs move through ``multiprocessing.shared_memory``
# segments.  ``set_backend`` selects which runtime :func:`~.scheduler.
# spmd_run` builds; the differential test layer (``tests/backend/``) asserts
# byte-identical results between the two.
# ---------------------------------------------------------------------------

_BACKENDS = ("simulated", "multiprocessing")
_BACKEND = "simulated"


def available_backends() -> tuple:
    return _BACKENDS


def current_backend() -> str:
    return _BACKEND


def set_backend(name: str) -> str:
    """Select the execution backend used by subsequent ``spmd_run`` calls
    (``"simulated"`` — the deterministic virtual-time oracle — or
    ``"multiprocessing"`` — one OS process per location, real wall-clock
    parallelism).  Returns the previous setting."""
    global _BACKEND
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(_BACKENDS)}")
    prev = _BACKEND
    _BACKEND = name
    return prev


class TransportBackend(abc.ABC):
    """The narrow waist between the runtime and a message transport.

    A backend owns delivery of :class:`Message` records between locations.
    The contract the rest of the runtime relies on:

    * :meth:`enqueue` accepts one outgoing message and returns True when a
      new *physical* message was started (the sender is charged the fixed
      message overhead exactly then);
    * per (src, dst) channel FIFO: two messages from one source to one
      destination are executed in enqueue order (Ch. III.B source FIFO);
    * ``total_pending`` counts buffered-but-unexecuted messages (0 for an
      eager transport that hands messages to the destination immediately).

    Collectives and fences are *protocols over* the transport, not
    primitives of it: the simulated backend rendezvouses through the
    conductor (:meth:`~.scheduler.Runtime._finish_rendezvous`), the
    multiprocessing backend runs a gather/scatter engine plus a counting
    fence over the same member-side reduction math
    (:func:`~.scheduler.collective_results`).
    """

    #: whether representatives on other locations share this address space
    #: (True only for the in-process simulator; containers consult it
    #: before taking cross-representative shortcuts such as pVector's
    #: shared partition metadata)
    shared_address_space: bool = False

    @abc.abstractmethod
    def enqueue(self, msg: "Message") -> bool:
        """Accept one outgoing message; True if a new physical message
        started."""

    #: buffered-but-unexecuted message count (eager transports keep it 0)
    total_pending: int = 0


# -- cross-backend toggle snapshot ------------------------------------------
# Real concurrency exposes a latent assumption of the single-process
# simulator: performance toggles live as module-level state (combining,
# zero-copy, lookup cache, dataflow, bulk transport).  Worker processes of a
# real backend must observe the values that were set *before* the run
# started, so the launcher snapshots them and re-applies the snapshot inside
# every worker — robust even under a ``spawn`` start method where module
# state is re-imported fresh rather than inherited.


def snapshot_toggles() -> dict:
    """Capture every process-wide runtime toggle as a plain dict."""
    from ..algorithms.prange import dataflow_enabled
    from ..core.migration import lookup_cache_enabled
    from ..views.base import bulk_transport_enabled

    return {
        "combining": combining_enabled(),
        "combining_window": combining_window(),
        "zero_copy": zero_copy_enabled(),
        "lookup_cache": lookup_cache_enabled(),
        "dataflow": dataflow_enabled(),
        "bulk_transport": bulk_transport_enabled(),
        "mp_zero_copy": mp_zero_copy_enabled(),
        "shm_slab_threshold": shm_slab_threshold(),
    }


def apply_toggles(snapshot: dict) -> None:
    """Re-apply a :func:`snapshot_toggles` capture in this process."""
    from ..algorithms.prange import set_dataflow
    from ..core.migration import set_lookup_cache
    from ..views.base import set_bulk_transport

    set_combining(snapshot["combining"])
    set_combining_window(snapshot["combining_window"])
    set_zero_copy(snapshot["zero_copy"])
    set_lookup_cache(snapshot["lookup_cache"])
    set_dataflow(snapshot["dataflow"])
    set_bulk_transport(snapshot["bulk_transport"])
    # keys added after the snapshot contract shipped: tolerate captures
    # from older payloads (e.g. a recorded bench baseline)
    set_mp_zero_copy(snapshot.get("mp_zero_copy", True))
    set_shm_slab_threshold(snapshot.get("shm_slab_threshold",
                                        _SHM_SLAB_THRESHOLD))


def estimate_size(obj, _depth: int = 0) -> int:
    """Cheap, deterministic wire-size estimate (bytes) for RMI arguments.

    This stands in for the ``define_type``/typer marshaling machinery of the
    C++ RTS: it only needs to be consistent, so the bandwidth term of the
    cost model scales with payload size.
    """
    if obj is None or isinstance(obj, (bool, int, float)):
        return _SCALAR_SIZE
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        # numpy scalars (values originating from numpy-backed storage) are
        # 8-byte payloads, not opaque 64-byte objects
        return _SCALAR_SIZE
    if isinstance(obj, (str, bytes, bytearray)):
        return 16 + len(obj)
    if isinstance(obj, np.ndarray):
        return 64 + int(obj.nbytes)
    if _depth >= 3:
        return _DEFAULT_SIZE
    if isinstance(obj, (tuple, list)):
        n = len(obj)
        if n == 0:
            return 16
        if n > 64:
            sample = sum(estimate_size(x, _depth + 1) for x in obj[:16])
            return 16 + (sample * n) // 16
        return 16 + sum(estimate_size(x, _depth + 1) for x in obj)
    if isinstance(obj, dict):
        n = len(obj)
        if n == 0:
            return 16
        # sample at most 16 items without materialising the whole item list
        # (huge dicts), and scale by the number actually sampled — dividing
        # by a fixed 16 under-charged dicts with fewer than 16 entries
        items = list(islice(obj.items(), 16))
        sample = sum(
            estimate_size(k, _depth + 1) + estimate_size(v, _depth + 1)
            for k, v in items
        )
        return 16 + (sample * n) // len(items)
    vt = getattr(obj, "_vt_size_", None)
    if vt is not None:
        return int(vt() if callable(vt) else vt)
    return _DEFAULT_SIZE


class Message:
    """One buffered RMI request (scalar, or a bulk element slab)."""

    __slots__ = ("src", "dst", "handle", "method", "args", "size", "depart",
                 "origin", "future", "bulk")

    def __init__(self, src, dst, handle, method, args, size, depart, origin,
                 future=None, bulk=False):
        self.src = src
        self.dst = dst
        self.handle = handle
        self.method = method
        self.args = args
        self.size = size
        self.depart = depart
        self.origin = origin
        self.future = future
        self.bulk = bulk

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"Message({self.src}->{self.dst} h{self.handle}."
                f"{self.method} size={self.size})")


class Network(TransportBackend):
    """Simulated backend: all (src, dst) FIFO channels plus aggregation
    bookkeeping, buffered in one address space and drained by the
    progress engines of :class:`~.scheduler.Runtime`.

    Fence polling calls :meth:`pending_to` / :meth:`pending_among` on every
    progress step, so those queries must not rescan all P^2 potential
    channels.  Channels are indexed per *destination* at creation time
    (``_by_dst``) together with a per-destination count of non-empty
    channels (``_nonempty``): a query touches only the destinations asked
    about, scanning at most P channels each, and short-circuits to nothing
    when the destination has no traffic at all.  Entries carry their global
    creation sequence number so ``pending_among`` still enumerates channels
    in exactly the order the un-indexed scan did (drain order is part of the
    deterministic simulation)."""

    shared_address_space = True

    def __init__(self, nlocs: int, aggregation: int):
        self.nlocs = nlocs
        self.aggregation = max(1, aggregation)
        self._channels: dict[tuple[int, int], deque] = {}
        self._agg_fill: dict[tuple[int, int], int] = {}
        #: dst -> [(creation_seq, src, chan), ...] in creation order
        self._by_dst: dict[int, list] = {}
        #: dst -> number of currently non-empty channels
        self._nonempty: dict[int, int] = {}
        self.total_pending = 0

    # -- sending -------------------------------------------------------
    def enqueue(self, msg: Message) -> bool:
        """Buffer ``msg``; returns True if a new physical message started
        (i.e. the fixed message overhead must be charged to the sender).

        Bulk messages always occupy their own physical message and close the
        current aggregation window."""
        key = (msg.src, msg.dst)
        chan = self._channels.get(key)
        if chan is None:
            chan = self._channels[key] = deque()
            self._by_dst.setdefault(msg.dst, []).append(
                (len(self._channels), msg.src, chan))
        if not chan:
            self._nonempty[msg.dst] = self._nonempty.get(msg.dst, 0) + 1
        chan.append(msg)
        self.total_pending += 1
        if msg.bulk:
            self._agg_fill[key] = 0
            return True
        fill = self._agg_fill.get(key, 0)
        new_message = fill == 0
        self._agg_fill[key] = (fill + 1) % self.aggregation
        return new_message

    # -- inspection ----------------------------------------------------
    def channel(self, src: int, dst: int) -> deque:
        return self._channels.get((src, dst), _EMPTY)

    def pending_to(self, dst: int) -> list[tuple[int, deque]]:
        if not self._nonempty.get(dst):
            return []
        return [(s, c) for _, s, c in self._by_dst[dst] if c]

    def pending_among(self, members) -> list[deque]:
        ms = members if isinstance(members, (set, frozenset)) else set(members)
        hits = []
        for d in ms:
            if self._nonempty.get(d):
                hits.extend(e for e in self._by_dst[d] if e[2] and e[1] in ms)
        hits.sort(key=lambda e: e[0])
        return [c for _, _, c in hits]

    def pop(self, src: int, dst: int) -> Message | None:
        chan = self._channels.get((src, dst))
        if not chan:
            return None
        self.total_pending -= 1
        msg = chan.popleft()
        if not chan:
            self._agg_fill[(src, dst)] = 0
            self._nonempty[dst] -= 1
        return msg

    def has_pending(self, src: int, dst: int) -> bool:
        return bool(self._channels.get((src, dst)))


_EMPTY: deque = deque()
