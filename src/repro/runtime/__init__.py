"""Simulated STAPL runtime system (ARMI + scheduler + machine models).

Public surface mirrors Ch. III.B of the paper: locations, RMI primitives
(async / sync / split-phase), fences, collectives, communication groups and
p_objects — all running on a deterministic virtual-time machine simulator.
"""

from .comm import (
    Message,
    Network,
    TransportBackend,
    apply_toggles,
    available_backends,
    combining_enabled,
    combining_window,
    current_backend,
    estimate_size,
    mp_zero_copy_enabled,
    set_backend,
    set_combining,
    set_combining_window,
    set_mp_zero_copy,
    set_shm_slab_threshold,
    set_zero_copy,
    shm_slab_threshold,
    snapshot_toggles,
    zero_copy_enabled,
)
from .future import Future, pc_future
from .machine import CRAY4, CRAY5, MACHINES, P5_CLUSTER, SMP, MachineModel, get_machine
from .p_object import PObject
from .scheduler import (
    Location,
    LocationGroup,
    Runtime,
    SpmdError,
    SpmdReport,
    spmd_run,
    spmd_run_detailed,
)
from .stats import LocationStats, RunStats

__all__ = [
    "CRAY4",
    "CRAY5",
    "Future",
    "Location",
    "LocationGroup",
    "LocationStats",
    "MACHINES",
    "MachineModel",
    "Message",
    "Network",
    "P5_CLUSTER",
    "PObject",
    "RunStats",
    "Runtime",
    "SMP",
    "SpmdError",
    "SpmdReport",
    "TransportBackend",
    "apply_toggles",
    "available_backends",
    "combining_enabled",
    "combining_window",
    "current_backend",
    "estimate_size",
    "get_machine",
    "mp_zero_copy_enabled",
    "set_backend",
    "set_combining",
    "snapshot_toggles",
    "set_combining_window",
    "set_mp_zero_copy",
    "set_shm_slab_threshold",
    "set_zero_copy",
    "shm_slab_threshold",
    "zero_copy_enabled",
    "pc_future",
    "spmd_run",
    "spmd_run_detailed",
]
