"""Shared objects (``p_object``, Ch. III.B).

A p_object is the basic concept of a shared object: it has one
*representative* per location, registered with the RTS under a common handle
so that RMIs can be routed between representatives.  All pContainers inherit
from :class:`PObject`, mirroring the paper's requirement that "all the
parallel objects in stapl inherit from the base p_object class".
"""

from __future__ import annotations

from .scheduler import Location, LocationGroup, Runtime


class PObject:
    """Per-location representative of a distributed shared object."""

    def __init__(self, ctx: Location, group: LocationGroup | None = None):
        self._ctx = ctx
        self._runtime: Runtime = ctx.runtime
        self._group = group or ctx.runtime.world
        if ctx.id not in self._group:
            raise ValueError(
                f"location {ctx.id} constructing a p_object outside its "
                f"group {self._group}")
        #: RMI handle shared by all representatives (collective registration)
        self._handle = ctx.collective_register(self, self._group)

    # -- identity --------------------------------------------------------
    @property
    def ctx(self) -> Location:
        """The location that owns this representative."""
        return self._ctx

    @property
    def runtime(self) -> Runtime:
        return self._runtime

    @property
    def group(self) -> LocationGroup:
        return self._group

    @property
    def handle(self) -> int:
        return self._handle

    def get_location_id(self) -> int:
        return self._ctx.id

    def get_num_locations(self) -> int:
        return len(self._group)

    # -- the location currently executing code on this object ------------
    @property
    def here(self) -> Location:
        """Current execution location: the owner location for plain calls,
        the target location while running inside an RMI handler."""
        return self._runtime.current_location

    # -- RMI helpers ------------------------------------------------------
    def rep_on(self, lid: int) -> "PObject":
        """Direct reference to the representative on location ``lid``
        (valid because the simulator shares one address space — only used by
        conductor-side tooling, never by container logic)."""
        return self._runtime.lookup(self._handle, lid)

    def _async(self, dest: int, method: str, *args) -> None:
        self._runtime.current_location.async_rmi(dest, self._handle, method, *args)

    def _sync(self, dest: int, method: str, *args):
        return self._runtime.current_location.sync_rmi(
            dest, self._handle, method, *args)

    def _opaque(self, dest: int, method: str, *args):
        return self._runtime.current_location.opaque_rmi(
            dest, self._handle, method, *args)

    def _apply_combined(self, records) -> None:
        """Replay a flushed combining buffer (Ch. III.B combining): each
        record is one buffered asynchronous op, executed in the order it
        was appended at the source.  A buffer is per destination, so
        records may target other p_objects on this location — each is
        re-routed to its handle's representative."""
        here_id = self.here.id
        for handle, method, args in records:
            obj = (self if handle == self._handle
                   else self._runtime.lookup(handle, here_id))
            getattr(obj, method)(*args)

    def _apply_node_combined(self, bundles) -> None:
        """Node-leader scatter of a coalesced combining flush (mixed-mode
        slab routing): ``bundles`` is a list of ``(dest_lid, records)``
        pairs, all destined to locations on this node.  The bundle
        addressed to this location replays in place; the others are
        forwarded over cheap intra-node asyncs (zero-copy when the fast
        path is on), preserving the originating location for
        ``os_fence``."""
        here = self.here
        for dest, records in bundles:
            if dest == here.id:
                self._apply_combined(records)
            else:
                here.async_rmi(dest, records[0][0], "_apply_combined",
                               records)

    def destroy(self) -> None:
        """Collective destructor: unregister all representatives."""
        self._ctx.collective_unregister(self._handle, self._group)
