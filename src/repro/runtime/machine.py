"""Machine models for the simulated parallel machine.

The paper evaluates STAPL on a CRAY XT4 (``CRAY4``), a CRAY XT5 (``CRAY5``)
and an IBM P5-575 cluster (``P5-cluster``).  We reproduce those platforms as
LogGP-style cost models: every RMI pays a sender overhead, a per-byte
bandwidth term and a one-way latency that depends on whether source and
destination share a node.  Collectives pay an ``alpha * ceil(log2 P) + beta``
tree term.  All times are virtual microseconds tracked by the scheduler; the
model is deterministic, so every benchmark in ``benchmarks/`` is exactly
reproducible.

Mixed-mode topology: the runtime is node-aware.  :meth:`MachineModel.node_of`
places locations on nodes (``cores_per_node`` wide under ``packed``
placement), and collectives run as *two-level trees* — an intra-node tree to
a node leader, then an inter-node tree across leaders
(:meth:`MachineModel.hierarchical_collective_cost`).  The intra-node tree
stages are discounted by the intra/inter latency ratio, so a machine with
``cores_per_node == 1``, a ``spread`` placement, or uniform latencies (SMP)
reproduces the flat ``collective_cost`` exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineModel:
    """Cost model of one target platform (all times in microseconds)."""

    name: str
    #: number of locations sharing one node (intra-node latency applies)
    cores_per_node: int
    #: cost of one element-level operation inside a bContainer
    t_access: float
    #: cost of one partition + partition-mapper address translation
    t_lookup: float
    #: cost of one lock acquire/release pair in the thread-safety manager
    t_lock: float
    #: sender-side overhead of issuing one RMI
    o_send: float
    #: receiver-side overhead of executing one RMI
    o_recv: float
    #: one-way latency between two locations on the same node
    latency_intra: float
    #: one-way latency between two locations on different nodes
    latency_inter: float
    #: per-byte transfer cost, same node
    byte_intra: float
    #: per-byte transfer cost, different nodes
    byte_inter: float
    #: fixed cost of one physical network message (amortised by aggregation)
    msg_overhead: float
    #: maximum number of RMIs aggregated into one physical message
    aggregation: int
    #: collective/fence tree cost: alpha * ceil(log2 P) + beta
    coll_alpha: float
    coll_beta: float

    # ------------------------------------------------------------------
    def node_of(self, loc: int, nlocs: int, placement: str = "packed") -> int:
        """Node hosting ``loc`` under a placement policy.

        ``packed`` fills nodes with consecutive locations (the paper's
        "processes on the same nodes when possible", Fig. 41 curve (a));
        ``spread`` allocates every location on its own node (curve (b),
        "in different nodes").
        """
        if placement == "spread":
            return loc
        return loc // self.cores_per_node

    def same_node(self, a: int, b: int, nlocs: int, placement: str) -> bool:
        return self.node_of(a, nlocs, placement) == self.node_of(b, nlocs, placement)

    def latency(self, a: int, b: int, nlocs: int, placement: str) -> float:
        if a == b:
            return 0.0
        if self.same_node(a, b, nlocs, placement):
            return self.latency_intra
        return self.latency_inter

    def byte_cost(self, a: int, b: int, nlocs: int, placement: str) -> float:
        if a == b:
            return 0.0
        if self.same_node(a, b, nlocs, placement):
            return self.byte_intra
        return self.byte_inter

    def collective_cost(self, nparticipants: int) -> float:
        """Flat single-level tree: ``alpha * ceil(log2 P) + beta``."""
        if nparticipants <= 1:
            return self.coll_beta
        return self.coll_alpha * math.ceil(math.log2(nparticipants)) + self.coll_beta

    # -- mixed-mode topology -------------------------------------------
    def topology(self, members, nlocs: int, placement: str = "packed") -> dict:
        """Group ``members`` by hosting node: ``{node: [lids...]}``."""
        nodes: dict[int, list] = {}
        for lid in members:
            nodes.setdefault(self.node_of(lid, nlocs, placement), []).append(lid)
        return nodes

    def intra_coll_alpha(self) -> float:
        """Per-stage cost of the intra-node half of a two-level tree:
        ``coll_alpha`` discounted by the intra/inter latency ratio (an
        intra-node tree stage is a shared-memory hop, not a network one)."""
        if self.latency_inter <= 0.0:
            return self.coll_alpha
        return self.coll_alpha * min(1.0, self.latency_intra / self.latency_inter)

    def hierarchical_collective_cost(self, members, nlocs: int,
                                     placement: str = "packed") -> float:
        """Two-level collective tree over ``members``: every node reduces to
        a node leader over an intra-node tree, then the leaders combine over
        an inter-node tree.  The cost composes the per-level participant
        counts — ``ceil(log2)`` of the widest node population at intra-node
        rates plus ``ceil(log2)`` of the node count at inter-node rates —
        instead of ``ceil(log2 P)`` of the flat participant count.

        Degenerates to :meth:`collective_cost` when every node hosts one
        participant (``cores_per_node == 1`` or ``spread`` placement) and
        when the latencies are uniform (SMP)."""
        nodes = self.topology(members, nlocs, placement)
        widest = max(len(v) for v in nodes.values())
        cost = self.coll_beta
        if widest > 1:
            cost += self.intra_coll_alpha() * math.ceil(math.log2(widest))
        if len(nodes) > 1:
            cost += self.coll_alpha * math.ceil(math.log2(len(nodes)))
        return cost

    def with_(self, **kw) -> "MachineModel":
        """Return a copy with selected parameters overridden (ablations)."""
        return replace(self, **kw)


#: CRAY XT4: quad-core Opteron nodes, SeaStar2 3D-torus (low, uniform latency).
CRAY4 = MachineModel(
    name="cray4",
    cores_per_node=4,
    t_access=0.05,
    t_lookup=0.05,
    t_lock=0.04,
    o_send=0.25,
    o_recv=0.35,
    latency_intra=0.8,
    latency_inter=2.4,
    byte_intra=0.0003,
    byte_inter=0.0006,
    msg_overhead=1.2,
    aggregation=64,
    coll_alpha=2.5,
    coll_beta=2.0,
)

#: CRAY XT5: two quad-core Opterons per node.
CRAY5 = MachineModel(
    name="cray5",
    cores_per_node=8,
    t_access=0.045,
    t_lookup=0.045,
    t_lock=0.04,
    o_send=0.22,
    o_recv=0.3,
    latency_intra=0.7,
    latency_inter=2.2,
    byte_intra=0.0003,
    byte_inter=0.0005,
    msg_overhead=1.1,
    aggregation=64,
    coll_alpha=2.2,
    coll_beta=1.8,
)

#: IBM P5-575 cluster: 16-way SMP nodes; cheap intra-node, expensive
#: inter-node communication (this asymmetry produces Fig. 41).
P5_CLUSTER = MachineModel(
    name="p5cluster",
    cores_per_node=16,
    t_access=0.07,
    t_lookup=0.07,
    t_lock=0.05,
    o_send=0.4,
    o_recv=0.5,
    latency_intra=0.5,
    latency_inter=7.0,
    byte_intra=0.0004,
    byte_inter=0.0012,
    msg_overhead=2.0,
    aggregation=64,
    coll_alpha=4.0,
    coll_beta=3.0,
)

#: Single shared-memory node (used by unit tests: no inter-node effects).
SMP = MachineModel(
    name="smp",
    cores_per_node=1 << 20,
    t_access=0.05,
    t_lookup=0.05,
    t_lock=0.04,
    o_send=0.2,
    o_recv=0.25,
    latency_intra=0.4,
    latency_inter=0.4,
    byte_intra=0.0002,
    byte_inter=0.0002,
    msg_overhead=0.8,
    aggregation=64,
    coll_alpha=1.5,
    coll_beta=1.0,
)

MACHINES = {m.name: m for m in (CRAY4, CRAY5, P5_CLUSTER, SMP)}


def get_machine(spec) -> MachineModel:
    """Resolve a machine spec (model instance or name) to a model."""
    if isinstance(spec, MachineModel):
        return spec
    try:
        return MACHINES[str(spec).lower()]
    except KeyError:
        raise ValueError(
            f"unknown machine {spec!r}; available: {sorted(MACHINES)}"
        ) from None
