"""pVector (Ch. V.F, Fig. 12d): dynamic sequence + indexed container.

STL ``vector`` semantics: O(1) access by index, linear-time ``insert`` /
``erase`` (elements shift), amortised O(1) ``push_back``.  The partition is
the shared-metadata :class:`UnbalancedBlockedPartition`: it starts balanced
and inserts/erases shift per-block counts (MDWRITE operations).  The
pList-vs-pVector trade-off of Fig. 42 falls directly out of these costs.
"""

from __future__ import annotations

from ..core.base_containers import VectorBC
from ..core.domains import RangeDomain
from ..core.partitions import UnbalancedBlockedPartition
from ..core.pcontainer import SLAB_ACCESS_FACTOR, PContainerDynamic
from ..core.thread_safety import ELEMENT, LOCAL, MDREAD, MDWRITE, READ, WRITE
from ..core.traits import Traits

#: relative cost of shifting one element during insert/erase
_SHIFT_FACTOR = 0.05


class PVector(PContainerDynamic):
    """Distributed dynamic array (sequence + indexed interfaces)."""

    DEFAULT_LOCKING = {
        "set_element": (ELEMENT, WRITE, MDREAD),
        "get_element": (ELEMENT, READ, MDREAD),
        "apply_get": (ELEMENT, READ, MDREAD),
        "apply_set": (ELEMENT, WRITE, MDREAD),
        "insert": (LOCAL, WRITE, MDWRITE),
        "erase": (LOCAL, WRITE, MDWRITE),
        "push_back": (LOCAL, WRITE, MDWRITE),
        "pop_back": (LOCAL, WRITE, MDWRITE),
    }

    def __init__(self, ctx, size: int = 0, value=0,
                 traits: Traits | None = None, group=None):
        super().__init__(ctx, traits, group)
        self._fill_value = value
        domain = RangeDomain(0, int(size))
        partition = UnbalancedBlockedPartition(len(self.group))
        self.init(domain, partition, shared_partition=True, allocate=False)
        # allocate one bContainer per location from the shared block table
        me = self.group.index_of(ctx.id)
        bsize = self._dist.partition.get_sub_domain_sizes()[me]
        bc = VectorBC(RangeDomain(0, bsize), me, fill=value)
        self.location_manager.add_bcontainer(me, bc)
        ctx.charge(ctx.machine.t_access * 0.25 * bsize)
        self._cached_size = size
        self._ctor_done()

    # the mapper is identity over group member order (bcid i -> member i)
    def _make_mapper(self):
        from ..core.mappers import CyclicMapper

        return CyclicMapper()

    # -- indexed interface (Table XIV flavours) ----------------------------
    def set_element(self, idx, value) -> None:
        self._dist.invoke("set_element", idx, value)

    def get_element(self, idx):
        return self._dist.invoke_ret("get_element", idx)

    def split_phase_get_element(self, idx):
        return self._dist.invoke_opaque_ret("get_element", idx)

    def __getitem__(self, idx):
        return self.get_element(idx)

    def __setitem__(self, idx, value) -> None:
        self.set_element(idx, value)

    def apply_get(self, idx, fn):
        return self._dist.invoke_ret("apply_get", idx, fn)

    def apply_set(self, idx, fn) -> None:
        self._dist.invoke("apply_set", idx, fn)

    # -- bulk element transport (index ranges -> local offsets) ------------
    def get_range(self, lo: int, hi: int) -> list:
        """Gather the index range ``[lo, hi)`` in order: one slab per owning
        block (``bulk_get_range``) instead of one sync RMI per element."""
        loc = self.here
        part = self._dist.partition
        if lo < 0 or hi > part.total_size():
            raise IndexError(f"range [{lo}, {hi}) outside pVector of size "
                             f"{part.total_size()}")
        out = []
        for bcid in range(part.size()):
            sub = part.get_sub_domain(bcid)
            s_lo, s_hi = max(lo, sub.lo), min(hi, sub.hi)
            if s_lo >= s_hi:
                continue
            n = s_hi - s_lo
            off = part.local_offset(s_lo, bcid)
            owner = self._dist.mapper.map(bcid)
            out.extend(self._piece_transfer(
                owner, n,
                lambda: self.location_manager.get_bcontainer(bcid)
                            .get_range(off, off + n),
                lambda: loc.bulk_get_range(
                    owner, self.handle, "_bulk_get_range_off",
                    bcid, off, n, nelems=n)))
        return out

    def set_range(self, lo: int, values) -> None:
        """Scatter ``values`` over indices ``[lo, lo + len(values))``; remote
        slabs are asynchronous (complete at the next fence)."""
        values = list(values)
        if not values:
            return
        hi = lo + len(values)
        loc = self.here
        part = self._dist.partition
        if lo < 0 or hi > part.total_size():
            raise IndexError(f"range [{lo}, {hi}) outside pVector of size "
                             f"{part.total_size()}")
        for bcid in range(part.size()):
            sub = part.get_sub_domain(bcid)
            s_lo, s_hi = max(lo, sub.lo), min(hi, sub.hi)
            if s_lo >= s_hi:
                continue
            chunk = values[s_lo - lo:s_hi - lo]
            off = part.local_offset(s_lo, bcid)
            owner = self._dist.mapper.map(bcid)
            self._piece_transfer(
                owner, len(chunk),
                lambda: self.location_manager.get_bcontainer(bcid)
                            .set_range(off, chunk),
                lambda: loc.bulk_set_range(
                    owner, self.handle, "_bulk_set_range_off",
                    bcid, off, chunk, nelems=len(chunk)))

    def _bulk_get_range_off(self, bcid, off, n):
        loc = self.here
        loc.charge(loc.machine.t_access * SLAB_ACCESS_FACTOR * n)
        return self.location_manager.get_bcontainer(bcid).get_range(off, off + n)

    def _bulk_set_range_off(self, bcid, off, values) -> None:
        loc = self.here
        loc.charge(loc.machine.t_access * SLAB_ACCESS_FACTOR * len(values))
        self.location_manager.get_bcontainer(bcid).set_range(off, values)

    # -- sequence interface (Table XVIII) ------------------------------------
    def insert_element(self, idx, value):
        """Synchronous insert before index ``idx`` (linear local cost)."""
        return self._dist.invoke_ret("insert", idx, value)

    def insert_element_async(self, idx, value) -> None:
        self._dist.invoke("insert", idx, value)

    def erase_element(self, idx):
        """Synchronous erase of the element at ``idx``."""
        return self._dist.invoke_ret("erase", idx)

    def erase_element_async(self, idx) -> None:
        self._dist.invoke("erase", idx)

    def push_back(self, value) -> None:
        """Append at the global end (asynchronous, amortised O(1)).  The
        end block is addressed by BCID through the partition-mapper, so
        pushes stay correct after the block migrates to another location."""
        part = self._dist.partition
        last = part.size() - 1
        dest = self._dist.mapper.map(last)
        if dest == self.here.id:
            self._local_push_back(
                self.location_manager.get_bcontainer(last), None, value)
            self.here.charge_access()
            self.location_manager.note_access(last)
            self.here.stats.local_invocations += 1
        else:
            self.here.stats.remote_invocations += 1
            self.here.async_rmi(dest, self.handle, "_remote_push_back",
                                last, value)

    def pop_back(self):
        part = self._dist.partition
        last = part.size() - 1
        dest = self._dist.mapper.map(last)
        return self.here.sync_rmi(dest, self.handle, "_remote_pop_back", last)

    def push_anywhere(self, value) -> None:
        """Append into a local bContainer (load-balance friendly); falls
        back to ``push_back`` when every block migrated away."""
        for bc in self.location_manager.ordered():
            self._local_push_into(bc, value)
            self.here.charge_access()
            self.location_manager.note_access(bc.get_bcid())
            return
        self.push_back(value)

    # -- local handlers ----------------------------------------------------
    def _offset(self, bc, idx):
        return self._dist.partition.local_offset(idx, bc.get_bcid())

    def _local_set_element(self, bc, idx, value) -> None:
        bc.set(self._offset(bc, idx), value)

    def _local_get_element(self, bc, idx):
        return bc.get(self._offset(bc, idx))

    def _local_apply_get(self, bc, idx, fn):
        return bc.apply(self._offset(bc, idx), fn)

    def _local_apply_set(self, bc, idx, fn) -> None:
        bc.apply_set(self._offset(bc, idx), fn)

    def _local_insert(self, bc, idx, value):
        off = self._offset(bc, idx)
        shifted = bc.size() - off
        self.here.charge(self.here.machine.t_access * _SHIFT_FACTOR * shifted)
        bc.insert(off, value)
        self._dist.partition.grow(bc.get_bcid())
        return idx

    def _local_erase(self, bc, idx, *_):
        off = self._offset(bc, idx)
        shifted = bc.size() - off
        self.here.charge(self.here.machine.t_access * _SHIFT_FACTOR * shifted)
        value = bc.erase(off)
        self._dist.partition.shrink(bc.get_bcid())
        return value

    def _local_push_into(self, bc, value) -> None:
        bc.push_back(value)
        self._dist.partition.grow(bc.get_bcid())

    def _local_push_back(self, bc, _gid, value) -> None:
        self._local_push_into(bc, value)

    def _remote_push_back(self, bcid, value) -> None:
        if not self.location_manager.has_bcontainer(bcid):
            # the end block migrated while the push was in flight
            self.here.stats.stale_redirects += 1
            self.push_back(value)
            return
        self._local_push_into(self.location_manager.get_bcontainer(bcid),
                              value)
        self.here.charge_access()
        self.location_manager.note_access(bcid)

    def _remote_pop_back(self, bcid):
        if not self.location_manager.has_bcontainer(bcid):
            self.here.stats.stale_redirects += 1
            dest = self._dist.mapper.map(bcid)
            return self._sync(dest, "_remote_pop_back", bcid)
        bc = self.location_manager.get_bcontainer(bcid)
        value = bc.pop_back()
        self._dist.partition.shrink(bc.get_bcid())
        self.here.charge_access()
        self.location_manager.note_access(bcid)
        return value

    # -- inspection ---------------------------------------------------------
    #: 1D views must use the element interface (offset-addressed storage,
    #: domain shifts under insert/erase) rather than native bContainer chunks
    supports_native_1d = False

    @property
    def domain(self):
        """Current index domain [0, size) — recomputed because inserts and
        erases shift it."""
        from ..core.domains import RangeDomain

        return RangeDomain(0, self.size())

    def size(self) -> int:
        """pVector keeps exact size in the shared partition metadata."""
        return self._dist.partition.total_size()

    def to_list(self) -> list:
        """Gather all elements in index order (collective; test aid).
        Blocks ship tagged with their BCID (the index order is BCID
        order), so the gather is placement-independent."""
        local = [(bc.get_bcid(), list(bc.values()))
                 for bc in self.location_manager.ordered()]
        gathered = self.ctx.allgather_rmi(local, group=self.group)
        blocks = {}
        for chunk in gathered:
            for bcid, vals in chunk:
                blocks[bcid] = vals
        out = []
        for bcid in sorted(blocks):
            out.extend(blocks[bcid])
        return out
