"""pContainer composition (Ch. IV.C, Ch. XIII): containers of containers.

pContainers are closed under composition: the elements of an outer
container can themselves be pContainers.  Nested containers here live on a
*singleton location group* (the owner of the outer element), which is the
locality-preserving deployment Ch. IV.C recommends — "each level of the
nested parallel constructs can work on a corresponding level of the
pContainer hierarchy ... this can preserve existing locality".

Elements of the outer container store :class:`NestedRef` handles.  Nested
pAlgorithm invocations (Fig. 61) run inline on the owner through the
singleton-group fast path of the scheduler.
"""

from __future__ import annotations

from ..core.domains import EnumeratedDomain
from ..runtime.scheduler import LocationGroup
from .parray import PArray
from .plist import PList


class NestedRef:
    """Reference to a nested pContainer: (handle, owner location)."""

    __slots__ = ("handle", "owner")

    def __init__(self, handle: int, owner: int):
        self.handle = handle
        self.owner = owner

    def __repr__(self):
        return f"NestedRef(h{self.handle}@L{self.owner})"

    def resolve(self, runtime):
        """The nested container representative (valid on its owner)."""
        return runtime.lookup(self.handle, self.owner)


def make_nested(ctx, factory) -> NestedRef:
    """Construct a nested container on this location's singleton group.
    ``factory(ctx, group)`` must build and return the container."""
    group = LocationGroup([ctx.id])
    inner = factory(ctx, group)
    return NestedRef(inner.handle, ctx.id)


def compose_parray_of_parrays(ctx, inner_sizes: list, value=0, dtype=float,
                              group=None) -> PArray:
    """``p_array<p_array<T>>`` (Fig. 3): outer balanced pArray whose element
    *i* is a nested pArray of ``inner_sizes[i]`` elements, constructed on
    element *i*'s owner location."""
    outer = PArray(ctx, len(inner_sizes), value=0, dtype=object, group=group)
    for bc in outer.local_bcontainers():
        for i in bc.domain:
            ref = make_nested(
                ctx, lambda c, g: PArray(c, inner_sizes[i], value=value,
                                         dtype=dtype, group=g))
            bc.set(i, ref)
    ctx.rmi_fence(outer.group)
    return outer


def compose_plist_of_parrays(ctx, inner_sizes: list, value=0, dtype=float,
                             group=None) -> PList:
    """``p_list<p_array<T>>`` (Fig. 4 flavour): each location's list segment
    holds its balanced share of nested pArrays, in global order."""
    from ..core.partitions import balanced_sizes

    outer = PList(ctx, 0, group=group)
    members = outer.group.members
    me = outer.group.index_of(ctx.id)
    sizes = balanced_sizes(len(inner_sizes), len(members))
    lo = sum(sizes[:me])
    for i in range(lo, lo + sizes[me]):
        ref = make_nested(
            ctx, lambda c, g: PArray(c, inner_sizes[i], value=value,
                                     dtype=dtype, group=g))
        outer.push_anywhere(ref)
    ctx.rmi_fence(outer.group)
    outer.update_size()
    return outer


def nested_apply(outer_container, gid, fn):
    """Apply ``fn(inner_container)`` at the owner of the nested container
    stored at ``gid`` of the outer container (synchronous).  This is the
    composed-method dispatch of Ch. IV.C —
    ``pApA.get_element(i).get_element(j)`` style chains."""
    ref = outer_container.get_element(gid)
    loc = outer_container.here
    if ref.owner == loc.id:
        return fn(ref.resolve(outer_container.runtime))
    return loc.sync_rmi(ref.owner, outer_container.handle,
                        "_nested_apply_handler", ref.handle, fn)


def nested_get(outer_container, gid, inner_gid):
    """Composed element access: outer[gid][inner_gid]."""
    return nested_apply(outer_container, gid,
                        lambda inner: inner.get_element(inner_gid))


def nested_set(outer_container, gid, inner_gid, value) -> None:
    nested_apply(outer_container, gid,
                 lambda inner: inner.set_element(inner_gid, value))


def composed_domain(outer_domain, inner_domains: dict) -> EnumeratedDomain:
    """The composed domain of Eq. 4.2: union of cross products
    ``{i} x D_inner(i)`` in outer order."""
    gids = []
    for i in outer_domain:
        for j in inner_domains[i]:
            gids.append((i, j))
    return EnumeratedDomain(gids)


def _local_height(container_or_ref, runtime) -> int:
    from ..core.pcontainer import PContainerBase

    if isinstance(container_or_ref, NestedRef):
        return _local_height(container_or_ref.resolve(runtime), runtime)
    if not isinstance(container_or_ref, PContainerBase):
        return 0
    container = container_or_ref
    for bc in container.local_bcontainers():
        if hasattr(bc, "values"):
            vals = bc.values()
            vals = vals.tolist() if hasattr(vals, "tolist") else vals
            for v in vals:
                if isinstance(v, NestedRef):
                    return 1 + _local_height(v, runtime)
                break
        break
    return 1


def composition_height(container) -> int:
    """Height of a composed pContainer (Ch. IV.C): 1 for flat containers,
    1 + height(element type) for nested ones.  Collective: locations without
    local elements learn the height from the reduction."""
    local = _local_height(container, container.runtime)
    return container.ctx.allreduce_rmi(local, max, group=container.group)


# RMI handler attached to the container classes used as outer containers
def _nested_apply_handler(self, inner_handle, fn):
    inner = self.runtime.lookup(inner_handle, self.here.id)
    return fn(inner)


PArray._nested_apply_handler = _nested_apply_handler
PList._nested_apply_handler = _nested_apply_handler
