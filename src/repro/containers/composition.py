"""pContainer composition (Ch. IV.C, Ch. XIII): containers of containers.

pContainers are closed under composition: the elements of an outer
container can themselves be pContainers.  By default a nested container
lives on a *singleton location group* (the owner of the outer element),
which is the locality-preserving deployment Ch. IV.C recommends — "each
level of the nested parallel constructs can work on a corresponding level
of the pContainer hierarchy ... this can preserve existing locality".
``compose_*`` additionally accept ``inner_group_size > 1``: the outer
group's members are partitioned into contiguous rank-ordered sub-teams
(:func:`location_teams`), every nested container is constructed
*collectively* on its owner's team, and its data distributes over the team
— the genuinely multi-location nested sections of Ch. IV.C.

Elements of the outer container store :class:`NestedRef` handles recording
the handle, the owner, and the inner group's members.  Nested pAlgorithm
invocations (Fig. 61) run inline on the owner through the singleton-group
fast path of the scheduler.

Two-level parallelism (Fig. 1) is expressed with re-entrant PARAGRAPHs:
:func:`nested_map`, :func:`segmented_reduce` and :func:`segmented_scan`
build an outer task graph with one task per segment this location
participates in, and each task spawns and drains an *inner* PARAGRAPH over
its nested container (:func:`run_nested_paragraph`).  On a singleton group
the inner collectives complete inline while the outer graph is mid-flight;
on a larger team every member enters the same inner graph (in the same
canonical gid order), its collectives rendezvous among the team only, and
its closing fence is a subgroup fence that never blocks outside locations.
"""

from __future__ import annotations

from ..core.domains import EnumeratedDomain
from ..runtime.scheduler import LocationGroup
from .parray import PArray
from .plist import PList


class NestedRef:
    """Reference to a nested pContainer: handle, owner location, and the
    inner group's members (the owner's singleton for flat composition)."""

    __slots__ = ("handle", "owner", "members")

    def __init__(self, handle, owner: int, members=None):
        self.handle = handle
        self.owner = owner
        self.members = tuple(members) if members is not None else (owner,)

    def __repr__(self):
        return f"NestedRef(h{self.handle}@L{self.owner}x{len(self.members)})"

    def resolve(self, runtime, lid: int | None = None):
        """The nested container representative — the owner's by default,
        or ``lid``'s own when ``lid`` is a member of the inner group (a
        member participating in a distributed inner section must act on
        its local representative, not reach across to the owner's)."""
        if lid is not None and lid in self.members:
            return runtime.lookup(self.handle, lid)
        return runtime.lookup(self.handle, self.owner)


def location_teams(group, team_size: int) -> list:
    """Partition ``group`` into contiguous rank-ordered sub-teams of
    ``team_size`` members (clamped to the group size; the last team takes
    the remainder).  Pure rank arithmetic — every member computes the same
    partition with no communication."""
    team_size = max(1, min(team_size, len(group)))
    ms = group.members
    return [group.subgroup(ms[i:i + team_size])
            for i in range(0, len(ms), team_size)]


def team_of(group, lid: int, team_size: int):
    """The contiguous sub-team of ``group`` that ``lid`` belongs to."""
    for team in location_teams(group, team_size):
        if lid in team:
            return team
    raise ValueError(f"location {lid} not a member of {group}")


def make_nested(ctx, factory, group=None, owner: int | None = None) -> NestedRef:
    """Construct a nested container — on this location's singleton group
    by default, or collectively on ``group`` (every member must call with
    the same factory; all receive the same ref).  ``factory(ctx, group)``
    must build and return the container; ``owner`` (default: the group's
    rank-0 member) is where composed-method dispatch routes."""
    group = group or LocationGroup([ctx.id])
    inner = factory(ctx, group)
    if owner is None:
        owner = group.members[0]
    return NestedRef(inner.handle, owner, group.members)


def compose_parray_of_parrays(ctx, inner_sizes: list, value=0, dtype=float,
                              group=None, inner_group_size: int = 1) -> PArray:
    """``p_array<p_array<T>>`` (Fig. 3): outer balanced pArray whose element
    *i* is a nested pArray of ``inner_sizes[i]`` elements, constructed on
    element *i*'s owner location.  With ``inner_group_size > 1`` each
    nested pArray is instead constructed collectively on its owner's
    contiguous sub-team and distributes its data across the team; every
    team member records the team's (gid, ref) pairs so the two-level
    helpers can enter the distributed inner sections collectively."""
    outer = PArray(ctx, len(inner_sizes), value=0, dtype=object, group=group)
    if inner_group_size <= 1:
        for bc in outer.local_bcontainers():
            for i in bc.domain:
                ref = make_nested(
                    ctx, lambda c, g: PArray(c, inner_sizes[i], value=value,
                                             dtype=dtype, group=g))
                bc.set(i, ref)
        ctx.rmi_fence(outer.group)
        return outer
    team = team_of(outer.group, ctx.id, inner_group_size)
    by_gid = {i: bc for bc in outer.local_bcontainers() for i in bc.domain}
    # canonical team-wide construction order: rank by rank, each rank's
    # gids ascending — every member walks the same sequence of collectives
    team_gids = ctx.allgather_rmi(sorted(by_gid), group=team)
    recorded = []
    for rank, gids in enumerate(team_gids):
        owner = team.lid_of(rank)
        for i in gids:
            ref = make_nested(
                ctx, lambda c, g: PArray(c, inner_sizes[i], value=value,
                                         dtype=dtype, group=g),
                group=team, owner=owner)
            recorded.append((i, ref))
            if owner == ctx.id:
                by_gid[i].set(i, ref)
    outer._group_nested_refs = sorted(recorded, key=lambda gr: gr[0])
    ctx.rmi_fence(outer.group)
    return outer


def compose_plist_of_parrays(ctx, inner_sizes: list, value=0, dtype=float,
                             group=None, inner_group_size: int = 1) -> PList:
    """``p_list<p_array<T>>`` (Fig. 4 flavour): each location's list segment
    holds its balanced share of nested pArrays, in global order.  With
    ``inner_group_size > 1`` each nested pArray is constructed collectively
    on its owner's contiguous sub-team (see
    :func:`compose_parray_of_parrays`)."""
    from ..core.partitions import balanced_sizes

    outer = PList(ctx, 0, group=group)
    members = outer.group.members
    sizes = balanced_sizes(len(inner_sizes), len(members))
    if inner_group_size <= 1:
        me = outer.group.index_of(ctx.id)
        lo = sum(sizes[:me])
        for i in range(lo, lo + sizes[me]):
            ref = make_nested(
                ctx, lambda c, g: PArray(c, inner_sizes[i], value=value,
                                         dtype=dtype, group=g))
            outer.push_anywhere(ref)
        ctx.rmi_fence(outer.group)
        outer.update_size()
        return outer
    team = team_of(outer.group, ctx.id, inner_group_size)
    recorded = []
    for rank in range(len(team)):
        owner = team.lid_of(rank)
        r = outer.group.index_of(owner)
        lo = sum(sizes[:r])
        for i in range(lo, lo + sizes[r]):
            ref = make_nested(
                ctx, lambda c, g: PArray(c, inner_sizes[i], value=value,
                                         dtype=dtype, group=g),
                group=team, owner=owner)
            recorded.append((i, ref))
            if owner == ctx.id:
                outer.push_anywhere(ref)
    outer._group_nested_refs = sorted(recorded, key=lambda gr: gr[0])
    ctx.rmi_fence(outer.group)
    outer.update_size()
    return outer


def nested_apply(outer_container, gid, fn):
    """Apply ``fn(inner_container)`` at the owner of the nested container
    stored at ``gid`` of the outer container (synchronous).  This is the
    composed-method dispatch of Ch. IV.C —
    ``pApA.get_element(i).get_element(j)`` style chains.

    Accounting matches the container shared-object interface: one charged
    directory lookup to resolve the inner container's home, then either a
    local invocation (plus the local access charge) or a remote one riding
    a sync RMI — previously this path bypassed the lookup/invocation
    counters entirely, so composed accesses were invisible to the
    evaluation's traffic columns."""
    ref = outer_container.get_element(gid)
    loc = outer_container.here
    loc.charge_lookup()
    if ref.owner == loc.id:
        loc.stats.local_invocations += 1
        loc.charge_access()
        return fn(ref.resolve(outer_container.runtime))
    loc.stats.remote_invocations += 1
    return loc.sync_rmi(ref.owner, outer_container.handle,
                        "_nested_apply_handler", ref.handle, fn)


def nested_get(outer_container, gid, inner_gid):
    """Composed element access: outer[gid][inner_gid]."""
    return nested_apply(outer_container, gid,
                        lambda inner: inner.get_element(inner_gid))


def nested_set(outer_container, gid, inner_gid, value) -> None:
    nested_apply(outer_container, gid,
                 lambda inner: inner.set_element(inner_gid, value))


def composed_domain(outer_domain, inner_domains: dict) -> EnumeratedDomain:
    """The composed domain of Eq. 4.2: union of cross products
    ``{i} x D_inner(i)`` in outer order."""
    gids = []
    for i in outer_domain:
        for j in inner_domains[i]:
            gids.append((i, j))
    return EnumeratedDomain(gids)


def _local_height(container_or_ref, runtime) -> int:
    from ..core.pcontainer import PContainerBase

    if isinstance(container_or_ref, NestedRef):
        return _local_height(container_or_ref.resolve(runtime), runtime)
    if not isinstance(container_or_ref, PContainerBase):
        return 0
    container = container_or_ref
    for bc in container.local_bcontainers():
        if hasattr(bc, "values"):
            vals = bc.values()
            vals = vals.tolist() if hasattr(vals, "tolist") else vals
            for v in vals:
                if isinstance(v, NestedRef):
                    return 1 + _local_height(v, runtime)
                break
        break
    return 1


def composition_height(container) -> int:
    """Height of a composed pContainer (Ch. IV.C): 1 for flat containers,
    1 + height(element type) for nested ones.  Collective: locations without
    local elements learn the height from the reduction."""
    local = _local_height(container, container.runtime)
    return container.ctx.allreduce_rmi(local, max, group=container.group)


# ---------------------------------------------------------------------------
# nested-parallel helpers (two-level PARAGRAPHs, Fig. 1 / Ch. IV.C)
# ---------------------------------------------------------------------------

def _local_nested_refs(outer) -> list:
    """(gid, NestedRef) pairs stored on this location, in gid order."""
    out = []
    if hasattr(outer, "local_gids"):  # pList: stable handle order
        for gid in outer.local_gids():
            v = outer.get_element(gid)
            if isinstance(v, NestedRef):
                out.append((gid, v))
        return out
    for bc in outer.local_bcontainers():
        vals = bc.values() if hasattr(bc, "values") else None
        if vals is None:
            continue
        vals = vals.tolist() if hasattr(vals, "tolist") else list(vals)
        for gid, v in zip(bc.domain, vals):
            if isinstance(v, NestedRef):
                out.append((gid, v))
    out.sort(key=lambda gv: gv[0])
    return out


def _participating_refs(outer) -> list:
    """(gid, NestedRef) pairs whose inner sections this location takes
    part in, in gid order: the team-recorded list when the container was
    composed with ``inner_group_size > 1`` (identical on every team
    member, so all members enter each inner graph), else the
    locally-stored refs (flat singleton composition)."""
    recorded = getattr(outer, "_group_nested_refs", None)
    if recorded is not None:
        return recorded
    return _local_nested_refs(outer)


def run_nested_paragraph(ctx, ref: NestedRef, build):
    """Spawn and drain an inner PARAGRAPH over the nested container
    ``ref`` — typically from inside an outer Paragraph task.  On a
    singleton group this runs on the owner and the inner collectives
    complete inline; on a larger inner group *every member* must call it
    (for the same refs in the same order), each acting on its local
    representative, and the inner graph's registration, baton and closing
    fence all scope to the inner group only.  ``build(ipg, inner_view,
    inner)`` adds this member's inner tasks; the graph then runs to
    completion and is destroyed.  Returns ``build``'s return value."""
    from ..algorithms.prange import Paragraph
    from ..views.array_views import Array1DView

    inner = ref.resolve(ctx.runtime, ctx.id)
    iv = Array1DView(inner)
    ipg = Paragraph(ctx, views=(iv,), group=inner.group)
    out = build(ipg, iv, inner)
    ipg.run()
    ipg.destroy()
    return out


def _ordered_chunk_domains(iv) -> list:
    """The inner view's chunk index ranges in ascending order (inner
    containers live wholly on their owner, so every chunk is local)."""
    from ..core.domains import RangeDomain

    doms = []
    for ch in iv.local_chunks():
        dom = getattr(ch, "index_domain", None)
        if dom is None:
            dom = ch.bc.domain  # NativeChunk
        doms.append(RangeDomain(dom.lo, dom.hi))
    doms.sort(key=lambda d: d.lo)
    return doms


def nested_map(outer, fn, vector=None) -> None:
    """Two-level parallel map: ``x <- fn(x)`` for every element of every
    nested container.  Outer level: one PARAGRAPH task per participating
    :class:`NestedRef` (locally stored, or team-recorded when the inner
    sections span a multi-location group); inner level: that task spawns
    and drains an inner PARAGRAPH over the nested container, one task per
    locally-stored inner chunk — the deployment Ch. IV.C describes, each
    nesting level working on the matching level of the container
    hierarchy."""
    from ..algorithms.prange import Paragraph
    from ..views.base import Workfunction

    ctx = outer.ctx
    wf = Workfunction(fn, vector=vector)
    pg = Paragraph(ctx, group=outer.group)

    def make_task(ref):
        def act(_c):
            def build(ipg, iv, _inner):
                for chunk in iv.local_chunks():
                    ipg.add_task(lambda ch: ch.map_values(wf), chunk)
            run_nested_paragraph(ctx, ref, build)
        return act

    for _gid, ref in _participating_refs(outer):
        pg.add_task(make_task(ref))
    pg.run()
    pg.destroy()


def segmented_reduce(outer, op, init) -> list:
    """Per-segment reductions of a composed container: ``result[i]``
    reduces nested container *i*; every location returns the full result
    list.  Each locally-owned segment reduces inside an inner PARAGRAPH —
    one partial task per inner chunk plus a combine task wired by
    intra-graph dependences — then one allgather merges the per-location
    ``{gid: value}`` maps.  ``init`` must be an identity of ``op`` (it
    seeds every partial).  When a segment lives on a multi-member group
    each member reduces its local chunks, then ships the partials to the
    segment owner over a data-flow edge; the owner folds them in group
    rank order — the same left-to-right chunk order the flat reduction
    uses, so the value is identical for associative ``op``."""
    from ..algorithms.prange import Paragraph

    ctx = outer.ctx
    local: dict = {}
    pg = Paragraph(ctx, group=outer.group)

    def make_task(gid, ref):
        def act(_c):
            def build(ipg, iv, _inner):
                parts: list = []

                def make_part(ch):
                    return lambda _c2: parts.append(
                        ch.reduce_values(op, init))

                ptasks = [ipg.add_task(make_part(ch))
                          for ch in iv.local_chunks()]
                g = len(ipg.group)
                if g == 1:
                    def combine(_c2):
                        acc = init
                        for p in parts:
                            acc = op(acc, p)
                        local[gid] = acc

                    ipg.add_task(combine, deps=tuple(ptasks))
                    return
                me = ipg.group.rank_of(ctx.id)

                def emit(_c2):
                    ipg.send(ref.owner, ("seg", gid), list(parts), tag=me)

                ipg.add_task(emit, deps=tuple(ptasks))
                if ctx.id == ref.owner:
                    def combine(_c2, inputs):
                        acc = init
                        for r in range(g):
                            for p in inputs[r]:
                                acc = op(acc, p)
                        local[gid] = acc

                    ipg.add_task(combine, key=("seg", gid), needs=g)
            run_nested_paragraph(ctx, ref, build)
        return act

    for gid, ref in _participating_refs(outer):
        pg.add_task(make_task(gid, ref))
    pg.run(fence=False)
    pg.destroy()
    gathered = ctx.allgather_rmi(local, group=outer.group)
    merged = {}
    for d in gathered:
        merged.update(d)
    return [merged[g] for g in sorted(merged)]


def segmented_scan(outer, op, init, exclusive: bool = False) -> None:
    """In-place prefix scan *within* each nested container (the segmented
    scan of the composed structure).  Segments are independent, so the
    outer PARAGRAPH runs them in parallel; inside a segment the per-chunk
    prefix tasks chain through intra-graph dependences carrying the
    running carry.  On a multi-member segment the carry additionally hops
    member-to-member in group rank order over data-flow edges — the exact
    sequential recurrence, so results are byte-identical to the flat
    scan.  ``init`` must be an identity of ``op``."""
    from ..algorithms.prange import Paragraph
    from ..views.derived_views import slab_read, slab_write

    ctx = outer.ctx
    pg = Paragraph(ctx, group=outer.group)

    def make_task(gid, ref):
        def act(_c):
            def build(ipg, iv, _inner):
                st = {"carry": init}
                prev = None
                g = len(ipg.group)
                me = ipg.group.rank_of(ctx.id)
                if me > 0:
                    def recv(_c2, inputs):
                        st["carry"] = inputs[me - 1]

                    prev = ipg.add_task(recv, key=("carry", gid, me),
                                        needs=1)

                def make_step(dom):
                    def step(_c2):
                        vals = slab_read(iv, dom.lo, dom.hi)
                        carry = st["carry"]
                        out = []
                        for v in vals:
                            if exclusive:
                                out.append(carry)
                                carry = op(carry, v)
                            else:
                                carry = op(carry, v)
                                out.append(carry)
                        st["carry"] = carry
                        slab_write(iv, dom.lo, out)
                    return step

                for dom in _ordered_chunk_domains(iv):
                    prev = ipg.add_task(make_step(dom),
                                        deps=(prev,) if prev else ())
                if me < g - 1:
                    nxt = ipg.group.lid_of(me + 1)

                    def fwd(_c2):
                        ipg.send(nxt, ("carry", gid, me + 1),
                                 st["carry"], tag=me)

                    ipg.add_task(fwd, deps=(prev,) if prev else ())
            run_nested_paragraph(ctx, ref, build)
        return act

    for gid, ref in _participating_refs(outer):
        pg.add_task(make_task(gid, ref))
    pg.run()
    pg.destroy()


# RMI handler attached to the container classes used as outer containers
def _nested_apply_handler(self, inner_handle, fn):
    inner = self.runtime.lookup(inner_handle, self.here.id)
    return fn(inner)


PArray._nested_apply_handler = _nested_apply_handler
PList._nested_apply_handler = _nested_apply_handler
