"""pArray (Ch. IX): the parallel equivalent of ``std::valarray``.

Static, indexed, one-dimensional.  Derivation chain (Fig. 25):
p_container_base → p_container_static → p_container_indexed → pArray.
Default modules: ``RangeDomain[0, n)`` domain, balanced partition (one
sub-domain per location), cyclic mapper, NumPy-backed ``ArrayBC`` storage.

Interface per Table XIX, including the three method flavours
(``set_element`` async / ``get_element`` sync / ``split_phase_get_element``)
whose relative costs are the subject of Figs. 28–32.
"""

from __future__ import annotations

from ..core.base_containers import ArrayBC
from ..core.domains import RangeDomain
from ..core.partitions import BalancedPartition
from ..core.pcontainer import PContainerIndexed
from ..core.redistribution import RedistributableMixin
from ..core.traits import Traits


class PArray(RedistributableMixin, PContainerIndexed):
    """Distributed fixed-size one-dimensional array."""

    def __init__(self, ctx, size_or_domain, value=0, partition=None,
                 traits: Traits | None = None, group=None, dtype=float):
        super().__init__(ctx, traits, group)
        if isinstance(size_or_domain, RangeDomain):
            domain = size_or_domain
        else:
            domain = RangeDomain(0, int(size_or_domain))
        self._fill_value = value
        self._dtype = dtype
        if partition is None:
            partition = BalancedPartition(len(self.group))
        self.init(domain, partition)
        self._cached_size = domain.size()
        self._ctor_done()

    # -- storage -----------------------------------------------------------
    def _default_bcontainer(self, subdomain, bcid):
        return ArrayBC(subdomain, bcid, fill=self._fill_value,
                       dtype=self._dtype)

    # -- convenience -----------------------------------------------------
    @property
    def domain(self) -> RangeDomain:
        return self._dist.partition.get_domain()

    def to_list(self) -> list:
        """Gather the full array on every location (collective; test aid)."""
        dom = self.domain
        local = [(gid, bc.get(gid))
                 for bc in self.local_bcontainers()
                 for gid in bc.domain]
        gathered = self.ctx.allgather_rmi(local, group=self.group)
        out = [None] * self.size()
        for per_loc in gathered:
            for gid, val in per_loc:
                out[dom.offset(gid)] = val
        return out
