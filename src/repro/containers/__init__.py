"""STAPL pContainers built on the PCF (Ch. V.F, Fig. 12)."""

from .associative import PHashMap, PHashSet, PMap, PMultiMap, PMultiSet, PSet
from .composition import (
    NestedRef,
    compose_parray_of_parrays,
    compose_plist_of_parrays,
    composed_domain,
    composition_height,
    make_nested,
    nested_apply,
    nested_get,
    nested_map,
    nested_set,
    run_nested_paragraph,
    segmented_reduce,
    segmented_scan,
)
from .parray import PArray
from .pgraph import DIRECTED, UNDIRECTED, EdgeRef, PGraph, VertexRef
from .plist import PList
from .pmatrix import PMatrix, default_grid
from .pvector import PVector
