"""pList (Ch. X): distributed doubly-linked list.

Design per Ch. X.C: the global list is an ordered sequence of *segments*
(one ListBC per location by default); element GIDs are stable
``(bcid, seq)`` handles, so address resolution is O(1) arithmetic on the GID
— no directory.  All sequence methods (Table XXIV / XVIII) run in O(1):
``push_back``/``push_front`` target the last/first segment,
``insert``/``erase`` run at the owning segment, and ``push_anywhere``
appends locally (the paper's "new methods facilitating parallel use").
"""

from __future__ import annotations

from ..core.base_containers import ListBC
from ..core.domains import UniverseDomain
from ..core.partitions import ListPartition
from ..core.pcontainer import PContainerDynamic
from ..core.thread_safety import ELEMENT, LOCAL, MDREAD, READ, WRITE
from ..core.traits import Traits


class PList(PContainerDynamic):
    """Distributed list with stable element handles."""

    DEFAULT_LOCKING = {
        "set_element": (ELEMENT, WRITE, MDREAD),
        "get_element": (ELEMENT, READ, MDREAD),
        "apply_get": (ELEMENT, READ, MDREAD),
        "apply_set": (ELEMENT, WRITE, MDREAD),
        "insert": (LOCAL, WRITE, MDREAD),
        "erase": (LOCAL, WRITE, MDREAD),
    }

    #: async ops buffered by the combining path (Ch. III.B); remote pushes
    #: combine through their dedicated fast path below
    COMBINING_METHODS = frozenset(
        {"set_element", "apply_set", "insert", "erase"})

    def __init__(self, ctx, size: int = 0, value=0,
                 traits: Traits | None = None, group=None):
        super().__init__(ctx, traits, group)
        partition = ListPartition(len(self.group))
        self.init(UniverseDomain(), partition, allocate=False)
        me = self.group.index_of(ctx.id)
        self._my_bcid = me
        bc = ListBC(UniverseDomain(), me)
        self.location_manager.add_bcontainer(me, bc)
        # collective construction with `size` initial elements, balanced
        from ..core.partitions import balanced_sizes

        mine = balanced_sizes(size, len(self.group))[me]
        for _ in range(mine):
            bc.push_back(value)
        ctx.charge(ctx.machine.t_access * 0.25 * mine)
        self._cached_size = size
        self._ctor_done()

    def _make_mapper(self):
        from ..core.mappers import CyclicMapper

        return CyclicMapper()  # bcid i -> i-th group member

    # -- element access (GID = (bcid, seq)) ---------------------------------
    def set_element(self, gid, value) -> None:
        self._dist.invoke("set_element", gid, value)

    def get_element(self, gid):
        return self._dist.invoke_ret("get_element", gid)

    def split_phase_get_element(self, gid):
        return self._dist.invoke_opaque_ret("get_element", gid)

    def apply_get(self, gid, fn):
        return self._dist.invoke_ret("apply_get", gid, fn)

    def apply_set(self, gid, fn) -> None:
        self._dist.invoke("apply_set", gid, fn)

    def _chase(self) -> None:
        # node dereference: lists pay a pointer chase arrays do not
        self.here.charge(self.here.machine.t_access * 0.5)

    def _local_set_element(self, bc, gid, value) -> None:
        self._chase()
        bc.set(gid[1], value)

    def _local_get_element(self, bc, gid):
        self._chase()
        return bc.get(gid[1])

    def _local_apply_get(self, bc, gid, fn):
        self._chase()
        return bc.apply(gid[1], fn)

    def _local_apply_set(self, bc, gid, fn) -> None:
        self._chase()
        bc.apply_set(gid[1], fn)

    # -- sequence interface (Table XVIII / XXIV) -----------------------------
    def push_back(self, value) -> None:
        """Append at the end of the global sequence (last segment)."""
        last = self._dist.partition.size() - 1
        dest = self._dist.mapper.map(last)
        if dest == self.here.id:
            self.here.charge_access()
            self.location_manager.get_bcontainer(last).push_back(value)
            self.here.stats.local_invocations += 1
        else:
            self.here.stats.remote_invocations += 1
            if not self.here.combine_rmi(dest, self.handle, "_remote_push",
                                         True, value):
                self.here.async_rmi(dest, self.handle, "_remote_push",
                                    True, value)

    def push_front(self, value) -> None:
        """Prepend at the beginning of the global sequence (first segment)."""
        dest = self._dist.mapper.map(0)
        if dest == self.here.id:
            self.here.charge_access()
            self.location_manager.get_bcontainer(0).push_front(value)
            self.here.stats.local_invocations += 1
        else:
            self.here.stats.remote_invocations += 1
            if not self.here.combine_rmi(dest, self.handle, "_remote_push",
                                         False, value):
                self.here.async_rmi(dest, self.handle, "_remote_push",
                                    False, value)

    def _remote_push(self, back: bool, value) -> None:
        me = self.group.index_of(self.here.id)
        bc = self.location_manager.get_bcontainer(me)
        self.here.charge_access()
        if back:
            bc.push_back(value)
        else:
            bc.push_front(value)

    def pop_back(self):
        last = self._dist.partition.size() - 1
        return self._pop(self._dist.mapper.map(last), True)

    def pop_front(self):
        return self._pop(self._dist.mapper.map(0), False)

    def _pop(self, dest: int, back: bool):
        loc = self.here
        if dest == loc.id:
            # the end segment is local: no round trip (mirrors push_back's
            # fast path).  Source FIFO: pending self-sends execute first.
            self.runtime.flush_channel(loc.id, loc.id)
            loc.stats.local_invocations += 1
            return self._remote_pop(back)
        loc.stats.remote_invocations += 1
        return loc.sync_rmi(dest, self.handle, "_remote_pop", back)

    def _remote_pop(self, back: bool):
        me = self.group.index_of(self.here.id)
        bc = self.location_manager.get_bcontainer(me)
        if bc.size():
            self.here.charge_access()
            return bc.pop_back() if back else bc.pop_front()
        # this end segment is empty: chase the sequence inwards
        nxt = me - 1 if back else me + 1
        if 0 <= nxt < len(self.group):
            return self._sync(self.group.members[nxt], "_remote_pop", back)
        raise IndexError("pop from empty pList")

    def insert_element(self, gid, value):
        """Synchronous insert before ``gid``; returns the new element's GID."""
        return self._dist.invoke_ret("insert", gid, value)

    def insert_element_async(self, gid, value) -> None:
        """Asynchronous insert before ``gid``."""
        self._dist.invoke("insert", gid, value)

    def erase_element(self, gid):
        return self._dist.invoke_ret("erase", gid)

    def erase_element_async(self, gid) -> None:
        self._dist.invoke("erase", gid)

    def _local_insert(self, bc, gid, value):
        seq = bc.insert_before(gid[1], value)
        return (gid[0], seq)

    def _local_erase(self, bc, gid, *_):
        return bc.erase(gid[1])

    # -- batch interface (combining-buffer clients) ---------------------------
    def push_back_range(self, values) -> None:
        """Append many values at the end of the global sequence; remote
        appends coalesce through the combining buffers (one physical
        message per combining window instead of one RMI per element)."""
        for value in values:
            self.push_back(value)

    def push_front_range(self, values) -> None:
        """Prepend values one by one, exactly like a repeated push_front
        loop: the *last* value ends up at the global front."""
        for value in values:
            self.push_front(value)

    def push_anywhere_range(self, values) -> list:
        """Append many values to the local segment (no communication);
        returns their GIDs."""
        bc = self.location_manager.get_bcontainer(self._my_bcid)
        values = list(values)
        self.here.charge_access(len(values))
        return [(self._my_bcid, bc.push_back(v)) for v in values]

    # -- parallel-use extensions (Ch. V.B) -----------------------------------
    def push_anywhere(self, value):
        """Insert at an unspecified position: the local segment (O(1),
        no communication — the fast path of Fig. 39).  Returns the GID."""
        bc = self.location_manager.get_bcontainer(self._my_bcid)
        self.here.charge_access()
        seq = bc.push_back(value)
        return (self._my_bcid, seq)

    push_anywhere_async = push_anywhere

    def get_anywhere(self):
        """A reference value from the local segment if non-empty, else from
        the first non-empty segment."""
        bc = self.location_manager.get_bcontainer(self._my_bcid)
        if bc.size():
            self.here.charge_access()
            return bc.get(bc.first_seq())
        for lid in self.group.members:
            if lid == self.ctx.id:
                continue
            val = self.here.sync_rmi(lid, self.handle, "_any_local")
            if val is not None:
                return val[0]
        raise IndexError("get_anywhere on empty pList")

    def _any_local(self):
        me = self.group.index_of(self.here.id)
        bc = self.location_manager.get_bcontainer(me)
        if bc.size():
            return (bc.get(bc.first_seq()),)
        return None

    def remove_element(self):
        """Remove an arbitrary (local if possible) element."""
        bc = self.location_manager.get_bcontainer(self._my_bcid)
        if bc.size():
            self.here.charge_access()
            return bc.pop_back()
        raise IndexError("remove_element on empty local segment")

    # -- traversal helpers ----------------------------------------------------
    def local_segment(self) -> ListBC:
        return self.location_manager.get_bcontainer(self._my_bcid)

    def local_gids(self) -> list:
        bc = self.local_segment()
        return [(self._my_bcid, s) for s in bc.seqs()]

    def to_list(self) -> list:
        """Gather all values in global sequence order, one slab per
        (src, dst) pair (collective).  Group order is segment order (bcid
        ``i`` lives on the i-th member), so the allgather order is already
        the global sequence order; empty segments ship nothing."""
        vals = self.local_segment().values()
        gathered = self.ctx.bulk_gather(vals, group=self.group,
                                        nelems=len(vals))
        out = []
        for seg in gathered:
            out.extend(seg or [])
        return out

    def splice_from(self, other: "PList") -> None:
        """Collective splice: move every local segment of ``other`` onto the
        back of this list's local segment (O(local size), no communication
        for aligned groups)."""
        if other.group.members != self.group.members:
            raise ValueError("splice requires identical groups")
        src = other.local_segment()
        dst = self.local_segment()
        n = src.size()
        self.here.charge_access(n)
        while src.size():
            dst.push_back(src.pop_front())
        self.ctx.barrier(self.group)
