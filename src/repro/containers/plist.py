"""pList (Ch. X): distributed doubly-linked list.

Design per Ch. X.C: the global list is an ordered sequence of *segments*
(one ListBC per location by default); element GIDs are stable
``(bcid, seq)`` handles, so address resolution is O(1) arithmetic on the GID
— no directory.  All sequence methods (Table XXIV / XVIII) run in O(1):
``push_back``/``push_front`` target the last/first segment,
``insert``/``erase`` run at the owning segment, and ``push_anywhere``
appends locally (the paper's "new methods facilitating parallel use").
"""

from __future__ import annotations

from ..core.base_containers import ListBC
from ..core.domains import UniverseDomain
from ..core.partitions import ListPartition
from ..core.pcontainer import PContainerDynamic
from ..core.thread_safety import ELEMENT, LOCAL, MDREAD, READ, WRITE
from ..core.traits import Traits


class PList(PContainerDynamic):
    """Distributed list with stable element handles."""

    DEFAULT_LOCKING = {
        "set_element": (ELEMENT, WRITE, MDREAD),
        "get_element": (ELEMENT, READ, MDREAD),
        "apply_get": (ELEMENT, READ, MDREAD),
        "apply_set": (ELEMENT, WRITE, MDREAD),
        "insert": (LOCAL, WRITE, MDREAD),
        "erase": (LOCAL, WRITE, MDREAD),
    }

    #: async ops buffered by the combining path (Ch. III.B); remote pushes
    #: combine through their dedicated fast path below
    COMBINING_METHODS = frozenset(
        {"set_element", "apply_set", "insert", "erase"})

    def __init__(self, ctx, size: int = 0, value=0,
                 traits: Traits | None = None, group=None):
        super().__init__(ctx, traits, group)
        partition = ListPartition(len(self.group))
        self.init(UniverseDomain(), partition, allocate=False)
        me = self.group.index_of(ctx.id)
        self._my_bcid = me
        bc = ListBC(UniverseDomain(), me)
        self.location_manager.add_bcontainer(me, bc)
        # collective construction with `size` initial elements, balanced
        from ..core.partitions import balanced_sizes

        mine = balanced_sizes(size, len(self.group))[me]
        for _ in range(mine):
            bc.push_back(value)
        ctx.charge(ctx.machine.t_access * 0.25 * mine)
        self._cached_size = size
        self._ctor_done()

    def _make_mapper(self):
        from ..core.mappers import CyclicMapper

        return CyclicMapper()  # bcid i -> i-th group member

    # -- element access (GID = (bcid, seq)) ---------------------------------
    def set_element(self, gid, value) -> None:
        self._dist.invoke("set_element", gid, value)

    def get_element(self, gid):
        return self._dist.invoke_ret("get_element", gid)

    def split_phase_get_element(self, gid):
        return self._dist.invoke_opaque_ret("get_element", gid)

    def apply_get(self, gid, fn):
        return self._dist.invoke_ret("apply_get", gid, fn)

    def apply_set(self, gid, fn) -> None:
        self._dist.invoke("apply_set", gid, fn)

    def _chase(self) -> None:
        # node dereference: lists pay a pointer chase arrays do not
        self.here.charge(self.here.machine.t_access * 0.5)

    def _local_set_element(self, bc, gid, value) -> None:
        self._chase()
        bc.set(gid[1], value)

    def _local_get_element(self, bc, gid):
        self._chase()
        return bc.get(gid[1])

    def _local_apply_get(self, bc, gid, fn):
        self._chase()
        return bc.apply(gid[1], fn)

    def _local_apply_set(self, bc, gid, fn) -> None:
        self._chase()
        bc.apply_set(gid[1], fn)

    # -- sequence interface (Table XVIII / XXIV) -----------------------------
    # End pushes/pops address segments by BCID and route through the
    # partition-mapper, so they keep working after segments migrate between
    # locations (a handler finding its segment gone re-routes through the
    # fresh mapper — the bounded chain counted in ``stale_redirects``).

    def _push_end(self, bcid: int, back: bool, value) -> None:
        dest = self._dist.mapper.map(bcid)
        if dest == self.here.id:
            self.here.charge_access()
            self.location_manager.note_access(bcid)
            bc = self.location_manager.get_bcontainer(bcid)
            bc.push_back(value) if back else bc.push_front(value)
            self.here.stats.local_invocations += 1
        else:
            self.here.stats.remote_invocations += 1
            if not self.here.combine_rmi(dest, self.handle, "_remote_push",
                                         bcid, back, value):
                self.here.async_rmi(dest, self.handle, "_remote_push",
                                    bcid, back, value)

    def push_back(self, value) -> None:
        """Append at the end of the global sequence (last segment)."""
        self._push_end(self._dist.partition.size() - 1, True, value)

    def push_front(self, value) -> None:
        """Prepend at the beginning of the global sequence (first segment)."""
        self._push_end(0, False, value)

    def _remote_push(self, bcid: int, back: bool, value) -> None:
        if not self.location_manager.has_bcontainer(bcid):
            # the segment migrated while the push was in flight
            self.here.stats.stale_redirects += 1
            self._push_end(bcid, back, value)
            return
        bc = self.location_manager.get_bcontainer(bcid)
        self.here.charge_access()
        self.location_manager.note_access(bcid)
        if back:
            bc.push_back(value)
        else:
            bc.push_front(value)

    def pop_back(self):
        return self._pop(self._dist.partition.size() - 1, True)

    def pop_front(self):
        return self._pop(0, False)

    def _pop(self, bcid: int, back: bool):
        loc = self.here
        dest = self._dist.mapper.map(bcid)
        if dest == loc.id:
            # the end segment is local: no round trip (mirrors push_back's
            # fast path).  Source FIFO: pending self-sends execute first.
            self.runtime.flush_channel(loc.id, loc.id)
            loc.stats.local_invocations += 1
            return self._remote_pop(bcid, back)
        loc.stats.remote_invocations += 1
        return loc.sync_rmi(dest, self.handle, "_remote_pop", bcid, back)

    def _remote_pop(self, bcid: int, back: bool):
        if not self.location_manager.has_bcontainer(bcid):
            self.here.stats.stale_redirects += 1
            return self._pop(bcid, back)
        bc = self.location_manager.get_bcontainer(bcid)
        if bc.size():
            self.here.charge_access()
            self.location_manager.note_access(bcid)
            return bc.pop_back() if back else bc.pop_front()
        # this end segment is empty: chase the sequence inwards
        nxt = bcid - 1 if back else bcid + 1
        if 0 <= nxt < self._dist.partition.size():
            dest = self._dist.mapper.map(nxt)
            if dest == self.here.id:
                return self._remote_pop(nxt, back)
            return self._sync(dest, "_remote_pop", nxt, back)
        raise IndexError("pop from empty pList")

    def insert_element(self, gid, value):
        """Synchronous insert before ``gid``; returns the new element's GID."""
        return self._dist.invoke_ret("insert", gid, value)

    def insert_element_async(self, gid, value) -> None:
        """Asynchronous insert before ``gid``."""
        self._dist.invoke("insert", gid, value)

    def erase_element(self, gid):
        return self._dist.invoke_ret("erase", gid)

    def erase_element_async(self, gid) -> None:
        self._dist.invoke("erase", gid)

    def _local_insert(self, bc, gid, value):
        seq = bc.insert_before(gid[1], value)
        return (gid[0], seq)

    def _local_erase(self, bc, gid, *_):
        return bc.erase(gid[1])

    # -- batch interface (combining-buffer clients) ---------------------------
    def push_back_range(self, values) -> None:
        """Append many values at the end of the global sequence; remote
        appends coalesce through the combining buffers (one physical
        message per combining window instead of one RMI per element)."""
        for value in values:
            self.push_back(value)

    def push_front_range(self, values) -> None:
        """Prepend values one by one, exactly like a repeated push_front
        loop: the *last* value ends up at the global front."""
        for value in values:
            self.push_front(value)

    def push_anywhere_range(self, values) -> list:
        """Append many values to a local segment (no communication while
        one is local); returns their GIDs."""
        bc = self._local_segment_or_none()
        values = list(values)
        if bc is None:
            return [self.push_anywhere(v) for v in values]
        self.here.charge_access(len(values))
        bcid = bc.get_bcid()
        self.location_manager.note_access(bcid, len(values))
        return [(bcid, bc.push_back(v)) for v in values]

    # -- parallel-use extensions (Ch. V.B) -----------------------------------
    def push_anywhere(self, value):
        """Insert at an unspecified position: a local segment (O(1), no
        communication — the fast path of Fig. 39), or — when every segment
        migrated away — the current owner of this location's home segment.
        Returns the GID."""
        bc = self._local_segment_or_none()
        if bc is None:
            self.here.stats.remote_invocations += 1
            return self._sync(self._dist.mapper.map(self._my_bcid),
                              "_push_anywhere_at", self._my_bcid, value)
        self.here.charge_access()
        bcid = bc.get_bcid()
        self.location_manager.note_access(bcid)
        seq = bc.push_back(value)
        return (bcid, seq)

    push_anywhere_async = push_anywhere

    def _push_anywhere_at(self, bcid: int, value):
        if not self.location_manager.has_bcontainer(bcid):
            self.here.stats.stale_redirects += 1
            return self._sync(self._dist.mapper.map(bcid),
                              "_push_anywhere_at", bcid, value)
        self.here.charge_access()
        self.location_manager.note_access(bcid)
        return (bcid, self.location_manager.get_bcontainer(bcid)
                          .push_back(value))

    def get_anywhere(self):
        """A reference value from a local segment if non-empty, else from
        the first non-empty segment."""
        for bc in self.location_manager.ordered():
            if bc.size():
                self.here.charge_access()
                return bc.get(bc.first_seq())
        for lid in self.group.members:
            if lid == self.ctx.id:
                continue
            val = self.here.sync_rmi(lid, self.handle, "_any_local")
            if val is not None:
                return val[0]
        raise IndexError("get_anywhere on empty pList")

    def _any_local(self):
        for bc in self.location_manager.ordered():
            if bc.size():
                return (bc.get(bc.first_seq()),)
        return None

    def remove_element(self):
        """Remove an arbitrary (local if possible) element."""
        for bc in self.location_manager.ordered():
            if bc.size():
                self.here.charge_access()
                return bc.pop_back()
        raise IndexError("remove_element on empty local segment")

    # -- traversal helpers ----------------------------------------------------
    def _local_segment_or_none(self):
        """This location's home segment if still local, else any local
        segment (segments move between locations under migration)."""
        lm = self.location_manager
        if lm.has_bcontainer(self._my_bcid):
            return lm.get_bcontainer(self._my_bcid)
        for bc in lm.ordered():
            return bc
        return None

    def local_segment(self) -> ListBC:
        bc = self._local_segment_or_none()
        if bc is None:
            raise LookupError(
                "no local segment on this location (all migrated away)")
        return bc

    def local_segments(self) -> list:
        return self.location_manager.ordered()

    def local_gids(self) -> list:
        return [(bc.get_bcid(), s)
                for bc in self.location_manager.ordered()
                for s in bc.seqs()]

    def to_list(self) -> list:
        """Gather all values in global sequence order, one slab per
        (src, dst) pair (collective).  Segments are shipped tagged with
        their BCID (the global sequence is BCID order), so the gather is
        placement-independent — correct before and after migration."""
        local = [(bc.get_bcid(), bc.values())
                 for bc in self.location_manager.ordered() if bc.size()]
        gathered = self.ctx.bulk_gather(
            local, group=self.group,
            nelems=sum(len(vals) for _, vals in local))
        segments = {}
        for chunk in gathered:
            for bcid, vals in chunk or []:
                segments[bcid] = vals
        out = []
        for bcid in sorted(segments):
            out.extend(segments[bcid])
        return out

    def splice_from(self, other: "PList") -> None:
        """Collective splice: move every local segment of ``other`` onto the
        back of this list's local segment (O(local size), no communication
        for aligned groups)."""
        if other.group.members != self.group.members:
            raise ValueError("splice requires identical groups")
        dst = self.local_segment()
        for src in other.local_segments():
            n = src.size()
            self.here.charge_access(n)
            while src.size():
                dst.push_back(src.pop_front())
        self.ctx.barrier(self.group)
