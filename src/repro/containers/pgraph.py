"""pGraph (Ch. XI): distributed adjacency-list graph.

Relational pContainer: elements are vertices, relations are edges (Table
XVII interface).  Vertex descriptors are integers; edges live with their
source vertex.  Three address-translation regimes reproduce Fig. 51/52:

* **static** — vertex ids are pre-assigned in blocked ranges; resolution is
  closed-form (``add_vertex`` asserts, as in Fig. 16's ``pg_static``);
* **dynamic + forwarding** — a distributed directory owns GID → BCID
  entries; requests issued away from an entry's home are forwarded as
  one-way traffic;
* **dynamic, no forwarding** — the directory is interrogated with a
  synchronous round trip before the request is sent to the owner.

``DIRECTED``/``UNDIRECTED`` and ``MULTI``/``NO-MULTI`` follow Fig. 15's
template parameters.
"""

from __future__ import annotations

from ..core.base_containers import GraphBC
from ..core.domains import RangeDomain, UniverseDomain
from ..core.partitions import BalancedPartition, DirectoryPartition
from ..core.pcontainer import PContainerDynamic
from ..core.thread_safety import BCONTAINER, ELEMENT, MDREAD, READ, WRITE
from ..core.traits import Traits

DIRECTED = "directed"
UNDIRECTED = "undirected"


class VertexRef:
    """Vertex reference (Table XXV): descriptor + property access + edge
    enumeration, routed through the owning pGraph's shared-object view."""

    __slots__ = ("_graph", "vd")

    def __init__(self, graph, vd):
        self._graph = graph
        self.vd = vd

    def descriptor(self):
        return self.vd

    @property
    def property(self):
        return self._graph.vertex_property(self.vd)

    @property.setter
    def property(self, vp) -> None:
        self._graph.set_vertex_property(self.vd, vp)

    def out_degree(self) -> int:
        return self._graph.out_degree(self.vd)

    def adjacents(self) -> list:
        return self._graph.adjacents(self.vd)

    def edges(self) -> list:
        """Outgoing edge references."""
        return [EdgeRef(self._graph, s, t, p)
                for (s, t, p) in self._graph.edges_of(self.vd)]

    def __repr__(self):
        return f"VertexRef({self.vd})"


class EdgeRef:
    """Edge reference (Table XXVI): (source, target) descriptor pair plus
    property access."""

    __slots__ = ("_graph", "source", "target", "_property")

    def __init__(self, graph, source, target, prop=None):
        self._graph = graph
        self.source = source
        self.target = target
        self._property = prop

    def descriptor(self) -> tuple:
        return (self.source, self.target)

    @property
    def property(self):
        return self._property

    def opposite(self, vd):
        """The endpoint other than ``vd``."""
        return self.target if vd == self.source else self.source

    def __repr__(self):
        return f"EdgeRef({self.source}->{self.target})"


class PGraph(PContainerDynamic):
    """Distributed graph container."""

    DEFAULT_LOCKING = {
        "add_vertex": (BCONTAINER, WRITE, MDREAD),
        "delete_vertex": (BCONTAINER, WRITE, MDREAD),
        "add_edge": (ELEMENT, WRITE, MDREAD),
        "delete_edge": (ELEMENT, WRITE, MDREAD),
        "vertex_property": (ELEMENT, READ, MDREAD),
        "set_vertex_property": (ELEMENT, WRITE, MDREAD),
        "apply_vertex": (ELEMENT, WRITE, MDREAD),
        "out_degree": (ELEMENT, READ, MDREAD),
        "adjacents": (ELEMENT, READ, MDREAD),
        "edges_of": (ELEMENT, READ, MDREAD),
        "has_vertex": (ELEMENT, READ, MDREAD),
        "has_edge": (ELEMENT, READ, MDREAD),
    }

    #: async ops buffered by the combining path (Ch. III.B)
    COMBINING_METHODS = frozenset(
        {"add_edge", "set_vertex_property", "apply_vertex"})

    def __init__(self, ctx, num_vertices: int = 0, directed: str = DIRECTED,
                 multi_edges: bool = True, dynamic: bool = False,
                 forwarding: bool = True, default_property=None,
                 num_bcontainers: int | None = None,
                 traits: Traits | None = None, group=None):
        super().__init__(ctx, traits, group)
        self.directed = directed == DIRECTED or directed is True
        self.multi_edges = multi_edges
        self.dynamic = dynamic
        self._default_property = default_property
        P = len(self.group)
        me = self.group.index_of(ctx.id)
        if dynamic:
            # over-decomposition (``num_bcontainers`` > P, default P):
            # several directory sub-domains per location gives the
            # load-driven rebalancer units it can actually move
            nbc = num_bcontainers if num_bcontainers else P
            partition = DirectoryPartition(nbc, forwarding=forwarding)
            self.init(UniverseDomain(), partition, allocate=False)
            self._rr = 0
            local = self._dist.mapper.get_local_cids(ctx.id)
            populated = 0
            for bcid in local:
                bc = GraphBC(UniverseDomain(), bcid, multi_edges=multi_edges)
                self.location_manager.add_bcontainer(bcid, bc)
                # pre-populate `num_vertices` vertices, ids blocked over
                # the BCID space, registering each with its directory home
                lo = _block_lo(num_vertices, nbc, bcid)
                hi = _block_lo(num_vertices, nbc, bcid + 1)
                for vd in range(lo, hi):
                    bc.add_vertex(vd, default_property)
                    self._register_vd(vd, bcid)
                populated += hi - lo
            self._next_local_vd = num_vertices + me
            ctx.charge(ctx.machine.t_access * populated)
        else:
            partition = BalancedPartition(P)
            self.init(RangeDomain(0, num_vertices), partition,
                      allocate=False)
            for bcid in self._dist.mapper.get_local_cids(ctx.id):
                sub = self._dist.partition.get_sub_domain(bcid)
                bc = GraphBC(sub, bcid, multi_edges=multi_edges)
                for vd in sub:
                    bc.add_vertex(vd, default_property)
                self.location_manager.add_bcontainer(bcid, bc)
                ctx.charge(ctx.machine.t_access * sub.size())
        self._cached_size = num_vertices
        if dynamic:
            # directory registrations travel as async RMIs: complete them
            # before any location leaves the (collective) constructor
            ctx.rmi_fence(self.group)
        else:
            self._ctor_done()

    # -- directory helpers ----------------------------------------------------
    def _register_vd(self, vd, bcid) -> None:
        part = self._dist.partition
        home_bcid = part.home_bcid(vd)
        home_loc = self._dist.mapper.map(home_bcid)
        if home_loc == self.here.id:
            part.register_gid(vd, bcid)
            self._dist._cache.store(vd, bcid)
        else:
            self._async(home_loc, "_dir_register", vd, bcid)

    def _unregister_vd(self, vd) -> None:
        part = self._dist.partition
        home_loc = self._dist.mapper.map(part.home_bcid(vd))
        if home_loc == self.here.id:
            part.unregister_gid(vd)
            self._dist._cache.discard(vd)
        else:
            self._async(home_loc, "_dir_unregister", vd)

    # -- vertex methods (Table XVII) --------------------------------------------
    def _place_vertex(self, vd, vp) -> None:
        """Store a new vertex in a local bContainer (round-robin over the
        local BCIDs) and register it with its directory home.  When every
        bContainer migrated away, the vertex is shipped to the current
        owner of this location's original sub-domain."""
        loc = self.here
        bcids = self.location_manager.bcids()
        prop = vp if vp is not None else self._default_property
        if not bcids:
            me = self.group.index_of(loc.id)
            bcid = me % self._dist.partition.size()
            loc.stats.remote_invocations += 1
            self._sync(self._dist.mapper.map(bcid), "_add_vertex_at",
                       bcid, vd, prop)
            return
        self._rr = (self._rr + 1) % len(bcids)
        bcid = bcids[self._rr]
        loc.charge_access()
        self.location_manager.note_access(bcid)
        self.location_manager.get_bcontainer(bcid).add_vertex(vd, prop)
        self._register_vd(vd, bcid)

    def _add_vertex_at(self, bcid, vd, prop) -> None:
        if not self.location_manager.has_bcontainer(bcid):
            self.here.stats.stale_redirects += 1
            self._sync(self._dist.mapper.map(bcid), "_add_vertex_at",
                       bcid, vd, prop)
            return
        self.here.charge_access()
        self.location_manager.note_access(bcid)
        self.location_manager.get_bcontainer(bcid).add_vertex(vd, prop)
        self._register_vd(vd, bcid)

    def add_vertex(self, vp=None):
        """Add a vertex with a locally-allocated descriptor; returns the
        descriptor.  Only valid on dynamic graphs (static asserts)."""
        if not self.dynamic:
            raise AssertionError(
                "add_vertex on a static pGraph (fixed vertex set)")
        vd = self._next_local_vd
        self._next_local_vd += len(self.group)
        self._place_vertex(vd, vp)
        return vd

    def add_vertex_with(self, vd, vp=None) -> None:
        """Add a vertex with an explicit descriptor (dynamic graphs)."""
        if not self.dynamic:
            raise AssertionError("add_vertex on a static pGraph")
        self._place_vertex(vd, vp)

    def delete_vertex(self, vd) -> None:
        """Delete a vertex and its out-edges.  Per the paper this is *not* a
        transaction: vertex removal and directory update are individually
        atomic but the composite is not."""
        self._dist.invoke("delete_vertex", vd)
        if self.dynamic:
            self._unregister_vd(vd)

    def has_vertex(self, vd) -> bool:
        if self.dynamic:
            part = self._dist.partition
            home_loc = self._dist.mapper.map(part.home_bcid(vd))
            if home_loc == self.here.id:
                return part.lookup(vd) is not None
            return self._sync(home_loc, "_dir_lookup", vd) is not None
        return self._dist.partition.get_domain().contains_gid(vd)

    def find_vertex(self, vd):
        """Synchronous vertex fetch: (property, adjacency list) or None."""
        try:
            return self._dist.invoke_ret("find_vertex_record", vd)
        except KeyError:
            return None

    def vertex_ref(self, vd) -> "VertexRef":
        """Vertex reference handle (Table XXV); raises for unknown vertices."""
        if not self.has_vertex(vd):
            raise KeyError(f"no vertex {vd}")
        return VertexRef(self, vd)

    def vertex_property(self, vd):
        return self._dist.invoke_ret("vertex_property", vd)

    def set_vertex_property(self, vd, vp) -> None:
        self._dist.invoke("set_vertex_property", vd, vp)

    def apply_vertex(self, vd, fn) -> None:
        """Asynchronous vertex visitor: ``fn(vertex_record)`` runs at the
        owner — the workhorse of level-synchronous graph algorithms."""
        self._dist.invoke("apply_vertex", vd, fn)

    def apply_vertex_get(self, vd, fn):
        """Synchronous visitor returning ``fn(vertex_record)``."""
        return self._dist.invoke_ret("apply_vertex", vd, fn)

    # -- edge methods ------------------------------------------------------------
    def add_edge_async(self, src, tgt, ep=None) -> None:
        """Add edge src→tgt asynchronously (and tgt→src if undirected)."""
        self._dist.invoke("add_edge", src, tgt, ep)
        if not self.directed and src != tgt:
            self._dist.invoke("add_edge", tgt, src, ep)

    def add_edges_batch(self, edges) -> None:
        """Asynchronously add many edges — ``(src, tgt)`` or
        ``(src, tgt, prop)`` tuples; remote insertions coalesce through the
        combining buffers (one physical message per combining window)."""
        for edge in edges:
            src, tgt = edge[0], edge[1]
            ep = edge[2] if len(edge) > 2 else None
            self.add_edge_async(src, tgt, ep)

    def add_edge(self, src, tgt, ep=None) -> bool:
        """Synchronous edge insertion; returns False for duplicate edges on
        no-multi graphs."""
        ok = self._dist.invoke_ret("add_edge", src, tgt, ep)
        if not self.directed and src != tgt:
            self._dist.invoke_ret("add_edge", tgt, src, ep)
        return ok

    def delete_edge(self, src, tgt) -> bool:
        ok = self._dist.invoke_ret("delete_edge", src, tgt)
        if not self.directed and src != tgt:
            self._dist.invoke_ret("delete_edge", tgt, src)
        return ok

    def has_edge(self, src, tgt) -> bool:
        return self._dist.invoke_ret("has_edge", src, tgt)

    def find_edge(self, src, tgt):
        """(property list) of edges src→tgt, or None."""
        return self._dist.invoke_ret("find_edge", src, tgt)

    def out_degree(self, vd) -> int:
        return self._dist.invoke_ret("out_degree", vd)

    def adjacents(self, vd) -> list:
        return self._dist.invoke_ret("adjacents", vd)

    def edges_of(self, vd) -> list:
        return self._dist.invoke_ret("edges_of", vd)

    def _gid_resident(self, bc, gid) -> bool:
        """Stale-route detection for cache-resolved requests: the vertex
        must actually live in the targeted bContainer (it may have been
        deleted and re-registered elsewhere since the cache entry was
        made)."""
        return bc.has_vertex(gid)

    # -- local handlers -------------------------------------------------------------
    def _local_add_edge(self, bc, src, tgt, ep=None):
        return bc.add_edge(src, tgt, ep)

    def _local_delete_edge(self, bc, src, tgt=None):
        return bc.delete_edge(src, tgt)

    def _local_has_edge(self, bc, src, tgt=None):
        return bc.has_edge(src, tgt)

    def _local_find_edge(self, bc, src, tgt=None):
        if not bc.has_edge(src, tgt):
            return None
        return bc._vertices[src].adj[tgt]

    def _local_delete_vertex(self, bc, vd):
        return bc.delete_vertex(vd)

    def _local_find_vertex_record(self, bc, vd):
        if not bc.has_vertex(vd):
            return None
        return (bc.vertex_property(vd), bc.adjacents(vd))

    def _local_vertex_property(self, bc, vd):
        return bc.vertex_property(vd)

    def _local_set_vertex_property(self, bc, vd, vp) -> None:
        bc.set_vertex_property(vd, vp)

    def _local_apply_vertex(self, bc, vd, fn):
        return bc.apply_vertex(vd, fn)

    def _local_out_degree(self, bc, vd):
        return bc.out_degree(vd)

    def _local_adjacents(self, bc, vd):
        return bc.adjacents(vd)

    def _local_edges_of(self, bc, vd):
        return bc.edges_of(vd)

    # -- global properties (lazy, Ch. VII.G) ------------------------------------
    def get_num_vertices(self) -> int:
        return self._cached_size

    def num_vertices_sync(self) -> int:
        self._cached_size = self.ctx.allreduce_rmi(
            self.local_size(), group=self.group)
        return self._cached_size

    def get_local_num_edges(self) -> int:
        return sum(bc.num_edges() for bc in self.local_bcontainers())

    def get_num_edges(self) -> int:
        return self.ctx.allreduce_rmi(self.get_local_num_edges(),
                                      group=self.group)

    # -- traversal helpers ------------------------------------------------------
    def local_vertices(self) -> list:
        out = []
        for bc in self.local_bcontainers():
            out.extend(bc.vertices())
        return out

    def local_vertex_records(self):
        for bc in self.local_bcontainers():
            yield from bc.vertex_records()

    def local_edges(self) -> list:
        out = []
        for bc in self.local_bcontainers():
            for vd in bc.vertices():
                out.extend(bc.edges_of(vd))
        return out


def _block_lo(n: int, p: int, i: int) -> int:
    base, rem = divmod(n, p)
    return i * base + min(i, rem)
