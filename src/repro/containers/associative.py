"""Associative pContainer base (Ch. XII, Tables XVI/XXVIII, Fig. 57).

Key/value containers: the key *is* the GID, so address resolution is a pure
function of the key — ``stable_hash(key) % m`` for hashed containers
(amortised O(1)) or splitter bisection for sorted containers (Fig. 58's
value-based partition, O(log m)).  The interface follows the paper:
``insert`` (async), ``find``/``find_val`` (sync), ``split_phase_find``,
``erase_async``, plus combining ``data_apply``/``accumulate`` used by
MapReduce.

All asynchronous element ops ride the runtime's combining buffers
(Ch. III.B): records destined to the same location ship as one bulk
message per combining window instead of one RMI per element.  The batch
interface (``insert_range`` / ``accumulate_batch`` / ``erase_batch``) is
the idiomatic client of that path, and ``to_dict``/``sorted_items`` gather
through per-location slabs (``bulk_gather``).
"""

from __future__ import annotations

from ..core.base_containers import MapBC, MultiMapBC, SetBC
from ..core.domains import UniverseDomain
from ..core.partitions import HashPartition, RangePartition
from ..core.pcontainer import PContainerDynamic
from ..core.thread_safety import BCONTAINER, ELEMENT, MDREAD, READ, WRITE
from ..core.traits import Traits


class AssociativeBase(PContainerDynamic):
    """Common machinery for all six associative containers."""

    DEFAULT_LOCKING = {
        "insert": (BCONTAINER, WRITE, MDREAD),
        "set": (ELEMENT, WRITE, MDREAD),
        "get": (ELEMENT, READ, MDREAD),
        "find": (ELEMENT, READ, MDREAD),
        "erase": (BCONTAINER, WRITE, MDREAD),
        "apply_get": (ELEMENT, READ, MDREAD),
        "apply_set": (ELEMENT, WRITE, MDREAD),
        "accumulate": (ELEMENT, WRITE, MDREAD),
        "count": (ELEMENT, READ, MDREAD),
        "contains": (ELEMENT, READ, MDREAD),
    }

    #: sorted containers keep per-bContainer key order
    sorted_order = False

    #: async ops buffered by the combining path (Ch. III.B)
    COMBINING_METHODS = frozenset(
        {"insert", "set", "accumulate", "erase", "apply_set"})

    def __init__(self, ctx, partition=None, splitters=None,
                 num_bcontainers: int | None = None,
                 traits: Traits | None = None, group=None):
        super().__init__(ctx, traits, group)
        if partition is None:
            if splitters is not None:
                partition = RangePartition(splitters)
            else:
                # over-decomposition (``num_bcontainers`` > #locations,
                # default one bucket per location): several hash buckets
                # per location gives load-driven ``rebalance()`` units it
                # can move independently
                partition = HashPartition(num_bcontainers
                                          or len(self.group))
        self.init(UniverseDomain(), partition, allocate=False)
        for bcid in self._dist.mapper.get_local_cids(ctx.id):
            sub = self._dist.partition.get_sub_domain(bcid)
            self.location_manager.add_bcontainer(
                bcid, self._make_bcontainer(sub, bcid))
        self._cached_size = 0
        self._ctor_done()

    # -- core interface (Table XVI) ------------------------------------------
    def insert(self, key, value=None) -> None:
        """Asynchronous insert (does not overwrite an existing key)."""
        self._dist.invoke("insert", key, value)

    def insert_sync(self, key, value=None) -> bool:
        """Synchronous insert; returns True if the key was newly created."""
        return self._dist.invoke_ret("insert", key, value)

    def set_element(self, key, value) -> None:
        """Asynchronous overwrite-or-insert (operator[] assignment)."""
        self._dist.invoke("set", key, value)

    def find(self, key):
        """Synchronous lookup; returns value or raises KeyError."""
        value, ok = self._dist.invoke_ret("find", key)
        if not ok:
            raise KeyError(key)
        return value

    def find_val(self, key):
        """(value, bool) pair — the paper's non-throwing find."""
        return self._dist.invoke_ret("find", key)

    def split_phase_find(self, key):
        """``pc_future`` resolving to the (value, bool) pair."""
        return self._dist.invoke_opaque_ret("find", key)

    def contains(self, key) -> bool:
        return self._dist.invoke_ret("contains", key)

    def count(self, key) -> int:
        return self._dist.invoke_ret("count", key)

    def erase_async(self, key) -> None:
        self._dist.invoke("erase", key)

    def erase(self, key) -> int:
        """Synchronous erase; returns number of elements removed."""
        return self._dist.invoke_ret("erase", key)

    def apply_get(self, key, fn):
        return self._dist.invoke_ret("apply_get", key, fn)

    def apply_set(self, key, fn) -> None:
        self._dist.invoke("apply_set", key, fn)

    def accumulate(self, key, value) -> None:
        """Combining update: ``data[key] += value`` (MapReduce reducer)."""
        self._dist.invoke("accumulate", key, value)

    def __contains__(self, key) -> bool:
        return self.contains(key)

    # -- batch interface (combining-buffer clients) ---------------------------
    # Each op is still resolved and charged per key (lookup + locking), but
    # remote records coalesce into one physical message per combining
    # window; with ``set_combining(False)`` these degrade to one RMI per
    # element, which is exactly what the ablation measures.

    def insert_range(self, items) -> None:
        """Asynchronously insert many ``(key, value)`` pairs."""
        for key, value in items:
            self.insert(key, value)

    def accumulate_batch(self, items) -> None:
        """Combining update for many ``(key, delta)`` pairs (the MapReduce
        reducer's bulk path)."""
        for key, value in items:
            self.accumulate(key, value)

    def erase_batch(self, keys) -> None:
        """Asynchronously erase many keys."""
        for key in keys:
            self.erase_async(key)

    # -- local handlers --------------------------------------------------------
    def _local_insert(self, bc, key, value):
        return bc.insert(key, value)

    def _local_set(self, bc, key, value) -> None:
        bc.set(key, value)

    def _local_get(self, bc, key):
        return bc.get(key)

    def _local_find(self, bc, key):
        return bc.find(key)

    def _local_contains(self, bc, key) -> bool:
        return bc.contains(key)

    def _local_count(self, bc, key) -> int:
        return bc.count(key) if hasattr(bc, "count") else (
            1 if bc.contains(key) else 0)

    def _local_erase(self, bc, key):
        return bc.erase(key)

    def _local_apply_get(self, bc, key, fn):
        return bc.apply(key, fn)

    def _local_apply_set(self, bc, key, fn) -> None:
        bc.apply_set(key, fn)

    def _local_accumulate(self, bc, key, value) -> None:
        bc.accumulate(key, value)

    # -- iteration / gathering ---------------------------------------------------
    def local_items(self) -> list:
        out = []
        for bc in self.local_bcontainers():
            out.extend(bc.items())
        return out

    def local_keys(self) -> list:
        out = []
        for bc in self.local_bcontainers():
            out.extend(bc.keys())
        return out

    def to_dict(self) -> dict:
        """Gather all items on every location as one slab per (src, dst)
        pair (collective)."""
        local = self.local_items()
        gathered = self.ctx.bulk_gather(local, group=self.group,
                                        nelems=len(local))
        out = {}
        for items in gathered:
            for k, v in items:
                out[k] = v
        return out

    def sorted_items(self) -> list:
        """Globally key-ordered items (meaningful with a RangePartition,
        whose sub-domain order follows the key order, Fig. 58)."""
        local = [(bc.get_bcid(), bc.items())
                 for bc in self.local_bcontainers() if bc.size()]
        gathered = self.ctx.bulk_gather(local, group=self.group,
                                        nelems=self.local_size())
        per_bcid = {}
        for chunk in gathered:
            for bcid, items in chunk:
                per_bcid[bcid] = items
        out = []
        for bcid in sorted(per_bcid):
            out.extend(sorted(per_bcid[bcid]) if self.sorted_order
                       else per_bcid[bcid])
        return out


class _SetMixin:
    """Simple associative containers: key == value (Fig. 5 taxonomy)."""

    def insert(self, key, value=None) -> None:  # noqa: D102 - inherited doc
        self._dist.invoke("insert", key, value)

    def insert_range(self, keys) -> None:
        """Asynchronously insert many keys (key == value)."""
        for key in keys:
            self.insert(key)


class PMap(AssociativeBase):
    """Sorted pair-associative container (std::map analogue).

    With ``splitters`` it uses the value-based range partition of Fig. 58,
    giving a globally sorted enumeration; otherwise keys are hash-partitioned
    and only per-bContainer order is sorted.
    """

    sorted_order = True

    def _default_bcontainer(self, subdomain, bcid):
        return MapBC(subdomain, bcid, sorted_order=True)


class PMultiMap(PMap):
    """Sorted pair-associative container with duplicate keys."""

    def _default_bcontainer(self, subdomain, bcid):
        return MultiMapBC(subdomain, bcid, sorted_order=True)


class PHashMap(AssociativeBase):
    """Hashed pair-associative container (amortised O(1) methods)."""

    def _default_bcontainer(self, subdomain, bcid):
        return MapBC(subdomain, bcid, sorted_order=False)


class PSet(_SetMixin, AssociativeBase):
    """Sorted simple associative container."""

    sorted_order = True

    def _default_bcontainer(self, subdomain, bcid):
        return SetBC(subdomain, bcid, sorted_order=True)


class PMultiSet(_SetMixin, AssociativeBase):
    """Sorted simple associative container with duplicates."""

    sorted_order = True

    def _default_bcontainer(self, subdomain, bcid):
        return SetBC(subdomain, bcid, sorted_order=True, multi=True)


class PHashSet(_SetMixin, AssociativeBase):
    """Hashed simple associative container."""

    def _default_bcontainer(self, subdomain, bcid):
        return SetBC(subdomain, bcid, sorted_order=False)
