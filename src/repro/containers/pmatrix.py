"""pMatrix: two-dimensional indexed pContainer (Ch. V.F, [15]).

GIDs are (row, col) pairs over a :class:`Range2DDomain`; the default
partition is a near-square processor grid of dense 2D blocks; row-, column-
and linearised views are provided in :mod:`repro.views.matrix_views`.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.base_containers import Matrix2DBC
from ..core.domains import Range2DDomain
from ..core.partitions import Matrix2DPartition
from ..core.pcontainer import SLAB_ACCESS_FACTOR, PContainerIndexed
from ..core.redistribution import RedistributableMixin
from ..core.traits import Traits
from ..runtime.comm import mp_zero_copy_enabled


def default_grid(p: int) -> tuple:
    """Near-square (pr, pc) grid with pr*pc == p."""
    pr = int(math.sqrt(p))
    while pr > 1 and p % pr:
        pr -= 1
    return pr, p // pr


class PMatrix(RedistributableMixin, PContainerIndexed):
    """Distributed dense matrix."""

    def __init__(self, ctx, rows: int, cols: int, value=0.0, partition=None,
                 traits: Traits | None = None, group=None, dtype=float,
                 order: str = "row"):
        super().__init__(ctx, traits, group)
        domain = Range2DDomain((0, 0), (rows, cols), order=order)
        self._fill_value = value
        self._dtype = dtype
        if partition is None:
            pr, pc = default_grid(len(self.group))
            partition = Matrix2DPartition(pr, pc)
        self.init(domain, partition)
        self._cached_size = domain.size()
        self._ctor_done()

    def _default_bcontainer(self, subdomain, bcid):
        return Matrix2DBC(subdomain, bcid, fill=self._fill_value,
                          dtype=self._dtype)

    # -- shape ------------------------------------------------------------
    @property
    def domain(self) -> Range2DDomain:
        return self._dist.partition.get_domain()

    @property
    def rows(self) -> int:
        return self.domain.rows

    @property
    def cols(self) -> int:
        return self.domain.cols

    # -- bulk block transport (2D range accessors) --------------------------
    def _block_pieces(self, r0, r1, c0, c1):
        """(bcid, rr0, rr1, cc0, cc1) for every sub-block intersecting the
        rectangle ``[r0, r1) x [c0, c1)``."""
        p = self._dist.partition
        pieces = []
        for bcid in range(p.size()):
            sub = p.get_sub_domain(bcid)
            rr0, rr1 = max(r0, sub.r0), min(r1, sub.r1)
            cc0, cc1 = max(c0, sub.c0), min(c1, sub.c1)
            if rr0 < rr1 and cc0 < cc1:
                pieces.append((bcid, rr0, rr1, cc0, cc1))
        return pieces

    def _check_block(self, r0, r1, c0, c1) -> None:
        dom = self.domain
        if r0 < dom.r0 or r1 > dom.r1 or c0 < dom.c0 or c1 > dom.c1:
            raise IndexError(
                f"block [{r0},{r1}) x [{c0},{c1}) outside {dom}")

    def get_block(self, r0, r1, c0, c1) -> np.ndarray:
        """Gather the dense rectangle ``[r0, r1) x [c0, c1)``: one bulk
        round trip per remotely-owned sub-block."""
        if r1 > r0 and c1 > c0:
            self._check_block(r0, r1, c0, c1)
        loc = self.here
        out = np.zeros((max(0, r1 - r0), max(0, c1 - c0)), dtype=self._dtype)
        mapper = self._dist.mapper
        for bcid, rr0, rr1, cc0, cc1 in self._block_pieces(r0, r1, c0, c1):
            owner = mapper.map(bcid)
            n = (rr1 - rr0) * (cc1 - cc0)
            block = self._piece_transfer(
                owner, n,
                lambda: self.location_manager.get_bcontainer(bcid)
                            .get_block(rr0, rr1, cc0, cc1),
                lambda: loc.bulk_get_range(
                    owner, self.handle, "_bulk_get_block",
                    bcid, rr0, rr1, cc0, cc1, nelems=n))
            out[rr0 - r0:rr1 - r0, cc0 - c0:cc1 - c0] = block
        return out

    def set_block(self, r0, c0, block) -> None:
        """Scatter a dense block whose top-left corner is ``(r0, c0)``;
        remote sub-blocks are asynchronous (complete at the next fence)."""
        loc = self.here
        block = np.asarray(block)
        r1, c1 = r0 + block.shape[0], c0 + block.shape[1]
        if block.size:
            self._check_block(r0, r1, c0, c1)
        mapper = self._dist.mapper
        for bcid, rr0, rr1, cc0, cc1 in self._block_pieces(r0, r1, c0, c1):
            owner = mapper.map(bcid)
            piece = block[rr0 - r0:rr1 - r0, cc0 - c0:cc1 - c0]
            self._piece_transfer(
                owner, piece.size,
                lambda: self.location_manager.get_bcontainer(bcid)
                            .set_block(rr0, cc0, piece),
                lambda: loc.bulk_set_range(
                    owner, self.handle, "_bulk_set_block",
                    bcid, rr0, cc0, piece, nelems=piece.size))

    def _bulk_get_block(self, bcid, r0, r1, c0, c1):
        loc = self.here
        loc.charge(loc.machine.t_access * SLAB_ACCESS_FACTOR
                   * (r1 - r0) * (c1 - c0))
        bc = self.location_manager.get_bcontainer(bcid)
        rt = self.runtime
        if (not rt.shared_address_space and mp_zero_copy_enabled()
                and rt.current_origin != self.here.id):
            # cross-process bulk reply: same zero-copy seam as
            # PContainer._bulk_get_range (see there for the safety rules)
            ref = getattr(bc, "get_block_ref", None)
            if ref is not None:
                return ref(r0, r1, c0, c1)
        return bc.get_block(r0, r1, c0, c1)

    def _bulk_set_block(self, bcid, r0, c0, block) -> None:
        loc = self.here
        loc.charge(loc.machine.t_access * SLAB_ACCESS_FACTOR
                   * np.asarray(block).size)
        self.location_manager.get_bcontainer(bcid).set_block(r0, c0, block)

    # -- row/column access (one slab per owning block) ----------------------
    def get_row(self, r) -> list:
        """Gather row ``r`` (one bulk fetch per owning block)."""
        dom = self.domain
        return self.get_block(r, r + 1, dom.c0, dom.c1).ravel().tolist()

    def get_col(self, c) -> list:
        """Gather column ``c`` (one bulk fetch per owning block)."""
        dom = self.domain
        return self.get_block(dom.r0, dom.r1, c, c + 1).ravel().tolist()

    def to_nested(self) -> list:
        """Gather the full matrix as a list of rows (collective; test aid)."""
        local = []
        for bc in self.local_bcontainers():
            d = bc.domain
            local.append(((d.r0, d.c0), bc.values().tolist()))
        gathered = self.ctx.allgather_rmi(local, group=self.group)
        out = [[None] * self.cols for _ in range(self.rows)]
        for per_loc in gathered:
            for (r0, c0), block in per_loc:
                for i, rowvals in enumerate(block):
                    for j, v in enumerate(rowvals):
                        out[r0 + i][c0 + j] = v
        return out
