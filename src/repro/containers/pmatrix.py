"""pMatrix: two-dimensional indexed pContainer (Ch. V.F, [15]).

GIDs are (row, col) pairs over a :class:`Range2DDomain`; the default
partition is a near-square processor grid of dense 2D blocks; row-, column-
and linearised views are provided in :mod:`repro.views.matrix_views`.
"""

from __future__ import annotations

import math

from ..core.base_containers import Matrix2DBC
from ..core.domains import Range2DDomain
from ..core.partitions import Matrix2DPartition
from ..core.pcontainer import PContainerIndexed
from ..core.redistribution import RedistributableMixin
from ..core.traits import Traits


def default_grid(p: int) -> tuple:
    """Near-square (pr, pc) grid with pr*pc == p."""
    pr = int(math.sqrt(p))
    while pr > 1 and p % pr:
        pr -= 1
    return pr, p // pr


class PMatrix(RedistributableMixin, PContainerIndexed):
    """Distributed dense matrix."""

    def __init__(self, ctx, rows: int, cols: int, value=0.0, partition=None,
                 traits: Traits | None = None, group=None, dtype=float,
                 order: str = "row"):
        super().__init__(ctx, traits, group)
        domain = Range2DDomain((0, 0), (rows, cols), order=order)
        self._fill_value = value
        self._dtype = dtype
        if partition is None:
            pr, pc = default_grid(len(self.group))
            partition = Matrix2DPartition(pr, pc)
        self.init(domain, partition)
        self._cached_size = domain.size()
        self._ctor_done()

    def _default_bcontainer(self, subdomain, bcid):
        return Matrix2DBC(subdomain, bcid, fill=self._fill_value,
                          dtype=self._dtype)

    # -- shape ------------------------------------------------------------
    @property
    def domain(self) -> Range2DDomain:
        return self._dist.partition.get_domain()

    @property
    def rows(self) -> int:
        return self.domain.rows

    @property
    def cols(self) -> int:
        return self.domain.cols

    # -- row/column bulk access (used by matrix views) ----------------------
    def _local_get_row_segment(self, bc, gid):
        r, _ = gid
        return list(bc.row_slice(r))

    def _local_get_col_segment(self, bc, gid):
        _, c = gid
        return list(bc.col_slice(c))

    def get_row(self, r) -> list:
        """Gather row ``r`` (sync per owning block)."""
        out = []
        dom = self.domain
        c = dom.c0
        while c < dom.c1:
            info = self._dist.get_info((r, c))
            sub = self._dist.partition.get_sub_domain(info.bcid)
            seg = self._dist.invoke_ret("get_row_segment", (r, c))
            out.extend(seg)
            c = sub.c1
        return out

    def get_col(self, c) -> list:
        """Gather column ``c`` (sync per owning block)."""
        out = []
        dom = self.domain
        r = dom.r0
        while r < dom.r1:
            info = self._dist.get_info((r, c))
            sub = self._dist.partition.get_sub_domain(info.bcid)
            seg = self._dist.invoke_ret("get_col_segment", (r, c))
            out.extend(seg)
            r = sub.r1
        return out

    def to_nested(self) -> list:
        """Gather the full matrix as a list of rows (collective; test aid)."""
        local = []
        for bc in self.local_bcontainers():
            d = bc.domain
            local.append(((d.r0, d.c0), bc.values().tolist()))
        gathered = self.ctx.allgather_rmi(local, group=self.group)
        out = [[None] * self.cols for _ in range(self.rows)]
        for per_loc in gathered:
            for (r0, c0), block in per_loc:
                for i, rowvals in enumerate(block):
                    for j, v in enumerate(rowvals):
                        out[r0 + i][c0 + j] = v
        return out
