"""Operation-mix generator for the dynamic-container comparison (Fig. 42):
a stream of read/write/insert/delete operations with configurable ratios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class OpMix:
    """Ratios must sum to 1.0."""

    read: float
    write: float
    insert: float
    delete: float

    def __post_init__(self):
        total = self.read + self.write + self.insert + self.delete
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"op mix ratios sum to {total}, expected 1.0")


#: the mixes the paper sweeps (read/write-heavy through insert/delete-heavy)
STANDARD_MIXES = {
    "read_heavy": OpMix(0.90, 0.08, 0.01, 0.01),
    "balanced_rw": OpMix(0.45, 0.45, 0.05, 0.05),
    "mixed": OpMix(0.25, 0.25, 0.25, 0.25),
    "insert_delete_heavy": OpMix(0.05, 0.05, 0.45, 0.45),
}


def generate_ops(num_ops: int, mix: OpMix, seed: int = 0) -> list:
    """Deterministic list of ('read'|'write'|'insert'|'delete', r) pairs;
    r in [0,1) selects the target position relative to the current size."""
    rng = random.Random(seed)
    kinds = ["read", "write", "insert", "delete"]
    weights = [mix.read, mix.write, mix.insert, mix.delete]
    return [(rng.choices(kinds, weights=weights)[0], rng.random())
            for _ in range(num_ops)]
