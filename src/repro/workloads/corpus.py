"""Synthetic text corpus (substitute for the 1.5 GB Simple English
Wikipedia dump of Fig. 59).

Word-count MapReduce behaviour depends on (a) total token volume and
(b) the skew of the word-frequency distribution (natural language is
Zipfian).  We generate a deterministic Zipf-distributed token stream over a
synthetic vocabulary, partitioned per location, preserving both properties.
"""

from __future__ import annotations

import random


def vocabulary(size: int) -> list:
    """Deterministic synthetic vocabulary (w0, w1, ...)."""
    return [f"w{i}" for i in range(size)]


def _zipf_weights(size: int, exponent: float) -> list:
    return [1.0 / (i + 1) ** exponent for i in range(size)]


def generate_tokens(num_tokens: int, vocab_size: int = 1000,
                    exponent: float = 1.1, seed: int = 7) -> list:
    """One deterministic Zipf-distributed token stream."""
    return zipf_stream(vocabulary(vocab_size), num_tokens, exponent, seed)


def zipf_stream(words: list, num_tokens: int, exponent: float = 1.1,
                seed: int = 7) -> list:
    """Deterministic Zipf-distributed token stream over an explicit word
    list (the skew knob of the combining/wordcount ablations)."""
    rng = random.Random(seed)
    weights = _zipf_weights(len(words), exponent)
    return rng.choices(words, weights=weights, k=num_tokens)


def owner_keyed_vocabulary(nlocs: int, per_owner: int,
                           prefix: str = "k") -> list:
    """Synthetic vocabulary bucketed by owning location under an
    ``nlocs``-way hash partition: ``bucket[i]`` holds ``per_owner`` distinct
    words with ``stable_hash(word) % nlocs == i``, so a workload can dial
    its remote fraction exactly (e.g. a 100%-remote accumulate stream for
    the combining ablation)."""
    from ..core.partitions import stable_hash

    buckets = [[] for _ in range(nlocs)]
    filled = 0
    i = 0
    while filled < nlocs * per_owner:
        word = f"{prefix}{i}"
        i += 1
        bucket = buckets[stable_hash(word) % nlocs]
        if len(bucket) < per_owner:
            bucket.append(word)
            filled += 1
    return buckets


def local_documents(lid: int, nlocs: int, tokens_per_location: int,
                    vocab_size: int = 1000, exponent: float = 1.1,
                    words_per_doc: int = 32, seed: int = 7) -> list:
    """This location's share of the corpus, as whitespace-joined documents
    (the map tasks split them back into words)."""
    toks = generate_tokens(tokens_per_location, vocab_size, exponent,
                           seed=seed + 1009 * lid)
    docs = []
    for i in range(0, len(toks), words_per_doc):
        docs.append(" ".join(toks[i:i + words_per_doc]))
    return docs
