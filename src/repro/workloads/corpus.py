"""Synthetic text corpus (substitute for the 1.5 GB Simple English
Wikipedia dump of Fig. 59).

Word-count MapReduce behaviour depends on (a) total token volume and
(b) the skew of the word-frequency distribution (natural language is
Zipfian).  We generate a deterministic Zipf-distributed token stream over a
synthetic vocabulary, partitioned per location, preserving both properties.
"""

from __future__ import annotations

import random


def vocabulary(size: int) -> list:
    """Deterministic synthetic vocabulary (w0, w1, ...)."""
    return [f"w{i}" for i in range(size)]


def _zipf_weights(size: int, exponent: float) -> list:
    return [1.0 / (i + 1) ** exponent for i in range(size)]


def generate_tokens(num_tokens: int, vocab_size: int = 1000,
                    exponent: float = 1.1, seed: int = 7) -> list:
    """One deterministic Zipf-distributed token stream."""
    rng = random.Random(seed)
    vocab = vocabulary(vocab_size)
    weights = _zipf_weights(vocab_size, exponent)
    return rng.choices(vocab, weights=weights, k=num_tokens)


def local_documents(lid: int, nlocs: int, tokens_per_location: int,
                    vocab_size: int = 1000, exponent: float = 1.1,
                    words_per_doc: int = 32, seed: int = 7) -> list:
    """This location's share of the corpus, as whitespace-joined documents
    (the map tasks split them back into words)."""
    toks = generate_tokens(tokens_per_location, vocab_size, exponent,
                           seed=seed + 1009 * lid)
    docs = []
    for i in range(0, len(toks), words_per_doc):
        docs.append(" ".join(toks[i:i + words_per_doc]))
    return docs
