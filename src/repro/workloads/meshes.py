"""2D mesh graphs (page-rank inputs of Fig. 56: 1500x1500 vs 15x150000).

A (rows x cols) mesh has a vertex per cell and edges to the 4-neighbours.
The two paper meshes have the same vertex count but extreme aspect ratios,
which changes the partition cut: blocked-by-vertex-id partitions cut a
square mesh along O(sqrt(n)) edges per location but a long thin mesh along
only O(rows) edges — the shape Fig. 56 demonstrates.
"""

from __future__ import annotations


def mesh_vertex(r: int, c: int, cols: int) -> int:
    return r * cols + c


def mesh_edges(rows: int, cols: int, bidirectional: bool = True) -> list:
    """Directed edge list of the mesh (right/down, plus reverse)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = mesh_vertex(r, c, cols)
            if c + 1 < cols:
                w = mesh_vertex(r, c + 1, cols)
                edges.append((v, w))
                if bidirectional:
                    edges.append((w, v))
            if r + 1 < rows:
                w = mesh_vertex(r + 1, c, cols)
                edges.append((v, w))
                if bidirectional:
                    edges.append((w, v))
    return edges


def local_mesh_edges(rows: int, cols: int, lid: int, nlocs: int,
                     bidirectional: bool = True) -> list:
    """Edges whose source vertex falls in this location's blocked vertex
    range (so insertion is local for a blocked static pGraph)."""
    n = rows * cols
    base, rem = divmod(n, nlocs)
    lo = lid * base + min(lid, rem)
    hi = lo + base + (1 if lid < rem else 0)
    out = []
    for r in range(rows):
        for c in range(cols):
            v = mesh_vertex(r, c, cols)
            if not lo <= v < hi:
                continue
            if c + 1 < cols:
                out.append((v, mesh_vertex(r, c + 1, cols)))
            if c > 0 and bidirectional:
                out.append((v, mesh_vertex(r, c - 1, cols)))
            if r + 1 < rows:
                out.append((v, mesh_vertex(r + 1, c, cols)))
            if r > 0 and bidirectional:
                out.append((v, mesh_vertex(r - 1, c, cols)))
    return out
