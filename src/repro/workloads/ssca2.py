"""SSCA2-style graph generator (used by Figs. 49–52).

The SSCA#2 benchmark generates clustered, scale-free-ish graphs: vertices
are grouped into cliques of random size and cliques are linked by sparser
inter-clique edges with distance-decaying probability.  We reproduce that
structure deterministically from a seed; absolute constants differ from the
reference implementation but the structural role (highly clustered local
edges + a tail of remote edges) is the same.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class SSCA2Spec:
    """Generator parameters."""

    num_vertices: int
    max_clique_size: int = 8
    inter_clique_prob: float = 0.15
    max_parallel_edges: int = 1
    seed: int = 42


def generate_edges(spec: SSCA2Spec) -> list:
    """Deterministic list of directed edges (src, tgt)."""
    rng = random.Random(spec.seed)
    n = spec.num_vertices
    # carve vertices into cliques
    cliques = []
    v = 0
    while v < n:
        size = rng.randint(1, spec.max_clique_size)
        cliques.append(list(range(v, min(v + size, n))))
        v += size
    edges = []
    for cl in cliques:
        for a in cl:
            for b in cl:
                if a != b:
                    edges.append((a, b))
    # inter-clique edges with distance-decaying probability
    for ci, cl in enumerate(cliques):
        link_dist = 1
        while ci + link_dist < len(cliques):
            if rng.random() < spec.inter_clique_prob / link_dist:
                a = rng.choice(cl)
                b = rng.choice(cliques[ci + link_dist])
                edges.append((a, b))
            link_dist *= 2
    return edges


def local_edges(spec: SSCA2Spec, lid: int, nlocs: int) -> list:
    """The slice of the edge list a given location inserts (each location
    generates the full deterministic stream and keeps every nlocs-th edge —
    the SPMD idiom used by the method benchmarks)."""
    return [e for i, e in enumerate(generate_edges(spec)) if i % nlocs == lid]
