"""Workload generators for the evaluation chapters: deterministic stand-ins
for the paper's benchmark inputs, preserving the structural properties the
experiments depend on rather than the raw gigabytes.

What each workload models:

* :mod:`.corpus` — a Zipf-distributed synthetic token stream over a
  generated vocabulary, partitioned per location.  Substitute for the
  1.5 GB Simple English Wikipedia dump of the MapReduce word-count study
  (Fig. 59): what matters is token volume and the skewed word-frequency
  distribution, both preserved.
* :mod:`.meshes` — 2D grid graphs with a vertex per cell and 4-neighbour
  edges.  The two page-rank inputs of Fig. 56 (1500x1500 vs 15x150000)
  have equal vertex counts but extreme aspect ratios, changing the
  partition cut from O(sqrt(n)) to O(rows) edges per location.
* :mod:`.opmix` — streams of read/write/insert/delete operations with
  configurable ratios (``STANDARD_MIXES``), driving the dynamic-container
  comparison of Fig. 42 (pList vs pVector under churn).
* :mod:`.ssca2` — clustered scale-free-ish graphs in the style of the
  SSCA#2 benchmark (Figs. 49–52): dense intra-clique edges plus a tail of
  sparser, distance-decaying inter-clique edges, generated
  deterministically from a seed.
* :mod:`.trees` — rooted tree edge lists (balanced binary, caterpillar,
  random attachment) whose depth/branching extremes exercise the Euler-tour
  applications of Figs. 43–44 (rooting, subtree sums, levels).
"""

from .corpus import generate_tokens, local_documents, vocabulary
from .meshes import local_mesh_edges, mesh_edges, mesh_vertex
from .opmix import STANDARD_MIXES, OpMix, generate_ops
from .ssca2 import SSCA2Spec, generate_edges, local_edges
from .trees import (
    binary_tree_edges,
    caterpillar_tree_edges,
    random_tree_edges,
    tree_parents,
)
