"""Workload generators for the evaluation chapters."""

from .corpus import generate_tokens, local_documents, vocabulary
from .meshes import local_mesh_edges, mesh_edges, mesh_vertex
from .opmix import STANDARD_MIXES, OpMix, generate_ops
from .ssca2 import SSCA2Spec, generate_edges, local_edges
from .trees import (
    binary_tree_edges,
    caterpillar_tree_edges,
    random_tree_edges,
    tree_parents,
)
