"""Tree generators for the Euler-tour experiments (Figs. 43/44: "a tree made
by a single binary tree with 500k or 1M subtrees per processor")."""

from __future__ import annotations

import random


def binary_tree_edges(num_vertices: int) -> list:
    """Complete-ish binary tree on vertices 0..n-1 (parent i has children
    2i+1, 2i+2).  Returns undirected edge list (parent, child)."""
    return [((c - 1) // 2, c) for c in range(1, num_vertices)]


def random_tree_edges(num_vertices: int, seed: int = 0) -> list:
    """Uniform random recursive tree: vertex i attaches to a random earlier
    vertex."""
    rng = random.Random(seed)
    return [(rng.randrange(c), c) for c in range(1, num_vertices)]


def caterpillar_tree_edges(num_vertices: int) -> list:
    """A path with alternating leaves — a worst-ish case for pointer
    jumping depth."""
    edges = []
    spine = list(range(0, num_vertices, 2))
    for a, b in zip(spine, spine[1:]):
        edges.append((a, b))
    for leaf in range(1, num_vertices, 2):
        edges.append((leaf - 1, leaf))
    return edges


def tree_parents(edges: list, num_vertices: int, root: int = 0) -> list:
    """Parent array from an undirected tree edge list (BFS from root)."""
    adj = [[] for _ in range(num_vertices)]
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    parent = [-1] * num_vertices
    parent[root] = root
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            for w in adj[v]:
                if parent[w] == -1:
                    parent[w] = v
                    nxt.append(w)
        frontier = nxt
    return parent
