"""Redistribution support (Ch. V.G): change a live container's partition
and/or mapping, moving marshaled data between locations.

This is the *repartitioning* half of the migration subsystem
(:mod:`repro.core.migration` owns the container-generic half — whole
bContainer moves, the lookup cache and load-driven rebalancing; the slab
packing/unpacking machinery here is shared with it).  The container's
partition is held behind a :class:`PartitionProxy` (Ch. V.G "partition
proxy"), so ``redistribute`` can swap the underlying partition object while
the container stays alive.  Elements are packed per destination (the
``define_type`` marshaling path, Ch. V.G.1) and exchanged with one
coarse-grained ``bulk_exchange`` — contiguous GID runs travel as NumPy
slabs and 2D sub-blocks as dense blocks, so each (src, dst) pair pays for
one physical message plus its payload bytes instead of one RMI per element.
The exchange is node-aware: slabs bound for several locations on one remote
node ride a single coalesced inter-node message (scattered by the node
leader), and same-node slabs move through shared memory when the zero-copy
fast path is on.

Every committed redistribution bumps the container's distribution epoch,
invalidating per-location lookup caches and the views' native-chunk lists.
"""

from __future__ import annotations

from .domains import RangeDomain
from .migration import apply_packed, pack_for_partition
from .pcontainer import PartitionProxy


class RedistributableMixin:
    """Adds ``redistribute`` / ``migrate_range`` / ``rotate`` (and a
    partition-level ``rebalance`` policy) to indexed containers (pArray,
    pMatrix).  Requires the partition proxy trait."""

    def redistribute(self, new_partition, new_mapper=None) -> None:
        """Collective: reorganise data per ``new_partition`` (and optionally
        a new partition-mapper).  Raises if the container was built without
        a partition proxy, mirroring the paper's compile-time error."""
        if not isinstance(self._dist.partition, PartitionProxy):
            raise TypeError(
                "redistribute() requires a proxy partition "
                "(traits.use_partition_proxy=True)")
        ctx = self.ctx
        group = self.group
        members = group.members
        # entry barrier: peers may still be completing element methods
        # against the old distribution (see MigrationMixin.migrate)
        ctx.barrier(group)
        domain = self._dist.partition.get_domain()
        new_partition.set_domain(domain)
        self._install_locking_policy(new_partition)
        mapper = new_mapper if new_mapper is not None else self._make_mapper()
        mapper.init(new_partition.size(), members)

        outgoing, moved = pack_for_partition(self, new_partition, mapper)
        incoming = ctx.bulk_exchange(outgoing, group=group, nelems=moved)

        # rebuild local storage under the new distribution
        self.location_manager.clear()
        for bcid in mapper.get_local_cids(ctx.id):
            sub = new_partition.get_sub_domain(bcid)
            bc = self._make_bcontainer(sub, bcid)
            self.location_manager.add_bcontainer(bcid, bc)
        apply_packed(self, new_partition, incoming)

        self._dist.partition.swap(new_partition)
        self._dist.mapper = mapper
        self._dist.bump_epoch()
        ctx.barrier(group)

    def rebalance(self, policy: str = "even", **kwargs) -> None:
        """Collective rebalancing.  ``policy="even"`` (default) restores a
        balanced *partition* — each location owns ~N/P elements regardless
        of bContainer boundaries; ``policy="load"`` keeps the partition and
        bin-packs whole bContainers by the measured element + access load
        (the container-generic path of
        :meth:`~.migration.MigrationMixin.rebalance`)."""
        if policy == "load":
            super().rebalance(**kwargs)
            return
        if policy != "even":
            raise ValueError(f"unknown rebalance policy {policy!r}")
        from .partitions import BalancedPartition

        self.redistribute(BalancedPartition(len(self.group)))

    def migrate_range(self, lo: int, hi: int, dest) -> None:
        """Collective: hand location ``dest`` exclusive ownership of the
        GID range ``[lo, hi)``.  The current partition boundaries are
        refined at ``lo``/``hi``; every other range keeps its present
        owner.  1D integer domains only (pMatrix moves whole blocks via
        ``migrate`` instead)."""
        part = self._dist.partition
        dom = part.get_domain()
        if not isinstance(dom, RangeDomain):
            raise TypeError(
                f"migrate_range needs a 1D RangeDomain, not {dom!r}")
        if not (dom.lo <= lo <= hi <= dom.hi):
            raise IndexError(f"range [{lo}, {hi}) outside {dom}")
        if dest not in self.group:
            raise ValueError(f"location {dest} not in group {self.group}")
        bounds = {dom.lo, dom.hi, lo, hi}
        for bcid in range(part.size()):
            sub = part.get_sub_domain(bcid)
            if isinstance(sub, RangeDomain):
                bounds.add(sub.lo)
                bounds.add(sub.hi)
        edges = sorted(bounds)
        mapper = self._dist.mapper
        sizes, owners = [], []
        for a, b in zip(edges, edges[1:]):
            if a == b:
                continue
            sizes.append(b - a)
            if lo <= a < hi:
                owners.append(dest)
            else:
                owners.append(mapper.map(part.find(a).bcid))
        from .mappers import GeneralMapper
        from .partitions import ExplicitPartition

        self.redistribute(ExplicitPartition(sizes), GeneralMapper(owners))

    def rotate(self, positions: int = 1) -> None:
        """Cyclically shift sub-domain ownership by ``positions`` locations."""
        from .mappers import GeneralMapper

        part = self._dist.partition
        old_mapper = self._dist.mapper
        members = list(self.group.members)
        idx = {lid: i for i, lid in enumerate(members)}
        assignment = []
        for bcid in range(part.size()):
            cur = old_mapper.map(bcid)
            assignment.append(members[(idx[cur] + positions) % len(members)])
        # same partition geometry, new ownership
        inner = part.inner if isinstance(part, PartitionProxy) else part
        fresh = _clone_partition(inner)
        self.redistribute(fresh, GeneralMapper(assignment))


def _clone_partition(partition):
    """Fresh partition with identical configuration (proxy swap target)."""
    import copy

    clone = copy.copy(partition)
    clone.locking_policy = {}
    return clone
