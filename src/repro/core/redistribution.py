"""Redistribution support (Ch. V.G): change a live container's partition
and/or mapping, moving marshaled data between locations.

The container's partition is held behind a :class:`PartitionProxy`
(Ch. V.G "partition proxy"), so ``redistribute`` can swap the underlying
partition object while the container stays alive.  Elements are packed per
destination (the ``define_type`` marshaling path, Ch. V.G.1) and exchanged
with one all-to-all.
"""

from __future__ import annotations

from .marshal import marshal_size
from .pcontainer import PartitionProxy


class RedistributableMixin:
    """Adds ``redistribute`` / ``rebalance`` / ``rotate`` to indexed
    containers (pArray, pMatrix).  Requires the partition proxy trait."""

    def redistribute(self, new_partition, new_mapper=None) -> None:
        """Collective: reorganise data per ``new_partition`` (and optionally
        a new partition-mapper).  Raises if the container was built without
        a partition proxy, mirroring the paper's compile-time error."""
        if not isinstance(self._dist.partition, PartitionProxy):
            raise TypeError(
                "redistribute() requires a proxy partition "
                "(traits.use_partition_proxy=True)")
        ctx = self.ctx
        group = self.group
        members = group.members
        domain = self._dist.partition.get_domain()
        new_partition.set_domain(domain)
        self._install_locking_policy(new_partition)
        mapper = new_mapper if new_mapper is not None else self._make_mapper()
        mapper.init(new_partition.size(), members)

        # pack every local element for its new owner
        outgoing = [[] for _ in members]
        pos_of = {lid: i for i, lid in enumerate(members)}
        for bc in self.location_manager.ordered():
            for gid in bc.domain:
                value = bc.get(gid)
                info = new_partition.find(gid)
                dest = mapper.map(info.bcid)
                outgoing[pos_of[dest]].append((gid, value))
                ctx.charge_lookup()
        for bucket in outgoing:
            ctx.stats.bytes_sent += marshal_size(bucket)
        incoming = ctx.alltoall_rmi(outgoing, group=group)

        # rebuild local storage under the new distribution
        self.location_manager.clear()
        for bcid in mapper.get_local_cids(ctx.id):
            sub = new_partition.get_sub_domain(bcid)
            bc = self._make_bcontainer(sub, bcid)
            self.location_manager.add_bcontainer(bcid, bc)
        for bucket in incoming:
            for gid, value in bucket:
                info = new_partition.find(gid)
                bc = self.location_manager.get_bcontainer(info.bcid)
                bc.set(gid, value)
                ctx.charge_access()

        self._dist.partition.swap(new_partition)
        self._dist.mapper = mapper
        ctx.barrier(group)

    def rebalance(self) -> None:
        """Redistribute so each location owns ~N/P elements."""
        from .partitions import BalancedPartition

        self.redistribute(BalancedPartition(len(self.group)))

    def rotate(self, positions: int = 1) -> None:
        """Cyclically shift sub-domain ownership by ``positions`` locations."""
        from .mappers import GeneralMapper

        part = self._dist.partition
        old_mapper = self._dist.mapper
        members = list(self.group.members)
        idx = {lid: i for i, lid in enumerate(members)}
        assignment = []
        for bcid in range(part.size()):
            cur = old_mapper.map(bcid)
            assignment.append(members[(idx[cur] + positions) % len(members)])
        # same partition geometry, new ownership
        inner = part.inner if isinstance(part, PartitionProxy) else part
        fresh = _clone_partition(inner)
        self.redistribute(fresh, GeneralMapper(assignment))


def _clone_partition(partition):
    """Fresh partition with identical configuration (proxy swap target)."""
    import copy

    clone = copy.copy(partition)
    clone.locking_policy = {}
    return clone
