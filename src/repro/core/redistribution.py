"""Redistribution support (Ch. V.G): change a live container's partition
and/or mapping, moving marshaled data between locations.

The container's partition is held behind a :class:`PartitionProxy`
(Ch. V.G "partition proxy"), so ``redistribute`` can swap the underlying
partition object while the container stays alive.  Elements are packed per
destination (the ``define_type`` marshaling path, Ch. V.G.1) and exchanged
with one coarse-grained ``bulk_exchange`` — contiguous GID runs travel as
NumPy slabs and 2D sub-blocks as dense blocks, so each (src, dst) pair pays
for one physical message plus its payload bytes instead of one RMI per
element.  The exchange is node-aware: slabs bound for several locations on
one remote node ride a single coalesced inter-node message (scattered by
the node leader), and same-node slabs move through shared memory when the
zero-copy fast path is on — redistribution cost therefore scales with the
*node* topology, not the flat location count.
"""

from __future__ import annotations

import numpy as np

from .domains import Range2DDomain, RangeDomain
from .pcontainer import SLAB_ACCESS_FACTOR, PartitionProxy


class RedistributableMixin:
    """Adds ``redistribute`` / ``rebalance`` / ``rotate`` to indexed
    containers (pArray, pMatrix).  Requires the partition proxy trait."""

    def redistribute(self, new_partition, new_mapper=None) -> None:
        """Collective: reorganise data per ``new_partition`` (and optionally
        a new partition-mapper).  Raises if the container was built without
        a partition proxy, mirroring the paper's compile-time error."""
        if not isinstance(self._dist.partition, PartitionProxy):
            raise TypeError(
                "redistribute() requires a proxy partition "
                "(traits.use_partition_proxy=True)")
        ctx = self.ctx
        group = self.group
        members = group.members
        domain = self._dist.partition.get_domain()
        new_partition.set_domain(domain)
        self._install_locking_policy(new_partition)
        mapper = new_mapper if new_mapper is not None else self._make_mapper()
        mapper.init(new_partition.size(), members)

        # pack local data per new owner: contiguous GID runs as NumPy slabs,
        # 2D sub-blocks as dense blocks, anything else element-wise
        outgoing = [[] for _ in members]
        pos_of = {lid: i for i, lid in enumerate(members)}
        moved = 0
        for bc in self.location_manager.ordered():
            dom = bc.domain
            if isinstance(dom, RangeDomain) and hasattr(bc, "get_range"):
                gid = dom.lo
                while gid < dom.hi:
                    info = new_partition.find(gid)
                    dest = mapper.map(info.bcid)
                    sub = new_partition.get_sub_domain(info.bcid)
                    run_hi = (min(dom.hi, sub.hi)
                              if isinstance(sub, RangeDomain) else gid + 1)
                    run_hi = max(run_hi, gid + 1)
                    ctx.charge_lookup()
                    ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR
                               * (run_hi - gid))
                    outgoing[pos_of[dest]].append(
                        ("slab", gid, bc.get_range(gid, run_hi)))
                    moved += run_hi - gid
                    gid = run_hi
            elif isinstance(dom, Range2DDomain) and hasattr(bc, "get_block"):
                for nb in range(new_partition.size()):
                    sub = new_partition.get_sub_domain(nb)
                    rr0, rr1 = max(dom.r0, sub.r0), min(dom.r1, sub.r1)
                    cc0, cc1 = max(dom.c0, sub.c0), min(dom.c1, sub.c1)
                    if rr0 >= rr1 or cc0 >= cc1:
                        continue
                    dest = mapper.map(nb)
                    n = (rr1 - rr0) * (cc1 - cc0)
                    ctx.charge_lookup()
                    ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR * n)
                    outgoing[pos_of[dest]].append(
                        ("block", (rr0, cc0), bc.get_block(rr0, rr1, cc0, cc1)))
                    moved += n
            else:
                for gid in dom:
                    value = bc.get(gid)
                    info = new_partition.find(gid)
                    dest = mapper.map(info.bcid)
                    outgoing[pos_of[dest]].append(("elem", gid, value))
                    ctx.charge_lookup()
                    moved += 1
        incoming = ctx.bulk_exchange(outgoing, group=group, nelems=moved)

        # rebuild local storage under the new distribution
        self.location_manager.clear()
        for bcid in mapper.get_local_cids(ctx.id):
            sub = new_partition.get_sub_domain(bcid)
            bc = self._make_bcontainer(sub, bcid)
            self.location_manager.add_bcontainer(bcid, bc)
        for bucket in incoming:
            for kind, key, payload in bucket:
                if kind == "slab":
                    info = new_partition.find(key)
                    bc = self.location_manager.get_bcontainer(info.bcid)
                    bc.set_range(key, payload)
                    ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR
                               * len(payload))
                elif kind == "block":
                    r0, c0 = key
                    info = new_partition.find((r0, c0))
                    bc = self.location_manager.get_bcontainer(info.bcid)
                    bc.set_block(r0, c0, payload)
                    ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR
                               * np.asarray(payload).size)
                else:
                    info = new_partition.find(key)
                    bc = self.location_manager.get_bcontainer(info.bcid)
                    bc.set(key, payload)
                    ctx.charge_access()

        self._dist.partition.swap(new_partition)
        self._dist.mapper = mapper
        ctx.barrier(group)

    def rebalance(self) -> None:
        """Redistribute so each location owns ~N/P elements."""
        from .partitions import BalancedPartition

        self.redistribute(BalancedPartition(len(self.group)))

    def rotate(self, positions: int = 1) -> None:
        """Cyclically shift sub-domain ownership by ``positions`` locations."""
        from .mappers import GeneralMapper

        part = self._dist.partition
        old_mapper = self._dist.mapper
        members = list(self.group.members)
        idx = {lid: i for i, lid in enumerate(members)}
        assignment = []
        for bcid in range(part.size()):
            cur = old_mapper.map(bcid)
            assignment.append(members[(idx[cur] + positions) % len(members)])
        # same partition geometry, new ownership
        inner = part.inner if isinstance(part, PartitionProxy) else part
        fresh = _clone_partition(inner)
        self.redistribute(fresh, GeneralMapper(assignment))


def _clone_partition(partition):
    """Fresh partition with identical configuration (proxy swap target)."""
    import copy

    clone = copy.copy(partition)
    clone.locking_policy = {}
    return clone
