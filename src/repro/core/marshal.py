"""Data marshaling (Ch. V.G.1): the ``define_type``/typer mechanism.

The C++ RTS needs explicit packing rules for every shipped type.  In Python
objects are trivially transportable inside one simulation, so the typer's
remaining job is *cost accounting*: computing how many bytes a payload
occupies on the wire so the bandwidth term of the machine model is charged
correctly.  bContainers additionally expose ``pack``/``unpack`` used by
redistribution.
"""

from __future__ import annotations

from ..runtime.comm import estimate_size


class Typer:
    """Accumulates the marshaled size of an object graph, mirroring the
    recursive ``define_type(typer&)`` protocol of Fig. 14."""

    def __init__(self):
        self._bytes = 0

    def member(self, value, count: int = 1) -> "Typer":
        self._bytes += estimate_size(value) * max(1, count)
        return self

    @property
    def size(self) -> int:
        return self._bytes


def marshal_size(obj) -> int:
    """Wire size of ``obj``: honours a user-defined ``define_type`` hook if
    present, else falls back to the generic estimator."""
    define_type = getattr(obj, "define_type", None)
    if define_type is not None:
        t = Typer()
        define_type(t)
        return t.size
    return estimate_size(obj)
