"""pContainer base classes (Ch. V.D, Fig. 5 taxonomy).

``PContainerBase`` (Table XI) owns the location-manager and the
data-distribution manager and provides the collective construction protocol:
register with the RTS, initialise domain/partition/mapper, allocate local
bContainers, and close with a barrier so no location escapes a constructor
before every representative is usable.

Specialisations (Tables XII–XVIII) are provided as mixin-style subclasses:
static, dynamic, indexed; associative / relational / sequence interfaces live
with their concrete containers in :mod:`repro.containers`.
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import mp_zero_copy_enabled
from ..runtime.p_object import PObject
from .distribution import ASYNC, SYNC, DataDistributionManager
from .domains import RangeDomain
from .location_manager import LocationManager
from .mappers import CyclicMapper
from .migration import MigrationMixin
from .thread_safety import (
    ELEMENT,
    MDREAD,
    READ,
    WRITE,
    LockingPolicy,
    ThreadSafetyManager,
)
from .traits import DEFAULT_TRAITS, Traits

#: per-element cost factor of a vectorised slab sweep relative to
#: ``t_access`` (matches the constructor's bulk-touch factor)
SLAB_ACCESS_FACTOR = 0.25


class PartitionProxy:
    """Polymorphic partition wrapper (Ch. V.G): lets a live container swap
    its partition during redistribution.  All attribute access is delegated
    to the current inner partition."""

    def __init__(self, inner):
        object.__setattr__(self, "_inner", inner)

    @property
    def inner(self):
        return object.__getattribute__(self, "_inner")

    def swap(self, new_inner) -> None:
        object.__setattr__(self, "_inner", new_inner)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)

    def __len__(self):
        return len(self.inner)

    def __repr__(self):
        return f"PartitionProxy({self.inner!r})"


class PContainerBase(MigrationMixin, PObject):
    """Per-location representative of a distributed container (Table XI).

    Every pContainer inherits the container-generic migration protocol
    (:class:`~.migration.MigrationMixin`): ``migrate`` /
    ``migrate_bcontainer`` / load-driven ``rebalance`` work on all six
    container families."""

    #: subclasses override with their method locking table (Ch. VI.D)
    DEFAULT_LOCKING: dict = {}

    #: asynchronous element methods eligible for the combining-buffer path
    #: (Ch. III.B): dynamic containers name their insert/set/accumulate/
    #: erase-style ops here; static containers keep this empty (their bulk
    #: story is the slab transport instead)
    COMBINING_METHODS: frozenset = frozenset()

    def __init__(self, ctx, traits: Traits | None = None, group=None):
        super().__init__(ctx, group)
        self.traits = traits or DEFAULT_TRAITS
        self.location_manager = LocationManager()
        self._dist: DataDistributionManager | None = None
        self._cached_size = 0

    # -- construction helpers -------------------------------------------
    def _make_ths_manager(self) -> ThreadSafetyManager:
        factory = self.traits.ths_manager_factory
        return factory() if factory else ThreadSafetyManager()

    def _make_mapper(self):
        factory = self.traits.mapper_factory
        return factory() if factory else CyclicMapper()

    def _make_bcontainer(self, subdomain, bcid):
        factory = self.traits.bcontainer_factory
        if factory is not None:
            return factory(subdomain, bcid)
        return self._default_bcontainer(subdomain, bcid)

    def _default_bcontainer(self, subdomain, bcid):  # pragma: no cover
        raise NotImplementedError

    def _install_locking_policy(self, partition) -> None:
        policy = LockingPolicy()
        for method, attrs in self.DEFAULT_LOCKING.items():
            policy.set(method, *attrs)
        partition.locking_policy = policy

    def init(self, domain, partition, mapper=None, shared_partition=False,
             allocate=True) -> None:
        """Set up distribution metadata and allocate local bContainers.

        With ``shared_partition`` the first group member's partition instance
        becomes the canonical (shared-metadata) copy for the whole container
        — used by containers whose partition metadata mutates (pVector).
        """
        first = self.group.members[0]
        if (shared_partition and self.ctx.id != first
                and self.runtime.shared_address_space):
            partition = self.rep_on(first).partition
        else:
            if domain is not None:
                partition.set_domain(domain)
            if self.traits.use_partition_proxy and not isinstance(
                    partition, PartitionProxy):
                partition = PartitionProxy(partition)
        self._install_locking_policy(partition)
        mapper = mapper if mapper is not None else self._make_mapper()
        mapper.init(partition.size(), self.group.members)
        self._dist = DataDistributionManager(
            self, partition, mapper, self._make_ths_manager(),
            consistency=self.traits.consistency,
            bcontainer_thread_safe=self.traits.bcontainer_thread_safe)
        if allocate:
            self._allocate_local(partition, mapper)

    def _allocate_local(self, partition, mapper) -> None:
        m = self.ctx.machine
        for bcid in mapper.get_local_cids(self.ctx.id):
            sub = partition.get_sub_domain(bcid)
            bc = self._make_bcontainer(sub, bcid)
            self.location_manager.add_bcontainer(bcid, bc)
            # constructor touches every local element once (Fig. 27 shape)
            self.ctx.charge(m.t_access * 0.25 * bc.size())

    def _ctor_done(self) -> None:
        """Collective constructor epilogue: barrier so every representative
        is initialised before any location proceeds."""
        self.ctx.barrier(self.group)

    # -- accessors (Table XI) ---------------------------------------------
    @property
    def distribution(self) -> DataDistributionManager:
        return self._dist

    def get_distribution(self) -> DataDistributionManager:
        return self._dist

    def get_location_manager(self) -> LocationManager:
        return self.location_manager

    @property
    def partition(self):
        return self._dist.partition

    @property
    def mapper(self):
        return self._dist.mapper

    # -- shared-object-view queries ----------------------------------------
    def is_local(self, gid) -> bool:
        return self._dist.is_local(gid)

    def lookup(self, gid):
        """Location owning (or knowing more about) ``gid``."""
        return self._dist.lookup(gid)

    def local_size(self) -> int:
        return self.location_manager.local_size()

    def local_empty(self) -> bool:
        return self.local_size() == 0

    # -- generic RMI handlers (targets of the invoke skeleton) -------------
    def _invoke_handler_async(self, method, gid, args):
        self._dist._dispatch(method, gid, args, ASYNC)

    def _invoke_handler_ret(self, method, gid, args):
        return self._dist._dispatch(method, gid, args, SYNC)

    # the exec handlers carry the pre-resolved BCID plus the cached flag;
    # a moved/stale target re-dispatches with the *caller's* flavour, so an
    # asynchronous request crossing a migration never degrades into a
    # blocking round trip
    def _invoke_exec_async(self, method, gid, args, bcid, cached=False):
        self._dist.execute_at_bcid(method, gid, args, bcid, flavor=ASYNC,
                                   cached=cached)

    def _invoke_exec_ret(self, method, gid, args, bcid, cached=False):
        return self._dist.execute_at_bcid(method, gid, args, bcid,
                                          flavor=SYNC, cached=cached)

    def _gid_resident(self, bc, gid) -> bool:
        """Does ``bc`` currently hold ``gid``?  Directory containers
        override so stale cache-resolved routes can be detected and
        re-forwarded; the default accepts (non-directory GID → BCID
        mappings are pure functions and never stale)."""
        return True

    def _route_update(self, gid, bcid) -> None:
        """Directory route update: a forwarding home tells this (the
        requesting) location which BCID owns ``gid``, filling the lookup
        cache so the next request skips the home hop."""
        from .migration import lookup_cache_enabled

        dist = self._dist
        if dist.partition.cacheable and lookup_cache_enabled():
            dist._cache.store(gid, bcid)

    def _sync_dir_lookup(self, home_loc, gid):
        """Directory interrogation round trip (forwarding disabled)."""
        return self._sync(home_loc, "_dir_lookup", gid)

    def _dir_lookup(self, gid):
        return self._dist.partition.lookup(gid)

    def _home_of(self, gid):
        return self._dist.mapper.map(self._dist.partition.home_bcid(gid))

    def _dir_register(self, gid, bcid):
        # a registration racing a migration may land at the old home
        # owner: chase the authoritative home through the fresh mapper
        home = self._home_of(gid)
        if home != self.here.id:
            self.here.stats.stale_redirects += 1
            self._async(home, "_dir_register", gid, bcid)
            return
        self.here.charge_lookup()
        self._dist.partition.register_gid(gid, bcid)
        # the authoritative update keeps the home's own cache truthful —
        # a stale home entry would bounce the redirect chain forever
        self._dist._cache.store(gid, bcid)

    def _dir_unregister(self, gid):
        home = self._home_of(gid)
        if home != self.here.id:
            self.here.stats.stale_redirects += 1
            self._async(home, "_dir_unregister", gid)
            return
        self.here.charge_lookup()
        self._dist.partition.unregister_gid(gid)
        self._dist._cache.discard(gid)

    # -- memory accounting (Ch. IX.F) ---------------------------------------
    def local_memory_size(self) -> tuple:
        """(metadata bytes, data bytes) on this location."""
        lm_meta, lm_data = self.location_manager.memory_size()
        meta = 64 + lm_meta + self._dist.memory_size()
        return meta, lm_data

    def memory_size(self) -> tuple:
        """Collective: (metadata bytes, data bytes) over the whole container."""
        meta, data = self.local_memory_size()
        return tuple(self.ctx.allreduce_rmi(
            (meta, data), lambda a, b: (a[0] + b[0], a[1] + b[1]),
            group=self.group))

    # -- bulk iteration support (native views / pAlgorithms) ----------------
    def local_bcontainers(self) -> list:
        return self.location_manager.ordered()

    # -- combining buffers --------------------------------------------------
    def flush_combining(self) -> int:
        """Explicitly flush every combining buffer on this location that
        holds at least one op record for this container (they execute at
        the next fence/drain).  Buffers are per destination and shared
        across p_objects, so a buffer always flushes *whole* — records for
        other containers on the same channel ship too, and the returned
        count covers all of them, preserving the channel's issue order."""
        return self.here.flush_combining(handle=self.handle)

    # -- bulk transfer accounting ------------------------------------------
    def _piece_transfer(self, owner, nelems: int, local_fn, remote_fn):
        """Shared cost/stats accounting for one piece of a bulk range
        transfer: one lookup, then either a vectorised local sweep
        (``SLAB_ACCESS_FACTOR`` per element) or the remote thunk, which is
        expected to issue exactly one bulk RMI."""
        loc = self.here
        loc.charge_lookup()
        if owner == loc.id:
            loc.stats.local_invocations += 1
            loc.charge(loc.machine.t_access * SLAB_ACCESS_FACTOR * nelems)
            return local_fn()
        loc.stats.remote_invocations += 1
        return remote_fn()


class PContainerStatic(PContainerBase):
    """Static container (Table XII): element count fixed at construction."""

    def size(self) -> int:
        return self._cached_size

    def __len__(self) -> int:
        return self.size()

    def empty(self) -> bool:
        return self.size() == 0

    def apply_get(self, gid, fn):
        """Apply a returning functor to the element at ``gid`` (sync)."""
        return self._dist.invoke_ret("apply_get", gid, fn)

    def apply_set(self, gid, fn) -> None:
        """Apply a mutating functor to the element at ``gid`` (async)."""
        self._dist.invoke("apply_set", gid, fn)


class PContainerDynamic(PContainerBase):
    """Dynamic container (Table XIII): elements can be added and removed.

    ``size()`` is the lazily-maintained replicated size of Ch. VII.G — it is
    refreshed by :meth:`update_size` (called from view ``post_execute``) and
    may be stale between synchronisation points, exactly as specified.
    """

    def size(self) -> int:
        return self._cached_size

    def __len__(self) -> int:
        return self.size()

    def empty(self) -> bool:
        return self.size() == 0

    def update_size(self) -> int:
        """Collective re-synchronisation of the replicated size."""
        self._cached_size = self.ctx.allreduce_rmi(
            self.local_size(), group=self.group)
        return self._cached_size

    def post_execute(self) -> None:
        """Hook invoked by the executor after a computation finishes
        (Ch. VII.H): commit pending ops and refresh replicated metadata."""
        self.update_size()

    def clear(self) -> None:
        """Collective: remove all elements (distribution remains valid)."""
        for bc in self.location_manager:
            bc.clear()
        self.ctx.barrier(self.group)
        self._cached_size = 0

    def add_bcontainer(self, bc, bcid) -> None:
        self.location_manager.add_bcontainer(bcid, bc)

    def delete_bcontainer(self, bcid):
        return self.location_manager.delete_bcontainer(bcid)


class PContainerIndexed(PContainerStatic):
    """Indexed container (Table XIV): access by index GID.

    The method-flavour triple of Ch. V.B: ``set_element`` is asynchronous,
    ``get_element`` synchronous, ``split_phase_get_element`` returns a
    ``pc_future``.
    """

    DEFAULT_LOCKING = {
        "set_element": (ELEMENT, WRITE, MDREAD),
        "get_element": (ELEMENT, READ, MDREAD),
        "apply_get": (ELEMENT, READ, MDREAD),
        "apply_set": (ELEMENT, WRITE, MDREAD),
    }

    def set_element(self, gid, value) -> None:
        self._dist.invoke("set_element", gid, value)

    def get_element(self, gid):
        return self._dist.invoke_ret("get_element", gid)

    def split_phase_get_element(self, gid):
        return self._dist.invoke_opaque_ret("get_element", gid)

    # alias used in parts of the paper
    get_element_split = split_phase_get_element

    def __getitem__(self, gid):
        return self.get_element(gid)

    def __setitem__(self, gid, value) -> None:
        self.set_element(gid, value)

    # -- local handlers ----------------------------------------------------
    def _local_set_element(self, bc, gid, value) -> None:
        bc.set(gid, value)

    def _local_get_element(self, bc, gid):
        return bc.get(gid)

    def _local_apply_get(self, bc, gid, fn):
        return bc.apply(gid, fn)

    def _local_apply_set(self, bc, gid, fn) -> None:
        bc.apply_set(gid, fn)

    # -- bulk element transport (range accessors) --------------------------
    # The coarse-grained counterpart of the Table XIV element methods: a
    # whole GID range moves as one slab per owning location instead of one
    # RMI per element (the aggregation story of Ch. III.B applied at the
    # container interface).  Remote pieces ride the runtime's bulk RMIs, so
    # they inherit mixed-mode locality for free: a same-node owner serves
    # the slab over the zero-copy fast path (no serialization, t_lock only)
    # when it is enabled.  Either way the bContainer range accessors return
    # *copies* — a zero-copy read must not alias owner storage, or a remote
    # caller could mutate it with no charged communication.

    def _check_range(self, lo: int, hi: int) -> None:
        """Reject ranges outside the container's domain — a silent partial
        transfer would mask indexing bugs the element interface raises on.
        Containers whose GIDs are not a 1D integer range (pMatrix) must use
        their own block accessors instead."""
        dom = self._dist.partition.get_domain()
        if not isinstance(dom, RangeDomain):
            raise TypeError(
                f"{type(self).__name__} has a non-1D domain ({dom!r}); "
                "use the container's block accessors")
        if lo < dom.lo or hi > dom.hi:
            raise IndexError(f"range [{lo}, {hi}) outside {dom}")

    def _range_pieces(self, lo: int, hi: int):
        """Split ``[lo, hi)`` into (bcid, lo, hi) pieces, one per owning
        sub-domain, in GID order.  Returns None when ownership cannot be
        enumerated in closed form (directory partitions, non-contiguous
        sub-domains) — callers then fall back to the element interface."""
        p = self._dist.partition
        if getattr(p, "directory", False):
            return None
        pieces = []
        for bcid in range(p.size()):
            sub = p.get_sub_domain(bcid)
            if not isinstance(sub, RangeDomain):
                return None
            s_lo, s_hi = max(lo, sub.lo), min(hi, sub.hi)
            if s_lo < s_hi:
                pieces.append((bcid, s_lo, s_hi))
        pieces.sort(key=lambda t: t[1])
        return pieces

    def get_range(self, lo: int, hi: int) -> np.ndarray:
        """Gather the GID range ``[lo, hi)`` as one NumPy slab.

        Local pieces are vectorised copies; each remotely-owned piece costs
        exactly one bulk round trip (``bulk_get_range``) regardless of its
        element count."""
        loc = self.here
        if hi <= lo:
            return np.empty(0)
        self._check_range(lo, hi)
        pieces = self._range_pieces(lo, hi)
        if pieces is None:
            return np.asarray([self.get_element(g) for g in range(lo, hi)])
        mapper = self._dist.mapper
        parts = []
        for bcid, s_lo, s_hi in pieces:
            owner = mapper.map(bcid)
            n = s_hi - s_lo
            parts.append(np.asarray(self._piece_transfer(
                owner, n,
                lambda: self.location_manager.get_bcontainer(bcid)
                            .get_range(s_lo, s_hi),
                lambda: loc.bulk_get_range(
                    owner, self.handle, "_bulk_get_range",
                    bcid, s_lo, s_hi, nelems=n))))
        if not parts:
            return np.empty(0)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def set_range(self, lo: int, values) -> None:
        """Scatter ``values`` over the GID range starting at ``lo``.

        Asynchronous like ``set_element``: remote slabs complete at the next
        fence (source-FIFO ordered with scalar RMIs on the same channel)."""
        values = np.asarray(values)
        n = len(values)
        if n == 0:
            return
        loc = self.here
        self._check_range(lo, lo + n)
        pieces = self._range_pieces(lo, lo + n)
        if pieces is None:
            for k in range(n):
                self.set_element(lo + k, values[k])
            return
        mapper = self._dist.mapper
        for bcid, s_lo, s_hi in pieces:
            owner = mapper.map(bcid)
            chunk = values[s_lo - lo:s_hi - lo]
            self._piece_transfer(
                owner, len(chunk),
                lambda: self.location_manager.get_bcontainer(bcid)
                            .set_range(s_lo, chunk),
                lambda: loc.bulk_set_range(
                    owner, self.handle, "_bulk_set_range",
                    bcid, s_lo, chunk, nelems=len(chunk)))

    # bulk handlers (executed on the owning location)
    def _bulk_get_range(self, bcid, lo, hi):
        if not self.location_manager.has_bcontainer(bcid):
            # the sub-domain moved (redistribution): re-resolve
            return self.get_range(lo, hi)
        loc = self.here
        loc.charge(loc.machine.t_access * SLAB_ACCESS_FACTOR * (hi - lo))
        self.location_manager.note_access(bcid, hi - lo)
        bc = self.location_manager.get_bcontainer(bcid)
        rt = self.runtime
        if (not rt.shared_address_space and mp_zero_copy_enabled()
                and rt.current_origin != self.here.id):
            # cross-process bulk reply: ship a read-only view so the
            # transport can pass a slab reference into live storage with
            # no sender-side copy.  Sound under the epoch discipline every
            # collective here follows (a range read remotely within an
            # epoch is not written until after the separating fence);
            # consumers that hold a slab across protocol events without a
            # fence must snapshot (see OverlapView.materialize).  The
            # same-process guard keeps sim and self-sends on the copying
            # path — a live view would alias owner storage.
            ref = getattr(bc, "get_range_ref", None)
            if ref is not None:
                return ref(lo, hi)
        return bc.get_range(lo, hi)

    def _bulk_set_range(self, bcid, lo, values) -> None:
        if not self.location_manager.has_bcontainer(bcid):
            self.set_range(lo, values)
            return
        loc = self.here
        loc.charge(loc.machine.t_access * SLAB_ACCESS_FACTOR * len(values))
        self.location_manager.note_access(bcid, len(values))
        self.location_manager.get_bcontainer(bcid).set_range(lo, values)


__all__ = [
    "SLAB_ACCESS_FACTOR",
    "PartitionProxy",
    "PContainerBase",
    "PContainerStatic",
    "PContainerDynamic",
    "PContainerIndexed",
]
