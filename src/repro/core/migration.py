"""Container-generic migration subsystem (Ch. V.C, V.G).

The paper's central claim is that directory-based addressing lets *any*
pContainer move data freely while element methods keep working.  This module
is the reproduction of that claim as a first-class protocol shared by all
six containers:

* **bContainer migration** (:class:`MigrationMixin.migrate`): a collective
  that reassigns BCID → location ownership and moves the marshaled
  bContainers (and, for directory partitions, the directory home entries
  riding the same exchange — the transactional commit) over the node-aware
  ``bulk_exchange`` path.  The GID → BCID mapping is untouched, so element
  methods keep resolving through the unchanged partition; only the
  partition-mapper changes.
* **Distribution epochs**: every :class:`~.distribution.DataDistributionManager`
  carries an epoch counter bumped exactly once per committed migration or
  redistribution.  Everything that caches distribution metadata — the
  per-location lookup cache below, the views' native-chunk lists — is keyed
  by the epoch and refreshes itself when it changes.
* **Lookup cache** (:class:`LookupCache`): a per-location GID → BCID cache
  consulted before the partition, so repeated remote lookups stop paying
  ``charge_lookup`` (and, for no-forwarding directories, the synchronous
  interrogation round trip).  Stale hits are safe: a request that lands at
  a non-owner re-forwards through the authoritative directory (a bounded
  chain, counted in ``stale_redirects``).
* **Load-driven rebalancing** (:class:`MigrationMixin.rebalance`):
  per-bContainer element + access counters (maintained by the
  location-manager) feed a greedy LPT bin-packing assignment whose moves
  ride ``migrate``.

BCL (Brock et al., 2018) motivates the cheap-owner-lookup-under-movement
design; pSTL-Bench (Laso et al., 2024) motivates the skewed workloads the
evaluation driver (:mod:`repro.evaluation.migration_figs`) measures.
"""

from __future__ import annotations

from bisect import bisect_right, insort

from .mappers import GeneralMapper

#: process-wide switch for the per-location lookup cache.  On by default;
#: the evaluation toggles it off to measure charged lookups head-to-head.
_LOOKUP_CACHE = True

#: entry cap per cache; on overflow the exact map is dropped wholesale (a
#: crude but safe eviction — correctness never depends on cache contents)
CACHE_MAX_EXACT = 1 << 16


def lookup_cache_enabled() -> bool:
    return _LOOKUP_CACHE


def set_lookup_cache(on: bool) -> bool:
    """Toggle the lookup cache; returns the previous setting."""
    global _LOOKUP_CACHE
    prev = _LOOKUP_CACHE
    _LOOKUP_CACHE = bool(on)
    return prev


class LookupCache:
    """Per-location GID → BCID cache, invalidated by distribution epoch.

    Two stores: contiguous GID *runs* (one entry per sub-domain, bisected)
    for integer-indexed closed-form partitions, and an exact GID map for
    everything else (hash/directory keys, 2D indices).  Entries are only
    ever consulted for partitions whose GID → BCID mapping is stable
    between epochs (``partition.cacheable``).
    """

    __slots__ = ("epoch", "_exact", "_run_lo", "_run_hi", "_run_bcid")

    def __init__(self):
        self.epoch = 0
        self._exact: dict = {}
        self._run_lo: list = []
        self._run_hi: list = []
        self._run_bcid: list = []

    def invalidate(self, epoch: int) -> None:
        """Drop every entry and re-key the cache to ``epoch``."""
        self.epoch = epoch
        self._exact.clear()
        self._run_lo.clear()
        self._run_hi.clear()
        self._run_bcid.clear()

    def lookup(self, gid):
        """Cached BCID for ``gid``, or None."""
        bcid = self._exact.get(gid)
        if bcid is not None:
            return bcid
        if self._run_lo and isinstance(gid, int) and not isinstance(gid, bool):
            i = bisect_right(self._run_lo, gid) - 1
            if i >= 0 and gid < self._run_hi[i]:
                return self._run_bcid[i]
        return None

    def store(self, gid, bcid) -> None:
        if len(self._exact) >= CACHE_MAX_EXACT:
            self._exact.clear()
        self._exact[gid] = bcid

    def discard(self, gid) -> None:
        """Drop one exact entry (authoritative directory updates keep the
        home location's own cache truthful)."""
        self._exact.pop(gid, None)

    def store_run(self, lo: int, hi: int, bcid) -> None:
        """Cache a whole contiguous GID run (one sub-domain)."""
        i = bisect_right(self._run_lo, lo)
        if i > 0 and self._run_lo[i - 1] == lo:
            return  # already cached
        insort(self._run_lo, lo)
        self._run_hi.insert(i, hi)
        self._run_bcid.insert(i, bcid)

    def size(self) -> int:
        return len(self._exact) + len(self._run_lo)

    def memory_size(self) -> int:
        return 64 + 48 * len(self._exact) + 24 * len(self._run_lo)


# -- bContainer marshaling (the define_type path applied whole) -------------

#: per-bContainer configuration that ``pack()`` does not carry but a
#: migrated replica must preserve
_BC_CONFIG_ATTRS = ("sorted_order", "multi", "multi_edges")


def pack_bcontainer(bc) -> tuple:
    """Marshal one whole bContainer for migration: class, domain, BCID,
    packed contents and the config flags ``pack`` does not carry."""
    cfg = {a: getattr(bc, a) for a in _BC_CONFIG_ATTRS if hasattr(bc, a)}
    return (type(bc), bc.domain, bc.get_bcid(), bc.pack(), cfg)


def unpack_bcontainer(payload):
    """Rebuild a migrated bContainer on the receiving location."""
    cls, domain, bcid, data, cfg = payload
    bc = cls.unpack(domain, bcid, data)
    for key, value in cfg.items():
        setattr(bc, key, value)
    return bc


def pack_for_partition(container, new_partition, new_mapper) -> tuple:
    """Pack this location's data per its owner under a *new* partition:
    contiguous GID runs travel as NumPy slabs, 2D sub-blocks as dense
    blocks, anything else element-wise.  Returns ``(outgoing, moved)``
    where ``outgoing`` is one record list per group member — the
    slab-packing half of repartitioning, shared by ``redistribute`` and
    ``migrate_range``."""
    from .domains import Range2DDomain, RangeDomain
    from .pcontainer import SLAB_ACCESS_FACTOR

    ctx = container.ctx
    members = container.group.members
    outgoing = [[] for _ in members]
    pos_of = {lid: i for i, lid in enumerate(members)}
    moved = 0
    for bc in container.location_manager.ordered():
        dom = bc.domain
        if isinstance(dom, RangeDomain) and hasattr(bc, "get_range"):
            gid = dom.lo
            while gid < dom.hi:
                info = new_partition.find(gid)
                dest = new_mapper.map(info.bcid)
                sub = new_partition.get_sub_domain(info.bcid)
                run_hi = (min(dom.hi, sub.hi)
                          if isinstance(sub, RangeDomain) else gid + 1)
                run_hi = max(run_hi, gid + 1)
                ctx.charge_lookup()
                ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR
                           * (run_hi - gid))
                outgoing[pos_of[dest]].append(
                    ("slab", gid, bc.get_range(gid, run_hi)))
                moved += run_hi - gid
                gid = run_hi
        elif isinstance(dom, Range2DDomain) and hasattr(bc, "get_block"):
            for nb in range(new_partition.size()):
                sub = new_partition.get_sub_domain(nb)
                rr0, rr1 = max(dom.r0, sub.r0), min(dom.r1, sub.r1)
                cc0, cc1 = max(dom.c0, sub.c0), min(dom.c1, sub.c1)
                if rr0 >= rr1 or cc0 >= cc1:
                    continue
                dest = new_mapper.map(nb)
                n = (rr1 - rr0) * (cc1 - cc0)
                ctx.charge_lookup()
                ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR * n)
                outgoing[pos_of[dest]].append(
                    ("block", (rr0, cc0), bc.get_block(rr0, rr1, cc0, cc1)))
                moved += n
        else:
            for gid in dom:
                value = bc.get(gid)
                info = new_partition.find(gid)
                dest = new_mapper.map(info.bcid)
                outgoing[pos_of[dest]].append(("elem", gid, value))
                ctx.charge_lookup()
                moved += 1
    return outgoing, moved


def apply_packed(container, new_partition, incoming) -> None:
    """Rebuild local storage under ``new_partition`` from the exchanged
    record buckets (the unpack half of repartitioning)."""
    import numpy as np

    from .pcontainer import SLAB_ACCESS_FACTOR

    ctx = container.ctx
    lm = container.location_manager
    for bucket in incoming:
        for kind, key, payload in bucket:
            if kind == "slab":
                info = new_partition.find(key)
                bc = lm.get_bcontainer(info.bcid)
                bc.set_range(key, payload)
                ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR
                           * len(payload))
            elif kind == "block":
                r0, c0 = key
                info = new_partition.find((r0, c0))
                bc = lm.get_bcontainer(info.bcid)
                bc.set_block(r0, c0, payload)
                ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR
                           * np.asarray(payload).size)
            else:
                info = new_partition.find(key)
                bc = lm.get_bcontainer(info.bcid)
                bc.set(key, payload)
                ctx.charge_access()


def lpt_assignment(loads: dict, members) -> dict:
    """Greedy longest-processing-time bin packing: heaviest bContainer
    first onto the least-loaded location.  Fully deterministic (ties break
    on BCID, then group order), so every location computes the identical
    assignment from the allgathered load table."""
    bins = [[0.0, i] for i in range(len(members))]
    out = {}
    for bcid in sorted(loads, key=lambda b: (-loads[b], b)):
        bins.sort(key=lambda x: (x[0], x[1]))
        out[bcid] = members[bins[0][1]]
        bins[0][0] += loads[bcid]
    return out


class MigrationMixin:
    """Adds the container-generic migration protocol to every pContainer.

    Mixed into :class:`~.pcontainer.PContainerBase`, so all six containers
    (pArray, pVector, pMatrix, pList, the associative family, pGraph)
    support ``migrate`` / ``migrate_bcontainer`` / ``rebalance``.  Indexed
    containers additionally support GID-range migration and repartitioning
    through :class:`~.redistribution.RedistributableMixin`, which shares
    this module's packing machinery.
    """

    def distribution_epoch(self) -> int:
        """Current distribution epoch of this location's representative."""
        return self._dist.epoch

    def migrate_bcontainer(self, bcid: int, dest: int) -> None:
        """Collective: move one bContainer (and its directory home entries)
        to location ``dest``."""
        self.migrate({bcid: dest})

    def migrate(self, assignment) -> None:
        """Collective: reassign bContainer ownership per ``assignment`` (a
        BCID → location dict, partial, or a full per-BCID list) and move
        the data.

        The commit is transactional under the distribution epoch: packed
        bContainers and directory home entries travel in one node-aware
        ``bulk_exchange``, the mapper swap + epoch bump happen between the
        exchange and the closing barrier, and requests still in flight
        against the old placement re-forward through the directory at the
        receiver (``stale_redirects``).
        """
        from .pcontainer import SLAB_ACCESS_FACTOR

        ctx = self.ctx
        group = self.group
        members = group.members
        dist = self._dist
        part = dist.partition
        old_mapper = dist.mapper
        nbc = part.size()
        if isinstance(assignment, dict):
            new_map = [assignment.get(b, old_mapper.map(b))
                       for b in range(nbc)]
        else:
            new_map = list(assignment)
            if len(new_map) != nbc:
                raise ValueError(
                    f"assignment covers {len(new_map)} BCIDs, partition "
                    f"has {nbc}")
        member_set = set(members)
        for dest in new_map:
            if dest not in member_set:
                raise ValueError(f"location {dest} not in group {members}")
        moves = {b: (old_mapper.map(b), new_map[b]) for b in range(nbc)
                 if old_mapper.map(b) != new_map[b]}
        # entry barrier: the destructive packing below must not start
        # until every group member has entered the collective — a peer
        # may legally still be completing pre-migration element methods
        # against the old placement
        ctx.barrier(group)
        if not moves:
            return

        lm = self.location_manager
        pos_of = {lid: i for i, lid in enumerate(members)}
        outgoing = [[] for _ in members]
        moved = 0
        for bcid in sorted(moves):
            src, dest = moves[bcid]
            if src != ctx.id:
                continue
            bc = lm.delete_bcontainer(bcid)
            n = bc.size()
            ctx.charge_lookup()
            ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR * n)
            outgoing[pos_of[dest]].append(("bc", pack_bcontainer(bc)))
            moved += n
            ctx.stats.bcontainers_migrated += 1
        if getattr(part, "directory", False):
            # home entries move with their home BCID, riding the same
            # exchange so data + addressing commit in one epoch
            for home_bcid, entries in part.take_entries(set(moves)).items():
                ctx.charge_lookup(len(entries))
                outgoing[pos_of[new_map[home_bcid]]].append(("dir", entries))

        incoming = ctx.bulk_exchange(outgoing, group=group, nelems=moved)

        new_mapper = GeneralMapper(new_map)
        new_mapper.init(nbc, members)
        dist.mapper = new_mapper
        for bucket in incoming:
            for kind, payload in bucket:
                if kind == "bc":
                    bc = unpack_bcontainer(payload)
                    lm.add_bcontainer(bc.get_bcid(), bc)
                    ctx.charge(ctx.machine.t_access * SLAB_ACCESS_FACTOR
                               * bc.size())
                    ctx.stats.migration_elements_moved += bc.size()
                else:
                    part.install_entries(payload)
                    ctx.charge_lookup(len(payload))
        dist.bump_epoch()
        ctx.barrier(group)

    def rebalance(self, access_weight: float = 1.0,
                  reset_counters: bool = True) -> None:
        """Collective load-driven rebalancing: allgather per-bContainer
        (elements, accesses) counters, bin-pack BCIDs onto locations by
        ``elements + access_weight * accesses`` (greedy LPT), and migrate
        the moves.  ``reset_counters`` starts a fresh measurement window
        afterwards."""
        ctx = self.ctx
        group = self.group
        lm = self.location_manager
        local = [(bcid, lm.get_bcontainer(bcid).size(), lm.access_count(bcid))
                 for bcid in lm.bcids()]
        gathered = ctx.allgather_rmi(local, group=group)
        loads = {}
        for per_loc in gathered:
            for bcid, nelem, naccess in per_loc:
                loads[bcid] = nelem + access_weight * naccess
        assignment = lpt_assignment(loads, group.members)
        ctx.stats.rebalances += 1
        if reset_counters:
            lm.reset_access_counts()
        self.migrate(assignment)


__all__ = [
    "CACHE_MAX_EXACT",
    "LookupCache",
    "MigrationMixin",
    "lookup_cache_enabled",
    "lpt_assignment",
    "pack_bcontainer",
    "set_lookup_cache",
    "unpack_bcontainer",
]
