"""Memory-consumption accounting (Ch. IX.F, Tables XXII/XXIII, Fig. 34).

Every framework module reports its own ``memory_size``; this module gathers
them into per-location and aggregate reports and provides the *theoretical*
models the paper compares against (Table XXIII).
"""

from __future__ import annotations

from dataclasses import dataclass

from .base_containers import ELEM_BYTES


@dataclass
class MemoryReport:
    """Measured memory of one container across all locations."""

    per_location: list  # [(metadata, data), ...]

    @property
    def metadata(self) -> int:
        return sum(m for m, _ in self.per_location)

    @property
    def data(self) -> int:
        return sum(d for _, d in self.per_location)

    @property
    def total(self) -> int:
        return self.metadata + self.data

    @property
    def overhead_ratio(self) -> float:
        """Metadata bytes per data byte — the paper's figure of merit."""
        return self.metadata / self.data if self.data else float("inf")


def measure_memory(container) -> MemoryReport:
    """Collective: gather (metadata, data) from every representative."""
    local = container.local_memory_size()
    gathered = container.ctx.allgather_rmi(local, group=container.group)
    return MemoryReport(gathered)


def theoretical_parray_memory(n: int, p: int, nparts: int | None = None,
                              elem_bytes: int = ELEM_BYTES) -> dict:
    """Table XXIII model for pArray.

    Data is exactly ``n * elem_bytes``; metadata is O(1) per location for a
    closed-form partition (domain + partition + mapper + manager bookkeeping)
    plus per-bContainer records.
    """
    nparts = nparts if nparts is not None else p
    per_loc_fixed = 64 + 48 + 32 + 32 + 64 + 48  # base/lm/domain/part/mapper/dist
    per_bcontainer = 48 + 16 + 16  # bc header + map entry + sub-domain
    metadata = p * per_loc_fixed + nparts * per_bcontainer
    return {
        "data": n * elem_bytes,
        "metadata": metadata,
        "total": n * elem_bytes + metadata,
        "per_location_metadata": metadata / p,
    }


def theoretical_plist_memory(n: int, p: int, elem_bytes: int = ELEM_BYTES) -> dict:
    """pList: three-pointer node overhead per element dominates metadata."""
    per_node = 32
    per_loc_fixed = 64 + 48 + 32 + 32 + 64 + 48
    metadata = p * per_loc_fixed + n * per_node
    return {
        "data": n * elem_bytes,
        "metadata": metadata,
        "total": n * elem_bytes + metadata,
        "per_location_metadata": metadata / p,
    }
