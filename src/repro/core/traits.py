"""pContainer traits (Ch. V.H): instance-level customization.

The C++ framework passes traits as template arguments; here a
:class:`Traits` object carries the same factories — partition, partition
mapper, bContainer class, thread-safety manager, memory-consistency mode —
and every container resolves its modules through it, so users can override
any module per container instance (``p_array(..., traits=Traits(...))``).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional


class ConsistencyMode(Enum):
    """Memory-consistency configuration (Ch. VII.E.3).

    ``DEFAULT``: the relaxed pContainer MCM (async methods complete at
    fences / same-element sync points).  ``SEQUENTIAL``: every element-wise
    method executes synchronously, which Ch. VII Claim 3 shows restores
    sequential consistency.
    """

    DEFAULT = "default"
    SEQUENTIAL = "sequential"


class Traits:
    """Bundle of customization points for one pContainer instance."""

    def __init__(
        self,
        partition=None,
        mapper_factory: Optional[Callable] = None,
        bcontainer_factory: Optional[Callable] = None,
        ths_manager_factory: Optional[Callable] = None,
        consistency: ConsistencyMode = ConsistencyMode.DEFAULT,
        bcontainer_thread_safe: bool = False,
        use_partition_proxy: bool = True,
    ):
        #: a Partition instance (or None for the container's default)
        self.partition = partition
        #: zero-arg callable returning a PartitionMapper
        self.mapper_factory = mapper_factory
        #: callable (domain, bcid) -> BaseContainer
        self.bcontainer_factory = bcontainer_factory
        #: zero-arg callable returning a ThreadSafetyManager
        self.ths_manager_factory = ths_manager_factory
        self.consistency = consistency
        #: declares the storage itself thread-safe (framework skips locking)
        self.bcontainer_thread_safe = bcontainer_thread_safe
        #: wrap the partition in a proxy so `redistribute` is available
        self.use_partition_proxy = use_partition_proxy

    def clone(self, **overrides) -> "Traits":
        out = Traits(
            partition=self.partition,
            mapper_factory=self.mapper_factory,
            bcontainer_factory=self.bcontainer_factory,
            ths_manager_factory=self.ths_manager_factory,
            consistency=self.consistency,
            bcontainer_thread_safe=self.bcontainer_thread_safe,
            use_partition_proxy=self.use_partition_proxy,
        )
        for k, v in overrides.items():
            if not hasattr(out, k):
                raise AttributeError(f"unknown trait {k!r}")
            setattr(out, k, v)
        return out


DEFAULT_TRAITS = Traits()
