"""Partition mappers: BCID → location (Ch. V.C.5, Table IX).

The partition decides *which sub-domain* owns a GID; the partition-mapper
decides *which location* hosts each sub-domain's bContainer.  The framework
ships the paper's three mappers: cyclic, blocked and general (arbitrary).
"""

from __future__ import annotations


class PartitionMapper:
    """Table IX interface."""

    def __init__(self):
        self._num_bcontainers = 0
        self._members: tuple = ()

    def init(self, num_bcontainers: int, members) -> None:
        """Initialise with the BCID count and the group's location list."""
        self._num_bcontainers = num_bcontainers
        self._members = tuple(members)

    @property
    def num_locations(self) -> int:
        return len(self._members)

    def get_num_bcontainers(self) -> int:
        return self._num_bcontainers

    def map(self, bcid: int):
        """Location hosting ``bcid``."""
        raise NotImplementedError

    def is_local(self, bcid: int, lid) -> bool:
        return self.map(bcid) == lid

    def get_local_cids(self, lid) -> list:
        return [b for b in range(self._num_bcontainers) if self.map(b) == lid]

    def memory_size(self) -> int:
        return 32


class CyclicMapper(PartitionMapper):
    """Sub-domain *i* lives on location ``members[i % L]``."""

    def map(self, bcid: int):
        return self._members[bcid % len(self._members)]

    def get_local_cids(self, lid) -> list:
        try:
            start = self._members.index(lid)
        except ValueError:
            return []
        return list(range(start, self._num_bcontainers, len(self._members)))


class BlockedMapper(PartitionMapper):
    """m/L consecutive sub-domains per location."""

    def map(self, bcid: int):
        L = len(self._members)
        m = self._num_bcontainers
        per, rem = divmod(m, L)
        big = rem * (per + 1)
        if bcid < big:
            return self._members[bcid // (per + 1)]
        if per == 0:
            raise IndexError(bcid)
        return self._members[rem + (bcid - big) // per]


class GeneralMapper(PartitionMapper):
    """Arbitrary explicit BCID → location assignment."""

    def __init__(self, assignment: list):
        super().__init__()
        self.assignment = list(assignment)

    def init(self, num_bcontainers: int, members) -> None:
        if num_bcontainers != len(self.assignment):
            raise ValueError(
                f"assignment covers {len(self.assignment)} BCIDs, partition "
                f"has {num_bcontainers}")
        mset = set(members)
        for loc in self.assignment:
            if loc not in mset:
                raise ValueError(f"location {loc} not in group {members}")
        super().init(num_bcontainers, members)

    def map(self, bcid: int):
        return self.assignment[bcid]

    def memory_size(self) -> int:
        return 32 + 8 * len(self.assignment)
