"""Thread-safety managers and locking policies (Ch. VI).

A pContainer method accesses metadata (partition / mapper) and data
(bContainers).  The partition carries a per-method *locking policy*:
a (granularity, data-mode, metadata-mode) tuple, with granularities
``NONE`` / ``ELEMENT`` / ``BCONTAINER`` / ``LOCAL`` and modes ``READ`` /
``WRITE`` (``MDREAD`` / ``MDWRITE`` for metadata).  The data-distribution
manager calls back into the thread-safety manager around each phase of the
generic ``invoke`` skeleton (Fig. 17); the manager decides what to lock.

The simulator's baton guarantees physical atomicity, so managers here are
*cost and policy* models: they charge lock overhead to the virtual clock,
count acquisitions, and honour the customization hooks (no-lock managers,
K-way hashed element locks, thread-safe bContainers that suppress framework
locking) exactly as Ch. VI describes.
"""

from __future__ import annotations

from enum import Enum


class LockGranularity(Enum):
    NONE = "none"
    ELEMENT = "element"
    BCONTAINER = "bcontainer"
    LOCAL = "local"


class RWMode(Enum):
    READ = "read"
    WRITE = "write"


#: convenience aliases matching the paper's policy tables (Ch. VI.D)
NONE = LockGranularity.NONE
ELEMENT = LockGranularity.ELEMENT
BCONTAINER = LockGranularity.BCONTAINER
LOCAL = LockGranularity.LOCAL
READ = RWMode.READ
WRITE = RWMode.WRITE
MDREAD = RWMode.READ
MDWRITE = RWMode.WRITE


class LockingPolicy:
    """Per-method locking attribute table (Ch. VI.D)."""

    def __init__(self, default=(ELEMENT, WRITE, MDREAD)):
        self._default = default
        self._per_method: dict[str, tuple] = {}

    def set(self, method: str, granularity, data_mode, md_mode) -> None:
        self._per_method[method] = (granularity, data_mode, md_mode)

    def get_locking_policy(self, method: str) -> tuple:
        return self._per_method.get(method, self._default)

    def methods(self) -> list:
        return sorted(self._per_method)


class ThreadSafetyManager:
    """Default manager: locks per the policy table, charging lock cost."""

    def __init__(self):
        self.acquires = 0
        self.element_locks = 0
        self.bcontainer_locks = 0
        self.local_locks = 0
        self.metadata_locks = 0

    # -- Ch. VI.C interface ----------------------------------------------
    def method_access_pre(self, info) -> None:
        pass

    def method_access_post(self, info) -> None:
        pass

    def metadata_access_pre(self, info) -> None:
        granularity, _data, md_mode = info.policy
        if granularity is NONE:
            return
        if info.partition_dynamic or md_mode is WRITE:
            self.metadata_locks += 1
            self._acquire(info)

    def metadata_access_post(self, info) -> None:
        pass

    def data_access_pre(self, info, bcid) -> None:
        granularity, _data, _md = info.policy
        if granularity is NONE:
            return
        if info.bcontainer_thread_safe:
            return  # thread-safe storage: framework performs no locking
        if granularity is ELEMENT:
            self.element_locks += 1
        elif granularity is BCONTAINER:
            self.bcontainer_locks += 1
        else:
            self.local_locks += 1
        self._acquire(info)

    def data_access_post(self, info, bcid) -> None:
        pass

    def _acquire(self, info) -> None:
        self.acquires += 1
        info.location.charge_lock()


class NoLockManager(ThreadSafetyManager):
    """Customization for read-only phases / TDG-serialised access: no locks
    at all (the 'NONE' manager of Ch. VI.E)."""

    def metadata_access_pre(self, info) -> None:
        pass

    def data_access_pre(self, info, bcid) -> None:
        pass


class HashedLockManager(ThreadSafetyManager):
    """K-lock refinement (Ch. VI.E): element accesses hash their GID onto one
    of K locks; tracked so tests can verify the distribution of lock use."""

    def __init__(self, k: int = 64):
        super().__init__()
        self.k = max(1, k)
        self.per_lock = [0] * self.k

    def data_access_pre(self, info, bcid) -> None:
        granularity, _d, _m = info.policy
        if granularity is NONE or info.bcontainer_thread_safe:
            return
        from .partitions import stable_hash

        slot = stable_hash(info.gid) % self.k if info.gid is not None else 0
        self.per_lock[slot] += 1
        self.element_locks += 1
        self._acquire(info)


class THSInfo:
    """The ``ths_info`` record handed through one ``invoke`` execution."""

    __slots__ = ("method", "gid", "policy", "location", "partition_dynamic",
                 "bcontainer_thread_safe")

    def __init__(self, method, gid, policy, location, partition_dynamic,
                 bcontainer_thread_safe=False):
        self.method = method
        self.gid = gid
        self.policy = policy
        self.location = location
        self.partition_dynamic = partition_dynamic
        self.bcontainer_thread_safe = bcontainer_thread_safe
