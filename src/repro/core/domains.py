"""pContainer domains (Ch. IV.B.2–3, Ch. V.C.3).

A *domain* is a set of GIDs.  An *ordered domain* adds a total order with the
paper's STL-compatible convention: ``first`` belongs to the domain, ``last``
is a one-past-the-end sentinel that compares greater than every member.  A
*finite ordered domain* additionally supports ``size``, ``next``, ``prev``,
``advance`` and ``offset`` — the interface of Tables V and VI.

Provided domain families (Ch. IV.B.3 "Example of Domains used by
pContainers"): enumerations, 1D ranges, 2D ranges with row-/column-major
linearisation, open (infinite) associative domains, cartesian products,
set-operation compositions and filtered domains.
"""

from __future__ import annotations

from typing import Iterable, Iterator

INVALID_GID = object()


class Domain:
    """Abstract set of GIDs."""

    is_finite = True

    def contains_gid(self, gid) -> bool:
        raise NotImplementedError

    def __contains__(self, gid) -> bool:
        return self.contains_gid(gid)

    def memory_size(self) -> int:
        """Bytes of metadata used to represent this domain."""
        return 32


class OrderedDomain(Domain):
    """Domain with a total order (Table V interface)."""

    def get_first_gid(self):
        raise NotImplementedError

    def get_last_gid(self):
        """One-past-the-end convention: not a member, greater than all."""
        raise NotImplementedError

    def compare_less_gids(self, a, b) -> bool:
        raise NotImplementedError

    def get_invalid_gid(self):
        return INVALID_GID


class FiniteOrderedDomain(OrderedDomain):
    """Finite total-ordered domain (Table VI interface)."""

    def size(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.size()

    def get_next_gid(self, gid):
        raise NotImplementedError

    def get_prev_gid(self, gid):
        raise NotImplementedError

    def advance(self, gid, n: int):
        for _ in range(n):
            gid = self.get_next_gid(gid)
        return gid

    def offset(self, gid) -> int:
        raise NotImplementedError

    def gid_at(self, off: int):
        """Inverse of :meth:`offset` (the unique enumeration of Def. 6)."""
        return self.advance(self.get_first_gid(), off)

    def __iter__(self) -> Iterator:
        if self.size() == 0:
            return
        gid = self.get_first_gid()
        last = self.get_last_gid()
        while gid != last:
            yield gid
            gid = self.get_next_gid(gid)

    def __eq__(self, other):
        if not isinstance(other, FiniteOrderedDomain):
            return NotImplemented
        if self.size() != other.size():
            return False
        return all(a == b for a, b in zip(self, other))

    def __hash__(self):  # pragma: no cover - identity hashing
        return id(self)


class RangeDomain(FiniteOrderedDomain):
    """Half-open integer interval ``[lo, hi)`` — the pArray/pVector domain."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        if hi < lo:
            raise ValueError(f"empty-negative range [{lo}, {hi})")
        self.lo = int(lo)
        self.hi = int(hi)

    def size(self) -> int:
        return self.hi - self.lo

    def contains_gid(self, gid) -> bool:
        return isinstance(gid, int) and self.lo <= gid < self.hi

    def get_first_gid(self) -> int:
        return self.lo

    def get_last_gid(self) -> int:
        return self.hi

    def compare_less_gids(self, a, b) -> bool:
        return a < b

    def get_next_gid(self, gid) -> int:
        return gid + 1

    def get_prev_gid(self, gid) -> int:
        return gid - 1

    def advance(self, gid, n: int) -> int:
        return gid + n

    def offset(self, gid) -> int:
        return gid - self.lo

    def gid_at(self, off: int) -> int:
        return self.lo + off

    def __iter__(self):
        return iter(range(self.lo, self.hi))

    def split_at(self, mid: int):
        """Split into ([lo, mid), [mid, hi)) — the *split* of Def. 11."""
        return RangeDomain(self.lo, mid), RangeDomain(mid, self.hi)

    def intersect(self, other: "RangeDomain") -> "RangeDomain":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return RangeDomain(lo, max(lo, hi))

    def __repr__(self):
        return f"RangeDomain[{self.lo}, {self.hi})"

    def memory_size(self) -> int:
        return 16


class EnumeratedDomain(FiniteOrderedDomain):
    """Explicit enumeration of GIDs; order is the enumeration order."""

    def __init__(self, gids: Iterable):
        self._gids = list(gids)
        if len(set(self._gids)) != len(self._gids):
            raise ValueError("domain elements must be distinct")
        self._index = {g: i for i, g in enumerate(self._gids)}

    def size(self) -> int:
        return len(self._gids)

    def contains_gid(self, gid) -> bool:
        try:
            return gid in self._index
        except TypeError:
            return False

    def get_first_gid(self):
        if not self._gids:
            return INVALID_GID
        return self._gids[0]

    def get_last_gid(self):
        return INVALID_GID  # sentinel: one past the final element

    def compare_less_gids(self, a, b) -> bool:
        if b is INVALID_GID:
            return a is not INVALID_GID
        if a is INVALID_GID:
            return False
        return self._index[a] < self._index[b]

    def get_next_gid(self, gid):
        i = self._index[gid]
        if i + 1 >= len(self._gids):
            return self.get_last_gid()
        return self._gids[i + 1]

    def get_prev_gid(self, gid):
        if gid is INVALID_GID:
            return self._gids[-1]
        return self._gids[self._index[gid] - 1]

    def offset(self, gid) -> int:
        return self._index[gid]

    def gid_at(self, off: int):
        return self._gids[off]

    def __iter__(self):
        return iter(self._gids)

    def __repr__(self):
        return f"EnumeratedDomain({self._gids!r})"

    def memory_size(self) -> int:
        return 16 + 16 * len(self._gids)


class Range2DDomain(FiniteOrderedDomain):
    """2D index domain ``[(r0,c0), (r1,c1))`` with row- or column-major
    linearisation (the two total orders of Ch. IV.B.3)."""

    def __init__(self, first: tuple, last: tuple, order: str = "row"):
        self.r0, self.c0 = first
        self.r1, self.c1 = last
        if self.r1 < self.r0 or self.c1 < self.c0:
            raise ValueError("negative 2D range")
        if order not in ("row", "column"):
            raise ValueError("order must be 'row' or 'column'")
        self.order = order

    @property
    def rows(self) -> int:
        return self.r1 - self.r0

    @property
    def cols(self) -> int:
        return self.c1 - self.c0

    def size(self) -> int:
        return self.rows * self.cols

    def contains_gid(self, gid) -> bool:
        try:
            r, c = gid
        except (TypeError, ValueError):
            return False
        return self.r0 <= r < self.r1 and self.c0 <= c < self.c1

    def get_first_gid(self):
        return (self.r0, self.c0)

    def get_last_gid(self):
        return (self.r1, self.c1)

    def _key(self, gid):
        r, c = gid
        if self.order == "row":
            return (r, c)
        return (c, r)

    def compare_less_gids(self, a, b) -> bool:
        return self._key(a) < self._key(b)

    def offset(self, gid) -> int:
        r, c = gid
        if self.order == "row":
            return (r - self.r0) * self.cols + (c - self.c0)
        return (c - self.c0) * self.rows + (r - self.r0)

    def gid_at(self, off: int):
        if self.order == "row":
            return (self.r0 + off // self.cols, self.c0 + off % self.cols)
        return (self.r0 + off % self.rows, self.c0 + off // self.rows)

    def get_next_gid(self, gid):
        off = self.offset(gid) + 1
        if off >= self.size():
            return self.get_last_gid()
        return self.gid_at(off)

    def get_prev_gid(self, gid):
        if gid == self.get_last_gid():
            return self.gid_at(self.size() - 1)
        return self.gid_at(self.offset(gid) - 1)

    def advance(self, gid, n: int):
        off = self.offset(gid) + n
        if off >= self.size():
            return self.get_last_gid()
        return self.gid_at(off)

    def __iter__(self):
        return (self.gid_at(i) for i in range(self.size()))

    def __repr__(self):
        return (f"Range2DDomain[({self.r0},{self.c0}), ({self.r1},{self.c1}))"
                f" {self.order}-major")

    def memory_size(self) -> int:
        return 40


class OpenDomain(OrderedDomain):
    """Infinite, open ordered domain for sorted associative containers:
    ``{[lo, hi), key order}`` (e.g. the strings domain of Ch. IV.B.3).
    ``None`` bounds mean unbounded on that side."""

    is_finite = False

    def __init__(self, lo=None, hi=None):
        self.lo = lo
        self.hi = hi

    def contains_gid(self, gid) -> bool:
        try:
            if self.lo is not None and gid < self.lo:
                return False
            if self.hi is not None and gid >= self.hi:
                return False
        except TypeError:
            return False
        return True

    def get_first_gid(self):
        return self.lo

    def get_last_gid(self):
        return self.hi

    def compare_less_gids(self, a, b) -> bool:
        return a < b

    def __repr__(self):
        return f"OpenDomain[{self.lo!r}, {self.hi!r})"


class UniverseDomain(Domain):
    """Universe(T): infinite domain of all valid GIDs (dynamic containers)."""

    is_finite = False

    def __init__(self, predicate=None):
        self._pred = predicate

    def contains_gid(self, gid) -> bool:
        return True if self._pred is None else bool(self._pred(gid))

    def __repr__(self):
        return "UniverseDomain()"


class CartesianDomain(FiniteOrderedDomain):
    """Lexicographic product of finite ordered domains (Ch. IV.B.3)."""

    def __init__(self, factors: list):
        self.factors = list(factors)
        if not self.factors:
            raise ValueError("need at least one factor domain")
        self._sizes = [f.size() for f in self.factors]

    def size(self) -> int:
        out = 1
        for s in self._sizes:
            out *= s
        return out

    def contains_gid(self, gid) -> bool:
        try:
            if len(gid) != len(self.factors):
                return False
        except TypeError:
            return False
        return all(f.contains_gid(x) for f, x in zip(self.factors, gid))

    def get_first_gid(self):
        return tuple(f.get_first_gid() for f in self.factors)

    def get_last_gid(self):
        return tuple(f.get_last_gid() for f in self.factors)

    def compare_less_gids(self, a, b) -> bool:
        ka = tuple(f.offset(x) for f, x in zip(self.factors, a))
        kb = tuple(f.offset(x) for f, x in zip(self.factors, b))
        return ka < kb

    def offset(self, gid) -> int:
        out = 0
        for f, x, s in zip(self.factors, gid, self._sizes):
            out = out * s + f.offset(x)
        return out

    def gid_at(self, off: int):
        coords = []
        for f, s in zip(reversed(self.factors), reversed(self._sizes)):
            coords.append(f.gid_at(off % s))
            off //= s
        return tuple(reversed(coords))

    def get_next_gid(self, gid):
        off = self.offset(gid) + 1
        if off >= self.size():
            return self.get_last_gid()
        return self.gid_at(off)

    def get_prev_gid(self, gid):
        return self.gid_at(self.offset(gid) - 1)

    def __iter__(self):
        return (self.gid_at(i) for i in range(self.size()))

    def memory_size(self) -> int:
        return 16 + sum(f.memory_size() for f in self.factors)


class FilteredDomain(FiniteOrderedDomain):
    """``(D1, filter_function)``: members of a base domain passing a
    predicate, in the base order (Ch. IV.B.3)."""

    def __init__(self, base: FiniteOrderedDomain, predicate):
        self.base = base
        self.predicate = predicate
        self._gids = [g for g in base if predicate(g)]
        self._view = EnumeratedDomain(self._gids)

    def size(self) -> int:
        return self._view.size()

    def contains_gid(self, gid) -> bool:
        return self.base.contains_gid(gid) and self.predicate(gid)

    def get_first_gid(self):
        return self._view.get_first_gid()

    def get_last_gid(self):
        return self._view.get_last_gid()

    def compare_less_gids(self, a, b) -> bool:
        return self._view.compare_less_gids(a, b)

    def get_next_gid(self, gid):
        return self._view.get_next_gid(gid)

    def get_prev_gid(self, gid):
        return self._view.get_prev_gid(gid)

    def offset(self, gid) -> int:
        return self._view.offset(gid)

    def gid_at(self, off: int):
        return self._view.gid_at(off)

    def __iter__(self):
        return iter(self._gids)

    def memory_size(self) -> int:
        return self._view.memory_size()


# -- set operations on domains (Ch. IV.B.3: OD3 = OD1 op OD2) --------------

def domain_union(a: FiniteOrderedDomain, b: FiniteOrderedDomain) -> FiniteOrderedDomain:
    if isinstance(a, RangeDomain) and isinstance(b, RangeDomain):
        if a.hi >= b.lo and b.hi >= a.lo:  # overlapping/adjacent
            return RangeDomain(min(a.lo, b.lo), max(a.hi, b.hi))
    seen = list(a)
    extra = [g for g in b if g not in set(seen)]
    return EnumeratedDomain(sorted(seen + extra))


def domain_intersection(a: FiniteOrderedDomain,
                        b: FiniteOrderedDomain) -> FiniteOrderedDomain:
    if isinstance(a, RangeDomain) and isinstance(b, RangeDomain):
        return a.intersect(b)
    bset = set(b)
    return EnumeratedDomain([g for g in a if g in bset])


def domain_difference(a: FiniteOrderedDomain,
                      b: FiniteOrderedDomain) -> FiniteOrderedDomain:
    bset = set(b)
    return EnumeratedDomain([g for g in a if g not in bset])


def linearization(domain: FiniteOrderedDomain) -> list:
    """The unique enumeration imposed by the domain's total order (Def. 6)."""
    return list(domain)
