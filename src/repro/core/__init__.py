"""STAPL Parallel Container Framework core (Ch. IV–VII)."""

from .base_containers import (
    ArrayBC,
    BaseContainer,
    GraphBC,
    ListBC,
    MapBC,
    Matrix2DBC,
    MultiMapBC,
    SetBC,
    VectorBC,
)
from .distribution import DataDistributionManager
from .domains import (
    INVALID_GID,
    CartesianDomain,
    Domain,
    EnumeratedDomain,
    FilteredDomain,
    FiniteOrderedDomain,
    OpenDomain,
    OrderedDomain,
    Range2DDomain,
    RangeDomain,
    UniverseDomain,
    domain_difference,
    domain_intersection,
    domain_union,
    linearization,
)
from .location_manager import LocationManager
from .mappers import BlockedMapper, CyclicMapper, GeneralMapper, PartitionMapper
from .migration import (
    LookupCache,
    MigrationMixin,
    lookup_cache_enabled,
    lpt_assignment,
    set_lookup_cache,
)
from .memory import (
    MemoryReport,
    measure_memory,
    theoretical_parray_memory,
    theoretical_plist_memory,
)
from .partitions import (
    BalancedPartition,
    BCInfo,
    BlockCyclicPartition,
    BlockedPartition,
    DirectoryPartition,
    ExplicitPartition,
    HashPartition,
    ListPartition,
    Matrix2DPartition,
    Partition,
    RangePartition,
    UnbalancedBlockedPartition,
    balanced_sizes,
    split_domain,
    stable_hash,
)
from .pcontainer import (
    PartitionProxy,
    PContainerBase,
    PContainerDynamic,
    PContainerIndexed,
    PContainerStatic,
)
from .redistribution import RedistributableMixin
from .thread_safety import (
    BCONTAINER,
    ELEMENT,
    LOCAL,
    NONE,
    READ,
    WRITE,
    HashedLockManager,
    LockGranularity,
    LockingPolicy,
    NoLockManager,
    RWMode,
    ThreadSafetyManager,
)
from .traits import DEFAULT_TRAITS, ConsistencyMode, Traits
