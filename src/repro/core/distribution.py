"""Data-distribution manager (Ch. V.C.6, Table X; locking skeleton Fig. 17).

Every element-wise pContainer method is an instantiation of the generic
``invoke`` skeleton:

1. ask the partition *where* the GID lives (metadata access, guarded by the
   thread-safety manager);
2. if only partial information is available (dynamic directory), forward the
   whole request to the location that may know more (method forwarding), or
   — with forwarding disabled — resolve it with a synchronous directory
   round trip;
3. map the sub-domain to a location through the partition-mapper;
4. execute locally against the bContainer (data access, guarded), or ship
   the request with the requested flavour: ``invoke`` (asynchronous),
   ``invoke_ret`` (synchronous), ``invoke_opaque_ret`` (split-phase).

Containers implement ``_local_<method>(bc, gid, *args)`` handlers which the
skeleton dispatches to once the owning bContainer is found.

Migration awareness: the manager carries the container's **distribution
epoch** (bumped by every committed migration/redistribution) and a
per-location **lookup cache** consulted before the partition for partitions
whose GID → BCID mapping is stable between epochs.  A cache hit skips the
``charge_lookup`` metadata charge (and, for no-forwarding directories, the
synchronous interrogation round trip).  Cached resolutions are flagged on
the shipped request; if one lands at a location whose bContainer no longer
holds the GID, the receiver re-forwards through the authoritative directory
with the cache bypassed — a bounded chain counted in ``stale_redirects``.

Mixed-mode locality: when the owner is *not* this location, the shipped
request is still locality-aware one layer down — destinations on the same
node take the runtime's zero-copy fast path (when enabled) instead of being
marshaled, and ``combine_rmi`` refuses to buffer ops bound for such
destinations (direct execution beats batching when no message would be
saved), falling back to the plain async send below.
"""

from __future__ import annotations

from .migration import LookupCache, lookup_cache_enabled
from .partitions import BCInfo
from .thread_safety import ELEMENT, MDREAD, WRITE, THSInfo
from .traits import ConsistencyMode

ASYNC = "async"
SYNC = "sync"
OPAQUE = "opaque"

#: fallback locking attributes for methods without a policy-table entry,
#: hoisted out of the dispatch hot paths
_DEFAULT_POLICY = (ELEMENT, WRITE, MDREAD)


class DataDistributionManager:
    """Owns the partition + partition-mapper of one container representative
    and executes the generic method skeleton."""

    def __init__(self, container, partition, mapper, ths_manager,
                 consistency=ConsistencyMode.DEFAULT,
                 bcontainer_thread_safe=False):
        self.container = container
        self.partition = partition
        self.mapper = mapper
        self.ths_manager = ths_manager
        self.consistency = consistency
        self.bcontainer_thread_safe = bcontainer_thread_safe
        #: distribution epoch: advanced once per committed migration or
        #: redistribution; everything caching distribution metadata is
        #: keyed by it
        self.epoch = 0
        self._cache = LookupCache()

    # -- epoch protocol --------------------------------------------------
    def bump_epoch(self) -> None:
        """Advance the distribution epoch and invalidate the lookup cache
        (called on this location by every committed migration)."""
        self.epoch += 1
        self._cache.invalidate(self.epoch)
        self.container.here.stats.lookup_cache_invalidations += 1

    def _cache_store(self, gid, bcid) -> None:
        """Remember a resolved GID → BCID pair; contiguous-run sub-domains
        are cached whole so one miss covers the entire run."""
        p = self.partition
        if isinstance(gid, int) and not isinstance(gid, bool):
            from .domains import RangeDomain

            sub = p.get_sub_domain(bcid)
            if isinstance(sub, RangeDomain):
                self._cache.store_run(sub.lo, sub.hi, bcid)
                return
        self._cache.store(gid, bcid)

    # -- address resolution (Fig. 7 flowchart) ---------------------------
    def get_info(self, gid, use_cache: bool = True) -> BCInfo:
        """``FunctorWhere``: partition query, possibly partial (Fig. 8).

        Consults the lookup cache first (for cacheable partitions); hits
        return a BCInfo flagged ``cached`` without charging a lookup."""
        loc = self.container.here
        p = self.partition
        if (use_cache and p.cacheable and lookup_cache_enabled()):
            bcid = self._cache.lookup(gid)
            if bcid is not None:
                loc.stats.lookup_cache_hits += 1
                return BCInfo(bcid=bcid, cached=True)
        loc.charge_lookup()
        if p.directory:
            home_bcid = p.home_bcid(gid)
            home_loc = self.mapper.map(home_bcid)
            if home_loc != loc.id:
                if p.forwarding:
                    return BCInfo(loc_hint=home_loc)
                # no forwarding: synchronous directory interrogation
                bcid = self.container._sync_dir_lookup(home_loc, gid)
                if bcid is None:
                    raise KeyError(f"GID {gid!r} not in container")
                if p.cacheable:
                    self._cache.store(gid, bcid)
                return BCInfo(bcid=bcid)
            bcid = p.lookup(gid)
            if bcid is None:
                raise KeyError(f"GID {gid!r} not in container")
            if p.cacheable:
                self._cache.store(gid, bcid)
            return BCInfo(bcid=bcid)
        info = p.find(gid)
        if info.valid and p.cacheable:
            self._cache_store(gid, info.bcid)
        return info

    def lookup(self, gid):
        """Location that owns (or may know more about) ``gid``."""
        info = self.get_info(gid)
        if info.valid:
            return self.mapper.map(info.bcid)
        return info.loc_hint

    def is_local(self, gid) -> bool:
        info = self.get_info(gid)
        return info.valid and self.mapper.map(info.bcid) == self.container.here.id

    # -- the generic skeleton ---------------------------------------------
    def _execute_local(self, method, gid, args, ths_info, bcid):
        ths = self.ths_manager
        loc = self.container.here
        ths.data_access_pre(ths_info, bcid)
        loc.charge_access()
        lm = self.container.location_manager
        lm.note_access(bcid)
        bc = lm.get_bcontainer(bcid)
        handler = getattr(self.container, "_local_" + method)
        result = handler(bc, gid, *args)
        ths.data_access_post(ths_info, bcid)
        ths.method_access_post(ths_info)
        return result

    def _dispatch(self, method, gid, args, flavor, use_cache: bool = True):
        container = self.container
        loc = container.here
        ths = self.ths_manager
        policy = self.partition.locking_policy
        pol = policy.get_locking_policy(method) if policy else None
        if pol is None:
            pol = _DEFAULT_POLICY
        info = THSInfo(method, gid, pol, loc, self.partition.dynamic,
                       self.bcontainer_thread_safe)
        ths.method_access_pre(info)
        ths.metadata_access_pre(info)
        bcinfo = self.get_info(gid, use_cache=use_cache)
        ths.metadata_access_post(info)
        if bcinfo.valid:
            target = self.mapper.map(bcinfo.bcid)
        else:
            target = bcinfo.loc_hint
        if target == loc.id:
            if not bcinfo.valid:  # pragma: no cover - defensive
                raise RuntimeError("partition returned hint to self")
            if (bcinfo.cached and self.partition.directory
                    and not (container.location_manager.has_bcontainer(
                                 bcinfo.bcid)
                             and container._gid_resident(
                                 container.location_manager.get_bcontainer(
                                     bcinfo.bcid), gid))):
                # stale cached route resolving to *this* location: same
                # re-forward as the remote arm in execute_at_bcid
                loc.stats.stale_redirects += 1
                ths.method_access_post(info)
                return self._dispatch(method, gid, args, flavor,
                                      use_cache=False)
            loc.stats.local_invocations += 1
            result = self._execute_local(method, gid, args, info, bcinfo.bcid)
            if flavor == OPAQUE:
                from ..runtime.future import Future

                fut = Future(container.runtime, loc.id, loc.id)
                fut._resolve(result, loc.clock)
                return fut
            return result
        # remote: ship the request with the requested flavour.  When the
        # sub-domain is already resolved (directory home answered, a
        # closed-form partition, or a cache hit), ship the BCID so the
        # owner executes directly instead of re-resolving — this is what
        # terminates a forwarding chain at the owner.
        ths.method_access_post(info)
        origin = container.runtime.current_origin
        if origin != loc.id:
            loc.stats.forwarded += 1
            part = self.partition
            if (bcinfo.valid and part.directory and part.cacheable
                    and lookup_cache_enabled()
                    and self.mapper.map(part.home_bcid(gid)) == loc.id):
                # directory route update (BCL-style owner caching): the
                # authoritative home tells the origin which BCID owns the
                # GID, so its next request skips the home hop entirely.
                # A stale update is harmless — the receiver-side
                # residency check re-forwards through the directory.
                loc.async_rmi(origin, container.handle, "_route_update",
                              gid, bcinfo.bcid)
        loc.stats.remote_invocations += 1
        if bcinfo.valid:
            handler_async, handler_ret = "_invoke_exec_async", "_invoke_exec_ret"
            extra = (bcinfo.bcid, bcinfo.cached)
        else:
            handler_async, handler_ret = ("_invoke_handler_async",
                                          "_invoke_handler_ret")
            extra = ()
        if flavor == ASYNC:
            # dynamic-side combining (Ch. III.B): eligible async ops are
            # buffered per (dest, handle) and flushed as one bulk message
            if (method in container.COMBINING_METHODS
                    and loc.combine_rmi(target, container.handle,
                                        handler_async, method, gid, args,
                                        *extra)):
                return None
            loc.async_rmi(target, container.handle, handler_async,
                          method, gid, args, *extra)
            return None
        if flavor == SYNC:
            return loc.sync_rmi(target, container.handle, handler_ret,
                                method, gid, args, *extra)
        return loc.opaque_rmi(target, container.handle, handler_ret,
                              method, gid, args, *extra)

    def execute_at_bcid(self, method, gid, args, bcid, flavor=SYNC,
                        cached: bool = False):
        """Execute at a pre-resolved bContainer (tail of a forwarding chain).

        Falls back to a full re-dispatch — preserving the caller's original
        flavour — when the BCID moved (migration/redistribution), or when a
        cache-resolved request landed at a bContainer that no longer holds
        the GID (directory containers); the re-dispatch then bypasses the
        cache so the chain terminates at the authoritative directory."""
        container = self.container
        loc = container.here
        lm = container.location_manager
        if not lm.has_bcontainer(bcid):
            loc.stats.stale_redirects += 1
            return self._dispatch(method, gid, args, flavor)
        if cached and self.partition.directory and not container._gid_resident(
                lm.get_bcontainer(bcid), gid):
            loc.stats.stale_redirects += 1
            return self._dispatch(method, gid, args, flavor, use_cache=False)
        ths = self.ths_manager
        policy = self.partition.locking_policy
        pol = policy.get_locking_policy(method) if policy else None
        if pol is None:
            pol = _DEFAULT_POLICY
        info = THSInfo(method, gid, pol, loc, self.partition.dynamic,
                       self.bcontainer_thread_safe)
        ths.method_access_pre(info)
        loc.stats.local_invocations += 1
        return self._execute_local(method, gid, args, info, bcid)

    # -- public flavours (Table X) ------------------------------------------
    def invoke(self, method, gid, *args) -> None:
        """Asynchronous execution (no return value)."""
        if self.consistency is ConsistencyMode.SEQUENTIAL:
            self._dispatch(method, gid, args, SYNC)
            return None
        return self._dispatch(method, gid, args, ASYNC)

    def invoke_ret(self, method, gid, *args):
        """Synchronous execution returning the method's value."""
        return self._dispatch(method, gid, args, SYNC)

    def invoke_opaque_ret(self, method, gid, *args):
        """Split-phase execution returning a future."""
        if self.consistency is ConsistencyMode.SEQUENTIAL:
            from ..runtime.future import Future

            value = self._dispatch(method, gid, args, SYNC)
            loc = self.container.here
            fut = Future(self.container.runtime, loc.id, loc.id)
            fut._resolve(value, loc.clock)
            return fut
        return self._dispatch(method, gid, args, OPAQUE)

    def memory_size(self) -> int:
        return (64 + self.partition.memory_size()
                + self.mapper.memory_size()
                + self._cache.memory_size())
