"""Partitions: decomposition of a domain into sub-domains (Ch. IV.B.4–5,
Ch. V.C.4, Tables VII/VIII/XV).

A partition splits a pContainer's domain into disjoint sub-domains, one per
base container (bContainer), and answers the central address-resolution
question *which sub-domain owns this GID?* (``find``).  Static containers use
closed-form partitions (no communication); dynamic containers either maintain
replicated metadata (pVector, pList) or a distributed *directory*
(dynamic pGraph) whose lookups may be forwarded between locations —
reproducing the static / dynamic-forwarding / dynamic-no-forwarding
trichotomy the paper evaluates in Fig. 51.

Every partition also carries the per-method *locking policy* table consulted
by the thread-safety manager (Ch. VI.D).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

from .domains import (
    EnumeratedDomain,
    FiniteOrderedDomain,
    OpenDomain,
    Range2DDomain,
    RangeDomain,
    UniverseDomain,
)


class BCInfo:
    """Result of a ``where`` query (the bContainer-info structure of Fig. 8).

    Either a valid bContainer id, or — when only partial information is
    available on the querying location — a hint naming the location that may
    know more (method forwarding, Ch. V.C).  ``cached`` marks resolutions
    served from the per-location lookup cache: shipped requests carry the
    flag so a receiver can tell an authoritative route from a possibly
    stale one.
    """

    __slots__ = ("bcid", "loc_hint", "cached")

    def __init__(self, bcid=None, loc_hint=None, cached=False):
        self.bcid = bcid
        self.loc_hint = loc_hint
        self.cached = cached

    @property
    def valid(self) -> bool:
        return self.bcid is not None

    def __repr__(self):
        return f"BCInfo(bcid={self.bcid}, loc_hint={self.loc_hint})"


def split_domain(domain: FiniteOrderedDomain, sizes: list) -> list:
    """The *split* of Def. 11: block the unique enumeration of a totally
    ordered domain into consecutive chunks of the given sizes."""
    if sum(sizes) != domain.size():
        raise ValueError(
            f"split sizes {sum(sizes)} != domain size {domain.size()}")
    if isinstance(domain, RangeDomain):
        out, lo = [], domain.lo
        for s in sizes:
            out.append(RangeDomain(lo, lo + s))
            lo += s
        return out
    gids = list(domain)
    out, at = [], 0
    for s in sizes:
        out.append(EnumeratedDomain(gids[at:at + s]))
        at += s
    return out


def balanced_sizes(n: int, parts: int) -> list:
    """Sizes of a balanced split of ``n`` elements into ``parts`` chunks."""
    if parts <= 0:
        raise ValueError("need at least one part")
    base, rem = divmod(n, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


class Partition:
    """Base partition interface (Table VII) over an ordered BCID space.

    BCIDs are the integers ``0..m-1``; the ordered-partition relation RD is
    their natural order (Table VIII).
    """

    #: True when ``find`` may return partial information (directory lookups)
    directory = False
    #: True when the sub-domains can change during execution
    dynamic = False
    #: True when the GID → BCID mapping is stable between distribution
    #: epochs, making per-location lookup-cache entries safe.  Partitions
    #: whose metadata shifts under element ops (pVector's block table) or
    #: whose GIDs already carry the BCID (pList) opt out.
    cacheable = True

    def __init__(self):
        self._domain: Optional[FiniteOrderedDomain] = None
        self._subdomains: list = []
        #: per-method locking attributes, filled in by the owning container
        self.locking_policy: dict = {}

    # -- setup ----------------------------------------------------------
    def set_domain(self, domain) -> None:
        self._domain = domain
        self._subdomains = self._build_subdomains(domain)

    def _build_subdomains(self, domain) -> list:
        raise NotImplementedError

    # -- Table VII ------------------------------------------------------
    def get_domain(self):
        return self._domain

    def size(self) -> int:
        return len(self._subdomains)

    def __len__(self) -> int:
        return self.size()

    def get_sub_domain(self, bcid: int):
        return self._subdomains[bcid]

    def get_sub_domains(self) -> list:
        return list(self._subdomains)

    def get_sub_domain_sizes(self) -> list:
        return [d.size() for d in self._subdomains]

    def find(self, gid) -> BCInfo:
        """Map a GID to its sub-domain (``get_info`` of Table VII)."""
        raise NotImplementedError

    # -- ordered partition (Table VIII) ----------------------------------
    def get_first(self) -> int:
        return 0

    def get_last(self) -> int:
        return self.size()

    def get_next(self, bcid: int) -> int:
        return bcid + 1

    def get_prev(self, bcid: int) -> int:
        return bcid - 1

    def memory_size(self) -> int:
        return 64 + sum(d.memory_size() for d in self._subdomains)


class BalancedPartition(Partition):
    """``partition_balanced``: P sub-domains of N/P elements (pArray default)."""

    def __init__(self, num_parts: int):
        super().__init__()
        if num_parts < 1:
            raise ValueError("need at least one part")
        self.num_parts = num_parts

    def _build_subdomains(self, domain):
        n = domain.size()
        parts = min(self.num_parts, n) if n else 1
        self._base, self._rem = divmod(n, parts) if n else (0, 0)
        self._parts = parts
        return split_domain(domain, balanced_sizes(n, parts))

    def find(self, gid) -> BCInfo:
        off = self._domain.offset(gid)
        # first `rem` parts hold (base+1) elements: closed form
        big = self._rem * (self._base + 1)
        if off < big:
            return BCInfo(off // (self._base + 1))
        if self._base == 0:
            raise KeyError(gid)
        return BCInfo(self._rem + (off - big) // self._base)

    def memory_size(self) -> int:
        return 32  # closed form: no per-subdomain metadata needed


class BlockedPartition(Partition):
    """``partition_blocked``: fixed block size, N/BS sub-domains."""

    def __init__(self, block_size: int):
        super().__init__()
        if block_size < 1:
            raise ValueError("block size must be positive")
        self.block_size = block_size

    def _build_subdomains(self, domain):
        n = domain.size()
        sizes = []
        while n > 0:
            sizes.append(min(self.block_size, n))
            n -= sizes[-1]
        if not sizes:
            sizes = [0]
        return split_domain(domain, sizes)

    def find(self, gid) -> BCInfo:
        return BCInfo(self._domain.offset(gid) // self.block_size)

    def memory_size(self) -> int:
        return 32


class BlockCyclicPartition(Partition):
    """``partition_block_cyclic``: round-robin groups of ``block`` GIDs over
    ``num_parts`` sub-domains."""

    def __init__(self, num_parts: int, block: int = 1):
        super().__init__()
        self.num_parts = num_parts
        self.block = max(1, block)

    def _build_subdomains(self, domain):
        gids = [[] for _ in range(self.num_parts)]
        for off, gid in enumerate(domain):
            gids[(off // self.block) % self.num_parts].append(gid)
        return [EnumeratedDomain(g) for g in gids]

    def find(self, gid) -> BCInfo:
        off = self._domain.offset(gid)
        return BCInfo((off // self.block) % self.num_parts)


class ExplicitPartition(Partition):
    """``partition_blocked_explicit``: caller-specified block sizes."""

    def __init__(self, sizes: list):
        super().__init__()
        self.sizes = list(sizes)
        if any(s < 0 for s in self.sizes) or not self.sizes:
            raise ValueError("sizes must be a non-empty list of >= 0")

    def _build_subdomains(self, domain):
        self._cum = []
        acc = 0
        for s in self.sizes:
            acc += s
            self._cum.append(acc)
        return split_domain(domain, self.sizes)

    def find(self, gid) -> BCInfo:
        off = self._domain.offset(gid)
        return BCInfo(bisect_right(self._cum, off))

    def memory_size(self) -> int:
        return 32 + 8 * len(self.sizes)


class Matrix2DPartition(Partition):
    """``p_matrix_partition``: (pr × pc) grid of 2D blocks over a
    :class:`Range2DDomain` (row/column/blocked layouts, Ch. V.D.4)."""

    def __init__(self, pr: int, pc: int):
        super().__init__()
        if pr < 1 or pc < 1:
            raise ValueError("grid dims must be positive")
        self.pr = pr
        self.pc = pc

    def _build_subdomains(self, domain: Range2DDomain):
        if not isinstance(domain, Range2DDomain):
            raise TypeError("Matrix2DPartition needs a Range2DDomain")
        self._dom2d = domain
        rs = balanced_sizes(domain.rows, self.pr)
        cs = balanced_sizes(domain.cols, self.pc)
        self._row_starts = [domain.r0]
        for s in rs[:-1]:
            self._row_starts.append(self._row_starts[-1] + s)
        self._col_starts = [domain.c0]
        for s in cs[:-1]:
            self._col_starts.append(self._col_starts[-1] + s)
        subs = []
        for i, r0 in enumerate(self._row_starts):
            r1 = r0 + rs[i]
            for j, c0 in enumerate(self._col_starts):
                c1 = c0 + cs[j]
                subs.append(Range2DDomain((r0, c0), (r1, c1),
                                          order=domain.order))
        return subs

    def find(self, gid) -> BCInfo:
        r, c = gid
        i = bisect_right(self._row_starts, r) - 1
        j = bisect_right(self._col_starts, c) - 1
        return BCInfo(i * self.pc + j)

    def block_coords(self, bcid: int) -> tuple:
        return divmod(bcid, self.pc)


class UnbalancedBlockedPartition(Partition):
    """``pv_unbalanced_partition`` (pVector): starts balanced; inserts and
    erases shift per-block counts, so ``find`` bisects a cumulative-size
    table (replicated metadata, MDWRITE on dynamic ops)."""

    dynamic = True
    #: block boundaries shift under insert/erase, so a cached GID → BCID
    #: pair can silently address the wrong block — never cache
    cacheable = False

    def __init__(self, num_parts: int):
        super().__init__()
        self.num_parts = max(1, num_parts)

    def _build_subdomains(self, domain):
        self._block_sizes = balanced_sizes(domain.size(), self.num_parts)
        self._rebuild_cum()
        return [None] * self.num_parts  # sub-domains are implicit (index math)

    def _rebuild_cum(self):
        self._cum = []
        acc = 0
        for s in self._block_sizes:
            acc += s
            self._cum.append(acc)

    def size(self) -> int:
        return len(self._block_sizes)

    def total_size(self) -> int:
        return self._cum[-1] if self._cum else 0

    def get_sub_domain_sizes(self) -> list:
        return list(self._block_sizes)

    def get_sub_domain(self, bcid: int):
        lo = self._cum[bcid - 1] if bcid else 0
        return RangeDomain(lo, self._cum[bcid])

    def get_sub_domains(self) -> list:
        return [self.get_sub_domain(b) for b in range(self.size())]

    def find(self, gid) -> BCInfo:
        if not 0 <= gid < self.total_size():
            raise IndexError(f"pVector index {gid} out of range")
        return BCInfo(bisect_right(self._cum, gid))

    def local_offset(self, gid, bcid: int) -> int:
        return gid - (self._cum[bcid - 1] if bcid else 0)

    def grow(self, bcid: int, by: int = 1) -> None:
        self._block_sizes[bcid] += by
        self._rebuild_cum()

    def shrink(self, bcid: int, by: int = 1) -> None:
        self._block_sizes[bcid] -= by
        if self._block_sizes[bcid] < 0:
            raise ValueError("negative block size")
        self._rebuild_cum()

    def memory_size(self) -> int:
        return 32 + 16 * len(self._block_sizes)


class ListPartition(Partition):
    """pList partition: GIDs are stable ``(bcid, seq)`` handles, so
    ownership is read off the GID itself — O(1), no directory (Ch. X.C)."""

    dynamic = True
    cacheable = False  # the GID already carries the BCID: nothing to cache

    def __init__(self, num_parts: int):
        super().__init__()
        self.num_parts = max(1, num_parts)

    def _build_subdomains(self, domain):
        return [None] * self.num_parts

    def size(self) -> int:
        return self.num_parts

    def find(self, gid) -> BCInfo:
        bcid, _seq = gid
        return BCInfo(bcid)

    def memory_size(self) -> int:
        return 32


class HashPartition(Partition):
    """Associative hash partition: ``bcid = stable_hash(key) % m``
    (pHashMap/pSet; amortised O(1) address resolution)."""

    dynamic = True

    def __init__(self, num_parts: int):
        super().__init__()
        self.num_parts = max(1, num_parts)

    def _build_subdomains(self, domain):
        return [UniverseDomain() for _ in range(self.num_parts)]

    def size(self) -> int:
        return self.num_parts

    def find(self, gid) -> BCInfo:
        return BCInfo(stable_hash(gid) % self.num_parts)

    def memory_size(self) -> int:
        return 32


class RangePartition(Partition):
    """Value-based partition for *sorted* associative containers
    (Fig. 58): splitter keys define open sub-domains; ``find`` bisects."""

    dynamic = True

    def __init__(self, splitters: list):
        super().__init__()
        self.splitters = list(splitters)

    def _build_subdomains(self, domain):
        bounds = [None] + list(self.splitters) + [None]
        return [OpenDomain(bounds[i], bounds[i + 1])
                for i in range(len(bounds) - 1)]

    def size(self) -> int:
        return len(self.splitters) + 1

    def find(self, gid) -> BCInfo:
        return BCInfo(bisect_right(self.splitters, gid))

    def memory_size(self) -> int:
        return 32 + 16 * len(self.splitters)


class DirectoryPartition(Partition):
    """Dynamic relational partition backed by a distributed directory.

    Each GID has a *home* sub-domain (``stable_hash(gid) % m``) whose owning
    location stores the authoritative GID → BCID entry.  A ``find`` issued
    away from the home location returns only a location hint
    (``BCInfo(loc_hint=home)``); the data-distribution manager then either
    **forwards** the whole request to the home location (one-way traffic) or,
    with ``forwarding=False``, performs a synchronous lookup round trip —
    the two dynamic curves of Fig. 51.
    """

    directory = True
    dynamic = True

    def __init__(self, num_parts: int, forwarding: bool = True):
        super().__init__()
        self.num_parts = max(1, num_parts)
        self.forwarding = forwarding
        self._entries: dict = {}

    def _build_subdomains(self, domain):
        return [UniverseDomain() for _ in range(self.num_parts)]

    def size(self) -> int:
        return self.num_parts

    def home_bcid(self, gid) -> int:
        return stable_hash(gid) % self.num_parts

    def register_gid(self, gid, bcid: int) -> None:
        self._entries[gid] = bcid

    def unregister_gid(self, gid) -> None:
        self._entries.pop(gid, None)

    def lookup(self, gid):
        """Authoritative lookup — only meaningful at the home location."""
        return self._entries.get(gid)

    # -- migration support (home entries move with their home BCID) ------
    def take_entries(self, moved_bcids: set) -> dict:
        """Remove and return the local entries homed at the given BCIDs,
        grouped per home BCID — packed by ``migrate`` so directory
        addressing and data commit in the same epoch."""
        out: dict = {}
        homed = [gid for gid in self._entries
                 if self.home_bcid(gid) in moved_bcids]
        for gid in homed:
            entry = self._entries.pop(gid)
            out.setdefault(self.home_bcid(gid), {})[gid] = entry
        return out

    def install_entries(self, entries: dict) -> None:
        """Install migrated home entries on the new home location."""
        self._entries.update(entries)

    def contains(self, gid) -> bool:
        return gid in self._entries

    def find(self, gid) -> BCInfo:
        bcid = self._entries.get(gid)
        if bcid is None:
            raise KeyError(gid)
        return BCInfo(bcid)

    def memory_size(self) -> int:
        return 32 + 48 * len(self._entries)


def stable_hash(x) -> int:
    """Deterministic hash (no PYTHONHASHSEED dependence) for partitioning."""
    if isinstance(x, int):
        # finalizer-style mixing so the low bits (used by `% num_parts`)
        # depend on all input bits
        h = (x * 2654435761) & 0xFFFFFFFF
        h ^= h >> 16
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        h ^= h >> 13
        return h & 0x7FFFFFFF
    if isinstance(x, str):
        h = 2166136261
        for ch in x:
            h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
        return h & 0x7FFFFFFF
    if isinstance(x, tuple):
        h = 1000003
        for item in x:
            h = (h * 31 + stable_hash(item)) & 0x7FFFFFFF
        return h
    if isinstance(x, float):
        return stable_hash(str(x))
    return stable_hash(str(x))
