"""Location manager: per-location bContainer administration
(Ch. V.C.2, Table IV)."""

from __future__ import annotations


class LocationManager:
    """Maintains the collection of bContainers mapped to one location.

    Also keeps per-bContainer *access counters* (one count per element-wise
    execution routed to the bContainer, plus element counts for bulk
    sweeps): together with the element counts they are the load signal the
    migration subsystem's ``rebalance()`` bin-packs on.
    """

    def __init__(self):
        self._bcontainers: dict = {}
        self._access_counts: dict = {}

    def add_bcontainer(self, bcid, bc) -> None:
        if bcid in self._bcontainers:
            raise ValueError(f"bContainer {bcid} already registered")
        self._bcontainers[bcid] = bc

    def delete_bcontainer(self, bcid):
        self._access_counts.pop(bcid, None)
        return self._bcontainers.pop(bcid)

    # -- load accounting (rebalance input) -------------------------------
    def note_access(self, bcid, n: int = 1) -> None:
        """Record ``n`` element accesses against ``bcid``."""
        self._access_counts[bcid] = self._access_counts.get(bcid, 0) + n

    def access_count(self, bcid) -> int:
        return self._access_counts.get(bcid, 0)

    def access_counts(self) -> dict:
        return dict(self._access_counts)

    def reset_access_counts(self) -> None:
        self._access_counts.clear()

    def get_bcontainer(self, bcid):
        return self._bcontainers[bcid]

    def has_bcontainer(self, bcid) -> bool:
        return bcid in self._bcontainers

    def size(self) -> int:
        return len(self._bcontainers)

    def __len__(self) -> int:
        return len(self._bcontainers)

    def __iter__(self):
        return iter(self._bcontainers.values())

    def bcids(self) -> list:
        return sorted(self._bcontainers.keys(), key=_bcid_key)

    def ordered(self) -> list:
        return [self._bcontainers[b] for b in self.bcids()]

    def clear(self) -> None:
        for bc in self._bcontainers.values():
            bc.clear()
        self._bcontainers.clear()
        self._access_counts.clear()

    def local_size(self) -> int:
        return sum(bc.size() for bc in self._bcontainers.values())

    def memory_size(self) -> tuple:
        """(metadata bytes, data bytes) summed over local bContainers."""
        meta, data = 48, 0
        for bc in self._bcontainers.values():
            m, d = bc.memory_size()
            meta += m + 16  # map-entry overhead per bContainer
            data += d
        return meta, data


def _bcid_key(b):
    """Stable ordering for heterogeneous BCID types."""
    return (str(type(b).__name__), b if isinstance(b, (int, float)) else str(b))
