"""Base containers (bContainers): the per-sub-domain storage units
(Ch. V.C.1, Table III).

A bContainer wraps any existing sequential container behind the minimal
Table III interface so it can serve as storage for a pContainer.  We provide
NumPy-backed array storage (the ``std::valarray`` analogue, with vectorised
bulk paths), dynamic vector/list storage, associative map/set storage and
graph adjacency storage.  Each reports data vs. metadata ``memory_size`` for
the Ch. IX.F memory study and supports ``pack``/``unpack`` marshaling
(the ``define_type`` mechanism, Ch. V.G.1) for redistribution.
"""

from __future__ import annotations

import numpy as np

from .domains import Range2DDomain

#: modelled per-element payload size in bytes (memory accounting)
ELEM_BYTES = 8

#: process-wide storage allocator hook.  The multiprocessing backend's
#: worker bootstrap installs the location arena's ``storage_alloc`` here,
#: making numpy bContainer storage live inside shared-memory segments so
#: bulk replies can ship *references into live storage* instead of copies.
#: ``None`` (the default, and always in the simulated backend) means plain
#: process-private numpy allocation.
_STORAGE_ALLOC = None


def set_storage_allocator(alloc):
    """Install ``alloc(shape, dtype) -> ndarray | None`` as the backing
    allocator for numpy bContainer storage; returns the previous hook."""
    global _STORAGE_ALLOC
    prev = _STORAGE_ALLOC
    _STORAGE_ALLOC = alloc
    return prev


def storage_allocator():
    return _STORAGE_ALLOC


def _backed_array(shape, dtype):
    """An uninitialised array from the installed storage allocator, or
    None when no allocator is installed or the dtype cannot be backed
    (object dtype has no flat byte representation)."""
    if _STORAGE_ALLOC is None:
        return None
    return _STORAGE_ALLOC(shape, np.dtype(dtype))


class BaseContainer:
    """Minimal Table III interface."""

    def __init__(self, domain, bcid):
        self._domain = domain
        self._bcid = bcid

    # -- Table III -------------------------------------------------------
    def get_bcid(self):
        return self._bcid

    @property
    def domain(self):
        return self._domain

    def size(self) -> int:
        raise NotImplementedError

    def empty(self) -> bool:
        return self.size() == 0

    def clear(self) -> None:
        raise NotImplementedError

    def memory_size(self) -> tuple:
        """(metadata bytes, data bytes)."""
        raise NotImplementedError

    def pack(self):
        """Marshal contents (``define_type``): a picklable payload."""
        raise NotImplementedError

    @classmethod
    def unpack(cls, domain, bcid, payload) -> "BaseContainer":
        raise NotImplementedError


class ArrayBC(BaseContainer):
    """Static, index-addressed storage (STL ``valarray`` analogue) backed by
    a NumPy array; offers vectorised bulk operations for native-view
    pAlgorithms."""

    def __init__(self, domain, bcid, fill=0, dtype=float, data=None):
        super().__init__(domain, bcid)
        n = domain.size()
        if data is not None:
            src = np.asarray(data)
            if len(src) != n:
                raise ValueError("data length does not match domain")
            backed = _backed_array(src.shape, src.dtype)
            if backed is not None:
                backed[...] = src
                self.data = backed
            elif not src.flags.writeable:
                # a zero-copy received slab: container storage must be
                # mutable, so construction is the copy-on-write point
                self.data = src.copy()
            else:
                self.data = src
        else:
            backed = _backed_array((n,), dtype)
            if backed is not None:
                backed[...] = fill
                self.data = backed
            else:
                self.data = np.full(n, fill, dtype=dtype)

    def size(self) -> int:
        return len(self.data)

    def clear(self) -> None:
        self.data[:] = 0

    # -- element access (GID-addressed) ----------------------------------
    @staticmethod
    def _to_py(v):
        return v.item() if isinstance(v, np.generic) else v

    def get(self, gid):
        return self._to_py(self.data[self._domain.offset(gid)])

    def set(self, gid, value) -> None:
        self.data[self._domain.offset(gid)] = value

    def apply(self, gid, fn):
        return fn(self._to_py(self.data[self._domain.offset(gid)]))

    def apply_set(self, gid, fn) -> None:
        off = self._domain.offset(gid)
        self.data[off] = fn(self._to_py(self.data[off]))

    # -- bulk (vectorised) paths -----------------------------------------
    def get_range(self, lo, hi) -> np.ndarray:
        """Copy of the GID range ``[lo, hi)`` as a NumPy slab.  Only valid
        when the sub-domain enumerates GIDs contiguously (RangeDomain)."""
        off = self._domain.offset(lo)
        return self.data[off:off + (hi - lo)].copy()

    def get_range_ref(self, lo, hi) -> np.ndarray:
        """Read-only *view* of the GID range ``[lo, hi)`` — no copy.

        Only the multiprocessing bulk-reply path may call this (the
        pContainer seam gates on a remote origin with no shared address
        space): handing a live view to a same-process caller would let it
        observe later owner mutations, the aliasing bug the copying
        ``get_range`` exists to prevent.  When storage is arena-backed the
        transport recognises the view and ships a slab reference into
        live storage."""
        off = self._domain.offset(lo)
        ref = self.data[off:off + (hi - lo)]
        ref.setflags(write=False)
        return ref

    def set_range(self, lo, values) -> None:
        """Overwrite the GID range starting at ``lo`` with a slab."""
        off = self._domain.offset(lo)
        self.data[off:off + len(values)] = values

    def bulk_fill(self, value) -> None:
        self.data[:] = value

    def bulk_map(self, ufunc) -> None:
        self.data = ufunc(self.data)

    def bulk_reduce(self, reducer, initial=None):
        return reducer(self.data) if initial is None else reducer(self.data, initial)

    def values(self) -> np.ndarray:
        return self.data

    def memory_size(self) -> tuple:
        meta = 48 + self._domain.memory_size()
        return meta, int(self.data.nbytes)

    def pack(self):
        return self.data.copy()

    @classmethod
    def unpack(cls, domain, bcid, payload) -> "ArrayBC":
        return cls(domain, bcid, data=payload)


class Matrix2DBC(BaseContainer):
    """2D block storage for pMatrix (MTL-style dense block)."""

    def __init__(self, domain: Range2DDomain, bcid, fill=0.0, dtype=float,
                 data=None):
        super().__init__(domain, bcid)
        shape = (domain.rows, domain.cols)
        if data is not None:
            src = np.asarray(data).reshape(shape)
            backed = _backed_array(shape, src.dtype)
            if backed is not None:
                backed[...] = src
                self.data = backed
            elif not src.flags.writeable:
                self.data = src.copy()
            else:
                self.data = src
        else:
            backed = _backed_array(shape, dtype)
            if backed is not None:
                backed[...] = fill
                self.data = backed
            else:
                self.data = np.full(shape, fill, dtype=dtype)

    def size(self) -> int:
        return int(self.data.size)

    def clear(self) -> None:
        self.data[:] = 0

    def _idx(self, gid):
        r, c = gid
        return (r - self._domain.r0, c - self._domain.c0)

    def get(self, gid):
        return self.data[self._idx(gid)].item()

    def set(self, gid, value) -> None:
        self.data[self._idx(gid)] = value

    def apply(self, gid, fn):
        return fn(self.data[self._idx(gid)].item())

    def apply_set(self, gid, fn) -> None:
        i = self._idx(gid)
        self.data[i] = fn(self.data[i].item())

    def get_block(self, r0, r1, c0, c1) -> np.ndarray:
        """Copy of the dense sub-block ``[r0, r1) x [c0, c1)`` (global
        coordinates clipped by the caller to this bContainer's domain)."""
        d = self._domain
        return self.data[r0 - d.r0:r1 - d.r0, c0 - d.c0:c1 - d.c0].copy()

    def get_block_ref(self, r0, r1, c0, c1) -> np.ndarray:
        """Read-only *view* of the sub-block — no copy.  Same contract as
        :meth:`ArrayBC.get_range_ref`: multiprocessing bulk replies only.
        Full-width blocks are C-contiguous and ship as live-storage
        references; narrower blocks still avoid the sender-side
        materialisation (the transport copies the strided view straight
        into a pooled segment)."""
        d = self._domain
        ref = self.data[r0 - d.r0:r1 - d.r0, c0 - d.c0:c1 - d.c0]
        ref.setflags(write=False)
        return ref

    def set_block(self, r0, c0, block) -> None:
        """Overwrite the sub-block whose top-left corner is ``(r0, c0)``."""
        d = self._domain
        block = np.asarray(block)
        rr, cc = r0 - d.r0, c0 - d.c0
        self.data[rr:rr + block.shape[0], cc:cc + block.shape[1]] = block

    def row_slice(self, r) -> np.ndarray:
        """Copy of global row ``r``'s extent in this block.  A copy, like
        ``get_block``/``get_range`` — a live view would let a remote caller
        in the shared-address-space simulator mutate owner storage with
        zero charged communication."""
        return self.data[r - self._domain.r0, :].copy()

    def col_slice(self, c) -> np.ndarray:
        """Copy of global column ``c``'s extent in this block."""
        return self.data[:, c - self._domain.c0].copy()

    def set_row_slice(self, r, values) -> None:
        """Overwrite global row ``r``'s extent in this block."""
        self.data[r - self._domain.r0, :] = values

    def set_col_slice(self, c, values) -> None:
        """Overwrite global column ``c``'s extent in this block."""
        self.data[:, c - self._domain.c0] = values

    def values(self) -> np.ndarray:
        return self.data

    def memory_size(self) -> tuple:
        return 64 + self._domain.memory_size(), int(self.data.nbytes)

    def pack(self):
        return self.data.copy()

    @classmethod
    def unpack(cls, domain, bcid, payload) -> "Matrix2DBC":
        return cls(domain, bcid, data=payload)


class VectorBC(BaseContainer):
    """Dynamic contiguous storage (STL ``vector``): O(size) insert/erase,
    O(1) indexed access.  Addressed by *local offset*."""

    def __init__(self, domain, bcid, fill=0, data=None):
        super().__init__(domain, bcid)
        if data is not None:
            self.data = list(data)
        else:
            self.data = [fill] * domain.size()

    def size(self) -> int:
        return len(self.data)

    def clear(self) -> None:
        self.data.clear()

    def get(self, off):
        return self.data[off]

    def set(self, off, value) -> None:
        self.data[off] = value

    def apply(self, off, fn):
        return fn(self.data[off])

    def apply_set(self, off, fn) -> None:
        self.data[off] = fn(self.data[off])

    def insert(self, off, value) -> None:
        self.data.insert(off, value)

    def erase(self, off):
        return self.data.pop(off)

    def push_back(self, value) -> None:
        self.data.append(value)

    def pop_back(self):
        return self.data.pop()

    # -- bulk (slab) paths: offsets, not GIDs ----------------------------
    def get_range(self, lo, hi) -> list:
        """Copy of the local offset range ``[lo, hi)``."""
        return list(self.data[lo:hi])

    def set_range(self, lo, values) -> None:
        """Overwrite the local offset range starting at ``lo``."""
        values = list(values)
        self.data[lo:lo + len(values)] = values

    def values(self):
        return self.data

    def memory_size(self) -> tuple:
        return 56, ELEM_BYTES * len(self.data)

    def pack(self):
        return list(self.data)

    @classmethod
    def unpack(cls, domain, bcid, payload) -> "VectorBC":
        return cls(domain, bcid, data=payload)


class _ListNode:
    __slots__ = ("seq", "value", "prev", "next")

    def __init__(self, seq, value):
        self.seq = seq
        self.value = value
        self.prev = None
        self.next = None


class ListBC(BaseContainer):
    """Doubly-linked segment for pList: O(1) insert/erase/splice at a known
    handle; elements addressed by a stable local sequence number."""

    def __init__(self, domain, bcid):
        super().__init__(domain, bcid)
        self._nodes: dict[int, _ListNode] = {}
        self._head: _ListNode | None = None
        self._tail: _ListNode | None = None
        self._next_seq = 0

    def size(self) -> int:
        return len(self._nodes)

    def clear(self) -> None:
        self._nodes.clear()
        self._head = self._tail = None

    def _fresh(self, value) -> _ListNode:
        node = _ListNode(self._next_seq, value)
        self._next_seq += 1
        self._nodes[node.seq] = node
        return node

    def push_back(self, value) -> int:
        node = self._fresh(value)
        node.prev = self._tail
        if self._tail is not None:
            self._tail.next = node
        self._tail = node
        if self._head is None:
            self._head = node
        return node.seq

    def push_front(self, value) -> int:
        node = self._fresh(value)
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node
        return node.seq

    def insert_before(self, seq, value) -> int:
        anchor = self._nodes[seq]
        node = self._fresh(value)
        node.prev = anchor.prev
        node.next = anchor
        if anchor.prev is not None:
            anchor.prev.next = node
        else:
            self._head = node
        anchor.prev = node
        return node.seq

    def erase(self, seq):
        node = self._nodes.pop(seq)
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        return node.value

    def pop_back(self):
        if self._tail is None:
            raise IndexError("pop from empty list segment")
        return self.erase(self._tail.seq)

    def pop_front(self):
        if self._head is None:
            raise IndexError("pop from empty list segment")
        return self.erase(self._head.seq)

    def get(self, seq):
        return self._nodes[seq].value

    def set(self, seq, value) -> None:
        self._nodes[seq].value = value

    def apply(self, seq, fn):
        return fn(self._nodes[seq].value)

    def apply_set(self, seq, fn) -> None:
        node = self._nodes[seq]
        node.value = fn(node.value)

    def contains(self, seq) -> bool:
        return seq in self._nodes

    def first_seq(self):
        return None if self._head is None else self._head.seq

    def last_seq(self):
        return None if self._tail is None else self._tail.seq

    def next_seq(self, seq):
        node = self._nodes[seq].next
        return None if node is None else node.seq

    def prev_seq(self, seq):
        node = self._nodes[seq].prev
        return None if node is None else node.seq

    def values(self) -> list:
        out, node = [], self._head
        while node is not None:
            out.append(node.value)
            node = node.next
        return out

    def seqs(self) -> list:
        out, node = [], self._head
        while node is not None:
            out.append(node.seq)
            node = node.next
        return out

    def memory_size(self) -> tuple:
        # three pointers + seq per node is metadata; payload is data
        return 56 + 32 * len(self._nodes), ELEM_BYTES * len(self._nodes)

    def pack(self):
        """Marshal preserving the stable sequence numbers *and* the seq
        allocator — element GIDs are (bcid, seq) handles, so a migrated
        segment must keep issuing handles from the same numbering."""
        return (self._next_seq, [(n, self._nodes[n].value)
                                 for n in self.seqs()])

    @classmethod
    def unpack(cls, domain, bcid, payload) -> "ListBC":
        out = cls(domain, bcid)
        next_seq, items = payload
        for seq, value in items:
            node = _ListNode(seq, value)
            out._nodes[seq] = node
            node.prev = out._tail
            if out._tail is not None:
                out._tail.next = node
            out._tail = node
            if out._head is None:
                out._head = node
        out._next_seq = next_seq
        return out


class MapBC(BaseContainer):
    """Associative storage: dict-backed (hash) with on-demand sorted order
    (sorted associative containers iterate in key order, Ch. XII)."""

    def __init__(self, domain, bcid, sorted_order: bool = False, data=None):
        super().__init__(domain, bcid)
        self.data: dict = dict(data) if data else {}
        self.sorted_order = sorted_order

    def size(self) -> int:
        return len(self.data)

    def clear(self) -> None:
        self.data.clear()

    def insert(self, key, value) -> bool:
        """STL map semantics: insert does not overwrite; returns created?"""
        if key in self.data:
            return False
        self.data[key] = value
        return True

    def set(self, key, value) -> None:
        self.data[key] = value

    def get(self, key):
        return self.data[key]

    def find(self, key):
        if key in self.data:
            return (self.data[key], True)
        return (None, False)

    def erase(self, key) -> int:
        return 1 if self.data.pop(key, _MISSING) is not _MISSING else 0

    def contains(self, key) -> bool:
        return key in self.data

    def apply(self, key, fn):
        return fn(self.data[key])

    def apply_set(self, key, fn) -> None:
        self.data[key] = fn(self.data[key])

    def accumulate(self, key, value) -> None:
        """Combining insert (MapReduce reduction support)."""
        self.data[key] = self.data.get(key, 0) + value

    def keys(self) -> list:
        ks = list(self.data.keys())
        return sorted(ks) if self.sorted_order else ks

    def items(self) -> list:
        if self.sorted_order:
            return sorted(self.data.items())
        return list(self.data.items())

    def values(self) -> list:
        return [v for _, v in self.items()]

    def memory_size(self) -> tuple:
        return 64 + 48 * len(self.data), ELEM_BYTES * len(self.data)

    def pack(self):
        return dict(self.data)

    @classmethod
    def unpack(cls, domain, bcid, payload) -> "MapBC":
        return cls(domain, bcid, data=payload)


class MultiMapBC(MapBC):
    """Pair-associative storage allowing duplicate keys (pMultiMap)."""

    def insert(self, key, value) -> bool:
        self.data.setdefault(key, []).append(value)
        return True

    def count(self, key) -> int:
        return len(self.data.get(key, ()))

    def erase(self, key) -> int:
        vals = self.data.pop(key, None)
        return 0 if vals is None else len(vals)


class SetBC(BaseContainer):
    """Simple associative storage (key == value): pSet/pHashSet/pMultiSet."""

    def __init__(self, domain, bcid, sorted_order: bool = False, multi=False,
                 data=None):
        super().__init__(domain, bcid)
        self.sorted_order = sorted_order
        self.multi = multi
        self.data: dict = {}
        if data:
            for k, c in data.items():
                self.data[k] = c

    def size(self) -> int:
        return sum(self.data.values())

    def clear(self) -> None:
        self.data.clear()

    def insert(self, key, _value=None) -> bool:
        if key in self.data and not self.multi:
            return False
        self.data[key] = self.data.get(key, 0) + 1
        return True

    def erase(self, key) -> int:
        return self.data.pop(key, 0)

    def contains(self, key) -> bool:
        return key in self.data

    def find(self, key):
        return (key, True) if key in self.data else (None, False)

    def count(self, key) -> int:
        return self.data.get(key, 0)

    def keys(self) -> list:
        ks = list(self.data.keys())
        return sorted(ks) if self.sorted_order else ks

    def items(self) -> list:
        out = []
        for k in self.keys():
            out.extend([(k, k)] * self.data[k])
        return out

    def values(self) -> list:
        out = []
        for k in self.keys():
            out.extend([k] * self.data[k])
        return out

    def memory_size(self) -> tuple:
        return 64 + 32 * len(self.data), ELEM_BYTES * self.size()

    def pack(self):
        return dict(self.data)

    @classmethod
    def unpack(cls, domain, bcid, payload) -> "SetBC":
        return cls(domain, bcid, data=payload)


class _Vertex:
    __slots__ = ("vd", "property", "adj")

    def __init__(self, vd, prop=None):
        self.vd = vd
        self.property = prop
        self.adj: dict = {}  # target vd -> list of edge properties


class GraphBC(BaseContainer):
    """Adjacency storage for pGraph: vertices with property + edge lists."""

    def __init__(self, domain, bcid, multi_edges: bool = True):
        super().__init__(domain, bcid)
        self._vertices: dict[object, _Vertex] = {}
        self.multi_edges = multi_edges
        self._num_edges = 0

    def size(self) -> int:
        return len(self._vertices)

    def clear(self) -> None:
        self._vertices.clear()
        self._num_edges = 0

    def add_vertex(self, vd, prop=None) -> bool:
        if vd in self._vertices:
            return False
        self._vertices[vd] = _Vertex(vd, prop)
        return True

    def delete_vertex(self, vd) -> bool:
        v = self._vertices.pop(vd, None)
        if v is None:
            return False
        self._num_edges -= sum(len(ps) for ps in v.adj.values())
        return True

    def has_vertex(self, vd) -> bool:
        return vd in self._vertices

    def vertex_property(self, vd):
        return self._vertices[vd].property

    def set_vertex_property(self, vd, prop) -> None:
        self._vertices[vd].property = prop

    def apply_vertex(self, vd, fn):
        v = self._vertices[vd]
        return fn(v)

    def add_edge(self, src, tgt, prop=None) -> bool:
        v = self._vertices[src]
        if tgt in v.adj and not self.multi_edges:
            return False
        v.adj.setdefault(tgt, []).append(prop)
        self._num_edges += 1
        return True

    def delete_edge(self, src, tgt) -> bool:
        v = self._vertices.get(src)
        if v is None or tgt not in v.adj:
            return False
        props = v.adj[tgt]
        props.pop()
        self._num_edges -= 1
        if not props:
            del v.adj[tgt]
        return True

    def has_edge(self, src, tgt) -> bool:
        v = self._vertices.get(src)
        return v is not None and tgt in v.adj

    def out_degree(self, vd) -> int:
        v = self._vertices[vd]
        return sum(len(ps) for ps in v.adj.values())

    def adjacents(self, vd) -> list:
        return list(self._vertices[vd].adj.keys())

    def edges_of(self, vd) -> list:
        v = self._vertices[vd]
        return [(vd, t, p) for t, ps in v.adj.items() for p in ps]

    def vertices(self) -> list:
        return list(self._vertices.keys())

    def vertex_records(self):
        return self._vertices.values()

    def num_edges(self) -> int:
        return self._num_edges

    def memory_size(self) -> tuple:
        meta = 64 + 56 * len(self._vertices) + 24 * self._num_edges
        data = ELEM_BYTES * (len(self._vertices) + self._num_edges)
        return meta, data

    def pack(self):
        return [(vd, v.property, [(t, ps) for t, ps in v.adj.items()])
                for vd, v in self._vertices.items()]

    @classmethod
    def unpack(cls, domain, bcid, payload) -> "GraphBC":
        out = cls(domain, bcid)
        for vd, prop, adj in payload:
            out.add_vertex(vd, prop)
            for t, ps in adj:
                for p in ps:
                    out.add_edge(vd, t, p)
        return out


_MISSING = object()
