"""repro: a Python reproduction of the STAPL Parallel Container Framework
(Tanase et al., PPoPP 2011 / Tanase's dissertation, Texas A&M 2010).

The package provides the simulated ARMI runtime (`repro.runtime`), the
Parallel Container Framework core (`repro.core`), the pContainer library
(`repro.containers`), pViews (`repro.views`), pAlgorithms
(`repro.algorithms`), workload generators (`repro.workloads`) and the
benchmark drivers that regenerate every figure of the paper's evaluation
(`repro.evaluation`).

Quickstart::

    from repro import spmd_run, PArray, Array1DView, p_generate, p_accumulate

    def program(ctx):
        pa = PArray(ctx, 1000, dtype=int)
        view = Array1DView(pa)
        p_generate(view, lambda i: i, vector=lambda g: g)
        return p_accumulate(view)

    results = spmd_run(program, nlocs=4, machine="cray4")
"""

from .algorithms import (
    p_accumulate,
    p_copy,
    p_count,
    p_count_if,
    p_fill,
    p_find,
    p_for_each,
    p_generate,
    p_inner_product,
    p_max_element,
    p_min_element,
    p_partial_sum,
    p_reduce,
    p_sample_sort,
    p_stencil,
    p_transform,
)
from .containers import (
    PArray,
    PGraph,
    PHashMap,
    PHashSet,
    PList,
    PMap,
    PMatrix,
    PMultiMap,
    PMultiSet,
    PSet,
    PVector,
)
from .core import Traits
from .runtime import (
    CRAY4,
    CRAY5,
    P5_CLUSTER,
    SMP,
    Location,
    LocationGroup,
    PObject,
    Runtime,
    spmd_run,
    spmd_run_detailed,
)
from .views import (
    Array1DView,
    BalancedView,
    GraphView,
    ListView,
    MapView,
    overlap_view,
    segmented_view,
    zip_view,
)

__version__ = "1.0.0"
