"""pGraph evaluation drivers (Ch. XI.F, Figs. 49–56)."""

from __future__ import annotations

from ..containers.pgraph import PGraph
from ..workloads.meshes import local_mesh_edges
from ..workloads.ssca2 import SSCA2Spec, local_edges
from .harness import ExperimentResult, run_spmd_timed

_DEF_PS = (1, 2, 4, 8)


def _build_ssca2(ctx, n, dynamic, forwarding=True):
    g = PGraph(ctx, n, directed=True, dynamic=dynamic, forwarding=forwarding,
               default_property=0)
    spec = SSCA2Spec(num_vertices=n)
    for (u, v) in local_edges(spec, ctx.id, ctx.nlocs):
        g.add_edge_async(u, v)
    ctx.rmi_fence()
    return g


def fig49_50_pgraph_methods(machines=("cray4", "p5cluster"), P=4,
                            n=256) -> ExperimentResult:
    """Static vs dynamic pGraph methods with the SSCA2 generator
    (Figs. 49/50): add_edge, find_vertex, out_degree, add_vertex."""
    res = ExperimentResult(
        "Fig.49/50 pGraph methods (SSCA2)",
        ["machine", "kind", "method", "total_us", "per_op_us"],
        notes="static translation is closed form; dynamic pays directory")

    def prog(ctx, machine_kind):
        kind = machine_kind
        dynamic = kind == "dynamic"
        spec = SSCA2Spec(num_vertices=n)
        mine = local_edges(spec, ctx.id, ctx.nlocs)
        g = PGraph(ctx, n, directed=True, dynamic=dynamic,
                   default_property=0)
        out = {}
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        for (u, v) in mine:
            g.add_edge_async(u, v)
        ctx.rmi_fence()
        out["add_edge"] = (ctx.stop_timer(t0), max(1, len(mine)))
        probe = [e[0] for e in mine[:200]] or [0]
        t0 = ctx.start_timer()
        for u in probe:
            g.find_vertex(u)
        ctx.rmi_fence()
        out["find_vertex"] = (ctx.stop_timer(t0), len(probe))
        t0 = ctx.start_timer()
        for u in probe:
            g.out_degree(u)
        ctx.rmi_fence()
        out["out_degree"] = (ctx.stop_timer(t0), len(probe))
        if dynamic:
            t0 = ctx.start_timer()
            for _ in range(100):
                g.add_vertex()
            ctx.rmi_fence()
            out["add_vertex"] = (ctx.stop_timer(t0), 100)
        return out

    for machine in machines:
        for kind in ("static", "dynamic"):
            results, _, _ = run_spmd_timed(prog, P, machine, (kind,))
            methods = results[0].keys()
            for m in methods:
                total = max(r[m][0] for r in results)
                nops = max(r[m][1] for r in results)
                res.add(machine, kind, m, total, total / nops)
    return res


def fig51_find_sources(P=4, n=192, machine="cray4") -> ExperimentResult:
    """find_sources under static / dynamic+forwarding / dynamic-no-forwarding
    partitions (Fig. 51).

    The per-location lookup cache is pinned off for this figure: it
    measures the paper's *raw* address-resolution regimes, and a cache hit
    would absorb exactly the repeated-interrogation cost the no-forwarding
    curve exists to show (the cached behaviour is its own study,
    ``lookup_cache``)."""
    from ..algorithms.graph_algorithms import find_sources
    from ..core.migration import set_lookup_cache

    res = ExperimentResult(
        "Fig.51 find_sources by partition",
        ["partition", "time_us", "forwarded", "sync_rmis"],
        notes="paper ordering: static < dynamic+fwd < dynamic no-fwd "
              "(lookup cache off)")

    def prog(ctx, dynamic, forwarding):
        g = _build_ssca2(ctx, n, dynamic, forwarding)
        t0 = ctx.start_timer()
        find_sources(g)
        return ctx.stop_timer(t0)

    prev = set_lookup_cache(False)
    try:
        for label, dynamic, fwd in (("static", False, True),
                                    ("dynamic_fwd", True, True),
                                    ("dynamic_nofwd", True, False)):
            results, _, stats = run_spmd_timed(prog, P, machine,
                                               (dynamic, fwd))
            res.add(label, max(results), stats.forwarded,
                    stats.sync_rmi_sent)
    finally:
        set_lookup_cache(prev)
    return res


def fig52_partition_comparison(P=4, n=192, machine="cray4") -> ExperimentResult:
    """Comparison of pGraph partitions on a method+traversal mix (Fig. 52)."""
    from ..algorithms.graph_algorithms import bfs

    res = ExperimentResult(
        "Fig.52 pGraph partitions",
        ["partition", "build_us", "bfs_us"])

    def prog(ctx, dynamic, forwarding):
        t0 = ctx.start_timer()
        g = _build_ssca2(ctx, n, dynamic, forwarding)
        build = ctx.stop_timer(t0)
        t0 = ctx.start_timer()
        bfs(g, 0)
        return build, ctx.stop_timer(t0)

    for label, dynamic, fwd in (("static_blocked", False, True),
                                ("dynamic_fwd", True, True),
                                ("dynamic_nofwd", True, False)):
        results, _, _ = run_spmd_timed(prog, P, machine, (dynamic, fwd))
        res.add(label, max(r[0] for r in results), max(r[1] for r in results))
    return res


def fig53_55_graph_algorithms(machines=("cray4", "p5cluster"), P=4,
                              n=192) -> ExperimentResult:
    """pGraph algorithms: BFS, connected components, coloring, degree stats
    (Figs. 53–55)."""
    from ..algorithms.graph_algorithms import (
        bfs,
        connected_components,
        graph_coloring,
        out_degree_histogram,
    )

    res = ExperimentResult(
        "Fig.53-55 pGraph algorithms",
        ["machine", "algorithm", "time_us"])

    def prog(ctx):
        out = {}
        spec = SSCA2Spec(num_vertices=n)
        g = PGraph(ctx, n, directed=False, default_property=0)
        for (u, v) in local_edges(spec, ctx.id, ctx.nlocs):
            g.add_edge_async(u, v)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        bfs(g, 0)
        out["bfs"] = ctx.stop_timer(t0)
        t0 = ctx.start_timer()
        connected_components(g)
        out["connected_components"] = ctx.stop_timer(t0)
        t0 = ctx.start_timer()
        graph_coloring(g)
        out["coloring"] = ctx.stop_timer(t0)
        t0 = ctx.start_timer()
        out_degree_histogram(g)
        out["degree_stats"] = ctx.stop_timer(t0)
        return out

    for machine in machines:
        results, _, _ = run_spmd_timed(prog, P, machine)
        for algo in ("bfs", "connected_components", "coloring",
                     "degree_stats"):
            res.add(machine, algo, max(r[algo] for r in results))
    return res


def fig56_pagerank_meshes(P=4, cells=900, iterations=5,
                          machine="cray4") -> ExperimentResult:
    """PageRank on a square vs a long-thin mesh with the same vertex count
    (Fig. 56: 1500x1500 vs 15x150000, scaled preserving aspect ratios)."""
    import math

    from ..algorithms.graph_algorithms import page_rank

    res = ExperimentResult(
        "Fig.56 page rank mesh shapes",
        ["mesh", "vertices", "time_us"],
        notes="thin meshes cut fewer edges under blocked partitions")

    side = int(math.sqrt(cells))
    shapes = ((side, side), (max(3, side // 10), cells // max(3, side // 10)))

    def prog(ctx, rows, cols):
        nv = rows * cols
        g = PGraph(ctx, nv, directed=True, default_property=0)
        for (u, v) in local_mesh_edges(rows, cols, ctx.id, ctx.nlocs):
            g.add_edge_async(u, v)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        page_rank(g, iterations=iterations)
        return ctx.stop_timer(t0)

    for rows, cols in shapes:
        results, _, _ = run_spmd_timed(prog, P, machine, (rows, cols))
        res.add(f"{rows}x{cols}", rows * cols, max(results))
    return res
