"""Regenerate every paper table/figure from the command line.

Usage::

    python -m repro.evaluation                    # all figures, default scale
    python -m repro.evaluation fig51 fig62        # selected figures
    python -m repro.evaluation --list
    python -m repro.evaluation --out artifacts/   # also write .txt + stats JSON
    python -m repro.evaluation --machine cray5    # run on another machine model
"""

from __future__ import annotations

import inspect
import json
import sys
import time

from . import (
    ablation_aggregation,
    ablation_consistency_mode,
    ablation_lazy_size,
    ablation_view_alignment,
    backend_scaling_study,
    backend_zero_copy_study,
    bench_ablation_suite,
    bench_suite,
    bench_sweep_suite,
    bulk_transport_study,
    combining_containers_study,
    combining_study,
    composition_backend_study,
    consistency_backend_study,
    fig27_constructor,
    fig28_local_methods,
    fig29_methods_weak,
    fig30_method_flavours,
    fig31_remote_fraction,
    fig32_local_remote_sizes,
    fig33_generic_algorithms,
    fig34_memory_study,
    fig39_plist_methods,
    fig40_parray_vs_plist,
    fig41_placement,
    fig42_plist_vs_pvector,
    fig43_euler_tour_weak,
    fig44_euler_applications,
    fig49_50_pgraph_methods,
    fig51_find_sources,
    fig52_partition_comparison,
    fig53_55_graph_algorithms,
    fig56_pagerank_meshes,
    fig59_mapreduce_wordcount,
    fig60_assoc_algorithms,
    fig62_row_min,
    lookup_cache_study,
    mcm_demonstrations,
    migration_backend_study,
    migration_graph_study,
    migration_skew_study,
    mixed_mode_study,
    mixed_mode_topology_study,
    nested_backend_study,
    nested_groups_study,
    nested_study,
    paragraph_backend_study,
    paragraph_study,
    shm_threshold_sweep_study,
    sort_transport_study,
)

DRIVERS = {
    "fig27": fig27_constructor,
    "fig28": fig28_local_methods,
    "fig29": fig29_methods_weak,
    "fig30": fig30_method_flavours,
    "fig31": fig31_remote_fraction,
    "fig32": fig32_local_remote_sizes,
    "fig33": fig33_generic_algorithms,
    "fig34": fig34_memory_study,
    "fig39": fig39_plist_methods,
    "fig40": fig40_parray_vs_plist,
    "fig41": fig41_placement,
    "fig42": fig42_plist_vs_pvector,
    "fig43": fig43_euler_tour_weak,
    "fig44": fig44_euler_applications,
    "fig49_50": fig49_50_pgraph_methods,
    "fig51": fig51_find_sources,
    "fig52": fig52_partition_comparison,
    "fig53_55": fig53_55_graph_algorithms,
    "fig56": fig56_pagerank_meshes,
    "fig59": fig59_mapreduce_wordcount,
    "fig60": fig60_assoc_algorithms,
    "fig62": fig62_row_min,
    "fig62_mp": composition_backend_study,
    "mcm": mcm_demonstrations,
    "mcm_mp": consistency_backend_study,
    "backend": backend_scaling_study,
    "backend_zero_copy": backend_zero_copy_study,
    "shm_threshold": shm_threshold_sweep_study,
    "bulk_transport": bulk_transport_study,
    "combining": combining_study,
    "combining_containers": combining_containers_study,
    "mixed_mode": mixed_mode_study,
    "mixed_mode_topology": mixed_mode_topology_study,
    "migration": migration_skew_study,
    "migration_graph": migration_graph_study,
    "migration_mp": migration_backend_study,
    "lookup_cache": lookup_cache_study,
    "paragraph": paragraph_study,
    "paragraph_mp": paragraph_backend_study,
    "nested": nested_study,
    "nested_mp": nested_backend_study,
    "nested_groups": nested_groups_study,
    "bench": bench_suite,
    "bench_sweep": bench_sweep_suite,
    "bench_ablations": bench_ablation_suite,
    "sort_transport": sort_transport_study,
    "ablation_aggregation": ablation_aggregation,
    "ablation_alignment": ablation_view_alignment,
    "ablation_consistency": ablation_consistency_mode,
    "ablation_lazy_size": ablation_lazy_size,
}


def _pop_option(args: list, flag: str) -> str | None:
    """Remove ``flag VALUE`` from ``args``; returns VALUE (or None)."""
    if flag not in args:
        return None
    i = args.index(flag)
    args.pop(i)
    if i >= len(args):
        print(f"{flag} requires a value", file=sys.stderr)
        raise SystemExit(2)
    return args.pop(i)


def _json_default(obj):
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    return str(obj)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "--list" in args:
        print("\n".join(DRIVERS))
        return 0
    out_dir = _pop_option(args, "--out")
    machine = _pop_option(args, "--machine")
    selected = args or list(DRIVERS)
    unknown = [a for a in selected if a not in DRIVERS]
    if unknown:
        print(f"unknown figures: {unknown}; use --list", file=sys.stderr)
        return 2
    if out_dir is not None:
        import pathlib

        out_path = pathlib.Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
    stats = {}
    for name in selected:
        driver = DRIVERS[name]
        kwargs = {}
        if machine and "machine" in inspect.signature(driver).parameters:
            kwargs["machine"] = machine
        t0 = time.perf_counter()
        result = driver(**kwargs)
        dt = time.perf_counter() - t0
        print(result.format_table())
        print(f"[{name}: regenerated in {dt:.2f}s wall]\n")
        stats[name] = {"wall_seconds": round(dt, 3), **result.as_dict()}
        if out_dir is not None:
            (out_path / f"{name}.txt").write_text(result.format_table() + "\n")
    if out_dir is not None:
        payload = {"machine_override": machine, "figures": stats}
        (out_path / "stats.json").write_text(
            json.dumps(payload, indent=2, default=_json_default) + "\n")
        print(f"[artifacts written to {out_path}/]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
