"""Associative-container evaluation drivers (Ch. XII.C, Figs. 59/60)."""

from __future__ import annotations

from ..containers.associative import PHashMap
from ..views.map_views import MapView
from ..workloads.corpus import local_documents
from .harness import ExperimentResult, run_spmd_timed

_DEF_PS = (1, 2, 4, 8)


def fig59_mapreduce_wordcount(nlocs_list=_DEF_PS, tokens_per_loc=4000,
                              vocab_size=500,
                              machine="cray4") -> ExperimentResult:
    """MapReduce word count, weak scaling (Fig. 59; the paper's 1.5GB
    Wikipedia dump is replaced by a Zipf-distributed synthetic corpus)."""
    from ..algorithms.map_reduce import word_count

    res = ExperimentResult(
        "Fig.59 MapReduce word count",
        ["P", "tokens", "time_us", "distinct_words"],
        notes="weak scaling: tokens per location fixed")

    def prog(ctx):
        docs = local_documents(ctx.id, ctx.nlocs, tokens_per_loc,
                               vocab_size=vocab_size)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        out = word_count(ctx, docs)
        t = ctx.stop_timer(t0)
        return t, out.size()

    for P in nlocs_list:
        results, _, _ = run_spmd_timed(prog, P, machine)
        res.add(P, tokens_per_loc * P, max(r[0] for r in results),
                results[0][1])
    return res


def fig60_assoc_algorithms(nlocs_list=_DEF_PS, n_per_loc=2000,
                           machine="cray4") -> ExperimentResult:
    """Generic algorithms over associative pContainers, weak scaling
    (Fig. 60): p_for_each / p_accumulate / p_count_if on a pHashMap."""
    from ..algorithms.generic import p_accumulate, p_count_if, p_for_each

    res = ExperimentResult(
        "Fig.60 generic algorithms on pHashMap",
        ["P", "algorithm", "time_us"])

    def prog(ctx, algo):
        hm = PHashMap(ctx)
        # keys inserted locally (hash-partition routes them)
        base = ctx.id * n_per_loc
        for k in range(base, base + n_per_loc):
            hm.insert(k, k % 17)
        ctx.rmi_fence()
        view = MapView(hm)
        t0 = ctx.start_timer()
        if algo == "p_for_each":
            p_for_each(view, lambda v: v + 1)
        elif algo == "p_accumulate":
            p_accumulate(view, 0)
        else:
            p_count_if(view, lambda v: v % 2 == 0)
        return ctx.stop_timer(t0)

    for P in nlocs_list:
        for algo in ("p_for_each", "p_accumulate", "p_count_if"):
            results, _, _ = run_spmd_timed(prog, P, machine, (algo,))
            res.add(P, algo, max(results))
    return res
