"""pArray evaluation drivers (Ch. IX.E, Figs. 27–33)."""

from __future__ import annotations

from ..containers.parray import PArray
from ..views.array_views import Array1DView
from .harness import ExperimentResult, method_kernel, run_spmd_timed

_DEF_PS = (1, 2, 4, 8)


def fig27_constructor(nlocs_list=_DEF_PS, sizes=(4096, 16384, 65536),
                      machines=("cray4", "p5cluster")) -> ExperimentResult:
    """pArray constructor time for various input sizes (Fig. 27 a/b)."""
    res = ExperimentResult(
        "Fig.27 pArray constructor", ["machine", "P", "N", "time_us"],
        notes="constructor touches N/P local elements + collective setup")

    def prog(ctx, n):
        t0 = ctx.start_timer()
        PArray(ctx, n, dtype=float)
        return ctx.stop_timer(t0)

    for machine in machines:
        for P in nlocs_list:
            for n in sizes:
                results, _, _ = run_spmd_timed(prog, P, machine, (n,))
                res.add(machine, P, n, max(results))
    return res


def _kernel_time(op_name: str, n: int, n_per_loc: int, P: int,
                 machine="cray4", remote_fraction: float = 0.0):
    """Fig. 24 kernel for one pArray method flavour."""

    def factory(ctx):
        return PArray(ctx, n, dtype=int)

    def pick_gid(container, ctx, i):
        P_ = ctx.nlocs
        block = max(1, n // P_)
        if remote_fraction and P_ > 1 and (i % 100) < remote_fraction * 100:
            owner = (ctx.id + 1 + (i % (P_ - 1))) % P_   # someone else
        else:
            owner = ctx.id
        return min(owner * block + (i % block), n - 1)

    futures: dict = {}  # per-location outstanding split-phase requests

    def op(container, ctx, i):
        gid = pick_gid(container, ctx, i)
        if op_name == "set_element":
            container.set_element(gid, i)
        elif op_name == "get_element":
            container.get_element(gid)
        elif op_name == "split_phase_get_element":
            mine = futures.setdefault(ctx.id, [])
            mine.append(container.split_phase_get_element(gid))
            if len(mine) >= 64:      # bounded outstanding futures
                for f in mine:
                    f.get()
                mine.clear()
        elif op_name == "apply_set":
            container.apply_set(gid, lambda v: v + 1)
        else:
            raise ValueError(op_name)

    prog = method_kernel(factory, op, n_per_loc)
    results, _, stats = run_spmd_timed(prog, P, machine)
    return max(results), stats


def fig28_local_methods(sizes=(1024, 4096, 16384), n_per_loc=500,
                        P=4, machine="cray4") -> ExperimentResult:
    """pArray local method invocations for various container sizes."""
    res = ExperimentResult(
        "Fig.28 pArray local methods",
        ["N", "method", "total_us", "per_op_us"],
        notes="100% local invocations; flat in N (closed-form translation)")
    for n in sizes:
        for m in ("set_element", "get_element", "apply_set"):
            t, _ = _kernel_time(m, n, n_per_loc, P, machine)
            res.add(n, m, t, t / n_per_loc)
    return res


def fig29_methods_weak(nlocs_list=_DEF_PS, n_per_loc=500,
                       machine="cray4") -> ExperimentResult:
    """pArray methods weak scaling (fixed invocations per location)."""
    res = ExperimentResult(
        "Fig.29 pArray methods weak scaling",
        ["P", "method", "total_us", "per_op_us"],
        notes="ideal weak scaling = flat curves")
    for P in nlocs_list:
        n = 1024 * P
        for m in ("set_element", "get_element"):
            t, _ = _kernel_time(m, n, n_per_loc, P, machine)
            res.add(P, m, t, t / n_per_loc)
    return res


def fig30_method_flavours(P=4, n_per_loc=500, machine="cray4",
                          remote_fraction=0.5) -> ExperimentResult:
    """set (async) vs get (sync) vs split-phase get (Fig. 30)."""
    res = ExperimentResult(
        "Fig.30 set/get/split-phase",
        ["method", "total_us", "per_op_us"],
        notes="async < split-phase < sync is the paper's ordering")
    for m in ("set_element", "split_phase_get_element", "get_element"):
        t, _ = _kernel_time(m, 1024 * P, n_per_loc, P, machine,
                            remote_fraction=remote_fraction)
        res.add(m, t, t / n_per_loc)
    return res


def fig31_remote_fraction(P=4, n_per_loc=400, machine="cray4",
                          fractions=(0.0, 0.25, 0.5, 0.75, 1.0)) -> ExperimentResult:
    """Method cost vs percentage of remote invocations (Fig. 31)."""
    res = ExperimentResult(
        "Fig.31 pArray methods vs % remote",
        ["remote_%", "method", "total_us", "per_op_us"])
    for frac in fractions:
        for m in ("set_element", "get_element"):
            t, _ = _kernel_time(m, 1024 * P, n_per_loc, P, machine,
                                remote_fraction=frac)
            res.add(int(frac * 100), m, t, t / n_per_loc)
    return res


def fig32_local_remote_sizes(sizes=(1024, 4096, 16384), P=4, n_per_loc=400,
                             machine="cray4",
                             remote_fraction=0.3) -> ExperimentResult:
    """Mixed local/remote invocations across container sizes (Fig. 32)."""
    res = ExperimentResult(
        "Fig.32 pArray local+remote vs size",
        ["N", "method", "total_us", "per_op_us"],
        notes=f"{int(remote_fraction*100)}% remote invocations")
    for n in sizes:
        for m in ("set_element", "get_element"):
            t, _ = _kernel_time(m, n, n_per_loc, P, machine,
                                remote_fraction=remote_fraction)
            res.add(n, m, t, t / n_per_loc)
    return res


def fig33_generic_algorithms(nlocs_list=_DEF_PS, n_per_loc=20000,
                             machine="cray4") -> ExperimentResult:
    """p_generate / p_for_each / p_accumulate on pArray, weak scaling
    (Fig. 33; paper used 20M elements/proc, scaled to n_per_loc)."""
    from ..algorithms.generic import p_accumulate, p_for_each, p_generate

    res = ExperimentResult(
        "Fig.33 generic algorithms on pArray",
        ["P", "algorithm", "time_us"],
        notes="weak scaling; flat = ideal")

    def prog(ctx, n, which):
        pa = PArray(ctx, n, dtype=float)
        view = Array1DView(pa)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        if which == "p_generate":
            p_generate(view, lambda i: float(i % 97), vector=lambda g: g % 97)
        elif which == "p_for_each":
            p_for_each(view, lambda x: x + 1.0, vector=lambda a: a + 1.0)
        else:
            p_accumulate(view, 0.0)
        return ctx.stop_timer(t0)

    for P in nlocs_list:
        n = n_per_loc * P
        for algo in ("p_generate", "p_for_each", "p_accumulate"):
            results, _, _ = run_spmd_timed(prog, P, machine, (n, algo))
            res.add(P, algo, max(results))
    return res
