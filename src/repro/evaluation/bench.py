"""Scalability sweep suite + perf-regression gate.

The perf trajectory grew out of a single fixed-P snapshot into a sweep
driver modelled on the paper's evaluation (Sec. V): the fixed kernel set
is measured over strong scaling (fixed N, P = 1..64), weak scaling (fixed
N per location), the three machine models and the key runtime-toggle
ablations, and persisted as a versioned JSON payload
(``BENCH_<date>.json`` at the repo root, ``schema_version`` 2) with
per-kernel speedup/efficiency columns and derived scaling summaries.

On top of the sweep sits a regression *gate*: ``--check <baseline>``
re-measures exactly the sections recorded in the committed baseline and
diffs the fresh run against it with per-metric tolerances — a >10%
simulated-time (or payload-byte) regression, or ANY message/fence-count
increase, on any kernel at any coordinate fails the check with a
readable delta table and a non-zero exit.  CI runs this on every PR
(the ``perf-gate`` job), so the trajectory is a merge-blocking contract
rather than an artifact humans might inspect.  Legitimate perf changes
refresh the baseline with ``--update-baseline``; pre-v2 snapshots (the
flat v1 ``kernels`` layout) are still accepted as comparison baselines
so the trajectory across old PRs is not broken.

Every kernel is deterministic — identical inputs, virtual clocks from
the machine model — so two runs of the same tree produce byte-identical
JSON (modulo the ``generated`` stamp), and the tolerances only need to
absorb legitimate drift from unrelated changes, not run-to-run noise.

Run via ``python -m repro.evaluation.bench [outfile] [--machine M]``,
``--check <baseline>``, ``--update-baseline <baseline>``, or the
``bench`` / ``bench_sweep`` / ``bench_ablations`` driver names in
``python -m repro.evaluation``.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field

from ..algorithms.generic import p_generate, p_partial_sum, p_reduce
from ..algorithms.nested import p_bucket_sort_nested, p_stencil
from ..algorithms.sorting import p_sample_sort
from ..containers.parray import PArray
from ..runtime.comm import apply_toggles, snapshot_toggles
from ..views.array_views import Array1DView
from .harness import ExperimentResult, run_spmd_timed, scaling_columns

SCHEMA_VERSION = 2

#: the sweep's processor counts (powers of two so strong-scaling block
#: sizes stay exact) and the machine models of the paper's evaluation.
DEFAULT_P_LIST = (1, 2, 4, 8, 16, 32, 64)
MACHINES = ("cray4", "cray5", "p5cluster")

#: gated metrics -> relative tolerance on *increase*.  Simulated time and
#: payload bytes may drift with unrelated changes (tolerated up to 10%);
#: physical message and fence counts are exact protocol properties, so
#: any increase is a regression.
TOLERANCES = {
    "time_us": 0.10,
    "bytes_sent": 0.10,
    "physical_msgs": 0.0,
    "fences": 0.0,
}

#: toggle ablations: name -> (snapshot_toggles key, flipped value).  Each
#: run flips exactly one toggle off its default and restores afterwards.
ABLATIONS = {
    "combining_off": ("combining", False),
    "zero_copy_on": ("zero_copy", True),
    "lookup_cache_off": ("lookup_cache", False),
    "dataflow_off": ("dataflow", False),
}


def _scrambled(i):
    return (i * 2654435761) % 100003


def _filled(ctx, n):
    pa = PArray(ctx, n, dtype=int)
    v = Array1DView(pa)
    p_generate(v, _scrambled, vector=None)
    ctx.rmi_fence()
    return pa, v


def _timed(body):
    """Wrap ``body(ctx, v)`` on a fresh filled array in a timed region."""
    def prog(ctx, n):
        _pa, v = _filled(ctx, n)
        m0 = ctx.stats.physical_messages
        t0 = ctx.start_timer()
        body(ctx, v)
        t = ctx.stop_timer(t0)
        return t, ctx.stats.physical_messages - m0
    return prog


def _k_reduce(ctx, v):
    p_reduce(v, op=operator.add)


def _k_scan(ctx, v):
    p_partial_sum(v, v)


def _k_sort(ctx, v):
    p_sample_sort(v)


def _k_sort_nested(ctx, v):
    p_bucket_sort_nested(v)


def _k_sort_nested_group(ctx, v):
    # two-location inner teams (clamped so the P=1 sweep point still runs)
    p_bucket_sort_nested(v, inner_group_size=min(2, len(v.group)))


def _k_stencil(ctx, v):
    p_stencil(v, iters=4, dataflow=True)


def _k_stencil_fenced(ctx, v):
    p_stencil(v, iters=4, dataflow=False)


def _k_rebalance(ctx, v):
    v.container.rebalance()


KERNELS = [
    ("reduce", _k_reduce),
    ("scan", _k_scan),
    ("sample_sort", _k_sort),
    ("bucket_sort_nested", _k_sort_nested),
    ("nested_group", _k_sort_nested_group),
    ("stencil_dataflow", _k_stencil),
    ("stencil_fenced", _k_stencil_fenced),
    ("rebalance", _k_rebalance),
]


def _measure_kernels(P: int, n_per_loc: int, machine: str) -> dict:
    """One measured point: ``{kernel: {N, time_us, physical_msgs,
    bytes_sent, fences}}`` for the whole kernel set."""
    n = P * n_per_loc
    out = {}
    for name, body in KERNELS:
        prog = _timed(body)
        results, _, stats = run_spmd_timed(
            lambda ctx: prog(ctx, n), P, machine)
        out[name] = {
            "N": n,
            "time_us": round(max(r[0] for r in results), 2),
            "physical_msgs": sum(r[1] for r in results),
            "bytes_sent": stats.bytes_sent,
            "fences": stats.fences,
        }
    return out


def bench_suite(P: int = 8, n_per_loc: int = 2048,
                machine: str = "cray4") -> ExperimentResult:
    """Run the fixed kernel set at one P; one row per kernel."""
    res = ExperimentResult(
        "Perf trajectory: fixed kernel set (simulated us + messages)",
        ["kernel", "N", "time_us", "physical_msgs", "bytes_sent", "fences"],
        notes=f"{machine}, P={P}")
    for name, k in _measure_kernels(P, n_per_loc, machine).items():
        res.add(name, k["N"], k["time_us"], k["physical_msgs"],
                k["bytes_sent"], k["fences"])
    return res


def bench_sweep_suite(p_list=DEFAULT_P_LIST, n_strong: int = 16384,
                      n_per_loc: int = 2048,
                      machine: str = "cray4") -> ExperimentResult:
    """Strong + weak scaling of the kernel set over ``p_list``.

    Strong rows keep the total N fixed at ``n_strong`` (block size
    shrinks with P); weak rows keep ``n_per_loc`` fixed (N grows with P).
    Speedup/efficiency are derived per (mode, kernel) series relative to
    the smallest P (see :func:`~.harness.scaling_columns`).
    """
    res = ExperimentResult(
        "Scalability sweep: strong + weak scaling of the fixed kernel set",
        ["mode", "kernel", "P", "N", "time_us", "physical_msgs",
         "bytes_sent", "fences", "speedup", "efficiency"],
        notes=f"{machine}; strong N={n_strong}, weak n/loc={n_per_loc}")
    for mode in ("strong", "weak"):
        per_p = {}
        for P in p_list:
            npl = max(1, n_strong // P) if mode == "strong" else n_per_loc
            per_p[P] = _measure_kernels(P, npl, machine)
        for name, _body in KERNELS:
            times = [per_p[P][name]["time_us"] for P in p_list]
            sp, eff = scaling_columns(p_list, times, weak=(mode == "weak"))
            for i, P in enumerate(p_list):
                k = per_p[P][name]
                res.add(mode, name, P, k["N"], k["time_us"],
                        k["physical_msgs"], k["bytes_sent"], k["fences"],
                        sp[i], eff[i])
    return res


def bench_ablation_suite(P: int = 8, n_per_loc: int = 2048,
                         machine: str = "cray4") -> ExperimentResult:
    """The kernel set with one runtime toggle flipped off its default per
    series; ``time_vs_default`` is the per-kernel time ratio (<1 means
    the flipped setting is faster)."""
    res = ExperimentResult(
        "Toggle ablations: fixed kernel set, one toggle flipped per series",
        ["toggle", "kernel", "time_us", "physical_msgs", "bytes_sent",
         "fences", "time_vs_default"],
        notes=f"{machine}, P={P}, n/loc={n_per_loc}")
    base = _measure_kernels(P, n_per_loc, machine)
    for name, k in base.items():
        res.add("default", name, k["time_us"], k["physical_msgs"],
                k["bytes_sent"], k["fences"], 1.0)
    for toggle, (key, value) in ABLATIONS.items():
        snap = snapshot_toggles()
        flipped = dict(snap)
        flipped[key] = value
        apply_toggles(flipped)
        try:
            rows = _measure_kernels(P, n_per_loc, machine)
        finally:
            apply_toggles(snap)
        for name, k in rows.items():
            ratio = k["time_us"] / base[name]["time_us"] \
                if base[name]["time_us"] else 0.0
            res.add(toggle, name, k["time_us"], k["physical_msgs"],
                    k["bytes_sent"], k["fences"], round(ratio, 3))
    return res


# ---------------------------------------------------------------------------
# Versioned JSON payload (schema_version 2)
# ---------------------------------------------------------------------------

def _sweep_section(sweep: ExperimentResult, mode: str, p_list) -> dict:
    kernels = {}
    for row in sweep.rows:
        if row[0] != mode:
            continue
        _, name, P, n, t, msgs, by, fences, sp, eff = row
        kernels.setdefault(name, {})[str(P)] = {
            "N": n, "time_us": t, "physical_msgs": msgs,
            "bytes_sent": by, "fences": fences,
            "speedup": sp, "efficiency": eff}
    return {"P": list(p_list), "kernels": kernels}


def _ablation_section(abl: ExperimentResult) -> dict:
    toggles = {}
    for row in abl.rows:
        toggle, name, t, msgs, by, fences, ratio = row
        toggles.setdefault(toggle, {"kernels": {}})["kernels"][name] = {
            "time_us": t, "physical_msgs": msgs, "bytes_sent": by,
            "fences": fences, "time_vs_default": ratio}
    return {"toggles": toggles}


def _summarize(payload: dict) -> dict:
    """Derived scaling summary: each kernel's speedup/efficiency at the
    largest swept P, per mode."""
    summary = {}
    for mode in ("strong", "weak"):
        sec = payload.get(mode)
        if not sec or not sec["P"]:
            continue
        top = str(max(sec["P"]))
        summary[mode] = {
            name: {"P": int(top),
                   "speedup": by_p[top]["speedup"],
                   "efficiency": by_p[top]["efficiency"]}
            for name, by_p in sec["kernels"].items() if top in by_p}
    return summary


def _backend_wall_section() -> dict:
    """Measured wall-clock comparison of the mp slab transports plus the
    ShmSlab threshold sweep.  Real seconds on whatever host ran the bench
    — machine-dependent and noisy by nature, so this section is recorded
    for the artifact but deliberately NOT gated: ``_flatten`` only reads
    the deterministic simulated sections, and ``_baseline_sections``
    never re-measures it under ``--check``."""
    from .backend_figs import backend_zero_copy_study, shm_threshold_sweep_study

    zc = backend_zero_copy_study()
    sweep = shm_threshold_sweep_study()
    return {
        "zero_copy_vs_copy_out": {
            str(p): {"copy_out_wall_s": cw, "zero_copy_wall_s": zw,
                     "ratio": ratio, "segs_created": created,
                     "segs_reused": reused, "zc_views": views}
            for p, cw, zw, ratio, created, reused, views in zc.rows},
        "shm_threshold_sweep": {
            str(t): {"wall_s": w, "via_shm": shm}
            for t, w, shm in sweep.rows},
    }


def bench_payload(machine: str = "cray4", generated: str = "",
                  snapshot=(8, 2048),
                  strong=(DEFAULT_P_LIST, 16384),
                  weak=(DEFAULT_P_LIST, 2048),
                  ablations=(8, 2048),
                  backend_wall: bool = False) -> dict:
    """The schema-v2 JSON payload.  Each section argument is either its
    config tuple — ``snapshot``/``ablations`` take ``(P, n_per_loc)``,
    ``strong`` takes ``(p_list, N)``, ``weak`` takes ``(p_list,
    n_per_loc)`` — or ``None`` to omit the section (``--check`` uses this
    to re-measure only what a baseline records).  ``backend_wall=True``
    additionally records the measured (real-seconds, un-gated)
    multiprocessing transport comparison section."""
    payload = {"schema_version": SCHEMA_VERSION, "generated": generated,
               "machine": machine}
    if snapshot is not None:
        P, npl = snapshot
        payload["snapshot"] = {"P": P, "n_per_loc": npl,
                               "kernels": _measure_kernels(P, npl, machine)}
    sweep = None
    if strong is not None or weak is not None:
        p_strong, n_strong = strong if strong is not None \
            else (DEFAULT_P_LIST, 16384)
        p_weak, n_weak = weak if weak is not None \
            else (DEFAULT_P_LIST, 2048)
        if strong is not None and weak is not None and p_strong != p_weak:
            # the sweep driver runs one p_list; measure separately
            s1 = bench_sweep_suite(p_strong, n_strong, n_weak, machine)
            s2 = bench_sweep_suite(p_weak, n_strong, n_weak, machine)
            payload["strong"] = _sweep_section(s1, "strong", p_strong)
            payload["strong"]["N"] = n_strong
            payload["weak"] = _sweep_section(s2, "weak", p_weak)
            payload["weak"]["n_per_loc"] = n_weak
        else:
            p_list = p_strong if strong is not None else p_weak
            sweep = bench_sweep_suite(p_list, n_strong, n_weak, machine)
            if strong is not None:
                payload["strong"] = _sweep_section(sweep, "strong", p_list)
                payload["strong"]["N"] = n_strong
            if weak is not None:
                payload["weak"] = _sweep_section(sweep, "weak", p_list)
                payload["weak"]["n_per_loc"] = n_weak
    if ablations is not None:
        P, npl = ablations
        abl = bench_ablation_suite(P, npl, machine)
        payload["ablations"] = {"P": P, "n_per_loc": npl,
                                **_ablation_section(abl)}
    if backend_wall:
        payload["backend_wall"] = _backend_wall_section()
    summary = _summarize(payload)
    if summary:
        payload["summary"] = summary
    return payload


def write_bench(path: str, machine: str = "cray4", generated: str = "",
                **sections) -> dict:
    payload = bench_payload(machine, generated, **sections)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return payload


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------

class BaselineError(Exception):
    """Baseline file is malformed, schema-incompatible, or config-
    mismatched — distinct from a measured regression (exit 2 vs 1)."""


def _flatten(payload: dict) -> dict:
    """``{(coordinate, kernel): metrics}`` for every measured point in a
    v1 or v2 payload.  Coordinates: ``snapshot``, ``strong/P=4``,
    ``weak/P=8``, ``ablation/combining_off`` ..."""
    if not isinstance(payload, dict):
        raise BaselineError("baseline is not a JSON object")
    coords = {}
    version = payload.get("schema_version", 1)
    if version == 1:
        kernels = payload.get("kernels")
        if not isinstance(kernels, dict) or not kernels:
            raise BaselineError("v1 baseline has no 'kernels' table")
        for name, m in kernels.items():
            coords[("snapshot", name)] = m
        return coords
    if version != SCHEMA_VERSION:
        raise BaselineError(
            f"unsupported schema_version {version!r} "
            f"(this tree reads v1 and v{SCHEMA_VERSION})")
    snap = payload.get("snapshot")
    if snap:
        for name, m in snap["kernels"].items():
            coords[("snapshot", name)] = m
    for mode in ("strong", "weak"):
        sec = payload.get(mode)
        if sec:
            for name, by_p in sec["kernels"].items():
                for p, m in by_p.items():
                    coords[(f"{mode}/P={p}", name)] = m
    abl = payload.get("ablations")
    if abl:
        for toggle, sec in abl["toggles"].items():
            for name, m in sec["kernels"].items():
                coords[(f"ablation/{toggle}", name)] = m
    if not coords:
        raise BaselineError("baseline records no measured sections")
    return coords


@dataclass
class CheckReport:
    """The comparator's verdict: per-metric regressions, removed/added
    kernels, and the worst observed deltas for context."""

    #: (coord, kernel, metric, base, fresh, delta) per failed tolerance
    regressions: list = field(default_factory=list)
    removed: list = field(default_factory=list)  # (coord, kernel)
    added: list = field(default_factory=list)  # (coord, kernel)
    compared: int = 0
    worst: dict = field(default_factory=dict)  # metric -> (delta, coord, kernel)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.removed

    def format_table(self) -> str:
        lines = []
        if self.regressions:
            res = ExperimentResult(
                "PERF GATE: regressions vs baseline",
                ["coordinate", "kernel", "metric", "baseline", "fresh",
                 "delta_pct"])
            for coord, kernel, metric, base, fresh, delta in self.regressions:
                res.add(coord, kernel, metric, base, fresh,
                        round(100.0 * delta, 1))
            lines.append(res.format_table())
        for coord, kernel in self.removed:
            lines.append(f"REMOVED: kernel '{kernel}' at {coord} is in the "
                         "baseline but was not measured — refresh with "
                         "--update-baseline if intentional")
        for coord, kernel in self.added:
            lines.append(f"note: new kernel '{kernel}' at {coord} has no "
                         "baseline entry (not gated; --update-baseline "
                         "records it)")
        status = "FAIL" if not self.ok else "ok"
        lines.append(f"perf gate: {status} — {self.compared} coordinates "
                     f"compared, {len(self.regressions)} regressions, "
                     f"{len(self.removed)} removed, {len(self.added)} added")
        for metric, (delta, coord, kernel) in sorted(self.worst.items()):
            lines.append(f"  worst {metric} delta: {100.0 * delta:+.1f}% "
                         f"({coord}, {kernel})")
        return "\n".join(lines)


def compare_payloads(baseline: dict, fresh: dict) -> CheckReport:
    """Diff two payloads coordinate-by-coordinate under
    :data:`TOLERANCES`.  Pure — callers feed it loaded JSON; the CLI
    feeds it the committed baseline and a fresh run of the same
    sections."""
    if (baseline.get("machine") and fresh.get("machine")
            and baseline["machine"] != fresh["machine"]):
        raise BaselineError(
            f"machine mismatch: baseline is {baseline['machine']!r}, "
            f"fresh run is {fresh['machine']!r}")
    base_pts, fresh_pts = _flatten(baseline), _flatten(fresh)
    report = CheckReport()
    for key in sorted(base_pts):
        if key not in fresh_pts:
            report.removed.append(key)
    for key in sorted(fresh_pts):
        if key not in base_pts:
            report.added.append(key)
    for key in sorted(base_pts.keys() & fresh_pts.keys()):
        coord, kernel = key
        bm, fm = base_pts[key], fresh_pts[key]
        report.compared += 1
        for metric, tol in TOLERANCES.items():
            if metric not in bm or metric not in fm:
                continue
            base, new = bm[metric], fm[metric]
            delta = (new - base) / base if base else (1.0 if new else 0.0)
            worst = report.worst.get(metric)
            if worst is None or delta > worst[0]:
                report.worst[metric] = (delta, coord, kernel)
            if new > base and delta > tol:
                report.regressions.append(
                    (coord, kernel, metric, base, new, delta))
    return report


def _load_baseline(path: str) -> dict:
    try:
        with open(path) as f:
            payload = json.load(f)
    except OSError as e:
        raise BaselineError(f"cannot read baseline {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise BaselineError(f"baseline {path} is not valid JSON: {e}") from e
    _flatten(payload)  # validate shape up front
    return payload


def _baseline_sections(baseline: dict) -> dict:
    """Recover :func:`bench_payload` section kwargs from a baseline, so
    ``--check`` re-measures exactly the coordinates it records."""
    if baseline.get("schema_version", 1) == 1:
        return {"snapshot": (baseline.get("P", 8),
                             baseline.get("n_per_loc", 2048)),
                "strong": None, "weak": None, "ablations": None}
    sections = {"snapshot": None, "strong": None, "weak": None,
                "ablations": None}
    if "snapshot" in baseline:
        sections["snapshot"] = (baseline["snapshot"]["P"],
                                baseline["snapshot"]["n_per_loc"])
    if "strong" in baseline:
        sections["strong"] = (tuple(baseline["strong"]["P"]),
                              baseline["strong"]["N"])
    if "weak" in baseline:
        sections["weak"] = (tuple(baseline["weak"]["P"]),
                            baseline["weak"]["n_per_loc"])
    if "ablations" in baseline:
        sections["ablations"] = (baseline["ablations"]["P"],
                                 baseline["ablations"]["n_per_loc"])
    return sections


def check_against_baseline(path: str, machine: str | None = None) -> int:
    """Re-measure the baseline's sections and gate on the diff.  Exit
    status: 0 within tolerance, 1 regression/removal, 2 bad baseline."""
    baseline = _load_baseline(path)
    machine = machine or baseline.get("machine", "cray4")
    fresh = bench_payload(machine=machine, **_baseline_sections(baseline))
    report = compare_payloads(baseline, fresh)
    print(report.format_table())
    return 0 if report.ok else 1


def update_baseline(path: str, machine: str | None = None,
                    generated: str = "") -> dict:
    """Overwrite ``path`` with a fresh full-sweep payload (or, if it
    already exists, a fresh run of its recorded sections)."""
    sections = {}
    try:
        baseline = _load_baseline(path)
    except BaselineError:
        baseline = {}
    else:
        if baseline.get("schema_version", 1) == SCHEMA_VERSION:
            sections = _baseline_sections(baseline)
    machine = machine or baseline.get("machine", "cray4")
    return write_bench(path, machine=machine, generated=generated,
                       **sections)


def main(argv=None) -> int:
    import datetime
    import sys

    args = list(sys.argv[1:] if argv is None else argv)

    def popval(flag):
        if flag not in args:
            return None
        i = args.index(flag)
        args.pop(i)
        if i >= len(args):
            print(f"{flag} requires a value", file=sys.stderr)
            raise SystemExit(2)
        return args.pop(i)

    machine = popval("--machine")
    check = popval("--check")
    update = popval("--update-baseline")
    backend_wall = "--backend-wall" in args
    if backend_wall:
        args.remove("--backend-wall")
    date = datetime.date.today().isoformat()
    try:
        if check is not None:
            return check_against_baseline(check, machine)
        if update is not None:
            payload = update_baseline(update, machine, generated=date)
            print(f"[baseline refreshed: {update} "
                  f"({payload['machine']}, schema v{SCHEMA_VERSION})]")
            return 0
    except BaselineError as e:
        print(f"perf gate: bad baseline — {e}", file=sys.stderr)
        return 2
    path = args[0] if args else f"BENCH_{date}.json"
    payload = write_bench(path, machine=machine or "cray4", generated=date,
                          backend_wall=backend_wall)
    n_kernels = len(payload.get("snapshot", {}).get("kernels", {}))
    sections = [k for k in ("snapshot", "strong", "weak", "ablations",
                            "backend_wall") if k in payload]
    print(f"[bench: {n_kernels} kernels, sections {sections} "
          f"on {payload['machine']} -> {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
