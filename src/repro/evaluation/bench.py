"""Perf-trajectory snapshot: a fixed kernel set whose simulated times and
message counts are persisted as ``BENCH_<date>.json`` at the repo root, so
regressions across PRs are visible as a diff between snapshots.

The kernel set is deliberately small and stable — one representative per
subsystem (element RMI, slab transport, PARAGRAPH data-flow, nested
parallelism, migration) — and every kernel is deterministic: identical
inputs, virtual clocks from the machine model, so two runs of the same
tree produce byte-identical JSON (modulo the ``generated`` stamp).

Run via ``python -m repro.evaluation.bench [outfile]`` or the ``bench``
driver name in ``python -m repro.evaluation``.
"""

from __future__ import annotations

import json
import operator

from ..algorithms.generic import p_generate, p_partial_sum, p_reduce
from ..algorithms.nested import p_bucket_sort_nested, p_stencil
from ..algorithms.sorting import p_sample_sort
from ..containers.parray import PArray
from ..views.array_views import Array1DView
from .harness import ExperimentResult, run_spmd_timed


def _scrambled(i):
    return (i * 2654435761) % 100003


def _filled(ctx, n):
    pa = PArray(ctx, n, dtype=int)
    v = Array1DView(pa)
    p_generate(v, _scrambled, vector=None)
    ctx.rmi_fence()
    return pa, v


def _timed(body):
    """Wrap ``body(ctx, v)`` on a fresh filled array in a timed region."""
    def prog(ctx, n):
        _pa, v = _filled(ctx, n)
        m0 = ctx.stats.physical_messages
        t0 = ctx.start_timer()
        body(ctx, v)
        t = ctx.stop_timer(t0)
        return t, ctx.stats.physical_messages - m0
    return prog


def _k_reduce(ctx, v):
    p_reduce(v, op=operator.add)


def _k_scan(ctx, v):
    p_partial_sum(v, v)


def _k_sort(ctx, v):
    p_sample_sort(v)


def _k_sort_nested(ctx, v):
    p_bucket_sort_nested(v)


def _k_stencil(ctx, v):
    p_stencil(v, iters=4, dataflow=True)


def _k_stencil_fenced(ctx, v):
    p_stencil(v, iters=4, dataflow=False)


def _k_rebalance(ctx, v):
    v.container.rebalance()


KERNELS = [
    ("reduce", _k_reduce),
    ("scan", _k_scan),
    ("sample_sort", _k_sort),
    ("bucket_sort_nested", _k_sort_nested),
    ("stencil_dataflow", _k_stencil),
    ("stencil_fenced", _k_stencil_fenced),
    ("rebalance", _k_rebalance),
]


def bench_suite(P: int = 8, n_per_loc: int = 2048,
                machine: str = "cray4") -> ExperimentResult:
    """Run the fixed kernel set; one row per kernel."""
    n = P * n_per_loc
    res = ExperimentResult(
        "Perf trajectory: fixed kernel set (simulated us + messages)",
        ["kernel", "N", "time_us", "physical_msgs", "bytes_sent", "fences"],
        notes=f"{machine}, P={P}")
    for name, body in KERNELS:
        prog = _timed(body)
        results, _, stats = run_spmd_timed(
            lambda ctx: prog(ctx, n), P, machine)
        res.add(name, n, max(r[0] for r in results),
                sum(r[1] for r in results), stats.bytes_sent, stats.fences)
    return res


def bench_payload(P: int = 8, n_per_loc: int = 2048,
                  machine: str = "cray4", generated: str = "") -> dict:
    """The JSON payload: one object per kernel keyed by name."""
    res = bench_suite(P, n_per_loc, machine)
    kernels = {}
    for row in res.rows:
        kernels[row[0]] = {
            "N": row[1], "time_us": round(row[2], 2),
            "physical_msgs": row[3], "bytes_sent": row[4],
            "fences": row[5]}
    return {"generated": generated, "machine": machine, "P": P,
            "n_per_loc": n_per_loc, "kernels": kernels}


def write_bench(path: str, P: int = 8, n_per_loc: int = 2048,
                machine: str = "cray4", generated: str = "") -> dict:
    payload = bench_payload(P, n_per_loc, machine, generated)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return payload


def main(argv=None) -> int:
    import datetime
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    machine = "cray4"
    if "--machine" in args:
        i = args.index("--machine")
        args.pop(i)
        machine = args.pop(i)
    date = datetime.date.today().isoformat()
    path = args[0] if args else f"BENCH_{date}.json"
    payload = write_bench(path, machine=machine, generated=date)
    print(f"[bench: {len(payload['kernels'])} kernels on {machine} "
          f"-> {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
