"""Evaluation drivers: one function per paper table/figure (Ch. VIII-XIII)."""

from .ablations import (
    ablation_aggregation,
    ablation_consistency_mode,
    ablation_lazy_size,
    ablation_view_alignment,
)
from .assoc_figs import fig59_mapreduce_wordcount, fig60_assoc_algorithms
from .backend_figs import (
    backend_scaling_study,
    backend_speedup,
    backend_zero_copy_study,
    shm_threshold_sweep_study,
)
from .bench import (
    bench_ablation_suite,
    bench_payload,
    bench_suite,
    bench_sweep_suite,
    compare_payloads,
    write_bench,
)
from .bulk_figs import bulk_transport_study
from .combining_figs import combining_containers_study, combining_study
from .composition_figs import composition_backend_study, fig62_row_min
from .consistency_figs import consistency_backend_study, mcm_demonstrations
from .harness import ExperimentResult, method_kernel, run_spmd_timed
from .memory_figs import fig34_memory_study
from .migration_figs import (
    lookup_cache_study,
    migration_backend_study,
    migration_graph_study,
    migration_skew_study,
)
from .mixed_mode_figs import mixed_mode_study, mixed_mode_topology_study
from .nested_figs import (nested_backend_study, nested_groups_study,
                          nested_study)
from .paragraph_figs import (
    paragraph_backend_study,
    paragraph_study,
    sort_transport_study,
)
from .parray_figs import (
    fig27_constructor,
    fig28_local_methods,
    fig29_methods_weak,
    fig30_method_flavours,
    fig31_remote_fraction,
    fig32_local_remote_sizes,
    fig33_generic_algorithms,
)
from .pgraph_figs import (
    fig49_50_pgraph_methods,
    fig51_find_sources,
    fig52_partition_comparison,
    fig53_55_graph_algorithms,
    fig56_pagerank_meshes,
)
from .plist_figs import (
    fig39_plist_methods,
    fig40_parray_vs_plist,
    fig41_placement,
    fig42_plist_vs_pvector,
    fig43_euler_tour_weak,
    fig44_euler_applications,
)
