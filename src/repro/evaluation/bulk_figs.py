"""Bulk element-transport study: per-element RMIs vs slab transfers.

Not a paper figure — it isolates the win of the bulk-RMI subsystem
(``bulk_get_range`` / ``bulk_set_range``): a map and a reduce over a
*misaligned* balanced view, where every element the view touches lives on a
remote location.  The per-element path pays one RMI per element (sync reads,
aggregated async writes); the bulk path moves one slab per (src, dst) pair.
The paper's aggregation argument (Ch. III.B) predicts an order-of-magnitude
drop in physical messages — this driver measures it.
"""

from __future__ import annotations

from ..containers.parray import PArray
from ..core.mappers import GeneralMapper
from ..core.traits import Traits
from ..views.array_views import Array1DView, BalancedView
from ..views.base import set_bulk_transport
from .harness import ExperimentResult, run_spmd_timed


def bulk_transport_study(P=8, n_per_loc=15000,
                         machine="cray4") -> ExperimentResult:
    """map / reduce over a 100%-remote balanced view, bulk path on vs off.

    The pArray keeps its default balanced partition but the block→location
    mapping is rotated by one, so each location's balanced slice is owned by
    its neighbour: every access is remote, the worst case for per-element
    transport and the best showcase for slabs.
    """
    from ..algorithms.generic import p_accumulate, p_for_each

    res = ExperimentResult(
        "Bulk element transport (map/reduce, 100% remote balanced view)",
        ["algorithm", "path", "N", "time_us", "physical_msgs",
         "bulk_rmis", "MB_sent"],
        notes="bulk: one slab per (src,dst) pair; per_element: one RMI per "
              "element")

    def prog(ctx, which):
        n = n_per_loc * ctx.nlocs
        rotated = [(i + 1) % ctx.nlocs for i in range(ctx.nlocs)]
        traits = Traits(mapper_factory=lambda: GeneralMapper(rotated))
        pa = PArray(ctx, n, dtype=float, traits=traits)
        view = BalancedView(Array1DView(pa))
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        if which == "map":
            p_for_each(view, lambda x: x + 1.0, vector=lambda a: a + 1.0)
        else:
            p_accumulate(view, 0.0)
        return ctx.stop_timer(t0)

    n = n_per_loc * P
    for algo in ("map", "reduce"):
        for label, on in (("per_element", False), ("bulk", True)):
            prev = set_bulk_transport(on)
            try:
                results, _, stats = run_spmd_timed(prog, P, machine, (algo,))
            finally:
                set_bulk_transport(prev)
            res.add(algo, label, n, max(results), stats.physical_messages,
                    stats.bulk_rmi_sent, stats.bytes_sent / 1e6)
    return res
