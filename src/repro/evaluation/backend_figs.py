"""Backend strong-scaling study: the repo's first *real wall-clock* numbers.

Every other driver reports deterministic virtual microseconds from the
machine model.  This one runs the same SPMD programs under the
multiprocessing backend — one OS process per location, shared-memory slab
transport — and reports measured wall seconds at P = 1, 2, 4, 8.

Two kernels, chosen for honesty on a small container:

* ``latency``: a slab-heavy kernel whose per-round cost is dominated by a
  fixed stall (``time.sleep``, standing in for I/O / remote-memory latency)
  followed by a bulk numpy exchange over shared memory.  Stalls overlap
  across processes, so this scales even on a single-CPU box — it is the
  acceptance kernel for the >= 2x speedup bar at P=8.
* ``cpu``: pure numpy compute.  On a multi-core machine it scales; on the
  1-CPU CI container it legitimately does not, so it is *recorded*, never
  asserted on.

The driver also re-runs the latency kernel under the simulated oracle and
checks the reduced result is identical — scaling numbers from a backend
that diverges from the oracle would be meaningless.
"""

from __future__ import annotations

import time

import numpy as np

from ..runtime import spmd_run, spmd_run_detailed
from .harness import ExperimentResult

#: strong-scaling total work, divisible by every P in the sweep
_TOTAL_UNITS = 64
_STALL_S = 0.03
_SLAB_ELEMS = 4096  # above the SHM threshold: rounds go through /dev/shm


def _latency_kernel(ctx, total_units, stall, slab_elems):
    per = total_units // ctx.nlocs
    acc = 0.0
    for r in range(per):
        if stall:
            time.sleep(stall)
        slab = np.full(slab_elems, float(ctx.id * per + r))
        got = ctx.bulk_gather(slab)
        acc += sum(float(g[0]) for g in got)
    ctx.rmi_fence()
    total = ctx.allreduce_rmi(acc)
    ctx.rmi_fence()
    return total


def _cpu_kernel(ctx, total_units, n):
    per = total_units // ctx.nlocs
    a = np.random.default_rng(7).random((n, n))
    acc = 0.0
    for _ in range(per):
        acc += float(np.trace(a @ a))
    ctx.rmi_fence()
    total = ctx.allreduce_rmi(round(acc, 6))
    ctx.rmi_fence()
    return total


def _mp_wall(fn, nlocs, args, reps: int = 2) -> float:
    # min-of-k: wall clocks on a shared host only ever read *high*, so the
    # minimum is the least-noisy estimate of the true cost
    walls = []
    for _ in range(reps):
        rep = spmd_run_detailed(fn, nlocs=nlocs, args=args,
                                backend="multiprocessing", timeout=300.0)
        walls.append(rep.wall_seconds)
    return min(walls)


def backend_scaling_study(total_units: int = _TOTAL_UNITS,
                          stall_s: float = _STALL_S) -> ExperimentResult:
    """Strong scaling under real processes: wall seconds and speedup vs P=1."""
    result = ExperimentResult(
        name="Backend scaling: wall-clock strong scaling, multiprocessing",
        columns=["kernel", "P", "wall_s", "speedup"])

    # oracle check first: the backend whose clock we are about to trust must
    # produce bit-identical answers to the simulator on the same program
    check_args = (8, 0.0, _SLAB_ELEMS)
    sim = spmd_run(_latency_kernel, nlocs=2, args=check_args,
                   backend="simulated")
    real = spmd_run(_latency_kernel, nlocs=2, args=check_args,
                    backend="multiprocessing", timeout=300.0)
    if sim != real:
        raise AssertionError(
            f"backend divergence on scaling kernel: sim={sim} real={real}")

    sweep = (1, 2, 4, 8)
    for kernel, fn, args in (
            ("latency", _latency_kernel,
             lambda: (total_units, stall_s, _SLAB_ELEMS)),
            ("cpu", _cpu_kernel, lambda: (32, 64))):
        base = None
        for p in sweep:
            wall = _mp_wall(fn, p, args())
            base = wall if base is None else base
            result.add(kernel, p, round(wall, 4),
                       round(base / wall, 2) if wall else float("inf"))
    result.notes = (
        "measured wall seconds (not virtual time); latency kernel overlaps "
        f"{stall_s * 1e3:.0f}ms stalls + SHM slab gathers, so it scales even "
        "on a 1-CPU host; cpu kernel is recorded for reference and only "
        "scales with real cores")
    return result


def backend_speedup(result: ExperimentResult, kernel: str, p: int) -> float:
    """Speedup of ``kernel`` at ``P=p`` vs ``P=1`` from a study result."""
    for k, pp, _wall, speedup in result.rows:
        if k == kernel and pp == p:
            return speedup
    raise KeyError(f"no row for kernel={kernel!r} P={p}")
