"""Backend strong-scaling study: the repo's first *real wall-clock* numbers.

Every other driver reports deterministic virtual microseconds from the
machine model.  This one runs the same SPMD programs under the
multiprocessing backend — one OS process per location, shared-memory slab
transport — and reports measured wall seconds at P = 1, 2, 4, 8.

Two kernels, chosen for honesty on a small container:

* ``latency``: a slab-heavy kernel whose per-round cost is dominated by a
  fixed stall (``time.sleep``, standing in for I/O / remote-memory latency)
  followed by a bulk numpy exchange over shared memory.  Stalls overlap
  across processes, so this scales even on a single-CPU box — it is the
  acceptance kernel for the >= 2x speedup bar at P=8.
* ``cpu``: pure numpy compute.  On a multi-core machine it scales; on the
  1-CPU CI container it legitimately does not, so it is *recorded*, never
  asserted on.

The driver also re-runs the latency kernel under the simulated oracle and
checks the reduced result is identical — scaling numbers from a backend
that diverges from the oracle would be meaningless.
"""

from __future__ import annotations

import time

import numpy as np

from ..runtime import (
    set_mp_zero_copy,
    set_shm_slab_threshold,
    spmd_run,
    spmd_run_detailed,
)
from .harness import ExperimentResult

#: strong-scaling total work, divisible by every P in the sweep
_TOTAL_UNITS = 64
_STALL_S = 0.03
_SLAB_ELEMS = 4096  # above the SHM threshold: rounds go through /dev/shm


def _latency_kernel(ctx, total_units, stall, slab_elems):
    per = total_units // ctx.nlocs
    acc = 0.0
    for r in range(per):
        if stall:
            time.sleep(stall)
        slab = np.full(slab_elems, float(ctx.id * per + r))
        got = ctx.bulk_gather(slab)
        acc += sum(float(g[0]) for g in got)
    ctx.rmi_fence()
    total = ctx.allreduce_rmi(acc)
    ctx.rmi_fence()
    return total


def _cpu_kernel(ctx, total_units, n):
    per = total_units // ctx.nlocs
    a = np.random.default_rng(7).random((n, n))
    acc = 0.0
    for _ in range(per):
        acc += float(np.trace(a @ a))
    ctx.rmi_fence()
    total = ctx.allreduce_rmi(round(acc, 6))
    ctx.rmi_fence()
    return total


def _mp_wall(fn, nlocs, args, reps: int = 2) -> float:
    # min-of-k: wall clocks on a shared host only ever read *high*, so the
    # minimum is the least-noisy estimate of the true cost
    walls = []
    for _ in range(reps):
        rep = spmd_run_detailed(fn, nlocs=nlocs, args=args,
                                backend="multiprocessing", timeout=300.0)
        walls.append(rep.wall_seconds)
    return min(walls)


def backend_scaling_study(total_units: int = _TOTAL_UNITS,
                          stall_s: float = _STALL_S) -> ExperimentResult:
    """Strong scaling under real processes: wall seconds and speedup vs P=1."""
    result = ExperimentResult(
        name="Backend scaling: wall-clock strong scaling, multiprocessing",
        columns=["kernel", "P", "wall_s", "speedup"])

    # oracle check first: the backend whose clock we are about to trust must
    # produce bit-identical answers to the simulator on the same program
    check_args = (8, 0.0, _SLAB_ELEMS)
    sim = spmd_run(_latency_kernel, nlocs=2, args=check_args,
                   backend="simulated")
    real = spmd_run(_latency_kernel, nlocs=2, args=check_args,
                    backend="multiprocessing", timeout=300.0)
    if sim != real:
        raise AssertionError(
            f"backend divergence on scaling kernel: sim={sim} real={real}")

    sweep = (1, 2, 4, 8)
    for kernel, fn, args in (
            ("latency", _latency_kernel,
             lambda: (total_units, stall_s, _SLAB_ELEMS)),
            ("cpu", _cpu_kernel, lambda: (32, 64))):
        base = None
        for p in sweep:
            wall = _mp_wall(fn, p, args())
            base = wall if base is None else base
            result.add(kernel, p, round(wall, 4),
                       round(base / wall, 2) if wall else float("inf"))
    result.notes = (
        "measured wall seconds (not virtual time); latency kernel overlaps "
        f"{stall_s * 1e3:.0f}ms stalls + SHM slab gathers, so it scales even "
        "on a 1-CPU host; cpu kernel is recorded for reference and only "
        "scales with real cores")
    return result


def backend_speedup(result: ExperimentResult, kernel: str, p: int) -> float:
    """Speedup of ``kernel`` at ``P=p`` vs ``P=1`` from a study result."""
    for k, pp, _wall, speedup in result.rows:
        if k == kernel and pp == p:
            return speedup
    raise KeyError(f"no row for kernel={kernel!r} P={p}")


# ---------------------------------------------------------------------------
# Zero-copy vs copy-out transport comparison
# ---------------------------------------------------------------------------

#: zero-copy comparison defaults: big slabs so transport memcpys dominate
_ZC_ROUNDS = 6
_ZC_SLAB_ELEMS = 131072  # 1 MiB of float64 per slab
_ZC_RATIO_BAR = 1.5


def _zc_latency_kernel(ctx, rounds, slab_elems):
    """The slab-heavy latency kernel with stall=0 and a self-timed region.

    Process startup is identical under both transport modes, so timing
    inside the worker isolates exactly what the comparison is about: the
    per-slab create/memcpy/copy-out/unlink cost the arena + zero-copy
    receive path removes."""
    t0 = time.perf_counter()
    acc = 0.0
    for r in range(rounds):
        slab = np.full(slab_elems, float(ctx.id * rounds + r))
        got = ctx.bulk_gather(slab)
        acc += sum(float(g[0]) for g in got)
    ctx.rmi_fence()
    return acc, time.perf_counter() - t0


def _zc_accs(results) -> list:
    return [r[0] for r in results]


def _zc_wall(nlocs, rounds, slab_elems, zero_copy: bool, reps: int = 2):
    """(min-of-k max-over-locations kernel wall, stats of the best rep)
    under the requested transport mode."""
    prev = set_mp_zero_copy(zero_copy)
    try:
        best_wall, best_stats = None, None
        for _ in range(reps):
            rep = spmd_run_detailed(
                _zc_latency_kernel, nlocs=nlocs, args=(rounds, slab_elems),
                backend="multiprocessing", timeout=300.0)
            wall = max(r[1] for r in rep.results)
            if best_wall is None or wall < best_wall:
                best_wall, best_stats = wall, rep.stats.total
        return best_wall, best_stats
    finally:
        set_mp_zero_copy(prev)


def backend_zero_copy_study(rounds: int = _ZC_ROUNDS,
                            slab_elems: int = _ZC_SLAB_ELEMS,
                            p_sweep=(2, 8),
                            ratio_bar: float = _ZC_RATIO_BAR
                            ) -> ExperimentResult:
    """Wall-clock comparison of the two mp slab transports.

    ``copy_out`` is the legacy lifecycle (fresh segment + memcpy in,
    copy + unlink out, per slab per destination); ``zero_copy`` is the
    arena path (warm pooled segments, multicast packed once, read-only
    views on the receiver).  The study first certifies the three modes —
    simulated, copy-out, zero-copy — produce identical reduced results,
    then asserts zero-copy is at least ``ratio_bar`` times faster at the
    largest swept P (the acceptance bar)."""
    result = ExperimentResult(
        name="Zero-copy vs copy-out: mp slab transport wall-clock",
        columns=["P", "copy_out_wall_s", "zero_copy_wall_s", "ratio",
                 "segs_created", "segs_reused", "zc_views"])

    # three-mode identity: the transport under comparison must not change
    # a single answer
    check_args = (3, slab_elems)
    sim = _zc_accs(spmd_run(_zc_latency_kernel, nlocs=2, args=check_args,
                            backend="simulated"))
    prev = set_mp_zero_copy(False)
    try:
        copy_out = _zc_accs(spmd_run(
            _zc_latency_kernel, nlocs=2, args=check_args,
            backend="multiprocessing", timeout=300.0))
    finally:
        set_mp_zero_copy(prev)
    prev = set_mp_zero_copy(True)
    try:
        zero_copy = _zc_accs(spmd_run(
            _zc_latency_kernel, nlocs=2, args=check_args,
            backend="multiprocessing", timeout=300.0))
    finally:
        set_mp_zero_copy(prev)
    if not (sim == copy_out == zero_copy):
        raise AssertionError(
            f"transport-mode divergence: sim={sim} copy_out={copy_out} "
            f"zero_copy={zero_copy}")

    top_ratio = None
    for p in p_sweep:
        copy_wall, _ = _zc_wall(p, rounds, slab_elems, zero_copy=False)
        zc_wall, zc_stats = _zc_wall(p, rounds, slab_elems, zero_copy=True)
        ratio = copy_wall / zc_wall if zc_wall else float("inf")
        result.add(p, round(copy_wall, 4), round(zc_wall, 4),
                   round(ratio, 2), zc_stats.shm_segments_created,
                   zc_stats.shm_segments_reused,
                   zc_stats.zero_copy_slab_views)
        if p == max(p_sweep):
            top_ratio = ratio
    if top_ratio is not None and top_ratio < ratio_bar:
        raise AssertionError(
            f"zero-copy transport only {top_ratio:.2f}x faster than "
            f"copy-out at P={max(p_sweep)} (bar: {ratio_bar}x)")
    result.notes = (
        f"slab-heavy latency kernel, stall=0, {rounds} gather rounds of "
        f"{slab_elems} float64 per location; kernel-region wall seconds "
        "(startup excluded — identical across modes); acceptance bar "
        f">={ratio_bar}x at P={max(p_sweep)}")
    return result


def shm_threshold_sweep_study(thresholds=(1024, 32768, 1 << 20),
                              rounds: int = 4, slab_elems: int = 2048,
                              nlocs: int = 4) -> ExperimentResult:
    """Wall-clock sweep of the ShmSlab eligibility threshold.

    ``slab_elems`` float64 slabs are 16 KiB: the low threshold routes
    them through shared memory, the high ones through the pipe — the
    tradeoff the 2 KiB default was eyeballed against, now measured."""
    result = ExperimentResult(
        name="ShmSlab threshold sweep: shared-memory vs pipe transport",
        columns=["threshold", "wall_s", "via_shm"])
    slab_bytes = slab_elems * 8
    for threshold in thresholds:
        prev = set_shm_slab_threshold(threshold)
        try:
            wall, _ = _zc_wall(nlocs, rounds, slab_elems, zero_copy=True)
        finally:
            set_shm_slab_threshold(prev)
        result.add(threshold, round(wall, 4), slab_bytes >= threshold)
    result.notes = (
        f"latency kernel, {rounds} gather rounds of {slab_elems} float64 "
        f"({slab_bytes} B) at P={nlocs}; thresholds above the slab size "
        "fall back to pickled pipe transport")
    return result
