"""Dependence-driven executor study: PARAGRAPH data-flow vs fence-per-phase.

Not a paper figure — it isolates the win of the task-graph executor
(``algorithms/prange.py``) the way ``bulk_figs`` isolates slab transport:
FooPar and BCL both attribute distributed-algorithm scalability to
replacing phase barriers with point-to-point completion, and this driver
measures exactly that trade on the repo's multi-phase workloads.

``paragraph_study`` runs the canonical multi-phase workload — sample sort,
then prefix sums and adjacent differences of the sorted data — in both
modes.  The fenced baseline pays one ``rmi_fence`` per algorithm plus its
collectives (sample allgather, bucket alltoall, two scans); the data-flow
pipeline compiles all phases into one PARAGRAPH whose samples, buckets,
offsets, carries and boundary values travel as dependence messages, closed
by a single fence.  It asserts byte-identical results, >= 2x fewer fences,
and lower simulated time.

``sort_transport_study`` is the regression guard for the sorting bulk-path
bugfix: the sort's portion read and sorted write-back must ride
``read_range``/``write_range`` slabs, not one scalar RMI per element.  It
runs the fenced sort (isolating transport from the executor) over 64k
elements whose block→location mapping is rotated by one — every
balanced-slice access is remote, the scalar-storm worst case — with the
bulk toggle off and on, and asserts >= 10x fewer physical messages,
identical output.
"""

from __future__ import annotations

from ..algorithms.pipelines import p_sort_scan_pipeline
from ..algorithms.prange import set_dataflow
from ..algorithms.sorting import p_sample_sort
from ..containers.parray import PArray
from ..core.mappers import GeneralMapper
from ..core.traits import Traits
from ..views.array_views import Array1DView
from ..views.base import set_bulk_transport
from .harness import ExperimentResult, run_spmd_report, run_spmd_timed


def _scrambled(i):
    """Deterministic value permutation-ish generator (duplicates included)."""
    return (i * 2654435761) % 100003


def paragraph_study(P: int = 8, n_per_loc: int = 4000,
                    machine: str = "cray4",
                    backend: str | None = None) -> ExperimentResult:
    """Multi-phase sort + scan workload, data-flow executor on vs off.

    Raises if the two modes disagree on any output array, if the baseline
    does not pay at least 2x the fences, or if data-flow is not faster.

    ``backend="multiprocessing"`` runs the same pipeline on real OS
    processes (ROADMAP item 1): the virtual-clock columns stay meaningful
    (the cost model runs inside each worker) and the ``wall_s`` column
    becomes real elapsed time instead of simulator overhead.
    """
    n = P * n_per_loc

    def prog(ctx):
        src = PArray(ctx, n, dtype=int)
        sums = PArray(ctx, n, dtype=int)
        diffs = PArray(ctx, n, dtype=int)
        sv = Array1DView(src)
        from ..algorithms.generic import p_generate

        p_generate(sv, _scrambled, vector=None)
        ctx.rmi_fence()
        fences0 = ctx.stats.fences
        colls0 = ctx.stats.collectives
        t0 = ctx.start_timer()
        p_sort_scan_pipeline(sv, Array1DView(sums), Array1DView(diffs))
        t = ctx.stop_timer(t0)
        fences = ctx.stats.fences - fences0
        colls = ctx.stats.collectives - colls0
        outcome = (src.to_list(), sums.to_list(), diffs.to_list())
        return t, fences, colls, outcome

    res = ExperimentResult(
        "PARAGRAPH executor: data-flow edges vs fence-per-phase baseline",
        ["mode", "N", "time_us", "wall_s", "fences", "collectives",
         "dep_msgs", "tasks", "physical_msgs"],
        notes=f"{machine}, P={P}, backend={backend or 'simulated'}; "
              "workload: sample sort -> prefix sums -> adjacent "
              "differences of the sorted data")

    outcome = {}
    for label, on in (("fenced", False), ("dataflow", True)):
        prev = set_dataflow(on)
        try:
            rep = run_spmd_report(prog, P, machine, backend=backend)
        finally:
            set_dataflow(prev)
        results, stats = rep.results, rep.stats.total
        outcome[label] = (max(r[0] for r in results),
                         max(r[1] for r in results), results[0][3])
        res.add(label, n, outcome[label][0], rep.wall_seconds,
                outcome[label][1], max(r[2] for r in results),
                stats.dependence_messages, stats.tasks_executed,
                stats.physical_messages)

    if outcome["dataflow"][2] != outcome["fenced"][2]:
        raise AssertionError(
            "data-flow mode changed the results (expected byte-identical "
            "to the fence-per-phase baseline)")
    f_base, f_df = outcome["fenced"][1], outcome["dataflow"][1]
    if f_base < 2 * max(1, f_df):
        raise AssertionError(
            f"paragraph study: baseline paid {f_base} fences vs {f_df} "
            "data-flow (expected >= 2x reduction)")
    t_base, t_df = outcome["fenced"][0], outcome["dataflow"][0]
    ratio = t_base / max(1e-9, t_df)
    res.notes += (f"; fences {f_base} -> {f_df}, "
                  f"time ratio fenced/dataflow = {ratio:.2f}x")
    if t_df >= t_base:
        raise AssertionError(
            f"paragraph study: data-flow not faster ({t_df:.1f}us vs "
            f"{t_base:.1f}us baseline)")
    return res


def paragraph_backend_study(P: int = 4, n_per_loc: int = 1000,
                            machine: str = "cray4") -> ExperimentResult:
    """The sort->scan pipeline routed through ``backend="multiprocessing"``
    (ROADMAP item 1): one OS process per location, identical assertions,
    real wall-clock in the ``wall_s`` column."""
    return paragraph_study(P, n_per_loc, machine,
                           backend="multiprocessing")


def sort_transport_study(P: int = 8, n_per_loc: int = 8192,
                         machine: str = "cray4") -> ExperimentResult:
    """Sorting bulk-path regression: slab vs per-element transport on a
    64k-element sort (default P * n_per_loc).  Raises unless the slab path
    sends >= 10x fewer physical messages with identical output."""
    n = P * n_per_loc

    def prog(ctx):
        rotated = [(i + 1) % ctx.nlocs for i in range(ctx.nlocs)]
        pa = PArray(ctx, n, dtype=int,
                    traits=Traits(mapper_factory=lambda: GeneralMapper(
                        rotated)))
        v = Array1DView(pa)
        from ..algorithms.generic import p_generate

        p_generate(v, _scrambled, vector=None)
        ctx.rmi_fence()
        msgs0 = ctx.stats.physical_messages
        t0 = ctx.start_timer()
        p_sample_sort(v)
        t = ctx.stop_timer(t0)
        return t, ctx.stats.physical_messages - msgs0, pa.to_list()

    res = ExperimentResult(
        "Sorting transport: read_range/write_range slabs vs per-element RMIs",
        ["path", "N", "time_us", "sort_msgs", "bulk_rmis", "MB_sent"],
        notes=f"{machine}, P={P}; fenced sample sort (executor held "
              "constant); block->location mapping rotated by one so every "
              "balanced-slice access is remote")

    prev_df = set_dataflow(False)
    outcome = {}
    try:
        for label, on in (("per_element", False), ("bulk", True)):
            prev = set_bulk_transport(on)
            try:
                results, _, stats = run_spmd_timed(prog, P, machine)
            finally:
                set_bulk_transport(prev)
            outcome[label] = (max(r[0] for r in results),
                             sum(r[1] for r in results), results[0][2])
            res.add(label, n, outcome[label][0], outcome[label][1],
                    stats.bulk_rmi_sent, stats.bytes_sent / 1e6)
    finally:
        set_dataflow(prev_df)

    if outcome["bulk"][2] != outcome["per_element"][2]:
        raise AssertionError("bulk transport changed the sorted output")
    if outcome["bulk"][2] != sorted(_scrambled(i) for i in range(n)):
        raise AssertionError("sample sort produced an unsorted result")
    m_elem, m_bulk = outcome["per_element"][1], outcome["bulk"][1]
    ratio = m_elem / max(1, m_bulk)
    res.notes += f"; message ratio per_element/bulk = {ratio:.1f}x"
    if ratio < 10.0:
        raise AssertionError(
            f"sorting bulk path: only {ratio:.1f}x fewer messages on the "
            f"{n}-element sort (expected >= 10x)")
    return res
