"""pList / pVector / Euler-tour evaluation drivers (Ch. X, Figs. 39–44)."""

from __future__ import annotations

from ..containers.parray import PArray
from ..containers.plist import PList
from ..containers.pvector import PVector
from ..views.array_views import Array1DView
from ..views.list_views import StaticListView
from ..workloads.opmix import STANDARD_MIXES, generate_ops
from ..workloads.trees import binary_tree_edges
from .harness import ExperimentResult, run_spmd_timed

_DEF_PS = (1, 2, 4, 8)


def fig39_plist_methods(P=4, n_per_loc=500, machine="cray4") -> ExperimentResult:
    """pList methods: push_back/push_front (hot segment) vs push_anywhere
    (local) vs insert at a local handle (Fig. 39)."""
    res = ExperimentResult(
        "Fig.39 pList methods",
        ["method", "total_us", "per_op_us"],
        notes="push_anywhere avoids the hot last-segment bottleneck")

    def prog(ctx, which):
        pl = PList(ctx, 0)
        seed_gid = pl.push_anywhere(0)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        for i in range(n_per_loc):
            if which == "push_back":
                pl.push_back(i)
            elif which == "push_front":
                pl.push_front(i)
            elif which == "push_anywhere":
                pl.push_anywhere(i)
            else:  # insert before a local handle
                pl.insert_element_async(seed_gid, i)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    for which in ("push_back", "push_front", "push_anywhere", "insert"):
        results, _, _ = run_spmd_timed(prog, P, machine, (which,))
        res.add(which, max(results), max(results) / n_per_loc)
    return res


def fig40_parray_vs_plist(nlocs_list=_DEF_PS, n_per_loc=5000,
                          machine="cray4") -> ExperimentResult:
    """p_for_each / p_generate / p_accumulate on pArray vs pList (Fig. 40)."""
    from ..algorithms.generic import p_accumulate, p_for_each, p_generate

    res = ExperimentResult(
        "Fig.40 algorithms: pArray vs pList",
        ["P", "container", "algorithm", "time_us"],
        notes="pList pays pointer-chasing overhead; both scale flat")

    def prog(ctx, n, kind, algo):
        if kind == "parray":
            c = PArray(ctx, n, dtype=float)
            view = Array1DView(c)
        else:
            c = PList(ctx, n, value=0.0)
            view = StaticListView(c)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        if algo == "p_generate":
            p_generate(view, lambda g: 1.0, vector=lambda g: g * 0 + 1.0)
        elif algo == "p_for_each":
            p_for_each(view, lambda x: x + 1.0, vector=lambda a: a + 1.0)
        else:
            p_accumulate(view, 0.0)
        return ctx.stop_timer(t0)

    for P in nlocs_list:
        n = n_per_loc * P
        for kind in ("parray", "plist"):
            for algo in ("p_generate", "p_for_each", "p_accumulate"):
                results, _, _ = run_spmd_timed(prog, P, machine,
                                               (n, kind, algo))
                res.add(P, kind, algo, max(results))
    return res


def fig41_placement(nlocs_list=(2, 4, 8, 16), n_per_loc=5000) -> ExperimentResult:
    """P5-cluster: p_for_each weak scaling with processes packed onto nodes
    (curve a) vs spread across nodes (curve b) — Fig. 41.

    The placement changes which fence/collective hops cross the slow
    inter-node links of the P5 model."""
    from ..algorithms.generic import p_for_each

    res = ExperimentResult(
        "Fig.41 p_for_each placement on P5-cluster",
        ["P", "placement", "time_us"])

    def prog(ctx, n):
        pa = PArray(ctx, n, dtype=float)
        view = Array1DView(pa)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        # a touch of neighbour traffic so placement matters beyond the fence
        nb = (ctx.id + 1) % ctx.nlocs
        block = max(1, n // ctx.nlocs)
        for k in range(32):
            pa.get_element(min(n - 1, nb * block + k))
        p_for_each(view, lambda x: x + 1.0, vector=lambda a: a + 1.0)
        return ctx.stop_timer(t0)

    for placement in ("packed", "spread"):
        for P in nlocs_list:
            results, _, _ = run_spmd_timed(prog, P, "p5cluster",
                                           (n_per_loc * P,),
                                           placement=placement)
            res.add(P, placement, max(results))
    return res


def fig42_plist_vs_pvector(P=4, num_ops=2000, machine="cray4") -> ExperimentResult:
    """pList vs pVector on read/write/insert/delete mixes (Fig. 42; paper
    uses 10M ops, scaled).  pVector wins read/write-heavy mixes, pList wins
    insert/delete-heavy ones — the crossover is the point of the figure."""
    res = ExperimentResult(
        "Fig.42 pList vs pVector op mixes",
        ["mix", "container", "total_us", "per_op_us"])

    def prog_vec(ctx, mix_name):
        n0 = 512
        pv = PVector(ctx, n0 * ctx.nlocs, value=0)
        me = ctx.id if ctx.nlocs == pv._dist.partition.size() else 0
        ops = generate_ops(num_ops, STANDARD_MIXES[mix_name],
                           seed=1000 + ctx.id)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        for kind, r in ops:
            # operate within the local block (as the pList side does)
            sub = pv._dist.partition.get_sub_domain(me)
            lo, hi = sub.lo, sub.hi
            if hi <= lo:
                pv.push_anywhere(1)
                continue
            idx = min(lo + int(r * (hi - lo)), hi - 1)
            if kind == "read":
                pv.get_element(idx)
            elif kind == "write":
                pv.set_element(idx, 1)
            elif kind == "insert":
                pv.insert_element(idx, 1)
            else:
                pv.erase_element(idx)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    def prog_list(ctx, mix_name):
        n0 = 512
        pl = PList(ctx, n0 * ctx.nlocs, value=0)
        gids = pl.local_gids()
        ops = generate_ops(num_ops, STANDARD_MIXES[mix_name],
                           seed=1000 + ctx.id)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        for kind, r in ops:
            if not gids:
                gids.append(pl.push_anywhere(1))
                continue
            gid = gids[min(int(r * len(gids)), len(gids) - 1)]
            if kind == "read":
                pl.get_element(gid)
            elif kind == "write":
                pl.set_element(gid, 1)
            elif kind == "insert":
                gids.append(pl.insert_element(gid, 1))
            else:
                pl.erase_element(gid)
                gids.remove(gid)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    for mix_name in ("read_heavy", "balanced_rw", "mixed",
                     "insert_delete_heavy"):
        for kind, prog in (("pvector", prog_vec), ("plist", prog_list)):
            results, _, _ = run_spmd_timed(prog, P, machine, (mix_name,))
            res.add(mix_name, kind, max(results), max(results) / num_ops)
    return res


def fig43_euler_tour_weak(nlocs_list=(2, 4, 8), verts_per_loc=64,
                          machine="cray4") -> ExperimentResult:
    """Euler tour construction + list ranking, weak scaling (Fig. 43)."""
    from ..algorithms.euler_tour import EulerTour

    res = ExperimentResult(
        "Fig.43 Euler tour weak scaling",
        ["P", "vertices", "time_us"],
        notes="pointer jumping: O(log n) fenced rounds of split-phase reads")

    def prog(ctx, n):
        edges = binary_tree_edges(n)
        t0 = ctx.start_timer()
        tour = EulerTour(ctx, edges, n, root=0)
        tour.rank()
        return ctx.stop_timer(t0)

    for P in nlocs_list:
        n = verts_per_loc * P
        results, _, _ = run_spmd_timed(prog, P, machine, (n,))
        res.add(P, n, max(results))
    return res


def fig44_euler_applications(P=4, sizes=(63, 127), machine="cray4") -> ExperimentResult:
    """Euler-tour applications: rooting, levels, preorder, subtree sizes
    (Fig. 44; the paper's 500k/1M subtrees per processor, scaled)."""
    from ..algorithms.euler_tour import (
        EulerTour,
        preorder_numbering,
        subtree_sizes,
        tree_rooting,
        vertex_levels,
    )

    res = ExperimentResult(
        "Fig.44 Euler tour applications",
        ["vertices", "phase", "time_us"])

    def prog(ctx, n):
        edges = binary_tree_edges(n)
        out = {}
        t0 = ctx.start_timer()
        tour = EulerTour(ctx, edges, n, root=0)
        tour.rank()
        out["tour+rank"] = ctx.stop_timer(t0)
        t0 = ctx.start_timer()
        parent = tree_rooting(tour)
        out["rooting"] = ctx.stop_timer(t0)
        t0 = ctx.start_timer()
        vertex_levels(tour, parent)
        out["levels"] = ctx.stop_timer(t0)
        t0 = ctx.start_timer()
        preorder_numbering(tour, parent)
        out["preorder"] = ctx.stop_timer(t0)
        t0 = ctx.start_timer()
        subtree_sizes(tour, parent)
        out["subtree_sizes"] = ctx.stop_timer(t0)
        return out

    for n in sizes:
        results, _, _ = run_spmd_timed(prog, P, machine, (n,))
        for phase in ("tour+rank", "rooting", "levels", "preorder",
                      "subtree_sizes"):
            res.add(n, phase, max(r[phase] for r in results))
    return res
