"""Migration-subsystem study: load-driven rebalancing under skew, and the
per-location lookup cache.

Not a paper figure — it measures what the container-generic migration
subsystem (PR 4) unlocks, on the workload class pSTL-Bench (Laso et al.,
2024) motivates: skewed access.

* ``migration_skew_study`` — hot-key wordcount: a pHashMap over-decomposed
  into 4 hash buckets per location, with the key stream weighted so the
  buckets on location 0 receive ``SKEW``x (4x) the per-location average
  traffic.  A training window feeds the per-bContainer access counters,
  then the same stream is replayed measured — once on the static
  placement, once after a load-driven ``rebalance()``.  The driver asserts
  the rebalanced run is >= 2x faster in simulated time and that the
  reduced counts (and spot-check lookups) are byte-identical.
* ``migration_graph_study`` — dynamic graph growth: location 0 grows its
  share of the graph to ``SKEW``x the per-location average, then every
  location fires a uniform asynchronous ``apply_vertex`` sweep (the
  overloaded owner's execution queue is the bottleneck the rebalance
  dissolves).  Same >= 2x / identical-results assertions.
* ``lookup_cache_study`` — repeated-access microbenchmark: each location
  re-reads the same remote keys/elements; with the cache on, only the
  first touch pays ``charge_lookup``.  Asserts >= 5x fewer charged
  lookups than with the cache off.
"""

from __future__ import annotations

import random

from ..containers.associative import PHashMap
from ..containers.parray import PArray
from ..containers.pgraph import PGraph
from ..core.migration import set_lookup_cache
from ..workloads.corpus import owner_keyed_vocabulary
from .harness import ExperimentResult, run_spmd_report, run_spmd_timed

#: the hot location receives SKEW times the per-location average traffic
SKEW = 4
#: over-decomposition factor (hash buckets per location)
BUCKETS_PER_LOC = 4


def _hot_weight(nbc: int, n_hot: int, P: int) -> float:
    """Per-bucket weight for the hot buckets such that they jointly draw a
    ``SKEW / P`` share of the traffic (cold buckets weigh 1)."""
    if P <= SKEW:
        raise ValueError(
            f"the skew studies need P > {SKEW} locations (one location "
            f"cannot receive {SKEW}x the average of {P})")
    cold = nbc - n_hot
    return SKEW * cold / (n_hot * (P - SKEW))


def _skewed_stream(buckets, hot_bcids, P, n_ops, seed) -> list:
    """Deterministic key stream under the hot-location skew."""
    rng = random.Random(seed)
    w_hot = _hot_weight(len(buckets), len(hot_bcids), P)
    weights = [w_hot if b in hot_bcids else 1.0
               for b in range(len(buckets))]
    picks = rng.choices(range(len(buckets)), weights=weights, k=n_ops)
    return [buckets[b][i % len(buckets[b])] for i, b in enumerate(picks)]


def migration_skew_study(P: int = 8, ops_per_loc: int = 3000,
                         machine: str = "cray4") -> ExperimentResult:
    """Hot-key wordcount, static placement vs load-driven rebalance."""
    _hot_weight(BUCKETS_PER_LOC * P, BUCKETS_PER_LOC, P)  # validate P early
    nbc = BUCKETS_PER_LOC * P
    buckets = owner_keyed_vocabulary(nbc, 8)
    # the default cyclic mapper places bucket b on location b % P: the
    # buckets starting on location 0 are the hot set
    hot = {b for b in range(nbc) if b % P == 0}

    def prog(ctx, rebalanced):
        hm = PHashMap(ctx, num_bcontainers=nbc)
        stream = _skewed_stream(buckets, hot, ctx.nlocs, ops_per_loc,
                                seed=101 + 13 * ctx.id)
        # training window: builds the counts and the access counters the
        # rebalancer bin-packs on
        hm.accumulate_batch((w, 1) for w in stream)
        ctx.rmi_fence(hm.group)
        if rebalanced:
            hm.rebalance()
        # warm-up window (unmeasured, both modes): re-learns lookup-cache
        # routes after the rebalance epoch bump, so the measurement
        # compares steady states
        hm.accumulate_batch((w, 1) for w in stream)
        ctx.rmi_fence(hm.group)
        # measured phase: the same skewed stream again — the overloaded
        # owner's execution queue is the bottleneck the rebalance dissolves
        t0 = ctx.start_timer()
        hm.accumulate_batch((w, 1) for w in stream)
        ctx.rmi_fence(hm.group)
        t = ctx.stop_timer(t0)
        # barrier before the verification reads: their sync round trips
        # must not leak into locations that have not read their timer yet
        ctx.barrier(hm.group)
        spot = [hm.find_val(w)[0] for w in stream[:50]]
        return t, spot, hm.to_dict()

    res = ExperimentResult(
        "Migration: hot-key wordcount, static vs load-driven rebalance",
        ["mode", "N_ops", "time_us", "migrated_bcs", "redirects"],
        notes=f"location 0's buckets receive {SKEW}x the per-location "
              f"average traffic ({BUCKETS_PER_LOC} hash buckets/location); "
              "measured phase replays the training stream")

    outcome = {}
    for label, rebalanced in (("static", False), ("rebalanced", True)):
        results, _, stats = run_spmd_timed(prog, P, machine, (rebalanced,))
        t = max(r[0] for r in results)
        outcome[label] = (t, [r[1] for r in results], results[0][2])
        res.add(label, ops_per_loc * P, t, stats.bcontainers_migrated,
                stats.stale_redirects)

    if outcome["static"][1] != outcome["rebalanced"][1]:
        raise AssertionError("rebalancing changed the lookup results")
    if outcome["static"][2] != outcome["rebalanced"][2]:
        raise AssertionError("rebalancing changed the reduced word counts")
    ratio = outcome["static"][0] / max(1e-9, outcome["rebalanced"][0])
    res.notes += f"; time ratio static/rebalanced = {ratio:.1f}x"
    if ratio < 2:
        raise AssertionError(
            f"migration ablation: rebalanced only {ratio:.1f}x faster "
            "(expected >= 2x)")
    return res


def migration_graph_study(P: int = 8, verts_per_loc: int = 40,
                          sweeps: int = 6,
                          machine: str = "cray4") -> ExperimentResult:
    """Dynamic graph growth with an overloaded location, static vs
    load-driven rebalance; the measured phase is a uniform asynchronous
    ``apply_vertex`` sweep over the grown graph."""
    if P <= SKEW:
        raise ValueError(
            f"the skew studies need P > {SKEW} locations (one location "
            f"cannot hold {SKEW}x the average share of {P})")
    nbc = BUCKETS_PER_LOC * P
    visit_cost_us = 1.0  # modelled per-visit compute, charged at the owner

    def prog(ctx, rebalanced):
        g = PGraph(ctx, 0, dynamic=True, num_bcontainers=nbc,
                   default_property=0)

        def bump(vertex) -> None:
            # g.here is the *executing* location (the vertex's owner)
            g.here.charge(visit_cost_us)
            vertex.property = vertex.property + 1
        # growth: location 0 ends up holding SKEW x the per-location
        # average share of the vertices
        mine = (verts_per_loc * SKEW * (P - 1) // (P - SKEW)
                if ctx.id == 0 else verts_per_loc)
        vds = [g.add_vertex(vp=0) for _ in range(mine)]
        for k in range(1, len(vds)):
            g.add_edge_async(vds[k - 1], vds[k])
        ctx.rmi_fence(g.group)
        all_vds = sorted(
            v for chunk in ctx.allgather_rmi(vds, group=g.group)
            for v in chunk)
        if rebalanced:
            g.rebalance()
        my_slice = all_vds[ctx.id::ctx.nlocs]
        # warm-up sweep (unmeasured, both modes): re-learns lookup-cache
        # routes after the rebalance epoch bump
        for vd in my_slice:
            g.apply_vertex(vd, bump)
        ctx.rmi_fence(g.group)
        # measured phase: every location visits an interleaved slice of
        # the whole vertex set, `sweeps` times (asynchronous visitors ride
        # the combining buffers; execution lands on the owners)
        t0 = ctx.start_timer()
        for _ in range(sweeps):
            for vd in my_slice:
                g.apply_vertex(vd, bump)
        ctx.rmi_fence(g.group)
        t = ctx.stop_timer(t0)
        props = sorted(
            (vd, bc.vertex_property(vd))
            for bc in g.local_bcontainers() for vd in bc.vertices())
        gathered = ctx.allgather_rmi(props, group=g.group)
        merged = sorted(p for chunk in gathered for p in chunk)
        return t, merged, g.get_num_edges()

    res = ExperimentResult(
        "Migration: dynamic graph growth, static vs load-driven rebalance",
        ["mode", "N_vertices", "time_us", "migrated_bcs", "redirects"],
        notes=f"location 0 grows to {SKEW}x the per-location average; "
              f"measured phase is {sweeps} uniform async apply_vertex "
              "sweeps")

    outcome = {}
    n_total = None
    for label, rebalanced in (("static", False), ("rebalanced", True)):
        results, _, stats = run_spmd_timed(prog, P, machine, (rebalanced,))
        t = max(r[0] for r in results)
        outcome[label] = (t, results[0][1], results[0][2])
        n_total = len(results[0][1])
        res.add(label, n_total, t, stats.bcontainers_migrated,
                stats.stale_redirects)

    if outcome["static"][1] != outcome["rebalanced"][1]:
        raise AssertionError("rebalancing changed the visited properties")
    if outcome["static"][2] != outcome["rebalanced"][2]:
        raise AssertionError("rebalancing changed the edge count")
    ratio = outcome["static"][0] / max(1e-9, outcome["rebalanced"][0])
    res.notes += f"; time ratio static/rebalanced = {ratio:.1f}x"
    if ratio < 2:
        raise AssertionError(
            f"graph migration ablation: rebalanced only {ratio:.1f}x "
            "faster (expected >= 2x)")
    return res


def migration_backend_study(P: int = 8, ops_per_loc: int = 600,
                            machine: str = "cray4") -> ExperimentResult:
    """The hot-key wordcount under the multiprocessing backend: measured
    wall seconds next to the virtual clocks, with the simulated run as
    the correctness oracle.

    The >=2x simulated-time win stays asserted in
    :func:`migration_skew_study`; real wall clocks on an arbitrary host
    (often 1 CPU in CI) are *recorded*, not asserted — process timeshare
    dilutes the queueing effect the virtual model isolates."""
    _hot_weight(BUCKETS_PER_LOC * P, BUCKETS_PER_LOC, P)  # validate P early
    nbc = BUCKETS_PER_LOC * P
    buckets = owner_keyed_vocabulary(nbc, 8)
    hot = {b for b in range(nbc) if b % P == 0}

    def prog(ctx, rebalanced):
        hm = PHashMap(ctx, num_bcontainers=nbc)
        stream = _skewed_stream(buckets, hot, ctx.nlocs, ops_per_loc,
                                seed=101 + 13 * ctx.id)
        hm.accumulate_batch((w, 1) for w in stream)
        ctx.rmi_fence(hm.group)
        if rebalanced:
            hm.rebalance()
        t0 = ctx.start_timer()
        hm.accumulate_batch((w, 1) for w in stream)
        ctx.rmi_fence(hm.group)
        t = ctx.stop_timer(t0)
        ctx.barrier(hm.group)
        spot = [hm.find_val(w)[0] for w in stream[:50]]
        return t, spot, hm.to_dict()

    res = ExperimentResult(
        "Migration under real processes: hot-key wordcount wall-clock",
        ["mode", "N_ops", "sim_time_us", "mp_wall_s", "migrated_bcs"],
        notes=f"{machine}, P={P}; mp rows are measured wall seconds, "
              "sim rows the virtual oracle; counts byte-identical across "
              "backends and placements by assertion")

    outcome = {}
    for label, rebalanced in (("static", False), ("rebalanced", True)):
        sim = run_spmd_report(prog, P, machine, (rebalanced,))
        mp = run_spmd_report(prog, P, machine, (rebalanced,),
                             backend="multiprocessing", timeout=300.0)
        sim_out = [(r[1], r[2]) for r in sim.results]
        mp_out = [(r[1], r[2]) for r in mp.results]
        if sim_out != mp_out:
            raise AssertionError(
                f"skew wordcount ({label}): multiprocessing backend "
                "diverged from the simulated oracle")
        outcome[label] = sim_out[0]
        res.add(label, ops_per_loc * P,
                max(r[0] for r in sim.results),
                round(mp.wall_seconds, 4),
                mp.stats.total.bcontainers_migrated)
    if outcome["static"] != outcome["rebalanced"]:
        raise AssertionError(
            "rebalancing changed results under the backend study")
    return res


def lookup_cache_study(P: int = 4, keys_per_loc: int = 48,
                       repeats: int = 16,
                       machine: str = "cray4") -> ExperimentResult:
    """Repeated-access microbenchmark: charged lookups with the lookup
    cache on vs off (same programs, same results)."""
    buckets = owner_keyed_vocabulary(P, keys_per_loc)

    def prog(ctx):
        hm = PHashMap(ctx)
        pa = PArray(ctx, 64 * ctx.nlocs, dtype=int)
        my_keys = buckets[(ctx.id + 1) % ctx.nlocs]  # 100% remote
        hm.insert_range((w, len(w)) for w in my_keys)
        ctx.rmi_fence()
        lk0 = ctx.stats.lookups_charged
        t0 = ctx.start_timer()
        acc = 0
        for _ in range(repeats):
            for w in my_keys:
                acc += hm.find_val(w)[0]
            for gid in range(0, 64 * ctx.nlocs, 16):
                acc += int(pa.get_element(gid))
        ctx.rmi_fence()
        return (ctx.stop_timer(t0), ctx.stats.lookups_charged - lk0, acc)

    res = ExperimentResult(
        "Lookup cache: repeated remote accesses, cache on vs off",
        ["mode", "accesses", "time_us", "charged_lookups", "cache_hits"],
        notes="each location re-reads the same remote keys/elements "
              f"{repeats}x; hits skip charge_lookup entirely")

    outcome = {}
    for label, on in (("cache", True), ("no_cache", False)):
        prev = set_lookup_cache(on)
        try:
            results, _, stats = run_spmd_timed(prog, P, machine)
        finally:
            set_lookup_cache(prev)
        charged = sum(r[1] for r in results)
        outcome[label] = (charged, [r[2] for r in results])
        accesses = repeats * (keys_per_loc + 4 * P) * P
        res.add(label, accesses, max(r[0] for r in results), charged,
                stats.lookup_cache_hits)

    if outcome["cache"][1] != outcome["no_cache"][1]:
        raise AssertionError("the lookup cache changed results")
    ratio = outcome["no_cache"][0] / max(1, outcome["cache"][0])
    res.notes += f"; charged-lookup ratio off/on = {ratio:.1f}x"
    if ratio < 5:
        raise AssertionError(
            f"lookup cache: only {ratio:.1f}x fewer charged lookups "
            "(expected >= 5x)")
    return res
