"""Memory-consistency demonstrations (Ch. VII, Figs. 19–23).

Regenerates, as a table, the observable behaviours the paper uses to place
the default pContainer MCM between weak and sequential consistency:

* same-element program order holds (async write then sync read sees it);
* Dekker's algorithm can observe both flags zero (not SC, Fig. 22b);
* different locations can see two writes in different orders (not PC,
  Fig. 23);
* with the SEQUENTIAL traits every method is synchronous and Dekker's
  mutual exclusion holds (Claim 3).
"""

from __future__ import annotations

from ..containers.parray import PArray
from ..core.traits import ConsistencyMode, Traits
from .harness import ExperimentResult, run_spmd_report, run_spmd_timed


def _dekker(ctx, traits):
    """Two locations raise their flags then read the other's (Fig. 22b).

    Each location's flag is stored on the *other* location (flag index
    1 - id), so the flag-raising write is a buffered remote async and the
    read of the opponent's flag is local — the racy layout the paper's
    argument needs."""
    flags = PArray(ctx, 2, value=0, dtype=int, traits=traits)
    other = None
    if ctx.id == 0:
        flags.set_element(1, 1)          # my flag, owned by location 1
        other = flags.get_element(0)     # opponent's flag, local to me
    elif ctx.id == 1:
        flags.set_element(0, 1)
        other = flags.get_element(1)
    ctx.rmi_fence()
    return other


def _program_order(ctx):
    pa = PArray(ctx, ctx.nlocs, value=0, dtype=int)
    pa.set_element(ctx.id, 41 + ctx.id)   # async write to own element
    seen = pa.get_element(ctx.id)         # sync read of the same element
    ctx.rmi_fence()
    return seen == 41 + ctx.id


def _processor_consistency(ctx):
    """Fig. 23: L0 writes x then y; observers may see y's write without
    x's (writes to different elements complete independently)."""
    pa = PArray(ctx, 2, value=0, dtype=int)
    if ctx.id == 0:
        pa.set_element(1, 7)   # element owned remotely: stays buffered
        pa.set_element(0, 7)   # own element: completes immediately
    obs = (pa.get_element(0), pa.get_element(1)) if ctx.id == 1 else None
    ctx.rmi_fence()
    return obs


def mcm_demonstrations() -> ExperimentResult:
    res = ExperimentResult(
        "Ch.VII MCM behaviours",
        ["behaviour", "observed", "paper_prediction"])

    results, _, _ = run_spmd_timed(_program_order, 2, "cray4")
    res.add("same-element program order", all(results), "holds (cond. 4)")

    results, _, _ = run_spmd_timed(lambda ctx: _dekker(ctx, None), 2, "cray4")
    both_zero = results[0] == 0 and results[1] == 0
    res.add("Dekker: both flags read 0 (default MCM)", both_zero,
            "possible -> not sequentially consistent")

    seq = Traits(consistency=ConsistencyMode.SEQUENTIAL)
    results, _, _ = run_spmd_timed(lambda ctx: _dekker(ctx, seq), 2, "cray4")
    both_zero_seq = results[0] == 0 and results[1] == 0
    res.add("Dekker: both flags read 0 (SEQUENTIAL traits)", both_zero_seq,
            "impossible (Claim 3: sync-only is SC)")

    results, _, _ = run_spmd_timed(_processor_consistency, 2, "cray4")
    obs = results[1]
    res.add("L1 sees (x=7 before y=7) inverted", obs == (7, 0),
            "possible -> not processor consistent")
    return res


def _dekker_seq(ctx):
    return _dekker(ctx, Traits(consistency=ConsistencyMode.SEQUENTIAL))


def consistency_backend_study(machine: str = "cray4") -> ExperimentResult:
    """Ch. VII behaviours on real processes: each demonstration runs under
    the simulator and the multiprocessing backend with measured wall
    seconds.  The *deterministic* contracts are asserted on both backends
    (same-element program order always holds; under SEQUENTIAL traits
    Dekker's mutual exclusion means both flags can never read 0); the
    *racy* behaviours (default-MCM Dekker, write-order inversion) are
    merely recorded — on real processes their outcome legitimately varies
    run to run, which is exactly the paper's point."""
    res = ExperimentResult(
        "Ch.VII MCM behaviours on real processes",
        ["behaviour", "backend", "observed", "wall_s", "contract"],
        notes=f"{machine}, P=2; deterministic rows asserted on both "
              "backends, racy rows recorded only")
    cases = (
        ("same-element program order", _program_order,
         lambda results: all(results), "asserted: holds"),
        ("Dekker both-zero (SEQUENTIAL traits)", _dekker_seq,
         lambda results: results[0] == 0 and results[1] == 0,
         "asserted: impossible"),
        ("Dekker both-zero (default MCM)",
         lambda ctx: _dekker(ctx, None),
         lambda results: results[0] == 0 and results[1] == 0,
         "recorded (racy)"),
        ("write-order inversion (x,y)", _processor_consistency,
         lambda results: results[1], "recorded (racy)"),
    )
    for label, prog, observe, contract in cases:
        for backend, opts in (("sim", {}),
                              ("multiprocessing",
                               {"backend": "multiprocessing",
                                "timeout": 120.0})):
            rep = run_spmd_report(prog, 2, machine, **opts)
            obs = observe(rep.results)
            if contract == "asserted: holds" and not obs:
                raise AssertionError(
                    f"{label} ({backend}): program order violated")
            if contract == "asserted: impossible" and obs:
                raise AssertionError(
                    f"{label} ({backend}): sequential-traits Dekker "
                    "observed both flags zero (Claim 3 violated)")
            res.add(label, backend, obs,
                    round(rep.wall_seconds, 4) if backend != "sim" else "",
                    contract)
    return res
