"""Ablation studies for the design decisions called out in DESIGN.md §4.

These are not paper figures; they isolate the mechanisms behind the paper's
results: RMI aggregation, view/distribution alignment, the relaxed default
MCM, and the lazy replicated size.
"""

from __future__ import annotations

from ..containers.parray import PArray
from ..containers.plist import PList
from ..core.traits import ConsistencyMode, Traits
from ..runtime.machine import get_machine
from ..views.array_views import Array1DView, BalancedView
from .harness import ExperimentResult, run_spmd_timed


def ablation_aggregation(P=4, n_per_loc=500, machine="cray4",
                         levels=(1, 8, 64)) -> ExperimentResult:
    """Async-RMI cost vs aggregation factor: aggregation=1 charges the full
    physical-message overhead per RMI, collapsing the async advantage."""
    res = ExperimentResult(
        "Ablation: RMI aggregation",
        ["aggregation", "total_us", "physical_messages"])
    base = get_machine(machine)

    def prog(ctx):
        n = 1024 * ctx.nlocs
        pa = PArray(ctx, n, dtype=int)
        block = max(1, n // ctx.nlocs)
        tgt = ((ctx.id + 1) % ctx.nlocs) * block
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        for i in range(n_per_loc):
            pa.set_element(tgt + (i % block), i)  # all remote
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    for agg in levels:
        m = base.with_(aggregation=agg)
        results, _, stats = run_spmd_timed(prog, P, m)
        res.add(agg, max(results), stats.physical_messages)
    return res


def ablation_view_alignment(P=4, n_per_loc=2000, machine="cray4") -> ExperimentResult:
    """Native vs balanced views: aligned native chunks run vectorised local
    sweeps; a balanced view over a block-cyclic distribution pays remote
    element traffic (the locality story of Ch. III.A)."""
    from ..algorithms.generic import p_accumulate
    from ..core.partitions import BlockCyclicPartition

    res = ExperimentResult(
        "Ablation: view/distribution alignment",
        ["case", "time_us"],
        notes="native < balanced-over-cyclic")

    def prog(ctx, cyclic, balanced):
        n = n_per_loc * ctx.nlocs
        part = BlockCyclicPartition(ctx.nlocs, 1) if cyclic else None
        pa = PArray(ctx, n, dtype=float, partition=part)
        view = Array1DView(pa)
        if balanced:
            view = BalancedView(view)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        p_accumulate(view, 0.0)
        return ctx.stop_timer(t0)

    for label, cyclic, balanced in (
            ("native_aligned", False, False),
            ("balanced_over_blocked", False, True),
            ("balanced_over_cyclic", True, True)):
        results, _, _ = run_spmd_timed(prog, P, machine, (cyclic, balanced))
        res.add(label, max(results))
    return res


def ablation_consistency_mode(P=4, n_per_loc=400, machine="cray4") -> ExperimentResult:
    """DEFAULT (relaxed, async writes) vs SEQUENTIAL (all-sync) traits:
    the price of sequential consistency (Ch. VII.E.3)."""
    res = ExperimentResult(
        "Ablation: consistency mode",
        ["mode", "total_us", "per_op_us"])

    def prog(ctx, mode):
        traits = Traits(consistency=mode)
        n = 1024 * ctx.nlocs
        pa = PArray(ctx, n, dtype=int, traits=traits)
        block = max(1, n // ctx.nlocs)
        tgt = ((ctx.id + 1) % ctx.nlocs) * block
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        for i in range(n_per_loc):
            pa.set_element(tgt + (i % block), i)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    for mode in (ConsistencyMode.DEFAULT, ConsistencyMode.SEQUENTIAL):
        results, _, _ = run_spmd_timed(prog, P, machine, (mode,))
        res.add(mode.value, max(results), max(results) / n_per_loc)
    return res


def ablation_lazy_size(P=4, reps=200, machine="cray4") -> ExperimentResult:
    """Lazy replicated size() vs collective update_size() per query."""
    res = ExperimentResult(
        "Ablation: lazy vs synchronised size()",
        ["mode", "total_us"])

    def prog(ctx, lazy):
        pl = PList(ctx, 64 * ctx.nlocs)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        for _ in range(reps):
            if lazy:
                pl.size()
                ctx.charge(ctx.machine.t_access)
            else:
                pl.update_size()
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    for label, lazy in (("lazy_replicated", True), ("collective_sync", False)):
        results, _, _ = run_spmd_timed(prog, P, machine, (lazy,))
        res.add(label, max(results))
    return res
