"""Composition evaluation (Ch. XIII, Fig. 62): row minima of a matrix held
as pMatrix, pArray<pArray> and pList<pArray> — virtual-clock comparison
(``fig62_row_min``) plus the same three representations re-run on real OS
processes with measured wall seconds (``composition_backend_study``)."""

from __future__ import annotations

from ..containers.composition import (
    _local_nested_refs,
    compose_parray_of_parrays,
    compose_plist_of_parrays,
)
from ..containers.pmatrix import PMatrix
from ..core.partitions import Matrix2DPartition
from .harness import ExperimentResult, run_spmd_report, run_spmd_timed


def fig62_row_min(P=4, rows=64, cols=32, machine="cray4") -> ExperimentResult:
    """Minimum of each row under the three representations (Fig. 62).

    pMatrix rows are contiguous NumPy slices (fastest); the composed
    containers pay nested-container indirection, and pList<pArray> adds
    segment traversal on top — the paper's ordering."""
    from ..algorithms.generic import p_accumulate
    from ..views.array_views import Array1DView
    from ..views.matrix_views import MatrixRowsView

    res = ExperimentResult(
        "Fig.62 row minima: pMatrix vs pArray<pArray> vs pList<pArray>",
        ["representation", "time_us"],
        notes="expected ordering: pmatrix < parray<parray> < plist<parray>")

    def prog_matrix(ctx):
        pm = PMatrix(ctx, rows, cols, value=1.0,
                     partition=Matrix2DPartition(ctx.nlocs, 1))
        ctx.rmi_fence()
        rv = MatrixRowsView(pm)
        t0 = ctx.start_timer()
        minima = []
        for chunk in rv.local_chunks():
            if hasattr(chunk, "row_reduce"):
                import numpy as np

                minima.extend(chunk.row_reduce(np.min))
            else:
                for r in chunk.gids():
                    minima.append((r, min(chunk.read(r))))
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    def prog_pa_pa(ctx):
        outer = compose_parray_of_parrays(ctx, [cols] * rows, value=1.0)
        t0 = ctx.start_timer()
        rt = outer.runtime
        for bc in outer.local_bcontainers():
            for i in bc.domain:
                ctx.charge_lookup()          # nested-handle resolution
                inner = bc.get(i).resolve(rt)
                view = Array1DView(inner)
                p_accumulate(view, float("inf"), min)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    def prog_pl_pa(ctx):
        outer = compose_plist_of_parrays(ctx, [cols] * rows, value=1.0)
        t0 = ctx.start_timer()
        rt = outer.runtime
        seg = outer.local_segment()
        m = ctx.machine
        for seq in seg.seqs():
            # segment-node pointer chase + nested-handle resolution
            ctx.charge(m.t_access * 1.5 + m.t_lookup)
            inner = seg.get(seq).resolve(rt)
            view = Array1DView(inner)
            p_accumulate(view, float("inf"), min)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    for label, prog in (("pmatrix", prog_matrix),
                        ("parray<parray>", prog_pa_pa),
                        ("plist<parray>", prog_pl_pa)):
        results, _, _ = run_spmd_timed(prog, P, machine)
        res.add(label, max(results))
    return res


def _row_min_value(r: int, c: int, cols: int) -> int:
    return (r * cols + c) * 2654435761 % 100003


def _row_min_progs(rows: int, cols: int):
    """Value-bearing variants of the Fig. 62 programs: each fills the
    matrix with a deterministic scramble, computes per-row minima and
    returns the full ``[min(row 0), min(row 1), ...]`` list (gathered on
    every location) so sim and mp runs can be compared byte-for-byte."""
    from ..views.matrix_views import MatrixRowsView

    def gather_minima(ctx, local, group):
        merged: dict = {}
        for d in ctx.allgather_rmi(local, group=group):
            merged.update(d)
        return [merged[r] for r in range(rows)]

    def prog_matrix(ctx):
        pm = PMatrix(ctx, rows, cols, value=0,
                     partition=Matrix2DPartition(ctx.nlocs, 1))
        rv = MatrixRowsView(pm)
        for chunk in rv.local_chunks():
            for r in chunk.gids():
                chunk.write(r, [_row_min_value(r, c, cols)
                                for c in range(cols)])
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        local = {}
        for chunk in rv.local_chunks():
            for r in chunk.gids():
                local[r] = min(chunk.read(r))
        minima = gather_minima(ctx, local, pm.group)
        return ctx.stop_timer(t0), minima

    def composed_prog(compose):
        def prog(ctx):
            from ..core.partitions import balanced_sizes

            outer = compose(ctx, [cols] * rows, value=0, dtype=int)
            rt = outer.runtime
            # pList gids are opaque sequence handles; recover the row
            # index from this location's balanced slice of the push order
            sizes = balanced_sizes(rows, ctx.nlocs)
            lo = sum(sizes[:ctx.id])

            def row_of(k, gid):
                return gid if isinstance(gid, int) else lo + k

            refs = _local_nested_refs(outer)
            for k, (gid, ref) in enumerate(refs):
                r = row_of(k, gid)
                ref.resolve(rt).set_range(
                    0, [_row_min_value(r, c, cols) for c in range(cols)])
            ctx.rmi_fence(outer.group)
            t0 = ctx.start_timer()
            local = {}
            for k, (gid, ref) in enumerate(refs):
                ctx.charge_lookup()          # nested-handle resolution
                inner = ref.resolve(rt)
                local[row_of(k, gid)] = int(min(inner.get_range(0, cols)))
            minima = gather_minima(ctx, local, outer.group)
            return ctx.stop_timer(t0), minima
        return prog

    return (("pmatrix", prog_matrix),
            ("parray<parray>", composed_prog(compose_parray_of_parrays)),
            ("plist<parray>", composed_prog(compose_plist_of_parrays)))


def composition_backend_study(P: int = 4, rows: int = 32, cols: int = 16,
                              machine: str = "cray4") -> ExperimentResult:
    """Fig. 62 on real processes: each representation runs under the
    simulator (virtual clock, correctness oracle) and the multiprocessing
    backend (measured wall seconds); the per-row minima must be
    byte-identical across backends and representations."""
    res = ExperimentResult(
        "Fig.62 row minima on real processes",
        ["representation", "backend", "time_us", "wall_s"],
        notes=f"{machine}, P={P}, {rows}x{cols}; minima byte-identical "
              "across backends and representations")
    expected = [min(_row_min_value(r, c, cols) for c in range(cols))
                for r in range(rows)]
    for label, prog in _row_min_progs(rows, cols):
        sim = run_spmd_report(prog, P, machine)
        mp = run_spmd_report(prog, P, machine, backend="multiprocessing",
                             timeout=300.0)
        for backend, rep in (("sim", sim), ("multiprocessing", mp)):
            for r in rep.results:
                if r[1] != expected:
                    raise AssertionError(
                        f"{label} ({backend}): row minima diverged from "
                        "the sequential oracle")
        res.add(label, "sim", max(r[0] for r in sim.results), "")
        res.add(label, "multiprocessing", "", round(mp.wall_seconds, 4))
    return res
