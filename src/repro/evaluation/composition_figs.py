"""Composition evaluation (Ch. XIII, Fig. 62): row minima of a matrix held
as pMatrix, pArray<pArray> and pList<pArray>."""

from __future__ import annotations

from ..containers.composition import (
    compose_parray_of_parrays,
    compose_plist_of_parrays,
)
from ..containers.pmatrix import PMatrix
from ..core.partitions import Matrix2DPartition
from .harness import ExperimentResult, run_spmd_timed


def fig62_row_min(P=4, rows=64, cols=32, machine="cray4") -> ExperimentResult:
    """Minimum of each row under the three representations (Fig. 62).

    pMatrix rows are contiguous NumPy slices (fastest); the composed
    containers pay nested-container indirection, and pList<pArray> adds
    segment traversal on top — the paper's ordering."""
    from ..algorithms.generic import p_accumulate
    from ..views.array_views import Array1DView
    from ..views.matrix_views import MatrixRowsView

    res = ExperimentResult(
        "Fig.62 row minima: pMatrix vs pArray<pArray> vs pList<pArray>",
        ["representation", "time_us"],
        notes="expected ordering: pmatrix < parray<parray> < plist<parray>")

    def prog_matrix(ctx):
        pm = PMatrix(ctx, rows, cols, value=1.0,
                     partition=Matrix2DPartition(ctx.nlocs, 1))
        ctx.rmi_fence()
        rv = MatrixRowsView(pm)
        t0 = ctx.start_timer()
        minima = []
        for chunk in rv.local_chunks():
            if hasattr(chunk, "row_reduce"):
                import numpy as np

                minima.extend(chunk.row_reduce(np.min))
            else:
                for r in chunk.gids():
                    minima.append((r, min(chunk.read(r))))
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    def prog_pa_pa(ctx):
        outer = compose_parray_of_parrays(ctx, [cols] * rows, value=1.0)
        t0 = ctx.start_timer()
        rt = outer.runtime
        for bc in outer.local_bcontainers():
            for i in bc.domain:
                ctx.charge_lookup()          # nested-handle resolution
                inner = bc.get(i).resolve(rt)
                view = Array1DView(inner)
                p_accumulate(view, float("inf"), min)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    def prog_pl_pa(ctx):
        outer = compose_plist_of_parrays(ctx, [cols] * rows, value=1.0)
        t0 = ctx.start_timer()
        rt = outer.runtime
        seg = outer.local_segment()
        m = ctx.machine
        for seq in seg.seqs():
            # segment-node pointer chase + nested-handle resolution
            ctx.charge(m.t_access * 1.5 + m.t_lookup)
            inner = seg.get(seq).resolve(rt)
            view = Array1DView(inner)
            p_accumulate(view, float("inf"), min)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    for label, prog in (("pmatrix", prog_matrix),
                        ("parray<parray>", prog_pa_pa),
                        ("plist<parray>", prog_pl_pa)):
        results, _, _ = run_spmd_timed(prog, P, machine)
        res.add(label, max(results))
    return res
