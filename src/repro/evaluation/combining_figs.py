"""Combining-buffer study: batched dynamic-container inserts vs scalar RMIs.

Not a paper figure — it isolates the second Ch. III.B communication-reduction
technique (*combining*) the way ``bulk_figs`` isolates aggregation-to-slabs:
a wordcount-style ``accumulate`` stream onto a pHashMap whose keys are 100%
remote (each location streams only keys owned by its neighbour), combining
on vs off.  BCL-style buffered insertion predicts an order-of-magnitude drop
in physical messages; the driver measures it, and asserts that the reduced
``to_dict()`` is bit-identical in both modes (batched == scalar semantics).

A second series repeats the ablation for ``insert_range`` (pure inserts)
and ``add_edges_batch`` on a pGraph to show the same win on the other
dynamic containers.
"""

from __future__ import annotations

from ..containers.associative import PHashMap
from ..containers.pgraph import PGraph
from ..runtime.comm import set_combining
from ..workloads.corpus import owner_keyed_vocabulary, zipf_stream
from .harness import ExperimentResult, run_spmd_timed


def _modes():
    return (("combining", True), ("scalar", False))


def combining_study(P: int = 8, ops_per_loc: int = 16000,
                    vocab_per_owner: int = 400,
                    machine: str = "cray4") -> ExperimentResult:
    """Wordcount-style ``accumulate_batch`` with 100%-remote keys.

    ``op_msgs`` counts only the physical messages of the accumulate phase
    (to_dict's gather slabs are excluded); the driver raises if combining
    does not cut them by at least 10x or if the two modes' results differ.
    """
    buckets = owner_keyed_vocabulary(P, vocab_per_owner)

    def prog(ctx):
        hm = PHashMap(ctx)
        # 100% remote: stream only keys owned by the next location
        words = buckets[(ctx.id + 1) % ctx.nlocs]
        stream = zipf_stream(words, ops_per_loc, seed=11 + 13 * ctx.id)
        ctx.rmi_fence()
        msgs0 = ctx.stats.physical_messages
        t0 = ctx.start_timer()
        hm.accumulate_batch((w, 1) for w in stream)
        ctx.rmi_fence(hm.group)
        t = ctx.stop_timer(t0)
        op_msgs = ctx.stats.physical_messages - msgs0
        return t, op_msgs, hm.to_dict()

    res = ExperimentResult(
        "Combining buffers: wordcount accumulate, 100% remote keys",
        ["mode", "N_ops", "time_us", "op_msgs", "combined_ops",
         "flushes", "MB_sent"],
        notes="on: op records buffered per destination, one bulk message "
              "per window; off: one async RMI per op (scalar aggregation "
              "only)")

    outcome = {}
    for label, on in _modes():
        prev = set_combining(on)
        try:
            results, _, stats = run_spmd_timed(prog, P, machine)
        finally:
            set_combining(prev)
        op_msgs = sum(r[1] for r in results)
        outcome[label] = (op_msgs, results[0][2])
        res.add(label, ops_per_loc * P, max(r[0] for r in results), op_msgs,
                stats.combined_ops, stats.combining_flushes,
                stats.bytes_sent / 1e6)

    if outcome["combining"][1] != outcome["scalar"][1]:
        raise AssertionError("combining changed the reduced word counts")
    ratio = outcome["scalar"][0] / max(1, outcome["combining"][0])
    res.notes += f"; message ratio scalar/combining = {ratio:.1f}x"
    if ratio < 10:
        raise AssertionError(
            f"combining ablation: only {ratio:.1f}x fewer physical messages "
            "(expected >= 10x)")
    return res


def combining_containers_study(P: int = 4, n_per_loc: int = 3000,
                               machine: str = "cray4") -> ExperimentResult:
    """The same on/off ablation for pHashMap ``insert_range`` and pGraph
    ``add_edges_batch`` (smaller scale; equivalence asserted per series)."""
    buckets = owner_keyed_vocabulary(P, max(64, n_per_loc // 8))

    def prog_insert(ctx):
        hm = PHashMap(ctx)
        words = buckets[(ctx.id + 1) % ctx.nlocs]
        stream = zipf_stream(words, n_per_loc, seed=3 + 7 * ctx.id)
        ctx.rmi_fence()
        msgs0 = ctx.stats.physical_messages
        t0 = ctx.start_timer()
        hm.insert_range((w, ctx.id) for w in stream)
        ctx.rmi_fence(hm.group)
        t = ctx.stop_timer(t0)
        return t, ctx.stats.physical_messages - msgs0, sorted(hm.to_dict())

    def prog_edges(ctx):
        n = n_per_loc * ctx.nlocs
        pg = PGraph(ctx, num_vertices=n)
        # ring + skip edges whose sources live on the next location
        lo = ((ctx.id + 1) % ctx.nlocs) * n_per_loc
        edges = [(lo + i, (lo + i * 17 + 1) % n) for i in range(n_per_loc)]
        ctx.rmi_fence()
        msgs0 = ctx.stats.physical_messages
        t0 = ctx.start_timer()
        pg.add_edges_batch(edges)
        ctx.rmi_fence(pg.group)
        t = ctx.stop_timer(t0)
        return t, ctx.stats.physical_messages - msgs0, pg.get_num_edges()

    res = ExperimentResult(
        "Combining buffers across dynamic containers",
        ["workload", "mode", "N_ops", "time_us", "op_msgs"],
        notes="insert_range on pHashMap; add_edges_batch on pGraph")

    for name, prog in (("phashmap_insert", prog_insert),
                       ("pgraph_edges", prog_edges)):
        outcome = {}
        for label, on in _modes():
            prev = set_combining(on)
            try:
                results, _, _ = run_spmd_timed(prog, P, machine)
            finally:
                set_combining(prev)
            outcome[label] = results[0][2]
            res.add(name, label, n_per_loc * P, max(r[0] for r in results),
                    sum(r[1] for r in results))
        if outcome["combining"] != outcome["scalar"]:
            raise AssertionError(f"{name}: combining changed the result")
    return res
