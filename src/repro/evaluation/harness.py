"""Evaluation harness (Ch. VIII): the method-evaluation kernel of Fig. 24
and utilities shared by every figure driver.

Every driver returns an :class:`ExperimentResult` — a titled table whose
rows are the series the corresponding paper figure plots, measured in
deterministic virtual microseconds from the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime import spmd_run_detailed


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    name: str
    columns: list
    rows: list = field(default_factory=list)
    notes: str = ""

    def add(self, *row) -> None:
        self.rows.append(tuple(row))

    def column(self, name: str) -> list:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]

    def format_table(self) -> str:
        def fmt(v):
            if isinstance(v, float):
                return f"{v:.2f}"
            return str(v)

        cells = [[fmt(c) for c in self.columns]] + [
            [fmt(v) for v in row] for row in self.rows]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [f"== {self.name} =="]
        for j, row in enumerate(cells):
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready form (the ``--out`` stats artifact of the CLI)."""
        return {"name": self.name, "columns": list(self.columns),
                "rows": [list(r) for r in self.rows], "notes": self.notes}

    def show(self) -> None:
        print(self.format_table())


def run_spmd_report(fn, nlocs: int, machine="cray4", args: tuple = (),
                    placement: str = "packed", backend: str | None = None,
                    **backend_opts):
    """Run an SPMD program and return the full :class:`SpmdReport`
    (results, virtual clocks, stats, wall-clock seconds, backend name).

    ``backend=None`` uses the deterministic simulator; figure drivers pass
    ``backend="multiprocessing"`` to run the same program on real OS
    processes and report wall-clock time next to the virtual clocks."""
    return spmd_run_detailed(fn, nlocs=nlocs, machine=machine, args=args,
                             placement=placement, backend=backend,
                             **backend_opts)


def run_spmd_timed(fn, nlocs: int, machine="cray4", args: tuple = (),
                   placement: str = "packed", backend: str | None = None,
                   **backend_opts):
    """Run an SPMD program and return (per-location results, max virtual
    clock in us, aggregate stats)."""
    rep = run_spmd_report(fn, nlocs, machine, args, placement,
                          backend=backend, **backend_opts)
    return rep.results, rep.max_clock, rep.stats.total


def method_kernel(container_factory, op, n_per_loc: int):
    """Fig. 24: build the container, then concurrently perform ``n_per_loc``
    method invocations per location inside a timed region closed by a fence.
    ``op(container, ctx, i)`` performs invocation *i*.  Returns the SPMD
    function; run it with :func:`run_spmd_timed`."""

    def prog(ctx):
        container = container_factory(ctx)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        for i in range(n_per_loc):
            op(container, ctx, i)
        ctx.rmi_fence()
        return ctx.stop_timer(t0)

    return prog


def scaling_columns(p_list, times, weak: bool = False):
    """Derive ``(speedups, efficiencies)`` from a scaling series.

    ``times[i]`` is the measured time at ``p_list[i]`` processors; the
    smallest entry (normally P=1) is the base.  Both columns are normalised
    so the ideal value of efficiency is 1.0 and of speedup is ``P``:

    * strong scaling (fixed total N): ``speedup = T_b/T_P * P_b``,
      ``efficiency = speedup / P``;
    * weak scaling (fixed N per location, ``weak=True``): the work grows
      with P, so ``efficiency = T_b / T_P`` (scaled efficiency) and
      ``speedup = efficiency * P`` (scaled speedup).
    """
    if len(p_list) != len(times):
        raise ValueError("p_list and times must have equal length")
    base_p, base_t = p_list[0], times[0]
    speedups, efficiencies = [], []
    for p, t in zip(p_list, times):
        ratio = base_t / t if t else 0.0
        if weak:
            eff = ratio
            sp = eff * p / base_p
        else:
            sp = ratio * base_p
            eff = sp / p
        speedups.append(round(sp, 3))
        efficiencies.append(round(eff, 3))
    return speedups, efficiencies


def max_time(results) -> float:
    """The paper reports the max time over processors."""
    return max(results)


def per_op_us(results, n_per_loc: int) -> float:
    return max(results) / max(1, n_per_loc)
