"""Mixed-mode runtime study: zero-copy intra-node fast path + hierarchical
collectives + node-aware slab routing.

Not a paper figure — it isolates the node-topology half of the runtime the
way ``bulk_figs`` isolates slab aggregation and ``combining_figs`` isolates
combining.  The paper's runtime is mixed-mode (shared memory within a node,
MPI across nodes; Ch. III.B), and its scalability hinges on intra-node
traffic being far cheaper than the network: BCL-style direct local access
predicts that an intra-node-heavy workload pays for locks and memory, not
for marshaling and messages.

``mixed_mode_study`` runs a mixed RMI workload (async writes, sync reads,
combining accumulates, one slab fetch) where every location talks only to a
neighbour *on its own node*, with the zero-copy fast path off (pure message
path) and on.  It asserts the two modes produce byte-identical results and
that zero-copy cuts simulated time by at least 2x on the intra-node-heavy
8-cores-per-node configuration.

``mixed_mode_topology_study`` tabulates the two-level collective tree
against the flat ``alpha * ceil(log2 P) + beta`` model and measures the
node-aware ``bulk_exchange`` coalescing (packed vs. spread placement) on
each machine model.
"""

from __future__ import annotations

from ..containers.associative import PHashMap
from ..containers.parray import PArray
from ..runtime.comm import set_zero_copy
from ..runtime.machine import get_machine
from ..workloads.corpus import owner_keyed_vocabulary
from .harness import ExperimentResult, run_spmd_timed


def _intra_node_peer(lid: int, cores_per_node: int, nlocs: int) -> int:
    """Next location on the same node (ring within the node)."""
    node = lid // cores_per_node
    width = min(cores_per_node, nlocs - node * cores_per_node)
    return node * cores_per_node + (lid - node * cores_per_node + 1) % width


def mixed_mode_study(P: int = 8, n_per_loc: int = 2000,
                     machine: str = "cray5") -> ExperimentResult:
    """Zero-copy vs. message path on an intra-node-heavy workload.

    Default configuration: 8 locations on the CRAY XT5 model (8 cores per
    node), so every RMI stays inside one node.  The driver raises if the
    two modes disagree on any result or if zero-copy does not cut the
    simulated time by at least 2x.
    """
    m = get_machine(machine)
    cpn = m.cores_per_node
    n_block = max(64, n_per_loc // 8)
    # hash-partitioned keys land on arbitrary locations, so the accumulate
    # phase draws from per-owner key buckets to stay on the neighbour
    buckets = owner_keyed_vocabulary(P, 97)

    def prog(ctx):
        pa = PArray(ctx, ctx.nlocs * n_block, dtype=int)
        hm = PHashMap(ctx)
        ctx.rmi_fence()
        peer = _intra_node_peer(ctx.id, cpn, ctx.nlocs)
        base = peer * n_block
        msgs0 = ctx.stats.physical_messages
        t0 = ctx.start_timer()
        # async writes into the same-node neighbour's block (single writer
        # per block: the intra-node ring predecessor)
        for i in range(n_per_loc):
            pa.set_element(base + i % n_block, ctx.id * n_per_loc + i)
        # sync reads of the values just written (source FIFO makes these
        # read-your-writes in both modes)
        acc = 0
        for i in range(0, n_per_loc, 4):
            acc += int(pa.get_element(base + i % n_block))
        # combining-eligible accumulates onto neighbour-owned keys
        words = buckets[peer]
        for i in range(n_per_loc // 2):
            hm.accumulate(words[i % len(words)], 1)
        # one slab fetch of the neighbour block
        slab = pa.get_range(base, base + n_block)
        ctx.rmi_fence()
        t = ctx.stop_timer(t0)
        op_msgs = ctx.stats.physical_messages - msgs0
        outcome = (list(pa.get_range(0, ctx.nlocs * n_block)),
                   sorted(hm.to_dict().items()), [int(v) for v in slab], acc)
        return t, op_msgs, outcome

    res = ExperimentResult(
        "Mixed-mode ablation: zero-copy intra-node fast path vs message path",
        ["mode", "N_ops", "time_us", "op_msgs", "local_node_rmis",
         "MB_sent", "MB_avoided"],
        notes=f"{machine}, P={P}, op phase all intra-node "
              f"({cpn} cores/node); on: same-node RMIs execute directly "
              "against the destination bContainer under t_lock; off: every "
              "RMI is marshaled and charged as a message")

    outcome = {}
    for label, on in (("zero_copy", True), ("messages", False)):
        prev = set_zero_copy(on)
        try:
            results, _, stats = run_spmd_timed(prog, P, machine)
        finally:
            set_zero_copy(prev)
        outcome[label] = (max(r[0] for r in results),
                          sum(r[1] for r in results), results[0][2])
        res.add(label, (n_per_loc * 2 + n_per_loc // 4 + 2) * P,
                outcome[label][0], outcome[label][1],
                stats.local_node_invocations, stats.bytes_sent / 1e6,
                stats.bytes_avoided / 1e6)

    if outcome["zero_copy"][2] != outcome["messages"][2]:
        raise AssertionError(
            "zero-copy changed the results (expected byte-identical to the "
            "message path)")
    if outcome["zero_copy"][1] != 0:
        raise AssertionError(
            f"zero-copy op phase sent {outcome['zero_copy'][1]} physical "
            "messages (expected none: every destination is on-node)")
    ratio = outcome["messages"][0] / max(1e-9, outcome["zero_copy"][0])
    res.notes += f"; time ratio messages/zero_copy = {ratio:.1f}x"
    if ratio < 2.0:
        raise AssertionError(
            f"mixed-mode ablation: zero-copy only {ratio:.1f}x faster on the "
            "intra-node-heavy workload (expected >= 2x)")
    return res


def mixed_mode_topology_study(
        machines=("cray4", "cray5", "p5cluster")) -> ExperimentResult:
    """Two-level collectives and node-aware slab routing per machine model.

    For each machine: two fully-populated nodes (P = 2 * cores_per_node),
    the flat vs. hierarchical fence-tree cost, and the physical messages of
    a personalised all-to-all under packed (node-aware coalescing applies)
    vs. spread placement (every location its own node — flat behaviour).
    Asserts the hierarchical tree is never more expensive than the flat one
    and degenerates to it exactly when ``cores_per_node == 1``.
    """
    import numpy as np

    res = ExperimentResult(
        "Mixed-mode topology: hierarchical collectives + slab coalescing",
        ["machine", "P", "nodes", "flat_us", "hier_us", "xchg_msgs_spread",
         "xchg_msgs_packed", "coalesced"],
        notes="collective tree: intra-node stage to a node leader + "
              "inter-node stage across leaders; exchange: slabs for one "
              "remote node share one coalesced inter-node message")

    def prog(ctx):
        slabs = [np.full(32, ctx.id * ctx.nlocs + d) for d in range(ctx.nlocs)]
        got = ctx.bulk_exchange(slabs, nelems=32 * ctx.nlocs)
        ctx.rmi_fence()
        return [int(r[0]) for r in got]

    for name in machines:
        m = get_machine(name)
        P = 2 * m.cores_per_node
        flat = m.collective_cost(P)
        hier = m.hierarchical_collective_cost(range(P), P)
        if hier > flat:
            raise AssertionError(
                f"{name}: hierarchical collective ({hier:.2f}us) costs more "
                f"than the flat tree ({flat:.2f}us)")
        if m.with_(cores_per_node=1).hierarchical_collective_cost(
                range(P), P) != flat:
            raise AssertionError(
                f"{name}: hierarchical tree with one core per node must "
                "equal the flat tree")
        counts = {}
        for placement in ("spread", "packed"):
            results, _, stats = run_spmd_timed(prog, P, name,
                                               placement=placement)
            for d, got in enumerate(results):
                if got != [s * P + d for s in range(P)]:
                    raise AssertionError(
                        f"{name}/{placement}: exchange delivered wrong slabs")
            counts[placement] = (stats.physical_messages,
                                 stats.coalesced_messages)
        if counts["packed"][0] >= counts["spread"][0]:
            raise AssertionError(
                f"{name}: node-aware routing did not reduce physical "
                "messages")
        res.add(name, P, 2, flat, hier, counts["spread"][0],
                counts["packed"][0], counts["packed"][1])
    return res
