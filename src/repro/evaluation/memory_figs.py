"""Memory-consumption study (Ch. IX.F, Tables XXII/XXIII, Fig. 34)."""

from __future__ import annotations

from ..containers.parray import PArray
from ..containers.plist import PList
from ..core.memory import (
    measure_memory,
    theoretical_parray_memory,
    theoretical_plist_memory,
)
from .harness import ExperimentResult, run_spmd_timed


def fig34_memory_study(sizes=(1024, 8192, 65536), P=4) -> ExperimentResult:
    """Measured vs theoretical pArray/pList memory, data vs metadata."""
    res = ExperimentResult(
        "Fig.34 / Tables XXII-XXIII memory study",
        ["container", "N", "measured_data", "measured_meta",
         "theoretical_data", "theoretical_meta", "overhead_ratio"],
        notes="pArray metadata is O(P); pList metadata is O(N) node headers")

    def prog(ctx, n, kind):
        if kind == "parray":
            c = PArray(ctx, n, dtype=float)
        else:
            c = PList(ctx, n, value=0.0)
        report = measure_memory(c)
        return report.metadata, report.data

    for kind, model in (("parray", theoretical_parray_memory),
                        ("plist", theoretical_plist_memory)):
        for n in sizes:
            results, _, _ = run_spmd_timed(prog, P, "cray4", (n, kind))
            meta, data = results[0]
            theory = model(n, P)
            res.add(kind, n, data, meta, theory["data"], theory["metadata"],
                    meta / max(1, data))
    return res
