"""Composed-container study: nested PARAGRAPHs + derived views (Fig. 1,
Ch. IV.C; the SNIPPETS.md ``vw_overlap.cc`` workload family).

``nested_study`` regenerates three workloads and asserts their contracts:

* **stencil** — iterative 1-D stencil, fenced flat baseline (one fence +
  per-element halo sync-reads per iteration) vs the overlap-view
  data-flow form (initial core+halo slab through the overlap view, later
  halos as dependence messages, one closing fence).  Asserts byte-identical
  results and >= 2x fewer fences.
* **bucket_sort** — per-bucket sample sort where every bucket lands in a
  nested pArray and sorts inside an inner PARAGRAPH spawned by the outer
  graph's bucket task.  Asserts output identical to ``p_sample_sort`` and
  that real nested graphs ran (``nested_paragraphs`` >= P, nested tasks
  observed).
* **segmented** — segmented reduce + scan, both over a composed
  pArray-of-pArrays (inner PARAGRAPH per segment) and over a
  ``segmented_view`` of a flat array (slab path per segment).  Asserts
  both agree with the flat sequential recurrence byte-for-byte.
"""

from __future__ import annotations

import operator

from ..algorithms.generic import p_generate
from ..algorithms.nested import (
    p_bucket_sort_nested,
    p_segmented_reduce,
    p_segmented_scan,
    p_stencil,
)
from ..algorithms.sorting import p_sample_sort
from ..containers.composition import (
    _local_nested_refs,
    _participating_refs,
    compose_parray_of_parrays,
    segmented_reduce,
    segmented_scan,
)
from ..containers.parray import PArray
from ..views.array_views import Array1DView
from ..views.derived_views import segmented_view
from .harness import ExperimentResult, run_spmd_report, run_spmd_timed

__all__ = ["nested_backend_study", "nested_groups_study", "nested_study"]


def _scrambled(i):
    return (i * 2654435761) % 100003


def _segment_lengths(n: int, nseg: int) -> list:
    """Deterministically uneven segment lengths summing to n."""
    base = n // nseg
    lens = []
    rem = n
    for s in range(nseg - 1):
        ln = max(1, base + (-1) ** s * (s % max(1, base // 2)))
        ln = min(ln, rem - (nseg - 1 - s))
        lens.append(ln)
        rem -= ln
    lens.append(rem)
    return lens


def _stencil_prog(n: int, iters: int, dataflow: bool):
    def prog(ctx):
        pa = PArray(ctx, n, dtype=int)
        v = Array1DView(pa)
        p_generate(v, _scrambled, vector=None)
        ctx.rmi_fence()
        f0, s0 = ctx.stats.fences, ctx.stats.sync_rmi_sent
        t0 = ctx.start_timer()
        p_stencil(v, iters=iters, dataflow=dataflow)
        t = ctx.stop_timer(t0)
        return (t, ctx.stats.fences - f0, ctx.stats.sync_rmi_sent - s0,
                pa.to_list())
    return prog


def _sort_prog(n: int, nested: bool):
    def prog(ctx):
        pa = PArray(ctx, n, dtype=int)
        v = Array1DView(pa)
        p_generate(v, _scrambled, vector=None)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        if nested:
            p_bucket_sort_nested(v)
        else:
            p_sample_sort(v)
        t = ctx.stop_timer(t0)
        return t, pa.to_list()
    return prog


def _segmented_prog(n: int, lens: list, composed: bool):
    def prog(ctx):
        t0 = ctx.start_timer()
        if composed:
            outer = compose_parray_of_parrays(ctx, lens, value=0, dtype=int)
            off = 0
            starts = []
            for ln in lens:
                starts.append(off)
                off += ln
            for gid, ref in _local_nested_refs(outer):
                ref.resolve(ctx.runtime).set_range(
                    0, [_scrambled(starts[gid] + j) for j in range(lens[gid])])
            ctx.rmi_fence(outer.group)
            sums = segmented_reduce(outer, operator.add, 0)
            segmented_scan(outer, operator.add, 0)
            scanned: list = []
            local = {gid: ref.resolve(ctx.runtime).to_list()
                     for gid, ref in _local_nested_refs(outer)}
            for d in ctx.allgather_rmi(local, group=outer.group):
                for gid, vals in d.items():
                    while len(scanned) <= gid:
                        scanned.append(None)
                    scanned[gid] = vals
            flat = [x for seg in scanned for x in seg]
        else:
            pa = PArray(ctx, n, dtype=int)
            v = Array1DView(pa)
            p_generate(v, _scrambled, vector=None)
            ctx.rmi_fence()
            sv = segmented_view(v, lens)
            sums = p_segmented_reduce(sv, operator.add, 0)
            p_segmented_scan(sv, operator.add, 0)
            flat = pa.to_list()
        t = ctx.stop_timer(t0)
        return t, sums, flat
    return prog


def nested_study(P: int = 8, n_per_loc: int = 2048, machine: str = "cray4",
                 iters: int = 6) -> ExperimentResult:
    """The composed-container workload family; raises on any broken
    contract (see module docstring)."""
    n = P * n_per_loc

    res = ExperimentResult(
        "Nested parallelism: overlap/segmented views + inner PARAGRAPHs",
        ["workload", "mode", "N", "time_us", "fences", "sync_rmis",
         "dep_msgs", "nested_pgs", "nested_tasks", "physical_msgs"],
        notes=f"{machine}, P={P}; stencil iters={iters}")

    # -- stencil: fenced baseline vs overlap-view data-flow ----------------
    outcome = {}
    for label, df in (("fenced", False), ("overlap_dataflow", True)):
        results, _, stats = run_spmd_timed(
            _stencil_prog(n, iters, df), P, machine)
        outcome[label] = (max(r[0] for r in results),
                         max(r[1] for r in results), results[0][3])
        res.add("stencil", label, n, outcome[label][0], outcome[label][1],
                sum(r[2] for r in results), stats.dependence_messages,
                stats.nested_paragraphs, stats.nested_tasks_executed,
                stats.physical_messages)
    if outcome["fenced"][2] != outcome["overlap_dataflow"][2]:
        raise AssertionError(
            "stencil: overlap-view data-flow result differs from the "
            "fenced flat baseline (expected byte-identical)")
    f_base, f_df = outcome["fenced"][1], outcome["overlap_dataflow"][1]
    if f_base < 2 * max(1, f_df):
        raise AssertionError(
            f"stencil: baseline paid {f_base} fences vs {f_df} with "
            "overlap views (expected >= 2x reduction)")

    # -- per-bucket sort: inner PARAGRAPH per bucket -----------------------
    sort_out = {}
    for label, nested in (("sample_sort", False), ("nested_buckets", True)):
        results, _, stats = run_spmd_timed(_sort_prog(n, nested), P, machine)
        sort_out[label] = (results[0][1], stats)
        res.add("bucket_sort", label, n, max(r[0] for r in results), 0, 0,
                stats.dependence_messages, stats.nested_paragraphs,
                stats.nested_tasks_executed, stats.physical_messages)
    if sort_out["nested_buckets"][0] != sort_out["sample_sort"][0]:
        raise AssertionError(
            "nested bucket sort result differs from p_sample_sort")
    nstats = sort_out["nested_buckets"][1]
    if nstats.nested_paragraphs < P or nstats.nested_tasks_executed <= 0:
        raise AssertionError(
            f"nested bucket sort: expected a real inner Paragraph per "
            f"bucket (P={P}), saw nested_paragraphs="
            f"{nstats.nested_paragraphs}, nested_tasks="
            f"{nstats.nested_tasks_executed}")

    # -- segmented reduce/scan: composed container vs segmented view -------
    lens = _segment_lengths(n, 4 * P)
    seg_out = {}
    for label, composed in (("seg_view_flat", False), ("composed", True)):
        results, _, stats = run_spmd_timed(
            _segmented_prog(n, lens, composed), P, machine)
        seg_out[label] = (results[0][1], results[0][2])
        res.add("segmented", label, n, max(r[0] for r in results), 0, 0,
                stats.dependence_messages, stats.nested_paragraphs,
                stats.nested_tasks_executed, stats.physical_messages)
    exp_sums, exp_scan, off = [], [], 0
    for ln in lens:
        seg = [_scrambled(off + j) for j in range(ln)]
        exp_sums.append(sum(seg))
        c = 0
        for x in seg:
            c += x
            exp_scan.append(c)
        off += ln
    for label in seg_out:
        if seg_out[label][0] != exp_sums or seg_out[label][1] != exp_scan:
            raise AssertionError(
                f"segmented {label}: reduce/scan differ from the flat "
                "sequential recurrence")

    res.notes += (f"; stencil fences {f_base} -> {f_df}, nested graphs "
                  f"{nstats.nested_paragraphs}, nested tasks "
                  f"{nstats.nested_tasks_executed}")
    return res


def _sort_prog_groups(n: int, inner_group_size: int):
    def prog(ctx):
        pa = PArray(ctx, n, dtype=int)
        v = Array1DView(pa)
        p_generate(v, _scrambled, vector=None)
        ctx.rmi_fence()
        t0 = ctx.start_timer()
        p_bucket_sort_nested(v, inner_group_size=inner_group_size)
        t = ctx.stop_timer(t0)
        return t, pa.to_list()
    return prog


def _segmented_groups_prog(lens: list, inner_group_size: int):
    def prog(ctx):
        outer = compose_parray_of_parrays(
            ctx, lens, value=0, dtype=int,
            inner_group_size=inner_group_size)
        starts, off = [], 0
        for ln in lens:
            starts.append(off)
            off += ln
        # the inner containers are team-distributed: the owner scatters the
        # segment, and every read-back below is collective on the team, so
        # all members walk the recorded refs in the same order
        for gid, ref in _participating_refs(outer):
            if ctx.id == ref.owner:
                ref.resolve(ctx.runtime, ctx.id).set_range(
                    0, [_scrambled(starts[gid] + j)
                        for j in range(lens[gid])])
        ctx.rmi_fence(outer.group)
        sums = segmented_reduce(outer, operator.add, 0)
        segmented_scan(outer, operator.add, 0)
        local = {}
        for gid, ref in _participating_refs(outer):
            vals = ref.resolve(ctx.runtime, ctx.id).to_list()
            if ctx.id == ref.owner:
                local[gid] = vals
        scanned: list = [None] * len(lens)
        for d in ctx.allgather_rmi(local, group=outer.group):
            for gid, vals in d.items():
                scanned[gid] = vals
        return sums, [x for seg in scanned for x in seg]
    return prog


def nested_groups_study(P: int = 8, n_per_loc: int = 256,
                        machine: str = "cray4",
                        inner_group_sizes=(1, 2, 4)) -> ExperimentResult:
    """Multi-location nested parallel sections: the bucket sort's inner
    PARAGRAPHs run on location *teams* of each size in
    ``inner_group_sizes`` (1 = the classic singleton deployment).  Every
    variant must stay byte-identical to ``p_sample_sort``; for team sizes
    > 1 the study additionally asserts that genuinely distributed inner
    graphs were observed (``nested_multi_paragraphs``) and that their
    synchronisation stayed team-scoped (``subgroup_fences``).  A composed
    pArray-of-pArrays with two-location segments re-checks segmented
    reduce/scan against the flat sequential recurrence, and one
    multiprocessing row re-runs the team bucket sort on real OS processes
    (sim result as the byte-identity oracle, measured wall seconds)."""
    n = P * n_per_loc
    res = ExperimentResult(
        "Nested sections on location teams: inner groups > 1",
        ["workload", "backend", "inner_group_size", "N", "time_us",
         "wall_s", "nested_pgs", "nested_multi_pgs", "subgroup_fences",
         "dep_msgs"],
        notes=f"{machine}, P={P}; all rows byte-identical to p_sample_sort"
              " / the flat recurrence")

    oracle_res, _, _ = run_spmd_timed(_sort_prog(n, nested=False), P, machine)
    oracle = oracle_res[0][1]

    for igs in inner_group_sizes:
        results, _, stats = run_spmd_timed(
            _sort_prog_groups(n, igs), P, machine)
        if results[0][1] != oracle:
            raise AssertionError(
                f"bucket sort with inner_group_size={igs} differs from "
                "p_sample_sort (expected byte-identical)")
        if igs > 1 and stats.nested_multi_paragraphs <= 0:
            raise AssertionError(
                f"inner_group_size={igs}: no multi-location inner "
                "PARAGRAPHs observed")
        if igs > 1 and stats.subgroup_fences <= 0:
            raise AssertionError(
                f"inner_group_size={igs}: no team-scoped fences observed")
        res.add("bucket_sort", "sim", igs, n,
                max(r[0] for r in results), "", stats.nested_paragraphs,
                stats.nested_multi_paragraphs, stats.subgroup_fences,
                stats.dependence_messages)

    # -- composed container with two-location segments ---------------------
    lens = _segment_lengths(n // 4, 2 * P)
    seg_prog = _segmented_groups_prog(lens, 2)
    results, _, stats = run_spmd_timed(seg_prog, P, machine)
    exp_sums, exp_scan, off = [], [], 0
    for ln in lens:
        seg = [_scrambled(off + j) for j in range(ln)]
        exp_sums.append(sum(seg))
        c = 0
        for x in seg:
            c += x
            exp_scan.append(c)
        off += ln
    if results[0][0] != exp_sums or results[0][1] != exp_scan:
        raise AssertionError(
            "segmented reduce/scan over two-location segments differ "
            "from the flat sequential recurrence")
    if stats.nested_multi_paragraphs <= 0:
        raise AssertionError(
            "composed segments: no multi-location inner PARAGRAPHs")
    res.add("segmented", "sim", 2, sum(lens), 0, "",
            stats.nested_paragraphs, stats.nested_multi_paragraphs,
            stats.subgroup_fences, stats.dependence_messages)

    # -- real processes: team bucket sort under the mp backend -------------
    mp_P = min(P, 4)
    mp_n = mp_P * max(64, n_per_loc // 4)
    sim = run_spmd_report(_sort_prog_groups(mp_n, 2), mp_P, machine)
    mp = run_spmd_report(_sort_prog_groups(mp_n, 2), mp_P, machine,
                         backend="multiprocessing", timeout=300.0)
    if [r[1] for r in mp.results] != [r[1] for r in sim.results]:
        raise AssertionError(
            "team bucket sort: multiprocessing backend diverged from "
            "the simulated oracle")
    mp_stats = mp.stats.total
    if mp_stats.nested_multi_paragraphs <= 0 or mp_stats.subgroup_fences <= 0:
        raise AssertionError(
            "team bucket sort (mp): expected multi-location inner "
            "PARAGRAPHs and team-scoped fences on real processes")
    res.add("bucket_sort", "multiprocessing", 2, mp_n, "",
            round(mp.wall_seconds, 4), mp_stats.nested_paragraphs,
            mp_stats.nested_multi_paragraphs, mp_stats.subgroup_fences,
            mp_stats.dependence_messages)
    return res


def nested_backend_study(P: int = 4, n_per_loc: int = 512,
                         machine: str = "cray4",
                         iters: int = 4) -> ExperimentResult:
    """The stencil workload family under the multiprocessing backend:
    measured wall seconds next to the virtual clocks, with the simulated
    run as the correctness oracle (byte-identical results required).

    Until now the composed-container studies assumed virtual clocks only;
    this study runs the same programs on real OS processes through
    :func:`~.harness.run_spmd_report`."""
    n = P * n_per_loc
    res = ExperimentResult(
        "Nested parallelism under real processes: stencil wall-clock",
        ["workload", "mode", "N", "sim_time_us", "mp_wall_s", "fences"],
        notes=f"{machine}, P={P}, stencil iters={iters}; mp rows are "
              "measured wall seconds, sim rows the virtual oracle")
    oracle = {}
    for label, df in (("fenced", False), ("overlap_dataflow", True)):
        prog = _stencil_prog(n, iters, df)
        sim = run_spmd_report(prog, P, machine)
        mp = run_spmd_report(prog, P, machine, backend="multiprocessing",
                             timeout=300.0)
        sim_out = [r[3] for r in sim.results]
        mp_out = [r[3] for r in mp.results]
        if sim_out != mp_out:
            raise AssertionError(
                f"stencil ({label}): multiprocessing backend diverged "
                "from the simulated oracle")
        oracle[label] = sim_out[0]
        res.add("stencil", label, n,
                max(r[0] for r in sim.results),
                round(mp.wall_seconds, 4),
                max(r[1] for r in mp.results))
    if oracle["fenced"] != oracle["overlap_dataflow"]:
        raise AssertionError(
            "stencil: data-flow and fenced results differ under the "
            "backend study")
    return res
