"""Associative views (Table II: p_map_pview / p_set_pview).

Elements are the container's values addressed by key; native chunks are the
local MapBC/SetBC bContainers, giving pAlgorithms partitioned access to
hash- or range-partitioned key spaces (Fig. 60's workloads).
"""

from __future__ import annotations

from .base import Chunk, PView, Workfunction


class MapChunk(Chunk):
    """One local associative bContainer; GIDs are keys, values are mapped
    values (or the keys themselves for set containers)."""

    def __init__(self, view, bc, location):
        self.view = view
        self.bc = bc
        self.location = location

    def size(self) -> int:
        return self.bc.size()

    def gids(self):
        return iter(self.bc.keys())

    def items(self):
        return iter(self.bc.items())

    def read(self, key):
        self.location.charge_access()
        return self.bc.get(key)

    def write(self, key, value) -> None:
        self.location.charge_access()
        self.bc.set(key, value)

    def _charge(self, wf: Workfunction, accesses: int = 2) -> None:
        m = self.location.machine
        per = m.t_access * accesses + (wf.cost or m.t_access)
        self.location.charge(per * self.bc.size())

    def map_values(self, wf: Workfunction) -> None:
        self._charge(wf)
        data = self.bc.data
        for k in list(data.keys()):
            data[k] = wf.fn(data[k])

    def visit(self, wf: Workfunction) -> None:
        self._charge(wf, accesses=1)
        for v in self.bc.values():
            wf.fn(v)

    def generate(self, wf: Workfunction) -> None:
        self._charge(wf, accesses=1)
        data = self.bc.data
        for k in list(data.keys()):
            data[k] = wf.fn(k)

    def reduce_values(self, op, initial):
        m = self.location.machine
        self.location.charge(m.t_access * 2 * self.bc.size())
        acc = initial
        for v in self.bc.values():
            acc = op(acc, v)
        return acc


class MapView(PView):
    """``p_map_pview``: value access by key + partitioned iteration."""

    def __init__(self, assoc, group=None):
        super().__init__(assoc, group)

    def size(self) -> int:
        return self.container.size()

    def read(self, key):
        return self.container.find(key)

    def write(self, key, value) -> None:
        self.container.set_element(key, value)

    def local_chunks(self) -> list:
        loc = self.ctx
        return self.cached_native_chunks(
            lambda: [MapChunk(self, bc, loc)
                     for bc in self.container.local_bcontainers()])


class SetView(MapView):
    """``p_set_pview``: values are the keys; writes are rejected."""

    def write(self, key, value) -> None:
        raise TypeError("set views are read-only")
