"""pList views (Table II: static_list_pview, list_pview).

The list pView provides concurrent access to *segments* of the list
(Ch. III.A): native chunks are the per-location ListBC segments, giving
pAlgorithms random access to a partitioned data space even though the
underlying structure is a linked list.
"""

from __future__ import annotations

from .base import Chunk, PView, Workfunction


class ListChunk(Chunk):
    """One local list segment."""

    def __init__(self, view, bc, bcid, location):
        self.view = view
        self.bc = bc
        self.bcid = bcid
        self.location = location

    def size(self) -> int:
        return self.bc.size()

    def gids(self):
        return ((self.bcid, seq) for seq in self.bc.seqs())

    def read(self, gid):
        self.location.charge_access()
        return self.bc.get(gid[1])

    def write(self, gid, value) -> None:
        self.location.charge_access()
        self.bc.set(gid[1], value)

    def _charge(self, wf: Workfunction, accesses: int = 2) -> None:
        m = self.location.machine
        # linked-list traversal: pointer chase adds to the access cost
        per = m.t_access * (accesses + 0.5) + (wf.cost or m.t_access)
        self.location.charge(per * self.bc.size())

    def map_values(self, wf: Workfunction) -> None:
        self._charge(wf)
        for seq in self.bc.seqs():
            self.bc.set(seq, wf.fn(self.bc.get(seq)))

    def generate(self, wf: Workfunction) -> None:
        self._charge(wf, accesses=1)
        for seq in self.bc.seqs():
            self.bc.set(seq, wf.fn((self.bcid, seq)))

    def visit(self, wf: Workfunction) -> None:
        self._charge(wf, accesses=1)
        for v in self.bc.values():
            wf.fn(v)

    def reduce_values(self, op, initial):
        m = self.location.machine
        self.location.charge(m.t_access * 2.5 * self.bc.size())
        acc = initial
        for v in self.bc.values():
            acc = op(acc, v)
        return acc


class StaticListView(PView):
    """``static_list_pview``: read/write by stable GID, no structural ops."""

    def __init__(self, plist, group=None):
        super().__init__(plist, group)

    def size(self) -> int:
        return self.container.size()

    def read(self, gid):
        return self.container.get_element(gid)

    def write(self, gid, value) -> None:
        self.container.set_element(gid, value)

    def local_chunks(self) -> list:
        loc = self.ctx
        lm = self.container.location_manager
        return self.cached_native_chunks(
            lambda: [ListChunk(self, lm.get_bcontainer(b), b, loc)
                     for b in lm.bcids()])


class ListView(StaticListView):
    """``list_pview``: adds insert/erase/insert-any (Table II)."""

    def insert(self, gid, value):
        return self.container.insert_element(gid, value)

    def erase(self, gid):
        return self.container.erase_element(gid)

    def insert_any(self, value):
        return self.container.push_anywhere(value)
