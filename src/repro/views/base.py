"""pView core (Ch. III.A): V = (C, D, F, O).

A pView references a collection (usually a pContainer), defines a domain of
view indices, maps them onto collection GIDs through a mapping function F,
and exposes ADT operations.  For parallel use a pView partitions itself into
*base views* (bViews); pAlgorithms obtain the bViews assigned to the calling
location via :meth:`PView.local_chunks` and process them task-style.

Two chunk flavours implement the locality story the paper tells:

* :class:`NativeChunk` — aligned with the container's distribution; element
  access is direct bContainer access (and NumPy-bulk capable);
* :class:`GenericChunk` — an arbitrary slice of the view's domain; element
  access goes through the container's shared-object interface and may be
  remote.  Balanced views over misaligned data pay for their flexibility,
  which the native-vs-balanced ablation measures.
"""

from __future__ import annotations

from ..core.domains import RangeDomain
from ..core.partitions import balanced_sizes


class Workfunction:
    """Workfunction wrapper: a scalar callable plus an optional vectorised
    (NumPy) implementation and a virtual per-element cost."""

    __slots__ = ("fn", "vector", "cost")

    def __init__(self, fn, vector=None, cost=None):
        self.fn = fn
        self.vector = vector
        self.cost = cost

    def __call__(self, *args):
        return self.fn(*args)


def as_wf(fn) -> Workfunction:
    if isinstance(fn, Workfunction):
        return fn
    return Workfunction(fn)


class Chunk:
    """One bView: the unit of work a pAlgorithm task processes."""

    def size(self) -> int:
        raise NotImplementedError

    def gids(self):
        raise NotImplementedError

    def read(self, gid):
        raise NotImplementedError

    def write(self, gid, value) -> None:
        raise NotImplementedError

    def items(self):
        for gid in self.gids():
            yield gid, self.read(gid)

    # -- bulk operations (overridden with vectorised paths) ---------------
    def map_values(self, wf: Workfunction) -> None:
        """value <- wf(value) for every element."""
        for gid in self.gids():
            self.write(gid, wf.fn(self.read(gid)))

    def generate(self, wf: Workfunction) -> None:
        """value <- wf(gid) for every element."""
        for gid in self.gids():
            self.write(gid, wf.fn(gid))

    def visit(self, wf: Workfunction) -> None:
        """Call wf(value) for side effects only."""
        for gid in self.gids():
            wf.fn(self.read(gid))

    def reduce_values(self, op, initial):
        acc = initial
        for gid in self.gids():
            acc = op(acc, self.read(gid))
        return acc


class NativeChunk(Chunk):
    """bView aligned with one local bContainer (fast path)."""

    def __init__(self, view, bc, location):
        self.view = view
        self.bc = bc
        self.location = location

    def size(self) -> int:
        return self.bc.size()

    def gids(self):
        return iter(self.bc.domain)

    def read(self, gid):
        self.location.charge_access()
        return self.bc.get(gid)

    def write(self, gid, value) -> None:
        self.location.charge_access()
        self.bc.set(gid, value)

    def _charge(self, wf: Workfunction, per_elem_accesses: int = 2) -> None:
        m = self.location.machine
        per = m.t_access * per_elem_accesses + (wf.cost or m.t_access)
        self.location.charge(per * self.bc.size())

    def map_values(self, wf: Workfunction) -> None:
        self._charge(wf)
        if hasattr(self.bc, "bulk_map"):
            if wf.vector is not None:
                self.bc.bulk_map(wf.vector)
            else:
                data = self.bc.data
                data[:] = [wf.fn(v) for v in data.tolist()]
            return
        for gid in self.gids():
            self.bc.set(gid, wf.fn(self.bc.get(gid)))

    def generate(self, wf: Workfunction) -> None:
        self._charge(wf, per_elem_accesses=1)
        if wf.vector is not None and hasattr(self.bc, "bulk_map"):
            import numpy as np

            dom = self.bc.domain
            if isinstance(dom, RangeDomain):
                gids = np.arange(dom.lo, dom.hi, dtype=np.int64)
            else:
                gids = np.fromiter(dom, dtype=np.int64, count=self.bc.size())
            self.bc.data = np.asarray(wf.vector(gids), dtype=self.bc.data.dtype)
            return
        for gid in self.gids():
            self.bc.set(gid, wf.fn(gid))

    def visit(self, wf: Workfunction) -> None:
        self._charge(wf, per_elem_accesses=1)
        vals = self.bc.values() if hasattr(self.bc, "values") else None
        if vals is not None:
            for v in vals:
                wf.fn(v)
            return
        for gid in self.gids():
            wf.fn(self.bc.get(gid))

    def reduce_values(self, op, initial):
        m = self.location.machine
        self.location.charge((m.t_access * 2) * self.bc.size())
        vals = self.bc.values() if hasattr(self.bc, "values") else None
        if vals is None:
            return super().reduce_values(op, initial)
        if hasattr(vals, "dtype"):  # NumPy fast paths for common reductions
            import operator

            if self.bc.size():
                if op is operator.add:
                    return op(initial, vals.sum().item())
                if op is min:
                    return min(initial, vals.min().item())
                if op is max:
                    return max(initial, vals.max().item())
            vals = vals.tolist()
        acc = initial
        for v in vals:
            acc = op(acc, v)
        return acc


class GenericChunk(Chunk):
    """bView over an arbitrary slice of a view's domain; element access uses
    the view's ADT operations (possibly remote)."""

    def __init__(self, view, index_domain):
        self.view = view
        self.index_domain = index_domain

    def size(self) -> int:
        return self.index_domain.size()

    def gids(self):
        return iter(self.index_domain)

    def read(self, i):
        return self.view.read(i)

    def write(self, i, value) -> None:
        self.view.write(i, value)

    def map_values(self, wf: Workfunction) -> None:
        m = self.view.ctx.machine
        self.view.ctx.charge((wf.cost or m.t_access) * self.size())
        for i in self.gids():
            self.view.write(i, wf.fn(self.view.read(i)))

    def generate(self, wf: Workfunction) -> None:
        m = self.view.ctx.machine
        self.view.ctx.charge((wf.cost or m.t_access) * self.size())
        for i in self.gids():
            self.view.write(i, wf.fn(i))

    def visit(self, wf: Workfunction) -> None:
        m = self.view.ctx.machine
        self.view.ctx.charge((wf.cost or m.t_access) * self.size())
        for i in self.gids():
            wf.fn(self.view.read(i))

    def reduce_values(self, op, initial):
        acc = initial
        for i in self.gids():
            acc = op(acc, self.view.read(i))
        return acc


class PView:
    """Base pView (Table II rows share this interface)."""

    def __init__(self, container, group=None):
        self.container = container
        self.group = group or container.group

    @property
    def ctx(self):
        return self.container.runtime.current_location

    def size(self) -> int:
        raise NotImplementedError

    def read(self, i):
        raise NotImplementedError

    def write(self, i, value) -> None:
        raise NotImplementedError

    def local_chunks(self) -> list:
        raise NotImplementedError

    def post_execute(self) -> None:
        """Automatic synchronisation point (Ch. VII.H): fence, then let the
        container commit/refresh replicated metadata."""
        self.ctx.rmi_fence(self.group)
        hook = getattr(self.container, "post_execute", None)
        if hook is not None:
            hook()

    # -- domain helpers ----------------------------------------------------
    def balanced_slices(self) -> RangeDomain:
        """This location's share of ``[0, size)`` under a balanced split."""
        n = self.size()
        members = self.group.members
        sizes = balanced_sizes(n, len(members))
        me = members.index(self.ctx.id)
        lo = sum(sizes[:me])
        return RangeDomain(lo, lo + sizes[me])
