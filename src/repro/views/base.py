"""pView core (Ch. III.A): V = (C, D, F, O).

A pView references a collection (usually a pContainer), defines a domain of
view indices, maps them onto collection GIDs through a mapping function F,
and exposes ADT operations.  For parallel use a pView partitions itself into
*base views* (bViews); pAlgorithms obtain the bViews assigned to the calling
location via :meth:`PView.local_chunks` and process them task-style.

Two chunk flavours implement the locality story the paper tells:

* :class:`NativeChunk` — aligned with the container's distribution; element
  access is direct bContainer access (and NumPy-bulk capable);
* :class:`GenericChunk` — an arbitrary slice of the view's domain; element
  access goes through the container's shared-object interface and may be
  remote.  Balanced views over misaligned data pay for their flexibility,
  which the native-vs-balanced ablation measures.
"""

from __future__ import annotations

import numpy as np

from ..core.domains import RangeDomain
from ..core.partitions import balanced_sizes
from ..runtime.comm import mp_zero_copy_enabled

#: process-wide switch for the bulk element-transport fast path.  On, a
#: GenericChunk whose view supports contiguous range accessors moves whole
#: slabs (one RMI per owning location) instead of one RMI per element.
#: Exists so the evaluation can measure bulk vs. per-element head-to-head.
_BULK_TRANSPORT = True


def bulk_transport_enabled() -> bool:
    return _BULK_TRANSPORT


def set_bulk_transport(on: bool) -> bool:
    """Toggle the bulk fast path; returns the previous setting."""
    global _BULK_TRANSPORT
    prev = _BULK_TRANSPORT
    _BULK_TRANSPORT = bool(on)
    return prev


def slab_passthrough(view) -> bool:
    """May bulk slab values stay NumPy arrays (possibly read-only
    zero-copy views over shared memory) instead of being lowered to plain
    lists?  True exactly when the view's container runs on a real
    (process-per-location) backend with zero-copy transport enabled —
    there the ``tolist`` lowering would forfeit the zero-copy receive.
    Under the simulated backend slabs keep their historical plain-list
    form, so sim-vs-real differential results stay byte-identical."""
    c = getattr(view, "container", None)
    rt = getattr(c, "runtime", None)
    return (rt is not None and not rt.shared_address_space
            and mp_zero_copy_enabled())


def sync_views(views) -> None:
    """Automatic synchronisation point over a set of views (Ch. VII.H):
    one fence per distinct location group, then every distinct container's
    ``post_execute`` hook exactly once.

    Multi-view computations (``p_transform``'s src→dst pRange) must commit
    *every* container they touched — fencing only ``views[0]`` leaves the
    destination container's replicated metadata stale.  Containers are
    deduplicated by identity so a pRange holding two views over the same
    container still runs the hook once."""
    if not views:
        return
    seen_groups = set()
    for v in views:
        key = v.group.key
        if key not in seen_groups:
            seen_groups.add(key)
            v.ctx.rmi_fence(v.group)
    seen_containers = set()
    for v in views:
        c = v.container
        if id(c) in seen_containers:
            continue
        seen_containers.add(id(c))
        hook = getattr(c, "post_execute", None)
        if hook is not None:
            hook()


class Workfunction:
    """Workfunction wrapper: a scalar callable plus an optional vectorised
    (NumPy) implementation and a virtual per-element cost."""

    __slots__ = ("fn", "vector", "cost")

    def __init__(self, fn, vector=None, cost=None):
        self.fn = fn
        self.vector = vector
        self.cost = cost

    def __call__(self, *args):
        return self.fn(*args)


def as_wf(fn) -> Workfunction:
    if isinstance(fn, Workfunction):
        return fn
    return Workfunction(fn)


class Chunk:
    """One bView: the unit of work a pAlgorithm task processes."""

    def size(self) -> int:
        raise NotImplementedError

    def gids(self):
        raise NotImplementedError

    def read(self, gid):
        raise NotImplementedError

    def write(self, gid, value) -> None:
        raise NotImplementedError

    def items(self):
        for gid in self.gids():
            yield gid, self.read(gid)

    # -- bulk operations (overridden with vectorised paths) ---------------
    def map_values(self, wf: Workfunction) -> None:
        """value <- wf(value) for every element."""
        for gid in self.gids():
            self.write(gid, wf.fn(self.read(gid)))

    def generate(self, wf: Workfunction) -> None:
        """value <- wf(gid) for every element."""
        for gid in self.gids():
            self.write(gid, wf.fn(gid))

    def visit(self, wf: Workfunction) -> None:
        """Call wf(value) for side effects only."""
        for gid in self.gids():
            wf.fn(self.read(gid))

    def reduce_values(self, op, initial):
        acc = initial
        for gid in self.gids():
            acc = op(acc, self.read(gid))
        return acc


class NativeChunk(Chunk):
    """bView aligned with one local bContainer (fast path)."""

    def __init__(self, view, bc, location):
        self.view = view
        self.bc = bc
        self.location = location

    def size(self) -> int:
        return self.bc.size()

    def gids(self):
        return iter(self.bc.domain)

    def read(self, gid):
        self.location.charge_access()
        return self.bc.get(gid)

    def write(self, gid, value) -> None:
        self.location.charge_access()
        self.bc.set(gid, value)

    def _charge(self, wf: Workfunction, per_elem_accesses: int = 2) -> None:
        m = self.location.machine
        per = m.t_access * per_elem_accesses + (wf.cost or m.t_access)
        self.location.charge(per * self.bc.size())

    def map_values(self, wf: Workfunction) -> None:
        self._charge(wf)
        if hasattr(self.bc, "bulk_map"):
            if wf.vector is not None:
                self.bc.bulk_map(wf.vector)
            else:
                data = self.bc.data
                data[:] = [wf.fn(v) for v in data.tolist()]
            return
        for gid in self.gids():
            self.bc.set(gid, wf.fn(self.bc.get(gid)))

    def generate(self, wf: Workfunction) -> None:
        self._charge(wf, per_elem_accesses=1)
        if wf.vector is not None and hasattr(self.bc, "bulk_map"):
            import numpy as np

            dom = self.bc.domain
            if isinstance(dom, RangeDomain):
                gids = np.arange(dom.lo, dom.hi, dtype=np.int64)
            else:
                gids = np.fromiter(dom, dtype=np.int64, count=self.bc.size())
            self.bc.data = np.asarray(wf.vector(gids), dtype=self.bc.data.dtype)
            return
        for gid in self.gids():
            self.bc.set(gid, wf.fn(gid))

    def visit(self, wf: Workfunction) -> None:
        self._charge(wf, per_elem_accesses=1)
        vals = self.bc.values() if hasattr(self.bc, "values") else None
        if vals is not None:
            for v in vals:
                wf.fn(v)
            return
        for gid in self.gids():
            wf.fn(self.bc.get(gid))

    def reduce_values(self, op, initial):
        m = self.location.machine
        self.location.charge((m.t_access * 2) * self.bc.size())
        vals = self.bc.values() if hasattr(self.bc, "values") else None
        if vals is None:
            return super().reduce_values(op, initial)
        if hasattr(vals, "dtype"):  # NumPy fast paths for common reductions
            import operator

            if self.bc.size():
                if op is operator.add:
                    return op(initial, vals.sum().item())
                if op is min:
                    return min(initial, vals.min().item())
                if op is max:
                    return max(initial, vals.max().item())
            vals = vals.tolist()
        acc = initial
        for v in vals:
            acc = op(acc, v)
        return acc


class GenericChunk(Chunk):
    """bView over an arbitrary slice of a view's domain; element access uses
    the view's ADT operations (possibly remote).

    When the view exposes contiguous range accessors (``read_range`` /
    ``write_range``) and the chunk's index domain is a contiguous range, the
    bulk element-transport path is used: the whole slice moves as one slab
    per owning location instead of one RMI per element."""

    def __init__(self, view, index_domain):
        self.view = view
        self.index_domain = index_domain

    def size(self) -> int:
        return self.index_domain.size()

    def gids(self):
        return iter(self.index_domain)

    def read(self, i):
        return self.view.read(i)

    def write(self, i, value) -> None:
        self.view.write(i, value)

    # -- bulk helpers ------------------------------------------------------
    def _bulk_read(self):
        """The chunk's slice as a slab, or None when the bulk path does not
        apply (toggle off, non-contiguous domain, view without ranges)."""
        dom = self.index_domain
        if (not _BULK_TRANSPORT or not isinstance(dom, RangeDomain)
                or not hasattr(self.view, "read_range")):
            return None
        return self.view.read_range(dom.lo, dom.hi)

    def _bulk_write(self, values) -> bool:
        dom = self.index_domain
        if (not _BULK_TRANSPORT or not isinstance(dom, RangeDomain)
                or not hasattr(self.view, "write_range")):
            return False
        return self.view.write_range(dom.lo, values)

    def _charge_wf(self, wf: Workfunction) -> None:
        m = self.view.ctx.machine
        self.view.ctx.charge((wf.cost or m.t_access) * self.size())

    def _charge_access(self, accesses: int) -> None:
        """Per-element sweep cost of a bulk branch — kept identical to the
        native chunk's accounting so bulk transport wins on messages, not on
        element-touch bookkeeping."""
        m = self.view.ctx.machine
        self.view.ctx.charge(m.t_access * accesses * self.size())

    def map_values(self, wf: Workfunction) -> None:
        self._charge_wf(wf)
        vals = self._bulk_read()
        if vals is not None:
            self._charge_access(2)
            if wf.vector is not None:
                out = wf.vector(np.asarray(vals))
            else:
                seq = vals.tolist() if hasattr(vals, "tolist") else vals
                out = [wf.fn(v) for v in seq]
            # the workfunction already ran once per element — never re-run
            # it (it may be stateful); scatter element-wise if no slab write
            if not self._bulk_write(out):
                for k, i in enumerate(self.index_domain):
                    self.view.write(i, out[k])
            return
        for i in self.gids():
            self.view.write(i, wf.fn(self.view.read(i)))

    def generate(self, wf: Workfunction) -> None:
        self._charge_wf(wf)
        dom = self.index_domain
        if (_BULK_TRANSPORT and isinstance(dom, RangeDomain) and dom.size()
                and hasattr(self.view, "write_range")):
            self._charge_access(1)
            if wf.vector is not None:
                out = wf.vector(np.arange(dom.lo, dom.hi, dtype=np.int64))
            else:
                out = [wf.fn(i) for i in dom]
            if not self._bulk_write(out):
                for k, i in enumerate(dom):
                    self.view.write(i, out[k])
            return
        for i in self.gids():
            self.view.write(i, wf.fn(i))

    def visit(self, wf: Workfunction) -> None:
        self._charge_wf(wf)
        vals = self._bulk_read()
        if vals is not None:
            self._charge_access(1)
            seq = vals.tolist() if hasattr(vals, "tolist") else vals
            for v in seq:
                wf.fn(v)
            return
        for i in self.gids():
            wf.fn(self.view.read(i))

    def reduce_values(self, op, initial):
        vals = self._bulk_read()
        if vals is not None:
            self._charge_access(2)
            import operator

            if hasattr(vals, "dtype") and len(vals):
                if op is operator.add:
                    return op(initial, vals.sum().item())
                if op is min:
                    return min(initial, vals.min().item())
                if op is max:
                    return max(initial, vals.max().item())
            acc = initial
            seq = vals.tolist() if hasattr(vals, "tolist") else vals
            for v in seq:
                acc = op(acc, v)
            return acc
        acc = initial
        for i in self.gids():
            acc = op(acc, self.view.read(i))
        return acc


class PView:
    """Base pView (Table II rows share this interface).

    Views cache their *native* chunk lists (bViews aligned with local
    bContainers) keyed by the container's distribution epoch: a committed
    migration or redistribution bumps the epoch, so the next
    ``local_chunks`` call rebuilds the list against the fresh placement
    instead of touching bContainers that moved away.  Balanced/generic
    chunks are never cached — their domains depend on the (possibly
    changing) container size."""

    def __init__(self, container, group=None):
        self.container = container
        self.group = group or container.group
        self._chunk_cache: tuple | None = None

    @property
    def ctx(self):
        return self.container.runtime.current_location

    def _distribution_epoch(self) -> int:
        dist = getattr(self.container, "distribution", None)
        return dist.epoch if dist is not None else 0

    def cached_native_chunks(self, build, extra_key=None) -> list:
        """Native chunk list for this location, rebuilt by ``build()``
        whenever the container's distribution epoch changed (epoch-aware
        metadata refresh).  Views whose chunks snapshot element sets (the
        graph vertex view) pass an ``extra_key`` that also changes when
        the snapshot would."""
        key = (self._distribution_epoch(), extra_key)
        cached = self._chunk_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        chunks = build()
        self._chunk_cache = (key, chunks)
        return chunks

    def size(self) -> int:
        raise NotImplementedError

    def read(self, i):
        raise NotImplementedError

    def write(self, i, value) -> None:
        raise NotImplementedError

    def local_chunks(self) -> list:
        raise NotImplementedError

    def post_execute(self) -> None:
        """Automatic synchronisation point (Ch. VII.H): fence, then let the
        container commit/refresh replicated metadata."""
        sync_views([self])

    # -- domain helpers ----------------------------------------------------
    def balanced_slices(self) -> RangeDomain:
        """This location's share of ``[0, size)`` under a balanced split."""
        n = self.size()
        members = self.group.members
        sizes = balanced_sizes(n, len(members))
        me = members.index(self.ctx.id)
        lo = sum(sizes[:me])
        return RangeDomain(lo, lo + sizes[me])
