"""pGraph views (Ch. XI.E, Figs. 47/48): partitioned, region, inner and
boundary views over a graph's vertices.

* the **partitioned (native) view** exposes each location's vertices;
* a **region view** restricts to an explicit vertex subset;
* the **inner view** holds vertices all of whose neighbours are local;
* the **boundary view** holds vertices with at least one remote neighbour.

Inner/boundary splits let algorithms overlap local work with communication
— inner vertices never generate remote traffic.
"""

from __future__ import annotations

from .base import Chunk, PView, Workfunction


class VertexChunk(Chunk):
    """A set of local vertices; values are vertex properties."""

    def __init__(self, view, bc, vds, location):
        self.view = view
        self.bc = bc
        self.vds = list(vds)
        self.location = location

    def size(self) -> int:
        return len(self.vds)

    def gids(self):
        return iter(self.vds)

    def read(self, vd):
        self.location.charge_access()
        return self.bc.vertex_property(vd)

    def write(self, vd, prop) -> None:
        self.location.charge_access()
        self.bc.set_vertex_property(vd, prop)

    def _charge(self, wf: Workfunction, accesses: int = 2) -> None:
        m = self.location.machine
        per = m.t_access * accesses + (wf.cost or m.t_access)
        self.location.charge(per * len(self.vds))

    def map_values(self, wf: Workfunction) -> None:
        self._charge(wf)
        for vd in self.vds:
            self.bc.set_vertex_property(vd, wf.fn(self.bc.vertex_property(vd)))

    def generate(self, wf: Workfunction) -> None:
        self._charge(wf, accesses=1)
        for vd in self.vds:
            self.bc.set_vertex_property(vd, wf.fn(vd))

    def visit(self, wf: Workfunction) -> None:
        self._charge(wf, accesses=1)
        for vd in self.vds:
            wf.fn(self.bc.vertex_property(vd))

    def reduce_values(self, op, initial):
        m = self.location.machine
        self.location.charge(m.t_access * 2 * len(self.vds))
        acc = initial
        for vd in self.vds:
            acc = op(acc, self.bc.vertex_property(vd))
        return acc


class GraphView(PView):
    """``graph_pview``: the partitioned (native) vertex view."""

    def __init__(self, pgraph, group=None):
        super().__init__(pgraph, group)

    def size(self) -> int:
        return self.container.get_num_vertices()

    def read(self, vd):
        return self.container.vertex_property(vd)

    def write(self, vd, prop) -> None:
        self.container.set_vertex_property(vd, prop)

    def _select(self, bc) -> list:
        return bc.vertices()

    def local_chunks(self) -> list:
        # never cached: the chunks snapshot per-bContainer vertex (and,
        # in the region subclasses, edge-derived) membership, which can
        # change without either the distribution epoch or the local size
        # changing — e.g. delete_vertex + add_vertex, or add_edge moving
        # a vertex between inner and boundary sets
        loc = self.ctx
        return [VertexChunk(self, bc, self._select(bc), loc)
                for bc in self.container.local_bcontainers()]


class RegionView(GraphView):
    """Vertex-subset (region) view (Fig. 48b)."""

    def __init__(self, pgraph, vds, group=None):
        super().__init__(pgraph, group)
        self._region = set(vds)

    def size(self) -> int:
        return len(self._region)

    def _select(self, bc) -> list:
        return [vd for vd in bc.vertices() if vd in self._region]


class InnerView(GraphView):
    """Vertices whose neighbours are all local (Fig. 48c)."""

    def _select(self, bc) -> list:
        cont = self.container
        loc = self.ctx
        out = []
        for vd in bc.vertices():
            loc.charge_lookup()
            if all(cont._dist.is_local(t) for t in bc.adjacents(vd)):
                out.append(vd)
        return out


class BoundaryView(GraphView):
    """Vertices with at least one remote neighbour (Fig. 48d)."""

    def _select(self, bc) -> list:
        cont = self.container
        loc = self.ctx
        out = []
        for vd in bc.vertices():
            loc.charge_lookup()
            if any(not cont._dist.is_local(t) for t in bc.adjacents(vd)):
                out.append(vd)
        return out
