"""One-dimensional pViews (Table II): array_1d, array_1d_ro, balanced,
native, strided_1D and transform views (the overlap view lives with the
other composed views in :mod:`repro.views.derived_views`)."""

from __future__ import annotations

from ..core.domains import RangeDomain
from ..core.partitions import balanced_sizes
from .base import Chunk, GenericChunk, NativeChunk, PView


class Array1DView(PView):
    """``array_1d_pview``: random read/write access to an indexed container
    through an integer domain ``[0, n)`` and a mapping function F."""

    writable = True

    def __init__(self, container, domain: RangeDomain | None = None,
                 mapping=None, group=None):
        super().__init__(container, group)
        if domain is None:
            cdom = container.domain
            domain = RangeDomain(0, cdom.size())
        self.domain = domain
        self.mapping = mapping  # view index -> container GID (None: identity)

    def size(self) -> int:
        return self.domain.size()

    def _gid(self, i):
        if not self.domain.contains_gid(i):
            raise IndexError(f"view index {i} outside {self.domain}")
        return i if self.mapping is None else self.mapping(i)

    def read(self, i):
        return self.container.get_element(self._gid(i))

    def write(self, i, value) -> None:
        if not self.writable:
            raise TypeError("read-only view")
        self.container.set_element(self._gid(i), value)

    def __getitem__(self, i):
        return self.read(i)

    def __setitem__(self, i, value):
        self.write(i, value)

    # -- bulk element transport -------------------------------------------
    def read_range(self, lo: int, hi: int):
        """Slab read of view indices ``[lo, hi)`` — one bulk RMI per owning
        location.  Returns None when the view cannot map the range
        contiguously (non-identity mapping) so callers fall back to the
        element interface."""
        if self.mapping is not None or not hasattr(self.container,
                                                   "get_range"):
            return None
        if hi > lo and not (self.domain.contains_gid(lo)
                            and self.domain.contains_gid(hi - 1)):
            raise IndexError(f"range [{lo}, {hi}) outside {self.domain}")
        return self.container.get_range(lo, hi)

    def write_range(self, lo: int, values) -> bool:
        """Slab write starting at view index ``lo``; returns False when the
        bulk path does not apply (nothing is written then)."""
        if not self.writable:
            raise TypeError("read-only view")
        if self.mapping is not None or not hasattr(self.container,
                                                   "set_range"):
            return False
        n = len(values)
        if n and not (self.domain.contains_gid(lo)
                      and self.domain.contains_gid(lo + n - 1)):
            raise IndexError(f"range [{lo}, {lo + n}) outside {self.domain}")
        self.container.set_range(lo, values)
        return True

    def local_chunks(self) -> list:
        # identity-mapped full-domain views over GID-addressed storage align
        # with the container's bContainers (fast native path); containers
        # with offset-addressed or shifting storage (pVector) go through the
        # element interface instead
        if (self.mapping is None
                and getattr(self.container, "supports_native_1d", True)
                and self.size() == self.container.domain.size()):
            loc = self.ctx
            return self.cached_native_chunks(
                lambda: [NativeChunk(self, bc, loc)
                         for bc in self.container.local_bcontainers()])
        return BalancedView(self).local_chunks()


class Array1DROView(Array1DView):
    """``array_1d_ro_pview``: write operations are rejected."""

    writable = False


def native_view(container, group=None) -> Array1DView:
    """``native_pview``: partitioned exactly like the container (Ch. III.A);
    the high-performance default for pAlgorithms."""
    return Array1DView(container, group=group)


class BalancedView(PView):
    """``balanced_pview``: the data set split into #locations contiguous
    chunks regardless of the underlying distribution.  Access goes through
    the base view, so misalignment costs remote traffic (the locality
    ablation of the evaluation)."""

    def __init__(self, base_view: PView, group=None):
        super().__init__(base_view.container, group or base_view.group)
        self.base = base_view

    def size(self) -> int:
        return self.base.size()

    def read(self, i):
        return self.base.read(i)

    def write(self, i, value) -> None:
        self.base.write(i, value)

    def read_range(self, lo: int, hi: int):
        base = getattr(self.base, "read_range", None)
        return None if base is None else base(lo, hi)

    def write_range(self, lo: int, values) -> bool:
        base = getattr(self.base, "write_range", None)
        return False if base is None else base(lo, values)

    def local_chunks(self) -> list:
        n = self.size()
        members = self.group.members
        sizes = balanced_sizes(n, len(members))
        me = members.index(self.ctx.id)
        lo = sum(sizes[:me])
        dom = RangeDomain(lo, lo + sizes[me])
        return [GenericChunk(self.base, dom)] if dom.size() else []


class StridedView(PView):
    """``strided_1D_pview``: every ``stride``-th element from ``start``."""

    def __init__(self, base_view: PView, stride: int, start: int = 0,
                 group=None):
        super().__init__(base_view.container, group or base_view.group)
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.base = base_view
        self.stride = stride
        self.start = start
        n = base_view.size()
        self._n = max(0, (n - start + stride - 1) // stride)

    def size(self) -> int:
        return self._n

    def _map(self, i: int) -> int:
        return self.start + i * self.stride

    def read(self, i):
        return self.base.read(self._map(i))

    def write(self, i, value) -> None:
        self.base.write(self._map(i), value)

    def local_chunks(self) -> list:
        members = self.group.members
        sizes = balanced_sizes(self._n, len(members))
        me = members.index(self.ctx.id)
        lo = sum(sizes[:me])
        dom = RangeDomain(lo, lo + sizes[me])
        return [GenericChunk(self, dom)] if dom.size() else []


class TransformView(PView):
    """``transform_pview``: overrides *read* with a user function of the
    underlying value (Table II row O); writes are disabled."""

    def __init__(self, base_view: PView, fn, group=None):
        super().__init__(base_view.container, group or base_view.group)
        self.base = base_view
        self.fn = fn

    def size(self) -> int:
        return self.base.size()

    def read(self, i):
        return self.fn(self.base.read(i))

    def write(self, i, value) -> None:
        raise TypeError("transform views are read-only")

    def local_chunks(self) -> list:
        chunks = []
        for base_chunk in self.base.local_chunks():
            chunks.append(_TransformChunk(base_chunk, self.fn))
        return chunks


class _TransformChunk(Chunk):
    def __init__(self, base: Chunk, fn):
        self.base = base
        self.fn = fn

    def size(self) -> int:
        return self.base.size()

    def gids(self):
        return self.base.gids()

    def read(self, gid):
        return self.fn(self.base.read(gid))

    def write(self, gid, value) -> None:
        raise TypeError("transform views are read-only")

    def visit(self, wf) -> None:
        from .base import Workfunction

        inner = Workfunction(lambda v: wf.fn(self.fn(v)), cost=wf.cost)
        self.base.visit(inner)

    def reduce_values(self, op, initial):
        f = self.fn
        return self.base.reduce_values(lambda acc, v: op(acc, f(v)), initial)


# OverlapView moved to repro.views.derived_views (it is a DerivedView now:
# windows materialize through the slab path, halos included); re-exported
# here for backwards compatibility.
from .derived_views import OverlapView  # noqa: E402,F401
