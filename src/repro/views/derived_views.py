"""Derived (composed) pViews: overlap, segmented, zip and slice views.

Table II's view set is closed under composition: a view can be built over
another view instead of directly over a pContainer, and the stack keeps
the V = (C, D, F, O) contract at every level.  :class:`DerivedView` is the
shared base: it records the tuple of underlying views (``bases``), reuses
the plain :class:`~repro.views.base.GenericChunk` machinery for its
bViews, and — crucially — keys any cached chunk metadata to the *composed*
distribution epoch (the tuple of every base's epoch, recursively), so a
migration or rebalance of any container anywhere under the stack
invalidates derived chunk lists exactly like it invalidates native ones.

The concrete views:

* :class:`OverlapView` (Fig. 2) — element *i* is the window
  ``base[c*i, c*i + l + c + r)``.  Windows materialize through the slab
  transport (``read_range``): one bulk RMI per owning location covers all
  the windows a chunk needs, boundary (halo) elements included — never
  one RMI per element.  This is the stencil idiom; the SNIPPETS.md
  exemplar (``vw_overlap.cc``) is exactly this view.
* :class:`SegmentedView` — the base view split into contiguous segments
  by a partitioner; element *i* is the segment itself (a
  :class:`SliceView`), so algorithms can recurse into segments — e.g. an
  outer Paragraph task spawning an inner Paragraph per segment.
* :class:`ZipView` — N equal-sized views elementwise: reads return
  tuples, writes scatter tuples, and the bulk path zips the component
  slabs.
* :class:`SliceView` — a contiguous re-indexed sub-range of a base view;
  the segment element type, also useful standalone.
"""

from __future__ import annotations

import numpy as np

from ..core.domains import RangeDomain
from .base import (
    GenericChunk,
    PView,
    bulk_transport_enabled,
    slab_passthrough,
    sync_views,
)


def slab_read(view, lo: int, hi: int):
    """Read view indices ``[lo, hi)`` through the bulk transport when the
    view supports it (one slab per owning location), element-wise
    otherwise.  Returns a plain list — except under a zero-copy
    multiprocessing backend (:func:`~repro.views.base.slab_passthrough`),
    where an ndarray slab stays an ndarray (possibly a read-only view over
    a shared-memory segment): lowering it to a list would copy every
    element and forfeit the zero-copy receive.  Callers treat the result
    as a read-only sequence; mutation goes through ``slab_write``."""
    rr = getattr(view, "read_range", None)
    if bulk_transport_enabled() and rr is not None and hi > lo:
        vals = rr(lo, hi)
        if vals is not None:
            if isinstance(vals, np.ndarray) and slab_passthrough(view):
                return vals
            return vals.tolist() if hasattr(vals, "tolist") else list(vals)
    return [view.read(i) for i in range(lo, hi)]


def slab_write(view, lo: int, values) -> None:
    """Write ``values`` at consecutive view indices from ``lo``, bulk if
    possible."""
    wr = getattr(view, "write_range", None)
    if bulk_transport_enabled() and wr is not None and len(values):
        if wr(lo, values):
            return
    for k, v in enumerate(values):
        view.write(lo + k, v)


class DerivedView(PView):
    """A view over one or more underlying views (the composition base).

    ``container``/``group`` default to the first base's, so a derived view
    participates in fences and ``post_execute`` like any other view; the
    closing synchronisation commits *every* distinct container under the
    stack (:meth:`post_execute` syncs the bases too).  The distribution
    epoch of a derived view is the tuple of its bases' epochs, recursively
    — any epoch bump below invalidates chunk caches above."""

    def __init__(self, bases, group=None):
        bases = tuple(bases)
        if not bases:
            raise ValueError("derived view needs at least one base view")
        super().__init__(bases[0].container, group or bases[0].group)
        self.bases = bases

    def _distribution_epoch(self):
        return tuple(b._distribution_epoch() for b in self.bases)

    def post_execute(self) -> None:
        sync_views((self,) + self.bases)

    def _balanced_chunks(self, extra_key=None) -> list:
        """The default bView split: this location's balanced share of the
        derived domain as one GenericChunk, cached keyed to the composed
        epoch (plus the current size, in case a base grows)."""

        def build():
            dom = self.balanced_slices()
            return [GenericChunk(self, dom)] if dom.size() else []

        return self.cached_native_chunks(build, extra_key=(self.size(),
                                                           extra_key))


class SliceView(DerivedView):
    """Contiguous sub-range ``[lo, hi)`` of a base view, re-indexed from 0.

    Writable iff the base is; the slab accessors delegate with the offset
    applied, so bulk transport keeps working through slices."""

    def __init__(self, base_view, lo: int, hi: int, group=None):
        if not 0 <= lo <= hi <= base_view.size():
            raise IndexError(
                f"slice [{lo}, {hi}) outside base of size {base_view.size()}")
        super().__init__((base_view,), group)
        self.lo, self.hi = lo, hi

    @property
    def base(self):
        return self.bases[0]

    def size(self) -> int:
        return self.hi - self.lo

    def _check(self, i: int) -> int:
        if not 0 <= i < self.hi - self.lo:
            raise IndexError(i)
        return self.lo + i

    def read(self, i):
        return self.base.read(self._check(i))

    def write(self, i, value) -> None:
        self.base.write(self._check(i), value)

    def read_range(self, lo: int, hi: int):
        if not 0 <= lo <= hi <= self.size():
            raise IndexError(f"range [{lo}, {hi}) outside slice")
        rr = getattr(self.base, "read_range", None)
        return None if rr is None else rr(self.lo + lo, self.lo + hi)

    def write_range(self, lo: int, values) -> bool:
        if not 0 <= lo <= lo + len(values) <= self.size():
            raise IndexError(
                f"range [{lo}, {lo + len(values)}) outside slice")
        wr = getattr(self.base, "write_range", None)
        return False if wr is None else wr(self.lo + lo, values)

    def whole_chunk(self) -> GenericChunk:
        """The entire slice as one bView — the unit an inner Paragraph
        task processes when this slice is a segment owned by one
        location."""
        return GenericChunk(self, RangeDomain(0, self.size()))

    def local_chunks(self) -> list:
        return self._balanced_chunks(extra_key=("slice", self.lo, self.hi))


class OverlapView(DerivedView):
    """``overlap_pview`` (Fig. 2): element *i* is the window
    ``base[c*i, c*i + l + c + r)`` with core ``c``, left ``l``, right ``r``.

    Reads return the window as a list.  Windows materialize through the
    slab path: one ``read_range`` over the union of base elements a chunk
    of windows covers — halo elements ride the same slab as the cores, so
    a chunk never pays per-element RMIs for its boundaries."""

    def __init__(self, base_view, c: int = 1, l: int = 0, r: int = 0,  # noqa: E741
                 group=None):
        if c < 1 or l < 0 or r < 0:
            raise ValueError("need c >= 1, l >= 0, r >= 0")
        super().__init__((base_view,), group)
        self.c, self.l, self.r = c, l, r
        n = base_view.size()
        w = l + c + r
        self._n = 0 if n < w else (n - w) // c + 1

    @property
    def base(self):
        return self.bases[0]

    @property
    def window(self) -> int:
        return self.l + self.c + self.r

    def size(self) -> int:
        return self._n

    def base_span(self, wlo: int, whi: int) -> RangeDomain:
        """The base index range windows ``[wlo, whi)`` cover (cores plus
        halos)."""
        if whi <= wlo:
            return RangeDomain(0, 0)
        return RangeDomain(self.c * wlo, self.c * (whi - 1) + self.window)

    def materialize(self, wlo: int, whi: int) -> tuple:
        """One slab read of the base span of windows ``[wlo, whi)``;
        returns ``(base_lo, values)``.  This is the halo-materialization
        primitive the stencil rides: boundary elements arrive in the same
        bulk message as the cores."""
        span = self.base_span(wlo, whi)
        vals = slab_read(self.base, span.lo, span.hi)
        if isinstance(vals, np.ndarray) and not vals.flags.writeable:
            # a zero-copy received slab is only valid until this
            # location's next fence, but a materialized halo is held
            # across dependence-ordered neighbour writes (the data-flow
            # stencil consumes it over several iterations) — snapshot it
            vals = vals.copy()
        return span.lo, vals

    def read(self, i) -> list:
        if not 0 <= i < self._n:
            raise IndexError(i)
        lo = self.c * i
        return slab_read(self.base, lo, lo + self.window)

    def read_range(self, wlo: int, whi: int) -> list:
        """All windows ``[wlo, whi)``, cut from a single base slab."""
        if not 0 <= wlo <= whi <= self._n:
            raise IndexError(f"range [{wlo}, {whi}) outside [0, {self._n})")
        base_lo, flat = self.materialize(wlo, whi)
        w = self.window
        out = []
        for i in range(wlo, whi):
            off = self.c * i - base_lo
            out.append(flat[off:off + w])
        return out

    def write(self, i, value) -> None:
        raise TypeError("overlap views are read-only")

    def local_chunks(self) -> list:
        return self._balanced_chunks(extra_key=("overlap", self.c, self.l,
                                                self.r))


class SegmentedView(DerivedView):
    """The base view split into contiguous segments; element *i* is the
    segment itself (a :class:`SliceView`), so a workfunction receives a
    *view* and may recurse — visit it, reduce it, or hand it to an inner
    Paragraph.  ``partitioner`` is either a list of segment lengths
    (summing to the base size) or a list of ``(lo, hi)`` pairs."""

    def __init__(self, base_view, partitioner, group=None):
        super().__init__((base_view,), group)
        self.segments = _normalize_segments(base_view.size(), partitioner)

    @property
    def base(self):
        return self.bases[0]

    def size(self) -> int:
        return len(self.segments)

    def read(self, i) -> SliceView:
        lo, hi = self.segments[i]
        return SliceView(self.base, lo, hi, group=self.group)

    def write(self, i, value) -> None:
        raise TypeError(
            "segmented views are read-only; write through the segments")

    def segment_domain(self, i) -> RangeDomain:
        lo, hi = self.segments[i]
        return RangeDomain(lo, hi)

    def local_chunks(self) -> list:
        return self._balanced_chunks(extra_key=("segmented",
                                                tuple(self.segments)))


def _normalize_segments(base_n: int, partitioner) -> list:
    items = list(partitioner)
    segs = []
    if items and isinstance(items[0], (tuple, list)):
        for lo, hi in items:
            if not 0 <= lo <= hi <= base_n:
                raise ValueError(f"segment [{lo}, {hi}) outside [0, {base_n})")
            segs.append((int(lo), int(hi)))
        return segs
    off = 0
    for ln in items:
        if ln < 0:
            raise ValueError("segment lengths must be >= 0")
        segs.append((off, off + int(ln)))
        off += int(ln)
    if off != base_n:
        raise ValueError(
            f"segment lengths sum to {off}, base view has {base_n} elements")
    return segs


class ZipView(DerivedView):
    """N equal-sized views zipped elementwise: ``read(i)`` returns the
    tuple of base values, ``write(i, tuple)`` scatters it, and the slab
    accessors zip/unzip whole component slabs so the bulk path survives
    composition."""

    def __init__(self, *views, group=None):
        if not views:
            raise ValueError("zip_view needs at least one view")
        n = views[0].size()
        if any(v.size() != n for v in views[1:]):
            raise ValueError("zip_view requires equal-sized views")
        super().__init__(views, group)
        self._n = n

    def size(self) -> int:
        return self._n

    def read(self, i) -> tuple:
        return tuple(b.read(i) for b in self.bases)

    def write(self, i, value) -> None:
        if len(value) != len(self.bases):
            raise ValueError(
                f"zip write needs a {len(self.bases)}-tuple, got {value!r}")
        for b, v in zip(self.bases, value):
            b.write(i, v)

    def read_range(self, lo: int, hi: int) -> list:
        cols = [slab_read(b, lo, hi) for b in self.bases]
        return list(zip(*cols)) if hi > lo else []

    def write_range(self, lo: int, values) -> bool:
        if not len(values):
            return True
        cols = list(zip(*values))
        for b, col in zip(self.bases, cols):
            slab_write(b, lo, list(col))
        return True

    def local_chunks(self) -> list:
        return self._balanced_chunks(extra_key="zip")


# -- factories (the names algorithms use) -----------------------------------

def overlap_view(view, core: int = 1, left: int = 0,
                 right: int = 0, group=None) -> OverlapView:
    """Sliding windows of ``left + core + right`` base elements advancing
    by ``core`` (Fig. 2)."""
    return OverlapView(view, c=core, l=left, r=right, group=group)


def segmented_view(view, partitioner, group=None) -> SegmentedView:
    """Segments of ``view`` as elements; ``partitioner`` is a list of
    lengths or of ``(lo, hi)`` pairs."""
    return SegmentedView(view, partitioner, group=group)


def zip_view(*views, group=None) -> ZipView:
    """Equal-sized views zipped elementwise into a view of tuples."""
    return ZipView(*views, group=group)


__all__ = ["DerivedView", "OverlapView", "SegmentedView", "SliceView",
           "ZipView", "overlap_view", "segmented_view", "slab_read",
           "slab_write", "zip_view"]
