"""pMatrix views (Ch. III.A): row, column and linearised views.

"The same pMatrix can be 'viewed' (or used) as a row-major or column-major
matrix or even as linearized vector" — these adaptors implement exactly
that, plus the rows-as-elements view used by the composition study
(Fig. 62, row minima).
"""

from __future__ import annotations

import numpy as np

from ..core.domains import RangeDomain
from .base import Chunk, GenericChunk, PView, Workfunction


class MatrixLinearView(PView):
    """``array_2d`` linearised to 1D in the matrix's domain order."""

    def __init__(self, pmatrix, group=None):
        super().__init__(pmatrix, group)
        self._dom = pmatrix.domain

    def size(self) -> int:
        return self._dom.size()

    def read(self, i):
        return self.container.get_element(self._dom.gid_at(i))

    def write(self, i, value) -> None:
        self.container.set_element(self._dom.gid_at(i), value)

    def local_chunks(self) -> list:
        loc = self.ctx
        return self.cached_native_chunks(
            lambda: [_MatrixBlockChunk(self, bc, loc)
                     for bc in self.container.local_bcontainers()])


class _MatrixBlockChunk(Chunk):
    """All elements of one local 2D block."""

    def __init__(self, view, bc, location):
        self.view = view
        self.bc = bc
        self.location = location

    def size(self) -> int:
        return self.bc.size()

    def gids(self):
        return iter(self.bc.domain)

    def read(self, gid):
        self.location.charge_access()
        return self.bc.get(gid)

    def write(self, gid, value) -> None:
        self.location.charge_access()
        self.bc.set(gid, value)

    def _charge(self, wf: Workfunction, accesses: int = 2) -> None:
        m = self.location.machine
        per = m.t_access * accesses + (wf.cost or m.t_access)
        self.location.charge(per * self.bc.size())

    def map_values(self, wf: Workfunction) -> None:
        self._charge(wf)
        if wf.vector is not None:
            self.bc.data = np.asarray(wf.vector(self.bc.data))
            return
        flat = self.bc.data.reshape(-1)
        flat[:] = [wf.fn(v) for v in flat.tolist()]

    def generate(self, wf: Workfunction) -> None:
        self._charge(wf, accesses=1)
        for gid in self.gids():
            self.bc.set(gid, wf.fn(gid))

    def visit(self, wf: Workfunction) -> None:
        self._charge(wf, accesses=1)
        for v in self.bc.data.reshape(-1).tolist():
            wf.fn(v)

    def reduce_values(self, op, initial):
        import operator

        m = self.location.machine
        self.location.charge(m.t_access * 2 * self.bc.size())
        if self.bc.size():
            if op is operator.add:
                return op(initial, self.bc.data.sum().item())
            if op is min:
                return min(initial, self.bc.data.min().item())
            if op is max:
                return max(initial, self.bc.data.max().item())
        acc = initial
        for v in self.bc.data.reshape(-1).tolist():
            acc = op(acc, v)
        return acc


class MatrixRowsView(PView):
    """Rows-as-elements view: element *r* is row *r* (a list of values).

    With a row-partitioned matrix (pr = P, pc = 1) every row is a contiguous
    local NumPy slice, which is why pMatrix wins the Fig. 62 comparison.
    """

    def __init__(self, pmatrix, group=None):
        super().__init__(pmatrix, group)

    def size(self) -> int:
        return self.container.rows

    def read(self, r):
        return self.container.get_row(r)

    def write(self, r, values) -> None:
        for c, v in enumerate(values):
            self.container.set_element((r, c), v)

    def local_chunks(self) -> list:
        loc = self.ctx
        chunks = []
        for bc in self.container.local_bcontainers():
            if bc.domain.c0 == 0 and bc.domain.c1 == self.container.cols:
                chunks.append(_LocalRowsChunk(self, bc, loc))
            else:
                # block does not span full rows: fall back to generic access
                dom = RangeDomain(bc.domain.r0, bc.domain.r1)
                chunks.append(GenericChunk(self, dom))
        return chunks


class MatrixColsView(PView):
    """Columns-as-elements view: element *c* is column *c* (a list).

    The dual of :class:`MatrixRowsView`: local and vectorised when the
    matrix is column-partitioned (pr = 1, pc = P) — "the same pMatrix ...
    'viewed' as a row-major or column-major matrix" (Ch. III.A)."""

    def __init__(self, pmatrix, group=None):
        super().__init__(pmatrix, group)

    def size(self) -> int:
        return self.container.cols

    def read(self, c):
        return self.container.get_col(c)

    def write(self, c, values) -> None:
        for r, v in enumerate(values):
            self.container.set_element((r, c), v)

    def local_chunks(self) -> list:
        loc = self.ctx
        chunks = []
        for bc in self.container.local_bcontainers():
            if bc.domain.r0 == 0 and bc.domain.r1 == self.container.rows:
                chunks.append(_LocalColsChunk(self, bc, loc))
            else:
                dom = RangeDomain(bc.domain.c0, bc.domain.c1)
                chunks.append(GenericChunk(self, dom))
        return chunks


class _LocalColsChunk(Chunk):
    """Columns fully contained in one local block."""

    def __init__(self, view, bc, location):
        self.view = view
        self.bc = bc
        self.location = location

    def size(self) -> int:
        return self.bc.domain.cols

    def gids(self):
        return iter(range(self.bc.domain.c0, self.bc.domain.c1))

    def read(self, c):
        self.location.charge_access(self.bc.domain.rows)
        return self.bc.col_slice(c).tolist()

    def write(self, c, values) -> None:
        self.location.charge_access(self.bc.domain.rows)
        self.bc.set_col_slice(c, values)

    def visit(self, wf: Workfunction) -> None:
        m = self.location.machine
        rows = self.bc.domain.rows
        self.location.charge(
            (m.t_access * rows + (wf.cost or m.t_access)) * self.size())
        for c in self.gids():
            wf.fn(self.bc.col_slice(c))

    def reduce_values(self, op, initial):
        acc = initial
        for c in self.gids():
            acc = op(acc, self.read(c))
        return acc

    def col_reduce(self, reducer) -> list:
        """(column index, reducer(column)) per local column — vectorised."""
        m = self.location.machine
        self.location.charge(m.t_access * self.bc.size())
        vals = reducer(self.bc.data, 0)
        return list(zip(self.gids(), np.asarray(vals).tolist()))


class _LocalRowsChunk(Chunk):
    """Rows fully contained in one local block (vectorised row ops)."""

    def __init__(self, view, bc, location):
        self.view = view
        self.bc = bc
        self.location = location

    def size(self) -> int:
        return self.bc.domain.rows

    def gids(self):
        return iter(range(self.bc.domain.r0, self.bc.domain.r1))

    def read(self, r):
        self.location.charge_access(self.bc.domain.cols)
        return self.bc.row_slice(r).tolist()

    def write(self, r, values) -> None:
        self.location.charge_access(self.bc.domain.cols)
        self.bc.set_row_slice(r, values)

    def visit(self, wf: Workfunction) -> None:
        m = self.location.machine
        cols = self.bc.domain.cols
        self.location.charge(
            (m.t_access * cols + (wf.cost or m.t_access)) * self.size())
        for r in self.gids():
            wf.fn(self.bc.row_slice(r))

    def reduce_values(self, op, initial):
        acc = initial
        for r in self.gids():
            acc = op(acc, self.read(r))
        return acc

    def row_reduce(self, reducer) -> list:
        """(row index, reducer(row)) for each local row — vectorised."""
        m = self.location.machine
        self.location.charge(m.t_access * self.bc.size())
        vals = reducer(self.bc.data, 1)
        return list(zip(self.gids(), np.asarray(vals).tolist()))
