"""STAPL pViews (Ch. III.A, Table II)."""

from .array_views import (
    Array1DROView,
    Array1DView,
    BalancedView,
    OverlapView,
    StridedView,
    TransformView,
    native_view,
)
from .base import Chunk, GenericChunk, NativeChunk, PView, Workfunction, as_wf
from .graph_views import BoundaryView, GraphView, InnerView, RegionView, VertexChunk
from .list_views import ListChunk, ListView, StaticListView
from .map_views import MapChunk, MapView, SetView
from .matrix_views import MatrixColsView, MatrixLinearView, MatrixRowsView
