"""STAPL pViews (Ch. III.A, Table II): abstract data types decoupling a
pAlgorithm from the concrete pContainer that stores its data.

A pView is the tuple V = (C, D, F, O): a reference to a collection C, a
domain D of view indices, a mapping function F from indices to container
GIDs, and the ADT operations O.  For parallel execution a view partitions
itself into *base views* (chunks); each location asks for its share via
``local_chunks()`` and the executor processes them task-style.  Views whose
chunks align with the container's distribution run vectorised local sweeps;
misaligned views go through the shared-object interface — remotely if
needed, and in whole-slab bulk transfers when the view supports contiguous
``read_range`` / ``write_range`` accessors (see :mod:`repro.views.base`).

What each view models:

* ``Array1DView`` / ``Array1DROView`` (:mod:`.array_views`) — random
  read/write (resp. read-only) access to an indexed container through an
  integer domain ``[0, n)``; the ``native_view`` helper returns the
  container-aligned flavour that pAlgorithms default to.
* ``BalancedView`` — the data split into #locations equal contiguous
  chunks regardless of the underlying distribution; the alignment ablation
  measures what that flexibility costs in remote traffic.
* ``StridedView`` — every k-th element; ``TransformView`` — reads pass
  through a user function (Table II row O).
* Derived (composed) views (:mod:`.derived_views`) — views over views,
  all sharing the ``DerivedView`` base whose chunk caches are keyed to
  the *composed* distribution epoch: ``OverlapView`` — sliding windows
  with core/left/right overlap (Fig. 2), the stencil idiom, halos riding
  the slab transport; ``SegmentedView`` — contiguous segments as
  elements, each itself a view (``SliceView``) an inner Paragraph can
  recurse into; ``ZipView`` — equal-sized views zipped elementwise.
* ``MatrixRowsView`` / ``MatrixColsView`` / ``MatrixLinearView``
  (:mod:`.matrix_views`) — the same pMatrix viewed as rows-as-elements,
  columns-as-elements, or a linearised 1D array ("the same pMatrix can be
  'viewed' as a row-major or column-major matrix or even as linearized
  vector", Ch. III.A).
* ``ListView`` / ``StaticListView`` (:mod:`.list_views`) — ordered
  traversal of pList segments by stable (bcid, seq) handles.
* ``MapView`` / ``SetView`` (:mod:`.map_views`) — associative views:
  key-addressed chunks over the hash/range-partitioned containers.
* ``GraphView`` plus ``InnerView`` / ``BoundaryView`` / ``RegionView``
  (:mod:`.graph_views`) — vertex-set views for pGraph algorithms,
  separating partition-interior vertices from boundary vertices so
  computation/communication can be overlapped.
"""

from .array_views import (
    Array1DROView,
    Array1DView,
    BalancedView,
    StridedView,
    TransformView,
    native_view,
)
from .derived_views import (
    DerivedView,
    OverlapView,
    SegmentedView,
    SliceView,
    ZipView,
    overlap_view,
    segmented_view,
    slab_read,
    slab_write,
    zip_view,
)
from .base import (
    Chunk,
    GenericChunk,
    NativeChunk,
    PView,
    Workfunction,
    as_wf,
    bulk_transport_enabled,
    set_bulk_transport,
    slab_passthrough,
)
from .graph_views import BoundaryView, GraphView, InnerView, RegionView, VertexChunk
from .list_views import ListChunk, ListView, StaticListView
from .map_views import MapChunk, MapView, SetView
from .matrix_views import MatrixColsView, MatrixLinearView, MatrixRowsView
