"""Benchmarks regenerating the composed-container studies (PR 7): nested
PARAGRAPHs over overlap/segmented views, and the perf-trajectory kernel
set.  The acceptance contracts ride the drivers' own assertions
(``nested_study`` raises unless the stencil is byte-identical with >= 2x
fewer fences and the per-bucket sort runs real inner graphs); the checks
below re-assert them on the regenerated rows so a silent driver edit
cannot relax them."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_nested_parallelism_study(benchmark):
    res = run_and_report(benchmark, ev.nested_study, n_per_loc=1024)
    rows = {(r[0], r[1]): r for r in res.rows}
    fences = res.columns.index("fences")
    f_base = rows[("stencil", "fenced")][fences]
    f_df = rows[("stencil", "overlap_dataflow")][fences]
    assert f_base >= 2 * max(1, f_df)
    npgs = res.columns.index("nested_pgs")
    ntasks = res.columns.index("nested_tasks")
    nested = rows[("bucket_sort", "nested_buckets")]
    assert nested[npgs] >= 8 and nested[ntasks] > 0


def test_paragraph_multiprocessing_backend(benchmark):
    res = run_and_report(benchmark, ev.paragraph_backend_study,
                         n_per_loc=500)
    wall = res.columns.index("wall_s")
    assert all(r[wall] > 0 for r in res.rows)


def test_bench_trajectory_suite(benchmark):
    res = run_and_report(benchmark, ev.bench_suite, n_per_loc=1024)
    assert len(res.rows) == len(ev.bench.KERNELS)
