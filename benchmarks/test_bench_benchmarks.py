"""Benchmarks for the scalability sweep suite (PR 8): the strong/weak
sweep driver, the toggle ablations, and the consistency contract between
the sweep and the single-P trajectory suite the gate compares against."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_sweep_p1_rows_match_single_p_suite(benchmark):
    """The sweep's P=1 rows and ``bench_suite(P=1)`` are the same
    measurement — a sweep refactor that drifts from the gated snapshot
    path must show up here."""
    res = run_and_report(benchmark, ev.bench_sweep_suite, p_list=(1, 2),
                         n_strong=2048, n_per_loc=2048)
    single = ev.bench_suite(P=1, n_per_loc=2048)
    single_rows = {r[0]: r for r in single.rows}
    weak_p1 = {r[1]: r for r in res.rows if r[0] == "weak" and r[2] == 1}
    assert weak_p1.keys() == single_rows.keys()
    for kernel, row in weak_p1.items():
        # N, time_us, physical_msgs, bytes_sent, fences all identical
        assert row[3:8] == single_rows[kernel][1:6], kernel
        assert row[8] == 1.0 and row[9] == 1.0  # speedup/efficiency base


def test_sweep_has_both_modes_with_scaling_columns(benchmark):
    res = run_and_report(benchmark, ev.bench_sweep_suite,
                         p_list=(1, 2, 4), n_strong=4096, n_per_loc=512)
    modes = {r[0] for r in res.rows}
    assert modes == {"strong", "weak"}
    n_i = res.columns.index("N")
    strong_n = {r[n_i] for r in res.rows if r[0] == "strong"}
    assert strong_n == {4096}  # fixed total N
    weak_n = sorted({r[n_i] for r in res.rows if r[0] == "weak"})
    assert weak_n == [512, 1024, 2048]  # N grows with P
    eff = res.columns.index("efficiency")
    assert all(r[eff] > 0 for r in res.rows)


def test_ablation_suite_flips_each_toggle(benchmark):
    res = run_and_report(benchmark, ev.bench_ablation_suite, P=4,
                         n_per_loc=256)
    toggles = {r[0] for r in res.rows}
    assert toggles == {"default"} | set(ev.bench.ABLATIONS)
    ratio = res.columns.index("time_vs_default")
    defaults = [r for r in res.rows if r[0] == "default"]
    assert all(r[ratio] == 1.0 for r in defaults)
    # dataflow off falls back to fenced algorithms: never faster than
    # the default on the stencil kernel
    rows = {(r[0], r[1]): r for r in res.rows}
    assert rows[("dataflow_off", "stencil_dataflow")][ratio] >= 1.0
