"""Benchmarks regenerating the mixed-mode runtime ablation (zero-copy
intra-node fast path, hierarchical collectives, node-aware slab routing).

The drivers assert their own acceptance criteria: zero-copy results are
byte-identical to the message path and at least 2x cheaper in simulated
time on the intra-node-heavy 8-cores-per-node workload; the two-level
collective tree never costs more than the flat one and matches it exactly
with one core per node.
"""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_mixed_mode_zero_copy_ablation(benchmark):
    run_and_report(benchmark, ev.mixed_mode_study, P=8, n_per_loc=2000)


def test_mixed_mode_topology(benchmark):
    run_and_report(benchmark, ev.mixed_mode_topology_study)
