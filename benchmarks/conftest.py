"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure through its
``repro.evaluation`` driver, prints the regenerated series (the deterministic
virtual-time numbers the reproduction reports), and lets pytest-benchmark
measure the wall-clock cost of the simulation itself.
"""


def run_and_report(benchmark, driver, **kwargs):
    """Benchmark a figure driver and print its regenerated table."""
    result = benchmark.pedantic(lambda: driver(**kwargs), rounds=1,
                                iterations=1)
    print()
    print(result.format_table())
    return result
