"""Benchmarks regenerating the associative / composition / MCM evaluation
(Ch. XII-XIII: Figs. 59, 60, 62; Ch. VII behaviours)."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_fig59_mapreduce_wordcount(benchmark):
    run_and_report(benchmark, ev.fig59_mapreduce_wordcount,
                   nlocs_list=(1, 2, 4, 8), tokens_per_loc=4000)


def test_fig60_assoc_algorithms(benchmark):
    run_and_report(benchmark, ev.fig60_assoc_algorithms,
                   nlocs_list=(1, 2, 4, 8), n_per_loc=2000)


def test_fig62_composition_row_min(benchmark):
    run_and_report(benchmark, ev.fig62_row_min, P=4, rows=64, cols=32)


def test_mcm_behaviours(benchmark):
    run_and_report(benchmark, ev.mcm_demonstrations)
