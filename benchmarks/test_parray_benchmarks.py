"""Benchmarks regenerating the pArray evaluation (Ch. IX: Figs. 27-34)."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_fig27_parray_constructor(benchmark):
    run_and_report(benchmark, ev.fig27_constructor,
                   nlocs_list=(1, 2, 4, 8), sizes=(4096, 16384, 65536))


def test_fig28_parray_local_methods(benchmark):
    run_and_report(benchmark, ev.fig28_local_methods,
                   sizes=(1024, 4096, 16384, 65536), n_per_loc=400)


def test_fig29_parray_methods_weak(benchmark):
    run_and_report(benchmark, ev.fig29_methods_weak,
                   nlocs_list=(1, 2, 4, 8), n_per_loc=400)


def test_fig30_parray_sync_async_split(benchmark):
    run_and_report(benchmark, ev.fig30_method_flavours, n_per_loc=400)


def test_fig31_parray_remote_fraction(benchmark):
    run_and_report(benchmark, ev.fig31_remote_fraction, n_per_loc=300,
                   fractions=(0.0, 0.25, 0.5, 0.75, 1.0))


def test_fig32_parray_local_remote(benchmark):
    run_and_report(benchmark, ev.fig32_local_remote_sizes,
                   sizes=(1024, 4096, 16384), n_per_loc=300)


def test_fig33_parray_algorithms(benchmark):
    run_and_report(benchmark, ev.fig33_generic_algorithms,
                   nlocs_list=(1, 2, 4, 8), n_per_loc=10000)


def test_fig34_memory_study(benchmark):
    run_and_report(benchmark, ev.fig34_memory_study,
                   sizes=(1024, 8192, 65536))


def test_bulk_transport_map_reduce(benchmark):
    """Bulk slab transport vs per-element RMIs on a 120k-element map/reduce
    over a 100%-remote balanced view: the bulk path must cut simulated
    physical messages by at least 2x (it cuts them by ~10^4) and lower the
    simulated wall-clock."""
    res = run_and_report(benchmark, ev.bulk_transport_study,
                         P=8, n_per_loc=15000)
    rows = {(r[0], r[1]): r for r in res.rows}
    for algo in ("map", "reduce"):
        n = rows[(algo, "bulk")][2]
        assert n >= 100_000
        t_scalar, msgs_scalar = rows[(algo, "per_element")][3:5]
        t_bulk, msgs_bulk = rows[(algo, "bulk")][3:5]
        assert msgs_bulk * 2 <= msgs_scalar, (
            f"{algo}: bulk path sent {msgs_bulk} physical messages vs "
            f"{msgs_scalar} per-element — expected >=2x reduction")
        assert t_bulk < t_scalar, (
            f"{algo}: bulk path slower ({t_bulk} vs {t_scalar} us)")
