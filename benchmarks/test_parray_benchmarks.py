"""Benchmarks regenerating the pArray evaluation (Ch. IX: Figs. 27-34)."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_fig27_parray_constructor(benchmark):
    run_and_report(benchmark, ev.fig27_constructor,
                   nlocs_list=(1, 2, 4, 8), sizes=(4096, 16384, 65536))


def test_fig28_parray_local_methods(benchmark):
    run_and_report(benchmark, ev.fig28_local_methods,
                   sizes=(1024, 4096, 16384, 65536), n_per_loc=400)


def test_fig29_parray_methods_weak(benchmark):
    run_and_report(benchmark, ev.fig29_methods_weak,
                   nlocs_list=(1, 2, 4, 8), n_per_loc=400)


def test_fig30_parray_sync_async_split(benchmark):
    run_and_report(benchmark, ev.fig30_method_flavours, n_per_loc=400)


def test_fig31_parray_remote_fraction(benchmark):
    run_and_report(benchmark, ev.fig31_remote_fraction, n_per_loc=300,
                   fractions=(0.0, 0.25, 0.5, 0.75, 1.0))


def test_fig32_parray_local_remote(benchmark):
    run_and_report(benchmark, ev.fig32_local_remote_sizes,
                   sizes=(1024, 4096, 16384), n_per_loc=300)


def test_fig33_parray_algorithms(benchmark):
    run_and_report(benchmark, ev.fig33_generic_algorithms,
                   nlocs_list=(1, 2, 4, 8), n_per_loc=10000)


def test_fig34_memory_study(benchmark):
    run_and_report(benchmark, ev.fig34_memory_study,
                   sizes=(1024, 8192, 65536))
