"""Benchmarks regenerating the pList/pVector/Euler evaluation
(Ch. X: Figs. 39-44)."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_fig39_plist_methods(benchmark):
    run_and_report(benchmark, ev.fig39_plist_methods, n_per_loc=400)


def test_fig40_parray_vs_plist_algos(benchmark):
    run_and_report(benchmark, ev.fig40_parray_vs_plist,
                   nlocs_list=(1, 2, 4, 8), n_per_loc=4000)


def test_fig41_placement(benchmark):
    run_and_report(benchmark, ev.fig41_placement,
                   nlocs_list=(2, 4, 8, 16), n_per_loc=4000)


def test_fig42_plist_vs_pvector(benchmark):
    run_and_report(benchmark, ev.fig42_plist_vs_pvector, num_ops=1500)


def test_fig43_euler_tour_scaling(benchmark):
    run_and_report(benchmark, ev.fig43_euler_tour_weak,
                   nlocs_list=(2, 4, 8), verts_per_loc=48)


def test_fig44_euler_applications(benchmark):
    run_and_report(benchmark, ev.fig44_euler_applications,
                   P=4, sizes=(63, 127))
