"""Benchmark regenerating the backend strong-scaling study — the repo's
first real wall-clock numbers (multiprocessing backend, ROADMAP item 1).

Unlike every other benchmark here, the interesting number is *inside* the
regenerated table (measured wall seconds per worker count), not the
pytest-benchmark wrapper time.  The acceptance bar — >= 2x wall-clock
speedup at P=8 vs P=1 on the slab-heavy latency kernel — is asserted, so a
regression in process launch, queue transport or the shared-memory slab
path fails loudly here."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_backend_strong_scaling(benchmark):
    result = run_and_report(benchmark, ev.backend_scaling_study)
    speedup = ev.backend_speedup(result, "latency", 8)
    assert speedup >= 2.0, (
        f"multiprocessing backend speedup at P=8 regressed to {speedup}x "
        "(acceptance bar: >= 2x on the latency kernel)")
