"""Benchmarks regenerating the combining-buffer ablation (Ch. III.B
combining applied to the dynamic containers; BCL-style buffered inserts).

The drivers assert their own acceptance criteria: batched == scalar results
and >= 10x fewer physical messages on the 100%-remote accumulate stream.
"""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_combining_wordcount_ablation(benchmark):
    run_and_report(benchmark, ev.combining_study, P=8, ops_per_loc=16000)


def test_combining_containers_ablation(benchmark):
    run_and_report(benchmark, ev.combining_containers_study, P=4,
                   n_per_loc=3000)
