"""Benchmarks regenerating the migration-subsystem studies (PR 4):
load-driven rebalancing under skew and the lookup cache."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_migration_skew_wordcount(benchmark):
    run_and_report(benchmark, ev.migration_skew_study, ops_per_loc=1500)


def test_migration_graph_growth(benchmark):
    run_and_report(benchmark, ev.migration_graph_study, verts_per_loc=30)


def test_lookup_cache_microbench(benchmark):
    run_and_report(benchmark, ev.lookup_cache_study, repeats=12)
