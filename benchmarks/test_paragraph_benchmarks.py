"""Benchmarks regenerating the dependence-driven executor studies (PR 5):
PARAGRAPH data-flow vs fence-per-phase, and the sorting transport fix."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_paragraph_sort_scan_pipeline(benchmark):
    run_and_report(benchmark, ev.paragraph_study, n_per_loc=2000)


def test_sort_transport_bulk_vs_scalar(benchmark):
    run_and_report(benchmark, ev.sort_transport_study, n_per_loc=4096)
