"""Benchmarks regenerating the pGraph evaluation (Ch. XI: Figs. 49-56)."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_fig49_50_pgraph_methods(benchmark):
    run_and_report(benchmark, ev.fig49_50_pgraph_methods,
                   machines=("cray4", "p5cluster"), P=4, n=256)


def test_fig51_find_sources_forwarding(benchmark):
    run_and_report(benchmark, ev.fig51_find_sources, P=4, n=192)


def test_fig52_pgraph_partitions(benchmark):
    run_and_report(benchmark, ev.fig52_partition_comparison, P=4, n=192)


def test_fig53_55_pgraph_algorithms(benchmark):
    run_and_report(benchmark, ev.fig53_55_graph_algorithms,
                   machines=("cray4", "p5cluster"), P=4, n=192)


def test_fig56_page_rank_meshes(benchmark):
    run_and_report(benchmark, ev.fig56_pagerank_meshes,
                   P=4, cells=900, iterations=5)
