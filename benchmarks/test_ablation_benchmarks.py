"""Ablation benchmarks for the DESIGN.md §4 design decisions."""

import repro.evaluation as ev
from benchmarks.conftest import run_and_report


def test_ablation_aggregation(benchmark):
    run_and_report(benchmark, ev.ablation_aggregation,
                   n_per_loc=400, levels=(1, 4, 16, 64))


def test_ablation_view_alignment(benchmark):
    run_and_report(benchmark, ev.ablation_view_alignment, n_per_loc=1500)


def test_ablation_consistency_mode(benchmark):
    run_and_report(benchmark, ev.ablation_consistency_mode, n_per_loc=300)


def test_ablation_lazy_size(benchmark):
    run_and_report(benchmark, ev.ablation_lazy_size, reps=150)
