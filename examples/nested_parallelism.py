#!/usr/bin/env python
"""Nested parallelism with composed pContainers (Ch. IV.C, XIII, Fig. 61).

Reproduces the composition study's computation — per-row minima of a matrix
— under three data representations:

* a row-partitioned ``pMatrix`` (rows are contiguous NumPy slices),
* a ``pArray<pArray>`` (each row is a nested pArray on its owner's
  singleton location group; the inner ``p_accumulate`` is a *nested
  pAlgorithm invocation* that runs inline on that group),
* a ``pList<pArray>`` (same, plus linked-segment traversal).

Run:  python examples/nested_parallelism.py
"""

from repro import spmd_run_detailed
from repro.algorithms import p_accumulate
from repro.containers.composition import (
    compose_parray_of_parrays,
    compose_plist_of_parrays,
    composition_height,
    nested_apply,
)
from repro.containers.pmatrix import PMatrix
from repro.core import Matrix2DPartition
from repro.views import Array1DView
from repro.views.matrix_views import MatrixRowsView

ROWS, COLS = 48, 24


def fill_value(r, c):
    return float((r * 31 + c * 17) % 100)


def nested_main(ctx):
    timings = {}

    # --- pMatrix, row partition -------------------------------------
    pm = PMatrix(ctx, ROWS, COLS, partition=Matrix2DPartition(ctx.nlocs, 1))
    for r in range(ctx.id, ROWS, ctx.nlocs):
        for c in range(COLS):
            pm.set_element((r, c), fill_value(r, c))
    ctx.rmi_fence()
    t0 = ctx.start_timer()
    minima_m = {}
    for chunk in MatrixRowsView(pm).local_chunks():
        import numpy as np

        minima_m.update(dict(chunk.row_reduce(np.min)))
    ctx.rmi_fence()
    timings["pmatrix"] = ctx.stop_timer(t0)

    # --- pArray<pArray> ------------------------------------------------
    pa_pa = compose_parray_of_parrays(ctx, [COLS] * ROWS, value=0.0)
    rt = pa_pa.runtime
    for bc in pa_pa.local_bcontainers():
        for r in bc.domain:
            inner = bc.get(r).resolve(rt)
            for c in range(COLS):
                inner.set_element(c, fill_value(r, c))
    ctx.rmi_fence()
    t0 = ctx.start_timer()
    minima_a = {}
    for bc in pa_pa.local_bcontainers():
        for r in bc.domain:
            inner = bc.get(r).resolve(rt)
            # nested pAlgorithm: collective over the singleton group
            minima_a[r] = p_accumulate(Array1DView(inner), float("inf"), min)
    ctx.rmi_fence()
    timings["parray<parray>"] = ctx.stop_timer(t0)

    # --- pList<pArray> ---------------------------------------------------
    pl_pa = compose_plist_of_parrays(ctx, [COLS] * ROWS, value=1.0)
    t0 = ctx.start_timer()
    count = 0
    seg = pl_pa.local_segment()
    for seq in seg.seqs():
        inner = seg.get(seq).resolve(rt)
        p_accumulate(Array1DView(inner), float("inf"), min)
        count += 1
    ctx.rmi_fence()
    timings["plist<parray>"] = ctx.stop_timer(t0)

    # composed access across the hierarchy (Ch. IV.C's method chains)
    sample = nested_apply(pa_pa, 7, lambda inner: inner.get_element(3))
    heights = (composition_height(pa_pa), composition_height(pl_pa))

    # check the two computations agree
    agree = all(minima_m[r] == minima_a[r] for r in minima_m)
    return timings, sample, heights, agree


if __name__ == "__main__":
    report = spmd_run_detailed(nested_main, nlocs=4, machine="cray4")
    timings, sample, heights, agree = report.results[0]
    print(f"row minima of a {ROWS}x{COLS} matrix, 4 locations\n")
    for rep, t in timings.items():
        print(f"  {rep:16s}: {t:8.1f} virtual us")
    print(f"\ncomposition heights: pArray<pArray>={heights[0]}, "
          f"pList<pArray>={heights[1]}")
    print(f"composed access pa[7][3] = {sample}")
    print(f"pMatrix and pArray<pArray> minima agree: {agree}")
