#!/usr/bin/env python
"""MapReduce word count over associative pContainers (Ch. XII, Fig. 59).

The paper counts word occurrences in the 1.5 GB Simple English Wikipedia
dump; we use a synthetic Zipf-distributed corpus that preserves the
frequency skew.  Each location maps its documents to (word, 1) pairs,
pre-combines them locally, and streams them into a hash-partitioned pHashMap
with asynchronous combining inserts.

Run:  python examples/mapreduce_wordcount.py
"""

from repro import spmd_run_detailed
from repro.algorithms import word_count
from repro.workloads import local_documents

TOKENS_PER_LOCATION = 5000


def wordcount_main(ctx):
    docs = local_documents(ctx.id, ctx.nlocs, TOKENS_PER_LOCATION,
                           vocab_size=800)
    t0 = ctx.start_timer()
    counts = word_count(ctx, docs)
    elapsed = ctx.stop_timer(t0)

    # gather the global top-10 on every location
    local_items = counts.local_items()
    gathered = ctx.allgather_rmi(local_items)
    merged = {}
    for items in gathered:
        for w, c in items:
            merged[w] = merged.get(w, 0) + c
    top = sorted(merged.items(), key=lambda kv: -kv[1])[:10]
    return {"elapsed_us": elapsed, "distinct": counts.size(),
            "total": sum(merged.values()), "top": top}


if __name__ == "__main__":
    report = spmd_run_detailed(wordcount_main, nlocs=8, machine="cray4")
    r = report.results[0]
    print(f"corpus: {r['total']} tokens across 8 locations "
          f"({r['distinct']} distinct words)")
    print(f"virtual MapReduce time: {r['elapsed_us']:.1f} us")
    print("top words (Zipf skew visible):")
    for w, c in r["top"]:
        print(f"  {w:>6s}: {c}")
