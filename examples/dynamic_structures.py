#!/usr/bin/env python
"""Choosing between pList and pVector (Ch. X, Fig. 42).

Replays read/write/insert/delete operation mixes against both dynamic
sequence containers and reports the virtual time per mix — reproducing the
paper's trade-off: pVector wins access-heavy mixes (contiguous storage,
O(1) indexing), pList wins mutation-heavy mixes (O(1) splicing, no shifts).

Run:  python examples/dynamic_structures.py
"""

from repro import PList, PVector, spmd_run_detailed
from repro.workloads import STANDARD_MIXES, generate_ops

NUM_OPS = 1000
INITIAL = 512


def run_pvector(ctx, mix_name):
    pv = PVector(ctx, INITIAL * ctx.nlocs, value=0)
    me = ctx.id
    ops = generate_ops(NUM_OPS, STANDARD_MIXES[mix_name], seed=17 + ctx.id)
    ctx.rmi_fence()
    t0 = ctx.start_timer()
    for kind, r in ops:
        sub = pv.partition.get_sub_domain(me)
        lo, hi = sub.lo, sub.hi
        if hi <= lo:
            pv.push_anywhere(1)
            continue
        idx = min(lo + int(r * (hi - lo)), hi - 1)
        if kind == "read":
            pv.get_element(idx)
        elif kind == "write":
            pv.set_element(idx, 1)
        elif kind == "insert":
            pv.insert_element(idx, 1)
        else:
            pv.erase_element(idx)
    ctx.rmi_fence()
    return ctx.stop_timer(t0)


def run_plist(ctx, mix_name):
    pl = PList(ctx, INITIAL * ctx.nlocs, value=0)
    gids = pl.local_gids()
    ops = generate_ops(NUM_OPS, STANDARD_MIXES[mix_name], seed=17 + ctx.id)
    ctx.rmi_fence()
    t0 = ctx.start_timer()
    for kind, r in ops:
        if not gids:
            gids.append(pl.push_anywhere(1))
            continue
        gid = gids[min(int(r * len(gids)), len(gids) - 1)]
        if kind == "read":
            pl.get_element(gid)
        elif kind == "write":
            pl.set_element(gid, 1)
        elif kind == "insert":
            gids.append(pl.insert_element(gid, 1))
        else:
            pl.erase_element(gid)
            gids.remove(gid)
    ctx.rmi_fence()
    return ctx.stop_timer(t0)


def mix_main(ctx):
    out = {}
    for mix in ("read_heavy", "balanced_rw", "mixed", "insert_delete_heavy"):
        out[mix] = (run_pvector(ctx, mix), run_plist(ctx, mix))
    return out


if __name__ == "__main__":
    report = spmd_run_detailed(mix_main, nlocs=4, machine="cray4")
    r = report.results[0]
    print(f"{NUM_OPS} ops per location, 4 locations (virtual us)\n")
    print(f"{'mix':>22s}  {'pVector':>10s}  {'pList':>10s}  winner")
    for mix, (tv, tl) in r.items():
        winner = "pVector" if tv < tl else "pList"
        print(f"{mix:>22s}  {tv:10.1f}  {tl:10.1f}  {winner}")
    print("\npList wins as the mix shifts toward insert/delete — Fig. 42.")
