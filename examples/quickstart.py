#!/usr/bin/env python
"""Quickstart: the pArray example of Ch. IX (Fig. 26) plus the core idioms.

Run:  python examples/quickstart.py

An SPMD program is a function receiving a per-location context ``ctx``; the
library runs it once per simulated location (like ``mpiexec -n P``).  All
containers are collectively constructed, globally addressable and accessed
through the paper's three method flavours: asynchronous ``set_element``,
synchronous ``get_element`` and split-phase ``split_phase_get_element``.
"""

from repro import PArray, spmd_run_detailed
from repro.algorithms import p_accumulate, p_for_each, p_generate, p_min_element
from repro.core import BlockedPartition
from repro.views import Array1DView


def stapl_main(ctx):
    # p_array<int> pa(100)  -- default balanced partition
    pa = PArray(ctx, 100, dtype=int)

    # p_array with an explicit blocked partition (Fig. 26)
    pa_blocked = PArray(ctx, 100, dtype=int, partition=BlockedPartition(10))

    # element-wise methods: async write, then fence, then sync reads
    for i in range(ctx.id, 100, ctx.nlocs):
        pa.set_element(i, i * i)          # asynchronous (returns immediately)
    ctx.rmi_fence()                        # all writes complete here

    v42 = pa.get_element(42)               # synchronous
    fut = pa.split_phase_get_element(7)    # split-phase: overlap...
    local_work = sum(range(1000))          # ...useful work here
    v7 = fut.get()                         # ...then collect the result

    # bulk element transport: whole ranges move as one slab per owner
    if ctx.id == 0:
        pa.set_range(50, [0] * 50)         # async slab write
    ctx.rmi_fence()
    head = pa.get_range(0, 10)             # sync slab read (NumPy array)

    # pViews + pAlgorithms (Fig. 26's p_generate)
    view = Array1DView(pa_blocked)
    p_generate(view, lambda i: i, vector=lambda gids: gids)
    p_for_each(view, lambda x: x + 1, vector=lambda a: a + 1)
    total = p_accumulate(view, 0)
    amin = p_min_element(view)

    if ctx.id == 0:
        print(f"pa[42] = {v42}, pa[7] = {v7}")
        print(f"sum(1..100) over the blocked pArray = {total}")
        print(f"min element = {amin}")
    return total


if __name__ == "__main__":
    report = spmd_run_detailed(stapl_main, nlocs=4, machine="cray4")
    print(f"\nper-location results: {report.results}")
    print(f"virtual execution time: {report.max_clock:.1f} us")
    s = report.stats.total
    print(f"RMI traffic: {s.async_rmi_sent} async, {s.sync_rmi_sent} sync, "
          f"{s.opaque_rmi_sent} split-phase, "
          f"{s.physical_messages} physical messages")
