#!/usr/bin/env python
"""Graph analytics on a distributed pGraph (Ch. XI).

Builds an SSCA2-style clustered graph, then runs the paper's algorithm
suite: BFS, connected components, PageRank, graph coloring and find-sources
— comparing the static partition against the dynamic directory partition
with and without method forwarding (the Fig. 51 experiment).

Run:  python examples/graph_analytics.py
"""

from repro import PGraph, spmd_run_detailed
from repro.algorithms import (
    bfs,
    connected_components,
    find_sources,
    graph_coloring,
    page_rank,
)
from repro.containers.pgraph import UNDIRECTED
from repro.workloads import SSCA2Spec, local_edges

N_VERTICES = 192


def build_graph(ctx, directed=True, dynamic=False, forwarding=True):
    g = PGraph(ctx, N_VERTICES, directed=directed, dynamic=dynamic,
               forwarding=forwarding, default_property=0)
    spec = SSCA2Spec(num_vertices=N_VERTICES)
    for (u, v) in local_edges(spec, ctx.id, ctx.nlocs):
        g.add_edge_async(u, v)          # asynchronous edge insertion
    ctx.rmi_fence()
    return g


def analytics_main(ctx):
    out = {}

    g = build_graph(ctx, directed=UNDIRECTED)
    out["vertices"] = g.get_num_vertices()
    out["edges"] = g.get_num_edges()

    reached, levels = bfs(g, 0)
    out["bfs_reached"] = reached
    out["bfs_levels"] = levels

    g2 = build_graph(ctx, directed=UNDIRECTED)
    out["components"] = connected_components(g2)

    g3 = build_graph(ctx, directed=UNDIRECTED)
    out["colors"] = graph_coloring(g3)

    g4 = build_graph(ctx, directed=True)
    out["pagerank_mass"] = round(page_rank(g4, iterations=8), 6)

    # Fig. 51: find_sources under the three address-translation regimes
    for label, dyn, fwd in (("static", False, True),
                            ("dynamic+forwarding", True, True),
                            ("dynamic, no forwarding", True, False)):
        g5 = build_graph(ctx, directed=True, dynamic=dyn, forwarding=fwd)
        t0 = ctx.start_timer()
        sources = find_sources(g5)
        out[f"find_sources[{label}]"] = (len(sources),
                                         round(ctx.stop_timer(t0), 1))
    return out


if __name__ == "__main__":
    report = spmd_run_detailed(analytics_main, nlocs=4, machine="cray4")
    r = report.results[0]
    print(f"SSCA2 graph: {r['vertices']} vertices, {r['edges']} edges")
    print(f"BFS reached {r['bfs_reached']} vertices in {r['bfs_levels']} levels")
    print(f"connected components: {r['components']}")
    print(f"greedy coloring used {r['colors']} colors")
    print(f"PageRank mass (should be ~1.0): {r['pagerank_mass']}")
    print("\nfind_sources under three partitions (virtual us):")
    for label in ("static", "dynamic+forwarding", "dynamic, no forwarding"):
        n, t = r[f"find_sources[{label}]"]
        print(f"  {label:24s}: {n} sources, {t} us")
    print(f"\nforwarded requests: {report.stats.total.forwarded}")
