#!/usr/bin/env python
"""Euler-tour tree computations (Ch. X.H, Figs. 43/44).

Builds a binary tree, constructs its Euler tour as a distributed linked
structure over pArrays, ranks it with Wyllie pointer jumping (fenced rounds
of split-phase remote reads) and derives the classic applications: rooting,
vertex levels, preorder numbering and subtree sizes.

Run:  python examples/euler_tour_trees.py
"""

from repro import spmd_run_detailed
from repro.algorithms import (
    EulerTour,
    preorder_numbering,
    subtree_sizes,
    tree_rooting,
    vertex_levels,
)
from repro.workloads import binary_tree_edges

N = 63  # complete binary tree


def euler_main(ctx):
    edges = binary_tree_edges(N)
    timings = {}

    t0 = ctx.start_timer()
    tour = EulerTour(ctx, edges, N, root=0)
    tour.rank()
    timings["tour+rank"] = ctx.stop_timer(t0)

    t0 = ctx.start_timer()
    parent = tree_rooting(tour)
    timings["rooting"] = ctx.stop_timer(t0)

    t0 = ctx.start_timer()
    levels = vertex_levels(tour, parent)
    timings["levels"] = ctx.stop_timer(t0)

    t0 = ctx.start_timer()
    pre = preorder_numbering(tour, parent)
    timings["preorder"] = ctx.stop_timer(t0)

    t0 = ctx.start_timer()
    sizes = subtree_sizes(tour, parent)
    timings["subtree_sizes"] = ctx.stop_timer(t0)

    sample = {v: (parent.get_element(v), levels.get_element(v),
                  pre.get_element(v), sizes.get_element(v))
              for v in (0, 1, 2, 5, N - 1)}
    return timings, sample


if __name__ == "__main__":
    report = spmd_run_detailed(euler_main, nlocs=4, machine="cray4")
    timings, sample = report.results[0]
    print(f"binary tree with {N} vertices, {2 * (N - 1)} tour arcs\n")
    print("phase timings (virtual us):")
    for phase, t in timings.items():
        print(f"  {phase:14s}: {t:8.1f}")
    print("\nvertex  parent  level  preorder  subtree")
    for v, (p, l, pre, s) in sample.items():
        print(f"{v:6d}  {p:6d}  {l:5d}  {pre:8d}  {s:7d}")
