"""Container-level batch APIs riding the combining buffers:
``insert_range`` / ``accumulate_batch`` / ``erase_batch`` on the
associative containers, ``push_back_range`` / ``push_anywhere_range`` on
pList, ``add_edges_batch`` on pGraph — each asserted equivalent to its
scalar loop with combining on and off."""


from repro.containers.associative import (
    PHashMap,
    PHashSet,
    PMap,
    PMultiMap,
    PMultiSet,
    PSet,
)
from repro.containers.pgraph import PGraph
from repro.containers.plist import PList
from repro.runtime.comm import set_combining
from tests.conftest import run, run_detailed


def both_modes(prog, nlocs=4, **kw):
    """Run under combining on and off; assert identical results."""
    outs = {}
    for on in (True, False):
        prev = set_combining(on)
        try:
            outs[on] = run(prog, nlocs=nlocs, **kw)
        finally:
            set_combining(prev)
    assert outs[True] == outs[False]
    return outs[True]


class TestAssociativeBatch:
    def test_insert_range_pair_containers(self):
        for cls in (PHashMap, PMap, PMultiMap):
            def prog(ctx, cls=cls):
                c = cls(ctx)
                c.insert_range((f"w{ctx.id}_{i}", i) for i in range(25))
                ctx.rmi_fence()
                return sorted(c.to_dict().items())

            out = both_modes(prog)
            assert len(out[0]) == 4 * 25

    def test_insert_range_set_containers(self):
        for cls in (PHashSet, PSet, PMultiSet):
            def prog(ctx, cls=cls):
                s = cls(ctx)
                s.insert_range(f"e{ctx.id}_{i}" for i in range(20))
                ctx.rmi_fence()
                s.update_size()
                return s.size()

            assert both_modes(prog) == [80] * 4

    def test_accumulate_batch_matches_scalar(self):
        def prog(ctx, batched):
            hm = PHashMap(ctx)
            pairs = [(f"k{i % 9}", 1) for i in range(45)]
            if batched:
                hm.accumulate_batch(pairs)
            else:
                for k, v in pairs:
                    hm.accumulate(k, v)
            ctx.rmi_fence()
            return sorted(hm.to_dict().items())

        a = both_modes(lambda ctx: prog(ctx, True))
        b = both_modes(lambda ctx: prog(ctx, False))
        assert a == b
        assert a[0] == [(f"k{i}", 20) for i in range(9)]

    def test_erase_batch(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            if ctx.id == 0:
                hm.insert_range((f"k{i}", i) for i in range(30))
            ctx.rmi_fence()
            if ctx.id == ctx.nlocs - 1:
                hm.erase_batch(f"k{i}" for i in range(0, 30, 3))
            ctx.rmi_fence()
            hm.update_size()
            return hm.size(), sorted(hm.to_dict())

        out = both_modes(prog)
        assert out[0][0] == 20
        assert "k0" not in out[0][1] and "k1" in out[0][1]

    def test_batch_reduces_messages(self):
        """insert_range ships >=10x fewer physical messages than the same
        inserts with combining disabled (all-remote keys, 2 locations)."""

        def prog(ctx):
            hm = PHashMap(ctx)
            from repro.core.partitions import stable_hash

            keys = [k for k in (f"r{i}" for i in range(3000))
                    if stable_hash(k) % ctx.nlocs != ctx.id][:1000]
            ctx.rmi_fence()
            m0 = ctx.stats.physical_messages
            hm.insert_range((k, ctx.id) for k in keys)
            ctx.rmi_fence()
            return ctx.stats.physical_messages - m0

        msgs = {}
        for on in (True, False):
            prev = set_combining(on)
            try:
                msgs[on] = sum(run(prog, nlocs=2))
            finally:
                set_combining(prev)
        assert msgs[False] >= 10 * msgs[True]


class TestPListBatch:
    def test_push_back_range_order(self):
        def prog(ctx):
            pl = PList(ctx)
            if ctx.id == 0:
                pl.push_back_range(range(10))
            ctx.rmi_fence()
            return pl.to_list()

        assert both_modes(prog)[0] == list(range(10))

    def test_push_front_range(self):
        def prog(ctx):
            pl = PList(ctx)
            if ctx.id == ctx.nlocs - 1:
                pl.push_front_range([1, 2, 3])
            ctx.rmi_fence()
            return pl.to_list()

        assert both_modes(prog)[0] == [3, 2, 1]

    def test_push_anywhere_range_gids(self):
        def prog(ctx):
            pl = PList(ctx)
            gids = pl.push_anywhere_range([ctx.id * 10 + i for i in range(3)])
            ctx.rmi_fence()
            assert [pl.get_element(g) for g in gids] == \
                [ctx.id * 10 + i for i in range(3)]
            pl.update_size()
            return pl.size()

        assert both_modes(prog) == [12] * 4

    def test_remote_push_combines(self):
        """Remote push_back_range buffers instead of one RMI per value."""

        def prog(ctx):
            pl = PList(ctx)
            ctx.rmi_fence()
            if ctx.id == 0 and ctx.nlocs > 1:
                pl.push_back_range(range(100))  # last segment is remote
                assert ctx.stats.combined_ops == 100
            ctx.rmi_fence()
            return pl.to_list()

        prev = set_combining(True)
        try:
            assert run(prog, nlocs=2)[0] == list(range(100))
        finally:
            set_combining(prev)


class TestPGraphBatch:
    def test_add_edges_batch_static(self):
        def prog(ctx):
            n = 4 * ctx.nlocs
            pg = PGraph(ctx, num_vertices=n)
            ctx.rmi_fence()
            if ctx.id == 0:
                pg.add_edges_batch((v, (v + 1) % n) for v in range(n))
            ctx.rmi_fence()
            return pg.get_num_edges()

        n = 16
        assert both_modes(prog) == [n] * 4

    def test_add_edges_batch_with_properties(self):
        def prog(ctx):
            pg = PGraph(ctx, num_vertices=8)
            ctx.rmi_fence()
            if ctx.id == 0:
                pg.add_edges_batch([(0, 1, "a"), (1, 2, "b"), (2, 3)])
            ctx.rmi_fence()
            return pg.find_edge(1, 2), pg.find_edge(2, 3)

        out = both_modes(prog, nlocs=2)
        assert out[0] == (["b"], [None])

    def test_add_edges_batch_dynamic_forwarding(self):
        """Directory graph: combined records replay through the forwarding
        chain and still complete at the fence."""

        def prog(ctx):
            pg = PGraph(ctx, num_vertices=4 * ctx.nlocs, dynamic=True,
                        forwarding=True)
            ctx.rmi_fence()
            n = 4 * ctx.nlocs
            pg.add_edges_batch((v, (v + 2) % n) for v in
                               range(ctx.id, n, ctx.nlocs))
            ctx.rmi_fence()
            return pg.get_num_edges()

        assert both_modes(prog) == [16] * 4


class TestBatchedGathers:
    def test_to_dict_charges_gather_slabs(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            hm.insert(f"k{ctx.id}", ctx.id)
            ctx.rmi_fence()
            b0 = ctx.stats.bulk_rmi_sent
            d = hm.to_dict()
            assert ctx.stats.bulk_rmi_sent - b0 == ctx.nlocs - 1
            return d

        out = run_detailed(lambda ctx: prog(ctx), nlocs=4)
        assert out.results[0] == {f"k{i}": i for i in range(4)}

    def test_sorted_items_and_to_list_still_ordered(self):
        def prog(ctx):
            pm = PMap(ctx, splitters=[3, 6, 9])
            pm.insert_range(((i, i * i) for i in range(ctx.id, 12, ctx.nlocs)))
            pl = PList(ctx)
            pl.push_anywhere(ctx.id)
            ctx.rmi_fence()
            return pm.sorted_items(), pl.to_list()

        items, seq = both_modes(prog)[0]
        assert items == [(i, i * i) for i in range(12)]
        assert seq == [0, 1, 2, 3]
