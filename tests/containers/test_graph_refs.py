"""Vertex/edge reference tests (Tables XXV/XXVI)."""

from repro.containers import PGraph
from tests.conftest import run


class TestVertexRef:
    def test_property_roundtrip(self):
        def prog(ctx):
            g = PGraph(ctx, 6, default_property="init")
            ref = g.vertex_ref(4)
            before = ref.property
            ctx.rmi_fence()
            if ctx.id == 0:
                ref.property = "updated"
            ctx.rmi_fence()
            return before, ref.property, ref.descriptor()
        assert run(prog, nlocs=3) == [("init", "updated", 4)] * 3

    def test_edges_and_degree(self):
        def prog(ctx):
            g = PGraph(ctx, 5)
            if ctx.id == 0:
                g.add_edge(1, 2, "a")
                g.add_edge(1, 3, "b")
            ctx.rmi_fence()
            ref = g.vertex_ref(1)
            edges = ref.edges()
            return (ref.out_degree(), sorted(ref.adjacents()),
                    sorted(e.descriptor() for e in edges),
                    sorted(e.property for e in edges))
        out = run(prog, nlocs=2)
        assert out[0] == (2, [2, 3], [(1, 2), (1, 3)], ["a", "b"])

    def test_unknown_vertex_raises(self):
        def prog(ctx):
            g = PGraph(ctx, 3)
            try:
                g.vertex_ref(99)
                return False
            except KeyError:
                return True
        assert all(run(prog, nlocs=2))


class TestEdgeRef:
    def test_opposite(self):
        def prog(ctx):
            g = PGraph(ctx, 4)
            if ctx.id == 0:
                g.add_edge(0, 3, 2.5)
            ctx.rmi_fence()
            e = g.vertex_ref(0).edges()[0]
            return e.opposite(0), e.opposite(3), e.property
        assert run(prog, nlocs=2) == [(3, 0, 2.5)] * 2
