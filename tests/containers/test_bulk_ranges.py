"""Range-accessor tests: bulk element transport must be observably
*identical* to the per-element interface on pArray / pVector / pMatrix —
only the traffic shape may differ."""

import numpy as np
import pytest

from repro.algorithms.generic import (
    p_accumulate,
    p_adjacent_difference,
    p_equal,
    p_for_each,
    p_partial_sum,
)
from repro.containers.parray import PArray
from repro.containers.pmatrix import PMatrix
from repro.containers.pvector import PVector
from repro.core.mappers import GeneralMapper
from repro.core.partitions import BlockCyclicPartition, BlockedPartition
from repro.core.traits import Traits
from repro.views.array_views import Array1DView, BalancedView
from repro.views.base import set_bulk_transport
from tests.conftest import run, run_detailed


@pytest.fixture(params=[True, False], ids=["bulk", "per_element"])
def bulk_mode(request):
    prev = set_bulk_transport(request.param)
    yield request.param
    set_bulk_transport(prev)


def rotated_traits(nlocs):
    """Every block owned by the next location: 100% remote balanced view."""
    rotated = [(i + 1) % nlocs for i in range(nlocs)]
    return Traits(mapper_factory=lambda: GeneralMapper(rotated))


class TestPArrayRanges:
    def test_get_range_matches_elements(self):
        def prog(ctx):
            pa = PArray(ctx, 40, dtype=int)
            for i in range(ctx.id, 40, ctx.nlocs):
                pa.set_element(i, i * 3)
            ctx.rmi_fence()
            slab = pa.get_range(5, 35)
            elems = [pa.get_element(i) for i in range(5, 35)]
            return list(slab) == elems

        assert all(run(prog, nlocs=4))

    def test_set_range_visible_after_fence(self):
        def prog(ctx):
            pa = PArray(ctx, 32, dtype=float)
            if ctx.id == 0:
                pa.set_range(4, np.arange(20, dtype=float))
            ctx.rmi_fence()
            return pa.to_list()

        out = run(prog, nlocs=4)[0]
        assert out[4:24] == [float(v) for v in range(20)]
        assert out[:4] == [0.0] * 4 and out[24:] == [0.0] * 8

    def test_range_crossing_all_locations(self):
        def prog(ctx):
            pa = PArray(ctx, 64, dtype=int, partition=BlockedPartition(8))
            if ctx.id == 1:
                pa.set_range(0, list(range(64)))
            ctx.rmi_fence()
            return list(pa.get_range(0, 64))

        for out in run(prog, nlocs=4):
            assert out == list(range(64))

    def test_set_then_get_same_location_fifo(self):
        """A slab write then slab read from the same location observes the
        write (bulk_get_range flushes the channel first)."""

        def prog(ctx):
            pa = PArray(ctx, 24, dtype=int)
            if ctx.id == 0:
                pa.set_range(0, [7] * 24)
                got = list(pa.get_range(0, 24))
            else:
                got = None
            ctx.rmi_fence()
            return got

        assert run(prog, nlocs=3)[0] == [7] * 24

    def test_block_cyclic_falls_back_to_elements(self):
        """Non-contiguous sub-domains can't ship slabs; results must still
        be exact via the element fallback."""

        def prog(ctx):
            pa = PArray(ctx, 30, dtype=int,
                        partition=BlockCyclicPartition(ctx.nlocs, 2))
            if ctx.id == 0:
                pa.set_range(0, list(range(30)))
            ctx.rmi_fence()
            return list(pa.get_range(3, 27))

        for out in run(prog, nlocs=3):
            assert out == list(range(3, 27))

    def test_bulk_moves_fewer_messages(self):
        def prog(ctx):
            pa = PArray(ctx, 4000, dtype=float, traits=rotated_traits(ctx.nlocs))
            ctx.rmi_fence()
            if ctx.id == 0:
                pa.set_range(0, np.ones(4000))
            ctx.rmi_fence()

        rep_bulk = run_detailed(prog, nlocs=4)

        def prog_scalar(ctx):
            pa = PArray(ctx, 4000, dtype=float, traits=rotated_traits(ctx.nlocs))
            ctx.rmi_fence()
            if ctx.id == 0:
                for i in range(4000):
                    pa.set_element(i, 1.0)
            ctx.rmi_fence()

        rep_scalar = run_detailed(prog_scalar, nlocs=4)
        assert (rep_bulk.stats.total.physical_messages * 2
                < rep_scalar.stats.total.physical_messages)
        assert rep_bulk.max_clock < rep_scalar.max_clock


class TestRangeBounds:
    """Out-of-domain ranges raise instead of silently truncating — the
    element interface raises, so the slab interface must too."""

    def test_parray_out_of_bounds(self):
        def prog(ctx):
            pa = PArray(ctx, 100, dtype=float)
            hits = 0
            for fn in (lambda: pa.get_range(90, 120),
                       lambda: pa.set_range(95, [1.0] * 10),
                       lambda: pa.get_range(-5, 10)):
                try:
                    fn()
                except IndexError:
                    hits += 1
            ctx.rmi_fence()
            return hits

        assert run(prog, nlocs=4) == [3] * 4

    def test_pmatrix_out_of_bounds(self):
        def prog(ctx):
            pm = PMatrix(ctx, 6, 6)
            hits = 0
            for fn in (lambda: pm.get_block(0, 8, 0, 8),
                       lambda: pm.set_block(4, 4, np.ones((4, 4)))):
                try:
                    fn()
                except IndexError:
                    hits += 1
            ctx.rmi_fence()
            return hits

        assert run(prog, nlocs=4) == [2] * 4

    def test_pmatrix_rejects_1d_range(self):
        """The inherited 1D range accessors cannot address (row, col) GIDs;
        they must fail loudly at the API boundary, not deep in the
        partition."""

        def prog(ctx):
            pm = PMatrix(ctx, 4, 4)
            hits = 0
            for fn in (lambda: pm.get_range(0, 4),
                       lambda: pm.set_range(0, [1.0] * 4)):
                try:
                    fn()
                except TypeError:
                    hits += 1
            ctx.rmi_fence()
            return hits

        assert run(prog, nlocs=4) == [2] * 4

    def test_pvector_out_of_bounds(self):
        def prog(ctx):
            pv = PVector(ctx, 10)
            try:
                pv.get_range(5, 15)
                ok = False
            except IndexError:
                ok = True
            ctx.rmi_fence()
            return ok

        assert all(run(prog, nlocs=4))


class TestPVectorRanges:
    def test_get_set_range(self):
        def prog(ctx):
            pv = PVector(ctx, 20, value=0)
            if ctx.id == ctx.nlocs - 1:
                pv.set_range(2, [f"v{i}" for i in range(16)])
            ctx.rmi_fence()
            return pv.get_range(0, 20)

        for out in run(prog, nlocs=4):
            assert out == [0, 0] + [f"v{i}" for i in range(16)] + [0, 0]

    def test_matches_element_interface(self):
        def prog(ctx):
            pv = PVector(ctx, 33)
            if ctx.id == 0:
                for i in range(33):
                    pv.set_element(i, i * i)
            ctx.rmi_fence()
            return pv.get_range(4, 29) == [pv.get_element(i)
                                           for i in range(4, 29)]

        assert all(run(prog, nlocs=3))


class TestPMatrixBlocks:
    def test_get_block_matches_elements(self):
        def prog(ctx):
            pm = PMatrix(ctx, 8, 8, dtype=float)
            if ctx.id == 0:
                for r in range(8):
                    for c in range(8):
                        pm.set_element((r, c), r * 10 + c)
            ctx.rmi_fence()
            block = pm.get_block(2, 7, 1, 6)
            want = [[r * 10 + c for c in range(1, 6)] for r in range(2, 7)]
            return block.tolist() == want

        assert all(run(prog, nlocs=4))

    def test_set_block_crosses_grid(self):
        def prog(ctx):
            pm = PMatrix(ctx, 6, 6, dtype=int)
            if ctx.id == 1:
                pm.set_block(1, 1, np.arange(16).reshape(4, 4))
            ctx.rmi_fence()
            return pm.to_nested()

        out = run(prog, nlocs=4)[0]
        for r in range(4):
            for c in range(4):
                assert out[1 + r][1 + c] == r * 4 + c
        assert out[0] == [0] * 6

    def test_get_row_and_col(self):
        def prog(ctx):
            pm = PMatrix(ctx, 6, 6, dtype=int)
            if ctx.id == 0:
                pm.set_block(0, 0, np.arange(36).reshape(6, 6))
            ctx.rmi_fence()
            return pm.get_row(2), pm.get_col(3)

        row, col = run(prog, nlocs=4)[0]
        assert row == [2 * 6 + c for c in range(6)]
        assert col == [r * 6 + 3 for r in range(6)]


class TestBulkEqualsScalarAlgorithms:
    """The paper-facing guarantee: the bulk path is purely an optimisation —
    algorithm results are bit-identical with it on or off."""

    def test_map_reduce_identical(self, bulk_mode):
        def prog(ctx):
            n = 50 * ctx.nlocs
            pa = PArray(ctx, n, dtype=float, traits=rotated_traits(ctx.nlocs))
            view = BalancedView(Array1DView(pa))
            ctx.rmi_fence()
            p_for_each(view, lambda x: x + 2.0, vector=lambda a: a + 2.0)
            total = p_accumulate(view, 0.0)
            return total

        n = 50 * 4
        assert run(prog, nlocs=4) == [2.0 * n] * 4

    def test_partial_sum_identical(self, bulk_mode):
        def prog(ctx):
            n = 30 * ctx.nlocs
            src = PArray(ctx, n, dtype=int)
            dst = PArray(ctx, n, dtype=int)
            if ctx.id == 0:
                src.set_range(0, [1] * n)
            ctx.rmi_fence()
            p_partial_sum(Array1DView(src), Array1DView(dst))
            return dst.to_list()

        n = 30 * 4
        for out in run(prog, nlocs=4):
            assert out == list(range(1, n + 1))

    def test_adjacent_difference_identical(self, bulk_mode):
        def prog(ctx):
            n = 25 * ctx.nlocs
            src = PArray(ctx, n, dtype=int)
            dst = PArray(ctx, n, dtype=int)
            if ctx.id == 0:
                src.set_range(0, [i * i for i in range(n)])
            ctx.rmi_fence()
            p_adjacent_difference(Array1DView(src), Array1DView(dst))
            return dst.to_list()

        n = 25 * 4
        want = [0] + [i * i - (i - 1) * (i - 1) for i in range(1, n)]
        for out in run(prog, nlocs=4):
            assert out == want

    def test_p_equal_identical(self, bulk_mode):
        def prog(ctx):
            n = 20 * ctx.nlocs
            a = PArray(ctx, n, dtype=int)
            b = PArray(ctx, n, dtype=int)
            if ctx.id == 0:
                a.set_range(0, list(range(n)))
                b.set_range(0, list(range(n)))
            ctx.rmi_fence()
            same = p_equal(Array1DView(a), Array1DView(b))
            if ctx.id == 1:
                b.set_element(7, -1)
            ctx.rmi_fence()
            diff = p_equal(Array1DView(a), Array1DView(b))
            return same, diff

        for same, diff in run(prog, nlocs=4):
            assert same is True
            assert diff is False

    def test_stateful_generator_runs_once_per_element(self, bulk_mode):
        """p_generate with a stateful workfunction over a view without
        range accessors (StridedView): the function must run exactly once
        per element regardless of the transport path."""
        from repro.algorithms.generic import p_generate
        from repro.views.array_views import StridedView

        def prog(ctx):
            n = 8 * ctx.nlocs
            pa = PArray(ctx, n, dtype=int)
            sv = StridedView(Array1DView(pa), stride=2)
            calls = [0]

            def gen(i):
                calls[0] += 1
                return i

            p_generate(sv, gen)
            total_calls = ctx.allreduce_rmi(calls[0])
            return total_calls, pa.to_list()

        n = 8 * 4
        for total_calls, data in run(prog, nlocs=4):
            assert total_calls == n // 2
            assert data[::2] == list(range(n // 2))

    def test_redistribute_identical(self, bulk_mode):
        def prog(ctx):
            n = 16 * ctx.nlocs
            pa = PArray(ctx, n, dtype=int)
            if ctx.id == 0:
                pa.set_range(0, list(range(n)))
            ctx.rmi_fence()
            pa.redistribute(BlockedPartition(8))
            return pa.to_list()

        for out in run(prog, nlocs=4):
            assert out == list(range(16 * 4))

    def test_matrix_redistribute_identical(self, bulk_mode):
        from repro.core.partitions import Matrix2DPartition

        def prog(ctx):
            pm = PMatrix(ctx, 8, 8, dtype=int)
            if ctx.id == 0:
                pm.set_block(0, 0, np.arange(64).reshape(8, 8))
            ctx.rmi_fence()
            pm.redistribute(Matrix2DPartition(ctx.nlocs, 1))
            return pm.to_nested()

        for out in run(prog, nlocs=4):
            assert out == [[r * 8 + c for c in range(8)] for r in range(8)]
