"""pMatrix tests."""

import pytest

from repro.containers.pmatrix import PMatrix, default_grid
from repro.core import Matrix2DPartition
from tests.conftest import run


class TestGrid:
    @pytest.mark.parametrize("p,expected", [
        (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)), (8, (2, 4)),
    ])
    def test_default_grid(self, p, expected):
        assert default_grid(p) == expected


class TestPMatrix:
    def test_set_get_2d(self):
        def prog(ctx):
            pm = PMatrix(ctx, 4, 4, dtype=int)
            for r in range(ctx.id, 4, ctx.nlocs):
                for c in range(4):
                    pm.set_element((r, c), r * 4 + c)
            ctx.rmi_fence()
            return pm.get_element((2, 3))
        assert run(prog, nlocs=4) == [11] * 4

    def test_shape(self):
        def prog(ctx):
            pm = PMatrix(ctx, 3, 5)
            return pm.rows, pm.cols, pm.size()
        assert run(prog, nlocs=2) == [(3, 5, 15)] * 2

    def test_row_col_gather(self):
        def prog(ctx):
            pm = PMatrix(ctx, 4, 4, dtype=int)
            for r in range(ctx.id, 4, ctx.nlocs):
                for c in range(4):
                    pm.set_element((r, c), r * 10 + c)
            ctx.rmi_fence()
            return pm.get_row(1), pm.get_col(2)
        row, col = run(prog, nlocs=4)[0]
        assert row == [10, 11, 12, 13]
        assert col == [2, 12, 22, 32]

    def test_row_partition_keeps_rows_local(self):
        def prog(ctx):
            pm = PMatrix(ctx, 8, 4, partition=Matrix2DPartition(ctx.nlocs, 1))
            bc = pm.local_bcontainers()[0]
            return bc.domain.cols == 4
        assert all(run(prog, nlocs=4))

    def test_to_nested(self):
        def prog(ctx):
            pm = PMatrix(ctx, 2, 3, value=1.5)
            return pm.to_nested()
        assert run(prog, nlocs=2)[0] == [[1.5] * 3] * 2

    def test_apply(self):
        def prog(ctx):
            pm = PMatrix(ctx, 2, 2, value=4, dtype=int)
            if ctx.id == 0:
                pm.apply_set((1, 1), lambda v: v + 1)
            ctx.rmi_fence()
            return pm.apply_get((1, 1), lambda v: v * 2)
        assert run(prog, nlocs=2) == [10, 10]

    def test_redistribute_matrix(self):
        def prog(ctx):
            pm = PMatrix(ctx, 4, 4, dtype=int,
                         partition=Matrix2DPartition(1, ctx.nlocs))
            for r in range(ctx.id, 4, ctx.nlocs):
                for c in range(4):
                    pm.set_element((r, c), r * 4 + c)
            ctx.rmi_fence()
            pm.redistribute(Matrix2DPartition(ctx.nlocs, 1))
            return pm.to_nested()
        out = run(prog, nlocs=2)
        assert out[0] == [[r * 4 + c for c in range(4)] for r in range(4)]
