"""Composition tests (Ch. IV.C, XIII)."""

from repro.containers.composition import (
    NestedRef,
    compose_parray_of_parrays,
    compose_plist_of_parrays,
    composed_domain,
    composition_height,
    make_nested,
    nested_apply,
    nested_get,
    nested_set,
)
from repro.containers.parray import PArray
from tests.conftest import run


class TestComposedDomain:
    def test_eq_4_2(self):
        """The domain of Fig. 3's pArray of pArrays (Eq. 4.2)."""
        dom = composed_domain(range(3), {0: range(2), 1: range(3), 2: range(4)})
        assert dom.size() == 9
        assert list(dom) == [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2),
                             (2, 0), (2, 1), (2, 2), (2, 3)]
        assert (1, 2) in dom and (0, 3) not in dom

    def test_ordering_lexicographic(self):
        dom = composed_domain(range(2), {0: range(2), 1: range(1)})
        assert dom.compare_less_gids((0, 1), (1, 0))


class TestPArrayOfPArrays:
    def test_fig3_shape(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [2, 3, 4], value=0,
                                              dtype=int)
            rt = outer.runtime
            sizes = {}
            for bc in outer.local_bcontainers():
                for i in bc.domain:
                    sizes[i] = bc.get(i).resolve(rt).size()
            gathered = ctx.allgather_rmi(sizes)
            merged = {}
            for d in gathered:
                merged.update(d)
            return merged
        assert run(prog, nlocs=3)[0] == {0: 2, 1: 3, 2: 4}

    def test_nested_get_set(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [2, 2], value=1, dtype=int)
            if ctx.id == 0:
                nested_set(outer, 1, 0, 42)
            ctx.rmi_fence()
            return nested_get(outer, 1, 0), nested_get(outer, 0, 1)
        assert run(prog, nlocs=2) == [(42, 1)] * 2

    def test_height(self):
        def prog(ctx):
            flat = PArray(ctx, 4, dtype=int)
            nested = compose_parray_of_parrays(ctx, [2, 2], dtype=int)
            return composition_height(flat), composition_height(nested)
        assert run(prog, nlocs=2) == [(1, 2)] * 2

    def test_nested_apply_runs_at_owner(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [3] * ctx.nlocs, value=2,
                                              dtype=int)
            total = nested_apply(
                outer, (ctx.id + 1) % ctx.nlocs,
                lambda inner: sum(inner.to_list()))
            ctx.rmi_fence()
            return total
        assert run(prog, nlocs=3) == [6, 6, 6]

    def test_nested_algorithm_invocation(self):
        """Fig. 61: a pAlgorithm invoked on a nested container runs inline
        on the owner's singleton group."""
        from repro.algorithms.generic import p_accumulate
        from repro.views.array_views import Array1DView

        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [4] * ctx.nlocs, value=3,
                                              dtype=int)
            results = []
            rt = outer.runtime
            for bc in outer.local_bcontainers():
                for i in bc.domain:
                    inner = bc.get(i).resolve(rt)
                    results.append(p_accumulate(Array1DView(inner), 0))
            return results
        out = run(prog, nlocs=4)
        assert all(r == [12] for r in out)


class TestPListOfPArrays:
    def test_sizes(self):
        def prog(ctx):
            outer = compose_plist_of_parrays(ctx, [2] * 6, value=5, dtype=int)
            return outer.size(), outer.local_segment().size()
        out = run(prog, nlocs=3)
        assert all(o[0] == 6 for o in out)
        assert sum(o[1] for o in out) == 6

    def test_height(self):
        def prog(ctx):
            outer = compose_plist_of_parrays(ctx, [2, 2], dtype=int)
            return composition_height(outer)
        assert run(prog, nlocs=2) == [2, 2]


class TestMakeNested:
    def test_nested_ref_resolution(self):
        def prog(ctx):
            ref = make_nested(ctx, lambda c, g: PArray(c, 5, value=9,
                                                       dtype=int, group=g))
            assert isinstance(ref, NestedRef)
            inner = ref.resolve(ctx.runtime)
            return inner.size(), inner.get_element(2), ref.owner == ctx.id
        assert run(prog, nlocs=2) == [(5, 9, True)] * 2

    def test_three_level_composition(self):
        """Arbitrary-depth composition (Fig. 4): pArray<pArray<pArray>>."""
        def prog(ctx):
            def inner_factory(c, g):
                return PArray(c, 2, value=1, dtype=int, group=g)

            def middle_factory(c, g):
                mid = PArray(c, 2, value=0, dtype=object, group=g)
                for bc in mid.local_bcontainers():
                    for i in bc.domain:
                        bc.set(i, make_nested(c, inner_factory))
                return mid

            outer = PArray(ctx, ctx.nlocs, value=0, dtype=object)
            for bc in outer.local_bcontainers():
                for i in bc.domain:
                    bc.set(i, make_nested(ctx, middle_factory))
            ctx.rmi_fence()
            return composition_height(outer)
        assert run(prog, nlocs=2) == [3, 3]


class TestNestedAccounting:
    """nested_get/nested_set must hit the lookup/invocation counters like
    any other container method (previously they bypassed accounting)."""

    def test_local_invocation_counted(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [2] * ctx.nlocs, value=1,
                                              dtype=int)
            ctx.rmi_fence()
            lk0 = ctx.stats.lookups_charged
            li0 = ctx.stats.local_invocations
            ri0 = ctx.stats.remote_invocations
            # gid == ctx.id is owned locally under the balanced partition;
            # the composed access charges the outer get, the nested
            # dispatch itself, and the inner get — all local
            val = nested_get(outer, ctx.id, 0)
            ctx.rmi_fence()
            return (val, ctx.stats.lookups_charged - lk0,
                    ctx.stats.local_invocations - li0,
                    ctx.stats.remote_invocations - ri0)
        out = run(prog, nlocs=2)
        assert all(o == (1, 3, 3, 0) for o in out)

    def test_remote_invocation_counted(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [2] * ctx.nlocs, value=4,
                                              dtype=int)
            ctx.rmi_fence()
            lk0 = ctx.stats.lookups_charged
            ri0 = ctx.stats.remote_invocations
            target = (ctx.id + 1) % ctx.nlocs
            val = nested_get(outer, target, 1)
            nested_set(outer, target, 1, 7)
            ctx.rmi_fence()
            back = nested_get(outer, target, 1)
            return (val, back, ctx.stats.lookups_charged - lk0 >= 3,
                    ctx.stats.remote_invocations - ri0 >= 3)
        out = run(prog, nlocs=3)
        assert all(o == (4, 7, True, True) for o in out)
