"""Associative pContainer tests (Ch. XII)."""

import pytest

from repro.containers.associative import (
    PHashMap,
    PHashSet,
    PMap,
    PMultiMap,
    PMultiSet,
    PSet,
)
from tests.conftest import run


class TestPHashMap:
    def test_insert_find(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            hm.insert(f"key{ctx.id}", ctx.id)
            ctx.rmi_fence()
            return [hm.find(f"key{j}") for j in range(ctx.nlocs)]
        assert run(prog, nlocs=4)[0] == [0, 1, 2, 3]

    def test_insert_does_not_overwrite(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            if ctx.id == 0:
                assert hm.insert_sync("k", 1)
                assert not hm.insert_sync("k", 2)
            ctx.rmi_fence()
            return hm.find("k")
        assert run(prog, nlocs=2) == [1, 1]

    def test_set_element_overwrites(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            if ctx.id == 0:
                hm.insert_sync("k", 1)
                hm.set_element("k", 9)
            ctx.rmi_fence()
            return hm.find("k")
        assert run(prog, nlocs=2) == [9, 9]

    def test_find_missing_raises(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            ctx.rmi_fence()
            with pytest.raises(KeyError):
                hm.find("nope")
            return hm.find_val("nope")
        assert run(prog, nlocs=2) == [(None, False)] * 2

    def test_split_phase_find(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            if ctx.id == 0:
                hm.insert_sync("x", 3)
            ctx.rmi_fence()
            f = hm.split_phase_find("x")
            return f.get()
        assert run(prog, nlocs=2) == [(3, True)] * 2

    def test_erase_and_contains(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            if ctx.id == 0:
                hm.insert_sync("a", 1)
            ctx.rmi_fence()
            had = "a" in hm
            ctx.rmi_fence()
            if ctx.id == 1:
                n = hm.erase("a")
                assert n == 1
            ctx.rmi_fence()
            return had, hm.contains("a")
        assert run(prog, nlocs=2) == [(True, False)] * 2

    def test_accumulate_combining(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            for _ in range(3):
                hm.accumulate("count", 1)
            ctx.rmi_fence()
            return hm.find("count")
        assert run(prog, nlocs=4) == [12] * 4

    def test_update_size(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            hm.insert(ctx.id, ctx.id)
            ctx.rmi_fence()
            return hm.update_size()
        assert run(prog, nlocs=4) == [4] * 4

    def test_to_dict(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            hm.insert(ctx.id, ctx.id * 2)
            ctx.rmi_fence()
            return hm.to_dict()
        assert run(prog, nlocs=3)[0] == {0: 0, 1: 2, 2: 4}

    def test_apply_set(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            if ctx.id == 0:
                hm.insert_sync("k", 10)
                hm.apply_set("k", lambda v: v + 5)
            ctx.rmi_fence()
            return hm.apply_get("k", lambda v: v)
        assert run(prog, nlocs=2) == [15, 15]


class TestPMap:
    def test_range_partition_sorted_enumeration(self):
        def prog(ctx):
            pm = PMap(ctx, splitters=[8, 16])
            for k in range(ctx.id, 24, ctx.nlocs):
                pm.insert(k, -k)
            ctx.rmi_fence()
            return pm.sorted_items()
        items = run(prog, nlocs=3)[0]
        assert [k for k, _ in items] == list(range(24))
        assert items[5] == (5, -5)

    def test_range_partition_routing(self):
        def prog(ctx):
            pm = PMap(ctx, splitters=[10])
            if ctx.id == 0:
                pm.insert_sync(5, "low")
                pm.insert_sync(15, "high")
            ctx.rmi_fence()
            return pm.lookup(5), pm.lookup(15)
        lo, hi = run(prog, nlocs=2)[0]
        assert lo == 0 and hi == 1

    def test_default_hash_fallback(self):
        def prog(ctx):
            pm = PMap(ctx)
            pm.insert(ctx.id, str(ctx.id))
            ctx.rmi_fence()
            return sorted(pm.to_dict().items())
        assert run(prog, nlocs=2)[0] == [(0, "0"), (1, "1")]


class TestSets:
    def test_pset_unique(self):
        def prog(ctx):
            ps = PSet(ctx)
            ps.insert(ctx.id % 2)
            ps.insert(ctx.id % 2)
            ctx.rmi_fence()
            return ps.update_size(), ps.count(0), ps.count(1)
        assert run(prog, nlocs=4) == [(2, 1, 1)] * 4

    def test_pmultiset_counts(self):
        def prog(ctx):
            ms = PMultiSet(ctx)
            ms.insert("dup")
            ctx.rmi_fence()
            return ms.count("dup"), ms.update_size()
        assert run(prog, nlocs=3) == [(3, 3)] * 3

    def test_phashset(self):
        def prog(ctx):
            hs = PHashSet(ctx)
            hs.insert(ctx.id * 100)
            ctx.rmi_fence()
            return sorted(k for k, _ in hs.to_dict().items())
        assert run(prog, nlocs=3)[0] == [0, 100, 200]

    def test_pmultimap(self):
        def prog(ctx):
            mm = PMultiMap(ctx)
            mm.insert("k", ctx.id)
            ctx.rmi_fence()
            return mm.count("k"), sorted(mm.find("k"))
        assert run(prog, nlocs=3) == [(3, [0, 1, 2])] * 3

    def test_set_view_rejects_writes(self):
        from repro.views.map_views import SetView

        def prog(ctx):
            ps = PSet(ctx)
            ps.insert(1)
            ctx.rmi_fence()
            view = SetView(ps)
            try:
                view.write(1, 2)
                return False
            except TypeError:
                return True
        assert all(run(prog, nlocs=2))


class TestClearAndErase:
    def test_clear(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            hm.insert(ctx.id, 1)
            ctx.rmi_fence()
            hm.update_size()
            hm.clear()
            return hm.size(), hm.local_size()
        assert run(prog, nlocs=2) == [(0, 0)] * 2

    def test_erase_async(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            hm.insert(ctx.id, 1)
            ctx.rmi_fence()
            hm.erase_async(ctx.id)
            ctx.rmi_fence()
            return hm.update_size()
        assert run(prog, nlocs=4) == [0] * 4
