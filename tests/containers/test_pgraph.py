"""pGraph tests (Ch. XI)."""

import pytest

from repro.containers.pgraph import UNDIRECTED, PGraph
from tests.conftest import run, run_detailed


class TestStaticGraph:
    def test_vertices_preallocated(self):
        def prog(ctx):
            g = PGraph(ctx, 10)
            return g.get_num_vertices(), g.local_size()
        out = run(prog, nlocs=2)
        assert out[0][0] == 10
        assert sum(o[1] for o in out) == 10

    def test_add_vertex_asserts(self):
        def prog(ctx):
            g = PGraph(ctx, 4)
            try:
                g.add_vertex()
                return False
            except AssertionError:
                return True
        assert all(run(prog, nlocs=2))

    def test_edges(self):
        def prog(ctx):
            g = PGraph(ctx, 8)
            if ctx.id == 0:
                for v in range(7):
                    g.add_edge_async(v, v + 1)
            ctx.rmi_fence()
            return (g.get_num_edges(), g.has_edge(3, 4), g.has_edge(4, 3),
                    g.out_degree(0), g.adjacents(6))
        out = run(prog, nlocs=4)
        assert out[0] == (7, True, False, 1, [7])

    def test_sync_add_edge_duplicate_detection(self):
        def prog(ctx):
            g = PGraph(ctx, 4, multi_edges=False)
            out = None
            if ctx.id == 0:
                out = (g.add_edge(0, 1), g.add_edge(0, 1))
            ctx.rmi_fence()
            return out
        assert run(prog, nlocs=2)[0] == (True, False)

    def test_multi_edges(self):
        def prog(ctx):
            g = PGraph(ctx, 4, multi_edges=True)
            if ctx.id == 0:
                g.add_edge(0, 1)
                g.add_edge(0, 1)
            ctx.rmi_fence()
            return g.out_degree(0), len(g.find_edge(0, 1))
        assert run(prog, nlocs=2)[0] == (2, 2)

    def test_delete_edge(self):
        def prog(ctx):
            g = PGraph(ctx, 4)
            if ctx.id == 0:
                g.add_edge(0, 1)
                g.delete_edge(0, 1)
            ctx.rmi_fence()
            return g.has_edge(0, 1)
        assert run(prog, nlocs=2) == [False, False]

    def test_properties_and_visitors(self):
        def prog(ctx):
            g = PGraph(ctx, 6, default_property=0)
            g.apply_vertex(3, lambda v: setattr(v, "property", v.property + 1))
            ctx.rmi_fence()
            return g.vertex_property(3)
        assert run(prog, nlocs=3) == [3, 3, 3]

    def test_find_vertex(self):
        def prog(ctx):
            g = PGraph(ctx, 4, default_property="p")
            if ctx.id == 0:
                g.add_edge(2, 3)
            ctx.rmi_fence()
            return g.find_vertex(2)
        assert run(prog, nlocs=2)[0] == ("p", [3])

    def test_edges_of(self):
        def prog(ctx):
            g = PGraph(ctx, 4)
            if ctx.id == 0:
                g.add_edge(1, 2, "weight")
            ctx.rmi_fence()
            return g.edges_of(1)
        assert run(prog, nlocs=2)[0] == [(1, 2, "weight")]


class TestUndirectedGraph:
    def test_symmetric_edges(self):
        def prog(ctx):
            g = PGraph(ctx, 6, directed=UNDIRECTED)
            if ctx.id == 0:
                g.add_edge(0, 5)
            ctx.rmi_fence()
            return g.has_edge(0, 5), g.has_edge(5, 0), g.get_num_edges()
        assert run(prog, nlocs=3)[0] == (True, True, 2)

    def test_self_loop_not_doubled(self):
        def prog(ctx):
            g = PGraph(ctx, 4, directed=UNDIRECTED)
            if ctx.id == 0:
                g.add_edge(1, 1)
            ctx.rmi_fence()
            return g.get_num_edges()
        assert run(prog, nlocs=2)[0] == 1

    def test_undirected_delete_both_arcs(self):
        def prog(ctx):
            g = PGraph(ctx, 4, directed=UNDIRECTED)
            if ctx.id == 0:
                g.add_edge(0, 3)
                g.delete_edge(0, 3)
            ctx.rmi_fence()
            return g.has_edge(0, 3), g.has_edge(3, 0)
        assert run(prog, nlocs=2)[0] == (False, False)


class TestDynamicGraph:
    @pytest.mark.parametrize("forwarding", [True, False])
    def test_add_vertex_unique_descriptors(self, forwarding):
        def prog(ctx):
            g = PGraph(ctx, 0, dynamic=True, forwarding=forwarding)
            vds = [g.add_vertex() for _ in range(3)]
            ctx.rmi_fence()
            all_vds = ctx.allgather_rmi(vds)
            flat = [v for chunk in all_vds for v in chunk]
            return len(flat) == len(set(flat)), g.num_vertices_sync()
        out = run(prog, nlocs=4)
        assert all(o == (True, 12) for o in out)

    def test_vertex_with_explicit_descriptor(self):
        def prog(ctx):
            g = PGraph(ctx, 0, dynamic=True)
            if ctx.id == 1:
                g.add_vertex_with(777, "prop")
            ctx.rmi_fence()
            return g.has_vertex(777), g.vertex_property(777)
        assert run(prog, nlocs=2) == [(True, "prop")] * 2

    def test_remote_edges_via_directory(self):
        def prog(ctx):
            g = PGraph(ctx, 12, dynamic=True, default_property=0)
            # every location adds edges touching vertices it does not own
            for v in range(12):
                g.add_edge_async(v, (v + 1) % 12)
            ctx.rmi_fence()
            return g.get_num_edges()
        assert run(prog, nlocs=4)[0] == 48

    def test_forwarding_generates_forward_traffic(self):
        def prog(ctx):
            g = PGraph(ctx, 16, dynamic=True, forwarding=True,
                       default_property=0)
            for v in range(16):
                g.add_edge_async(v, (v + 1) % 16)
            ctx.rmi_fence()
        rep = run_detailed(prog, nlocs=4, machine="cray4")
        assert rep.stats.total.forwarded > 0

    def test_no_forwarding_uses_sync_lookups(self):
        def prog(ctx):
            g = PGraph(ctx, 16, dynamic=True, forwarding=False,
                       default_property=0)
            for v in range(16):
                g.add_edge_async(v, (v + 1) % 16)
            ctx.rmi_fence()
        rep = run_detailed(prog, nlocs=4, machine="cray4")
        assert rep.stats.total.sync_rmi_sent > 0
        assert rep.stats.total.forwarded == 0

    def test_delete_vertex(self):
        def prog(ctx):
            g = PGraph(ctx, 0, dynamic=True)
            vd = g.add_vertex()
            ctx.rmi_fence()
            g.delete_vertex(vd)
            ctx.rmi_fence()
            return g.num_vertices_sync(), g.has_vertex(vd)
        assert run(prog, nlocs=3) == [(0, False)] * 3

    def test_missing_vertex_raises(self):
        def prog(ctx):
            g = PGraph(ctx, 4, dynamic=True)
            ctx.rmi_fence()
            try:
                g.out_degree(999)
                return False
            except KeyError:
                return True
        assert all(run(prog, nlocs=2))


class TestGraphViews:
    def test_native_and_region_views(self):
        from repro.views.graph_views import GraphView, RegionView

        def prog(ctx):
            g = PGraph(ctx, 8, default_property=1)
            view = GraphView(g)
            total = sum(ch.size() for ch in view.local_chunks())
            region = RegionView(g, [0, 1, 2])
            rsize = sum(ch.size() for ch in region.local_chunks())
            all_total = ctx.allreduce_rmi(total)
            all_region = ctx.allreduce_rmi(rsize)
            return all_total, all_region
        assert run(prog, nlocs=4)[0] == (8, 3)

    def test_inner_boundary_partition_vertices(self):
        from repro.views.graph_views import BoundaryView, InnerView

        def prog(ctx):
            g = PGraph(ctx, 8, default_property=0)
            if ctx.id == 0:
                for v in range(7):
                    g.add_edge_async(v, v + 1)  # chain crosses boundaries
            ctx.rmi_fence()
            inner = sum(ch.size() for ch in InnerView(g).local_chunks())
            boundary = sum(ch.size() for ch in BoundaryView(g).local_chunks())
            return ctx.allreduce_rmi(inner), ctx.allreduce_rmi(boundary)
        total_inner, total_boundary = run(prog, nlocs=4)[0]
        assert total_inner + total_boundary == 8
        assert total_boundary >= 3  # chain crosses 3 location boundaries
