"""pArray tests (Ch. IX)."""

import pytest

from repro.containers.parray import PArray
from repro.core import (
    BlockCyclicPartition,
    BlockedPartition,
    ExplicitPartition,
    RangeDomain,
)
from repro.runtime import LocationGroup
from tests.conftest import run


class TestConstruction:
    def test_default_balanced(self):
        def prog(ctx):
            pa = PArray(ctx, 12, dtype=int)
            return [bc.size() for bc in pa.local_bcontainers()]
        assert run(prog, nlocs=4) == [[3], [3], [3], [3]]

    def test_initial_value(self):
        def prog(ctx):
            pa = PArray(ctx, 6, value=7, dtype=int)
            return pa.to_list()
        assert run(prog, nlocs=2)[0] == [7] * 6

    def test_domain_argument(self):
        def prog(ctx):
            pa = PArray(ctx, RangeDomain(5, 12), dtype=int)
            pa.set_element(5, 1) if ctx.id == 0 else None
            ctx.rmi_fence()
            return pa.size(), pa.get_element(5)
        assert run(prog, nlocs=2) == [(7, 1), (7, 1)]

    def test_size_and_empty(self):
        def prog(ctx):
            pa = PArray(ctx, 10, dtype=int)
            eb = PArray(ctx, 0, dtype=int)
            return len(pa), pa.empty(), eb.empty()
        assert run(prog, nlocs=2) == [(10, False, True)] * 2

    @pytest.mark.parametrize("partition_factory,nparts", [
        (lambda P: BlockedPartition(2), None),
        (lambda P: BlockCyclicPartition(P, 1), None),
        (lambda P: ExplicitPartition([5, 1, 1, 1]), 4),
    ])
    def test_custom_partitions_content(self, partition_factory, nparts):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int,
                        partition=partition_factory(ctx.nlocs))
            for i in range(ctx.id, 8, ctx.nlocs):
                pa.set_element(i, i + 1)
            ctx.rmi_fence()
            return pa.to_list()
        assert run(prog, nlocs=4)[0] == [i + 1 for i in range(8)]


class TestElementMethods:
    def test_set_get_roundtrip_all_elements(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            for i in range(ctx.id, 16, ctx.nlocs):
                pa.set_element(i, i * 3)
            ctx.rmi_fence()
            return [pa.get_element(i) for i in range(16)]
        out = run(prog, nlocs=4)
        assert all(o == [i * 3 for i in range(16)] for o in out)

    def test_operator_brackets(self):
        def prog(ctx):
            pa = PArray(ctx, 4, dtype=int)
            if ctx.id == 0:
                pa[2] = 5
            ctx.rmi_fence()
            return pa[2]
        assert run(prog, nlocs=2) == [5, 5]

    def test_split_phase(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            if ctx.id == 0:
                for i in range(8):
                    pa.set_element(i, i)
            ctx.rmi_fence()
            futs = [pa.split_phase_get_element(i) for i in range(8)]
            return [f.get() for f in futs]
        assert run(prog, nlocs=4)[0] == list(range(8))

    def test_apply_get_set(self):
        def prog(ctx):
            pa = PArray(ctx, 4, value=10, dtype=int)
            if ctx.id == 0:
                pa.apply_set(3, lambda v: v * 2)
            ctx.rmi_fence()
            return pa.apply_get(3, lambda v: v + 1)
        assert run(prog, nlocs=2) == [21, 21]

    def test_is_local_and_lookup(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            block = 8 // ctx.nlocs
            mine = ctx.id * block
            return (pa.is_local(mine), pa.lookup(mine) == ctx.id,
                    pa.is_local((mine + block) % 8))
        out = run(prog, nlocs=4)
        assert all(o == (True, True, False) for o in out)

    def test_same_element_program_order(self):
        """Ch. VII condition 4: async write then sync read of the same
        element from the same location must see the write."""
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            remote = (ctx.id + 1) % ctx.nlocs * 2
            pa.set_element(remote, ctx.id + 100)
            got = pa.get_element(remote)
            ctx.rmi_fence()
            return got == ctx.id + 100
        assert all(run(prog, nlocs=4))


class TestGroups:
    def test_parray_on_subgroup(self):
        def prog(ctx):
            if ctx.id < 2:
                g = LocationGroup([0, 1])
                pa = PArray(ctx, 8, dtype=int, group=g)
                pa.set_element(ctx.id, ctx.id + 1)
                ctx.rmi_fence(g)
                return pa.get_element(0) + pa.get_element(1)
            return None
        out = run(prog, nlocs=4)
        assert out[:2] == [3, 3] and out[2:] == [None, None]


class TestRedistributionInterface:
    def test_to_list_after_block_cyclic(self):
        def prog(ctx):
            pa = PArray(ctx, 9, dtype=int,
                        partition=BlockCyclicPartition(ctx.nlocs, 1))
            for i in range(ctx.id, 9, ctx.nlocs):
                pa.set_element(i, i)
            ctx.rmi_fence()
            return pa.to_list()
        assert run(prog, nlocs=3)[0] == list(range(9))
