"""pVector and pList tests (Ch. V.F / X)."""


from repro.containers.plist import PList
from repro.containers.pvector import PVector
from tests.conftest import run, run_detailed


class TestPVector:
    def test_indexed_access(self):
        def prog(ctx):
            pv = PVector(ctx, 8, value=0)
            for i in range(ctx.id, 8, ctx.nlocs):
                pv.set_element(i, i * 2)
            ctx.rmi_fence()
            return [pv.get_element(i) for i in range(8)]
        assert run(prog, nlocs=4)[0] == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_insert_shifts_indices(self):
        def prog(ctx):
            pv = PVector(ctx, 6, value=0)
            for i in range(ctx.id, 6, ctx.nlocs):
                pv.set_element(i, i)
            ctx.rmi_fence()
            if ctx.id == 0:
                pv.insert_element(3, 99)
            ctx.rmi_fence()
            return pv.to_list(), pv.size()
        out = run(prog, nlocs=3)
        assert out[0] == ([0, 1, 2, 99, 3, 4, 5], 7)

    def test_erase_returns_value(self):
        def prog(ctx):
            pv = PVector(ctx, 4, value=0)
            if ctx.id == 0:
                pv.set_element(1, 42)
            ctx.rmi_fence()
            got = pv.erase_element(1) if ctx.id == ctx.nlocs - 1 else None
            ctx.rmi_fence()
            return got, pv.size()
        out = run(prog, nlocs=2)
        assert out[1] == (42, 3)
        assert out[0] == (None, 3)

    def test_push_back_targets_last_block(self):
        def prog(ctx):
            pv = PVector(ctx, 4, value=0)
            pv.push_back(ctx.id + 10)
            ctx.rmi_fence()
            return pv.to_list()
        out = run(prog, nlocs=2)
        assert sorted(out[0][4:]) == [10, 11]

    def test_pop_back(self):
        def prog(ctx):
            pv = PVector(ctx, 4, value=5)
            got = pv.pop_back() if ctx.id == 0 else None
            ctx.rmi_fence()
            return got, pv.size()
        out = run(prog, nlocs=2)
        assert out[0] == (5, 3)

    def test_push_anywhere_is_local(self):
        def prog(ctx):
            pv = PVector(ctx, 0)
            pv.push_anywhere(ctx.id)
            ctx.rmi_fence()
            return pv.size()
        rep = run_detailed(prog, nlocs=4)
        assert rep.results == [4, 4, 4, 4]

    def test_apply(self):
        def prog(ctx):
            pv = PVector(ctx, 4, value=3)
            if ctx.id == 0:
                pv.apply_set(0, lambda v: v * 7)
            ctx.rmi_fence()
            return pv.apply_get(0, lambda v: v + 1)
        assert run(prog, nlocs=2) == [22, 22]

    def test_insert_cost_scales_with_shift(self):
        """pVector insert is linear: inserting at the front of a big block
        costs more virtual time than at the back (Ch. V.F trade-off)."""
        def prog(ctx, front):
            pv = PVector(ctx, 512 * ctx.nlocs, value=0)
            ctx.rmi_fence()
            t0 = ctx.start_timer()
            if ctx.id == 0:
                idx = 0 if front else 511
                for _ in range(10):
                    pv.insert_element(idx, 1)
            ctx.rmi_fence()
            return ctx.stop_timer(t0)
        front = max(run(prog, nlocs=2, machine="cray4", args=(True,)))
        back = max(run(prog, nlocs=2, machine="cray4", args=(False,)))
        assert front > back


class TestPList:
    def test_constructor_balanced(self):
        def prog(ctx):
            pl = PList(ctx, 10, value=1)
            return pl.local_segment().size()
        assert run(prog, nlocs=4) == [3, 3, 2, 2]

    def test_push_back_front_order(self):
        def prog(ctx):
            pl = PList(ctx, 0)
            if ctx.id == 1:
                pl.push_back("end")
                pl.push_front("start")
            ctx.rmi_fence()
            return pl.to_list()
        assert run(prog, nlocs=3)[0] == ["start", "end"]

    def test_stable_gids(self):
        def prog(ctx):
            pl = PList(ctx, 0)
            gid = pl.push_anywhere(ctx.id * 5)
            ctx.rmi_fence()
            # everyone reads everyone's element through gathered gids
            gids = ctx.allgather_rmi(gid)
            return [pl.get_element(g) for g in gids]
        assert run(prog, nlocs=4)[0] == [0, 5, 10, 15]

    def test_insert_before_erase(self):
        def prog(ctx):
            pl = PList(ctx, 0)
            a = pl.push_anywhere("a")
            c_gid = pl.push_anywhere("c")
            b_gid = pl.insert_element(c_gid, "b")
            vals = pl.local_segment().values()
            pl.erase_element(b_gid)
            vals2 = pl.local_segment().values()
            ctx.rmi_fence()
            return vals, vals2
        out = run(prog, nlocs=2)
        assert out[0] == (["a", "b", "c"], ["a", "c"])

    def test_pop_back_front(self):
        def prog(ctx):
            pl = PList(ctx, 0)
            if ctx.id == 0:
                pl.push_back(1)
                pl.push_back(2)
            ctx.rmi_fence()
            out = (pl.pop_front(), pl.pop_back()) if ctx.id == 1 else None
            ctx.rmi_fence()
            return out
        # elements live in the first/last segments
        out = run(prog, nlocs=2)
        assert out[1] is not None

    def test_get_anywhere(self):
        def prog(ctx):
            pl = PList(ctx, 0)
            if ctx.id == 1:
                pl.push_anywhere(77)
            ctx.rmi_fence()
            return pl.get_anywhere()
        assert run(prog, nlocs=2) == [77, 77]

    def test_get_anywhere_empty_raises(self):
        def prog(ctx):
            pl = PList(ctx, 0)
            ctx.rmi_fence()
            try:
                pl.get_anywhere()
                return False
            except IndexError:
                return True
        assert all(run(prog, nlocs=2))

    def test_update_size_lazy(self):
        def prog(ctx):
            pl = PList(ctx, 4)
            pl.push_anywhere(1)
            stale = pl.size()
            ctx.rmi_fence()
            fresh = pl.update_size()
            return stale, fresh
        out = run(prog, nlocs=2)
        assert out[0] == (4, 6)

    def test_splice(self):
        def prog(ctx):
            a = PList(ctx, 0)
            b = PList(ctx, 0)
            b.push_anywhere(ctx.id)
            ctx.rmi_fence()
            a.splice_from(b)
            a.update_size()
            b.update_size()
            return a.size(), b.size()
        assert run(prog, nlocs=3) == [(3, 0)] * 3

    def test_clear(self):
        def prog(ctx):
            pl = PList(ctx, 8)
            pl.clear()
            return pl.size(), pl.local_segment().size()
        assert run(prog, nlocs=2) == [(0, 0)] * 2

    def test_apply_set_via_gid(self):
        def prog(ctx):
            pl = PList(ctx, 0)
            gid = pl.push_anywhere(5)
            pl.apply_set(gid, lambda v: v * 3)
            got = pl.apply_get(gid, lambda v: v)
            ctx.rmi_fence()
            return got
        assert run(prog, nlocs=2) == [15, 15]
