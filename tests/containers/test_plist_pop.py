"""pList pop regression tests: the local fast path (no round trip charged
for pops whose end segment is local), the multi-hop chase across empty end
segments, and IndexError propagation through the sync-RMI path."""

import pytest

from repro.containers.plist import PList
from tests.conftest import run


class TestLocalFastPath:
    def test_local_pop_charges_no_round_trip(self):
        """pop_back on the location owning the last segment must behave
        like push_back: a local invocation, no sync RMI, no physical
        messages."""

        def prog(ctx):
            pl = PList(ctx)
            pl.push_anywhere(ctx.id * 100)
            ctx.rmi_fence()
            if ctx.id == ctx.nlocs - 1:  # owns the last segment
                sync0 = ctx.stats.sync_rmi_sent
                remote0 = ctx.stats.remote_invocations
                msgs0 = ctx.stats.physical_messages
                local0 = ctx.stats.local_invocations
                got = pl.pop_back()
                assert got == ctx.id * 100
                assert ctx.stats.sync_rmi_sent == sync0
                assert ctx.stats.remote_invocations == remote0
                assert ctx.stats.physical_messages == msgs0
                assert ctx.stats.local_invocations == local0 + 1
            ctx.rmi_fence()
            pl.update_size()
            return pl.size()

        assert run(prog, nlocs=4) == [3] * 4

    def test_local_pop_front(self):
        def prog(ctx):
            pl = PList(ctx)
            if ctx.id == 0:
                pl.push_anywhere(7)
            ctx.rmi_fence()
            if ctx.id == 0:  # owns the first segment
                sync0 = ctx.stats.sync_rmi_sent
                assert pl.pop_front() == 7
                assert ctx.stats.sync_rmi_sent == sync0
            ctx.rmi_fence()
            pl.update_size()
            return pl.size()

        assert run(prog, nlocs=2) == [0, 0]

    def test_remote_pop_counts_remote_invocation(self):
        def prog(ctx):
            pl = PList(ctx, size=ctx.nlocs, value=5)
            ctx.rmi_fence()
            if ctx.id == 0 and ctx.nlocs > 1:
                remote0 = ctx.stats.remote_invocations
                sync0 = ctx.stats.sync_rmi_sent
                assert pl.pop_back() == 5  # last segment on another loc
                assert ctx.stats.remote_invocations == remote0 + 1
                assert ctx.stats.sync_rmi_sent == sync0 + 1
            ctx.rmi_fence()
            pl.update_size()
            return pl.size()

        assert run(prog, nlocs=4) == [3] * 4


class TestChase:
    def test_pop_back_chases_through_empty_end_segments(self):
        """Values only in segment 0; pop_back from the last location must
        hop inwards across every empty segment and return segment 0's
        tail."""

        def prog(ctx):
            pl = PList(ctx)
            if ctx.id == 0:
                for v in (1, 2, 3):
                    pl.push_anywhere(v)
            ctx.rmi_fence()
            got = None
            if ctx.id == ctx.nlocs - 1:
                got = pl.pop_back()  # local end segment empty: 3->2->1->0
            ctx.rmi_fence()
            pl.update_size()
            return got, pl.size()

        out = run(prog, nlocs=4)
        assert out[-1] == (3, 2)
        assert all(r[1] == 2 for r in out)

    def test_pop_front_chases_forward(self):
        def prog(ctx):
            pl = PList(ctx)
            if ctx.id == ctx.nlocs - 1:
                pl.push_anywhere(9)  # only the last segment has data
            ctx.rmi_fence()
            got = None
            if ctx.id == 1:
                got = pl.pop_front()  # chases 0 -> 1 -> 2 -> 3
            ctx.rmi_fence()
            pl.update_size()
            return got, pl.size()

        out = run(prog, nlocs=4)
        assert out[1] == (9, 0)

    def test_pop_empty_raises_through_sync_path(self):
        """A fully empty list: the chase exhausts every segment and the
        IndexError propagates back through the (possibly nested) sync
        RMIs to the caller."""

        def prog(ctx):
            pl = PList(ctx)
            ctx.rmi_fence()
            raised = {"back": False, "front": False}
            if ctx.id == 0:
                with pytest.raises(IndexError):
                    pl.pop_back()  # remote sync RMI to the last segment
                raised["back"] = True
                with pytest.raises(IndexError):
                    pl.pop_front()  # local fast path, empty everywhere
                raised["front"] = True
            ctx.rmi_fence()
            return raised

        out = run(prog, nlocs=4)
        assert out[0] == {"back": True, "front": True}
