"""Tests for the predicate/mutating algorithms and SSSP."""


from repro.algorithms import (
    distances_of,
    p_all_of,
    p_any_of,
    p_generate,
    p_histogram,
    p_iota,
    p_mismatch,
    p_none_of,
    p_replace,
    p_replace_if,
    p_swap_ranges,
    p_unique_count,
    sssp,
)
from repro.containers.parray import PArray
from repro.containers.pgraph import PGraph
from repro.views import Array1DView
from repro.workloads.meshes import local_mesh_edges
from tests.conftest import run


def _iota_view(ctx, n=16):
    pa = PArray(ctx, n, dtype=int)
    v = Array1DView(pa)
    p_iota(v)
    return v


class TestPredicates:
    def test_all_any_none(self):
        def prog(ctx):
            v = _iota_view(ctx)
            return (p_all_of(v, lambda x: x >= 0),
                    p_all_of(v, lambda x: x > 0),
                    p_any_of(v, lambda x: x == 7),
                    p_any_of(v, lambda x: x > 100),
                    p_none_of(v, lambda x: x < 0))
        assert run(prog, nlocs=4) == [(True, False, True, False, True)] * 4

    def test_iota_with_start_step(self):
        def prog(ctx):
            pa = PArray(ctx, 6, dtype=int)
            v = Array1DView(pa)
            p_iota(v, start=10, step=3)
            return pa.to_list()
        assert run(prog, nlocs=2)[0] == [10, 13, 16, 19, 22, 25]

    def test_replace(self):
        def prog(ctx):
            pa = PArray(ctx, 12, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: i % 3, vector=lambda g: g % 3)
            n = p_replace(v, 2, -1)
            return n, pa.to_list()
        n, data = run(prog, nlocs=3)[0]
        assert n == 4 and data.count(-1) == 4 and 2 not in data

    def test_replace_if(self):
        def prog(ctx):
            v = _iota_view(ctx, 10)
            n = p_replace_if(v, lambda x: x >= 5, 0)
            return n, sum(v.container.to_list())
        assert run(prog, nlocs=2)[0] == (5, 10)

    def test_mismatch(self):
        def prog(ctx):
            a = _iota_view(ctx, 10)
            b = _iota_view(ctx, 10)
            none = p_mismatch(a, b)
            if ctx.id == 0:
                b.container.set_element(6, -1)
            ctx.rmi_fence()
            found = p_mismatch(a, b)
            return none, found
        assert run(prog, nlocs=2) == [(None, 6)] * 2

    def test_swap_ranges(self):
        def prog(ctx):
            a = _iota_view(ctx, 8)
            b = Array1DView(PArray(ctx, 8, value=-1, dtype=int))
            p_swap_ranges(a, b)
            return a.container.to_list(), b.container.to_list()
        av, bv = run(prog, nlocs=4)[0]
        assert av == [-1] * 8 and bv == list(range(8))

    def test_swap_size_mismatch(self):
        def prog(ctx):
            a = _iota_view(ctx, 4)
            b = _iota_view(ctx, 6)
            try:
                p_swap_ranges(a, b)
                return False
            except ValueError:
                return True
        assert all(run(prog, nlocs=2))

    def test_histogram(self):
        def prog(ctx):
            v = _iota_view(ctx, 16)
            return p_histogram(v, buckets=4, lo=0, hi=16)
        assert run(prog, nlocs=4)[0] == [4, 4, 4, 4]

    def test_unique_count(self):
        def prog(ctx):
            pa = PArray(ctx, 20, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: i % 7, vector=lambda g: g % 7)
            return p_unique_count(v)
        assert run(prog, nlocs=4) == [7] * 4


class TestSSSP:
    def test_unweighted_mesh_matches_bfs_distance(self):
        def prog(ctx):
            rows, cols = 3, 4
            g = PGraph(ctx, rows * cols, default_property=0)
            for (u, v) in local_mesh_edges(rows, cols, ctx.id, ctx.nlocs):
                g.add_edge_async(u, v)
            ctx.rmi_fence()
            sssp(g, 0)
            return distances_of(g, [0, 3, 11])
        # manhattan distances on the mesh
        assert run(prog, nlocs=4)[0] == [0.0, 3.0, 5.0]

    def test_weighted_edges(self):
        def prog(ctx):
            g = PGraph(ctx, 4, default_property=0)
            if ctx.id == 0:
                g.add_edge_async(0, 1, 10.0)   # heavy direct edge
                g.add_edge_async(0, 2, 1.0)    # cheap detour
                g.add_edge_async(2, 1, 2.0)
            ctx.rmi_fence()
            sssp(g, 0)
            return distances_of(g, [1, 2, 3])
        d1, d2, d3 = run(prog, nlocs=2)[0]
        assert d1 == 3.0 and d2 == 1.0 and d3 == float("inf")

    def test_unreachable_is_inf(self):
        def prog(ctx):
            g = PGraph(ctx, 3, default_property=0)
            ctx.rmi_fence()
            rounds = sssp(g, 0)
            return rounds, distances_of(g, [0, 1, 2])
        rounds, dists = run(prog, nlocs=2)[0]
        assert dists == [0.0, float("inf"), float("inf")]
