"""Nested-parallelism tests (Fig. 1, Ch. IV.C): re-entrant PARAGRAPHs,
the stencil / bucket-sort / segmented workloads, and the composition
helpers (`nested_map`, `segmented_reduce`, `segmented_scan`)."""

import operator

from repro.algorithms.generic import p_generate
from repro.algorithms.nested import (
    p_bucket_sort_nested,
    p_segmented_reduce,
    p_segmented_scan,
    p_stencil,
)
from repro.algorithms.prange import Paragraph
from repro.algorithms.sorting import p_sample_sort
from repro.containers.composition import (
    _participating_refs,
    compose_parray_of_parrays,
    make_nested,
    nested_map,
    run_nested_paragraph,
    segmented_reduce,
    segmented_scan,
)
from repro.containers.parray import PArray
from repro.views.array_views import Array1DView
from repro.views.derived_views import segmented_view
from tests.conftest import run, run_detailed


def _scrambled(i):
    return (i * 2654435761) % 1009


def _filled(ctx, n, fn=_scrambled):
    pa = PArray(ctx, n, dtype=int)
    v = Array1DView(pa)
    p_generate(v, fn, vector=None)
    ctx.rmi_fence()
    return pa, v


def _ref_stencil(vals, iters, left=1, right=1):
    """Sequential reference: mean-window stencil with fixed boundaries."""
    cur = list(vals)
    n = len(cur)
    w = left + 1 + right
    for _ in range(iters):
        nxt = list(cur)
        for i in range(left, n - right):
            win = cur[i - left:i - left + w]
            nxt[i] = sum(win) // w
        cur = nxt
    return cur


class TestStencil:
    def _run(self, n, iters, nlocs, dataflow, left=1, right=1):
        def prog(ctx):
            pa, v = _filled(ctx, n)
            p_stencil(v, iters=iters, left=left, right=right,
                      dataflow=dataflow)
            return pa.to_list()
        return run(prog, nlocs=nlocs)

    def test_fenced_matches_reference(self):
        exp = _ref_stencil([_scrambled(i) for i in range(24)], 3)
        assert self._run(24, 3, 4, dataflow=False) == [exp] * 4

    def test_dataflow_matches_reference(self):
        exp = _ref_stencil([_scrambled(i) for i in range(24)], 4)
        assert self._run(24, 4, 4, dataflow=True) == [exp] * 4

    def test_modes_byte_identical_wide_halo(self):
        exp = _ref_stencil([_scrambled(i) for i in range(40)], 3,
                           left=2, right=2)
        assert (self._run(40, 3, 4, dataflow=True, left=2, right=2)
                == self._run(40, 3, 4, dataflow=False, left=2, right=2)
                == [exp] * 4)

    def test_single_iteration(self):
        exp = _ref_stencil([_scrambled(i) for i in range(16)], 1)
        for df in (False, True):
            assert self._run(16, 1, 2, dataflow=df) == [exp] * 2

    def test_tiny_slices_fall_back(self):
        """Slices too small for the halo protocol still compute correctly
        (data-flow falls back to the fenced form)."""
        exp = _ref_stencil([_scrambled(i) for i in range(6)], 3,
                           left=2, right=2)
        assert self._run(6, 3, 3, dataflow=True, left=2, right=2) \
            == [exp] * 3

    def test_dataflow_fences_reduced(self):
        def prog(ctx, dataflow):
            _pa, v = _filled(ctx, 32)
            f0 = ctx.stats.fences
            p_stencil(v, iters=5, dataflow=dataflow)
            return ctx.stats.fences - f0
        fenced = run(prog, nlocs=4, args=(False,))
        dflow = run(prog, nlocs=4, args=(True,))
        assert max(fenced) >= 2 * max(dflow)


class TestBucketSortNested:
    def test_matches_sample_sort(self):
        def prog(ctx, nested):
            pa, v = _filled(ctx, 64)
            if nested:
                p_bucket_sort_nested(v)
            else:
                p_sample_sort(v)
            return pa.to_list()
        a = run(prog, nlocs=4, args=(True,))
        b = run(prog, nlocs=4, args=(False,))
        assert a == b
        assert a[0] == sorted(_scrambled(i) for i in range(64))

    def test_inner_paragraphs_observed(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 64)
            p_bucket_sort_nested(v, fanout=3)
            return None
        rep = run_detailed(prog, nlocs=4)
        st = rep.stats.total
        assert st.nested_paragraphs == 4  # one inner graph per bucket
        # per bucket: 3 sorters + 1 merge
        assert st.nested_tasks_executed == 16

    def test_duplicates_and_empty_buckets(self):
        def prog(ctx):
            pa, v = _filled(ctx, 32, lambda i: i % 3)
            p_bucket_sort_nested(v)
            return pa.to_list()
        out = run(prog, nlocs=4)
        assert out[0] == sorted(i % 3 for i in range(32))


class TestSegmentedAlgorithms:
    LENS = [3, 5, 2, 6]

    def _expected(self):
        sums, scan, off = [], [], 0
        for ln in self.LENS:
            seg = [_scrambled(off + j) for j in range(ln)]
            sums.append(sum(seg))
            c = 0
            for x in seg:
                c += x
                scan.append(c)
            off += ln
        return sums, scan

    def test_seg_view_reduce_scan(self):
        exp_sums, exp_scan = self._expected()

        def prog(ctx):
            pa, v = _filled(ctx, sum(self.LENS))
            sv = segmented_view(v, self.LENS)
            sums = p_segmented_reduce(sv, operator.add, 0)
            p_segmented_scan(sv, operator.add, 0)
            return sums, pa.to_list()
        out = run(prog, nlocs=4)
        assert all(o == (exp_sums, exp_scan) for o in out)

    def test_exclusive_scan(self):
        def prog(ctx):
            pa, v = _filled(ctx, 8, lambda i: 1)
            sv = segmented_view(v, [4, 4])
            p_segmented_scan(sv, operator.add, 0, exclusive=True)
            return pa.to_list()
        assert run(prog, nlocs=2) == [[0, 1, 2, 3] * 2] * 2


class TestCompositionHelpers:
    def test_nested_map(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [3] * ctx.nlocs, value=2,
                                              dtype=int)
            nested_map(outer, lambda x: x * 10)
            vals = []
            rt = outer.runtime
            for bc in outer.local_bcontainers():
                for i in bc.domain:
                    vals.extend(bc.get(i).resolve(rt).to_list())
            return vals
        out = run(prog, nlocs=3)
        assert all(v == 20 for vals in out for v in vals)

    def test_segmented_reduce_composed(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [2, 3, 4], value=5,
                                              dtype=int)
            return segmented_reduce(outer, operator.add, 0)
        assert run(prog, nlocs=3) == [[10, 15, 20]] * 3

    def test_segmented_scan_composed(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [3, 2], value=1,
                                              dtype=int)
            segmented_scan(outer, operator.add, 0)
            rt = outer.runtime
            got = {}
            for bc in outer.local_bcontainers():
                for i in bc.domain:
                    got[i] = bc.get(i).resolve(rt).to_list()
            merged = {}
            for d in ctx.allgather_rmi(got):
                merged.update(d)
            return [merged[i] for i in sorted(merged)]
        assert run(prog, nlocs=2) == [[[1, 2, 3], [1, 2]]] * 2

    def test_nested_map_spawns_inner_graphs(self):
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [4] * ctx.nlocs, value=1,
                                              dtype=int)
            nested_map(outer, lambda x: -x)
            return None
        rep = run_detailed(prog, nlocs=3)
        assert rep.stats.total.nested_paragraphs >= 3
        assert rep.stats.total.nested_tasks_executed >= 3


class TestReentrantParagraph:
    def test_inner_graph_inside_outer_task(self):
        """A task of an outer PARAGRAPH spawns and drains an inner one
        over a nested container — the executor re-enters run()."""
        def prog(ctx):
            pg = Paragraph(ctx)
            out = {}

            def outer_task(_c):
                ref = make_nested(
                    ctx, lambda c, g: PArray(c, 4, value=3, dtype=int,
                                             group=g))

                def build(ipg, iv, _inner):
                    def t(_c2):
                        out["sum"] = sum(
                            iv.read(j) for j in range(iv.size()))
                    ipg.add_task(t)

                run_nested_paragraph(ctx, ref, build)

            pg.add_task(outer_task)
            pg.run()
            pg.destroy()
            return (out["sum"], ctx.stats.nested_paragraphs,
                    ctx.stats.nested_tasks_executed)
        out = run(prog, nlocs=2)
        assert out == [(12, 1, 1)] * 2

    def test_depth_counter_not_fooled_by_sequential_graphs(self):
        """Two PARAGRAPHs run back-to-back (not nested) must not count
        as nested."""
        def prog(ctx):
            for _ in range(2):
                pg = Paragraph(ctx)
                pg.add_task(lambda _c: None)
                pg.run()
                pg.destroy()
            return (ctx.stats.nested_paragraphs,
                    ctx.stats.nested_tasks_executed)
        assert run(prog, nlocs=2) == [(0, 0)] * 2


class TestInnerGroups:
    """Multi-location inner sections: inner PARAGRAPHs whose group has
    more than one member, with team-scoped registration and fences."""

    def test_bucket_sort_team_matches_sample_sort(self):
        def prog(ctx, igs):
            pa, v = _filled(ctx, 64)
            if igs:
                p_bucket_sort_nested(v, inner_group_size=igs)
            else:
                p_sample_sort(v)
            return pa.to_list()

        oracle = run(prog, nlocs=4, args=(0,))
        for igs in (2, 3, 4):
            out = run(prog, nlocs=4, args=(igs,))
            assert out == oracle, f"inner_group_size={igs} diverged"
        assert oracle[0] == sorted(_scrambled(i) for i in range(64))

    def test_team_inner_graphs_observed(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 64)
            p_bucket_sort_nested(v, inner_group_size=2)
            return None

        rep = run_detailed(prog, nlocs=4)
        st = rep.stats.total
        # each 2-member team enters one inner graph per member bucket:
        # 2 teams x 2 buckets x 2 members
        assert st.nested_multi_paragraphs == 8
        assert st.subgroup_fences > 0

    def test_default_path_has_no_multi_groups(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 64)
            p_bucket_sort_nested(v)
            return None

        rep = run_detailed(prog, nlocs=4)
        assert rep.stats.total.nested_multi_paragraphs == 0

    def test_team_duplicates_and_empty_buckets(self):
        def prog(ctx):
            pa, v = _filled(ctx, 32, lambda i: i % 3)
            p_bucket_sort_nested(v, inner_group_size=2)
            return pa.to_list()

        out = run(prog, nlocs=4)
        assert out[0] == sorted(i % 3 for i in range(32))

    def test_composed_helpers_on_teams(self):
        """nested_map / segmented_reduce / segmented_scan over a composed
        container whose segments span two-location teams."""
        def prog(ctx):
            outer = compose_parray_of_parrays(ctx, [2, 3, 4], value=5,
                                              dtype=int, inner_group_size=2)
            nested_map(outer, lambda x: x + 1)
            sums = segmented_reduce(outer, operator.add, 0)
            segmented_scan(outer, operator.add, 0)
            sums2 = segmented_reduce(outer, operator.add, 0)
            return sums, sums2

        out = run(prog, nlocs=4)
        # elements become 6; scan makes each segment [6, 12, ...]
        assert out == [([12, 18, 24], [18, 36, 60])] * 4

    def test_team_scan_matches_flat_recurrence(self):
        def prog(ctx):
            lens = [3, 5, 2, 6]
            outer = compose_parray_of_parrays(ctx, lens, value=0, dtype=int,
                                              inner_group_size=2)
            starts, off = [], 0
            for ln in lens:
                starts.append(off)
                off += ln
            for gid, ref in _participating_refs(outer):
                if ctx.id == ref.owner:
                    ref.resolve(ctx.runtime, ctx.id).set_range(
                        0, [_scrambled(starts[gid] + j)
                            for j in range(lens[gid])])
            ctx.rmi_fence(outer.group)
            segmented_scan(outer, operator.add, 0)
            got = {}
            for gid, ref in _participating_refs(outer):
                vals = ref.resolve(ctx.runtime, ctx.id).to_list()
                if ctx.id == ref.owner:
                    got[gid] = vals
            merged = {}
            for d in ctx.allgather_rmi(got):
                merged.update(d)
            return [x for g in sorted(merged) for x in merged[g]]

        out = run(prog, nlocs=4)
        exp, off = [], 0
        for ln in [3, 5, 2, 6]:
            c = 0
            for j in range(ln):
                c += _scrambled(off + j)
                exp.append(c)
            off += ln
        assert out == [exp] * 4
