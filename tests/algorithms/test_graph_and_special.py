"""Graph algorithms, Euler tour, MapReduce and sorting tests."""

import pytest

from repro.algorithms.euler_tour import (
    EulerTour,
    preorder_numbering,
    subtree_sizes,
    tree_rooting,
    vertex_levels,
)
from repro.algorithms.graph_algorithms import (
    bfs,
    connected_components,
    find_sources,
    graph_coloring,
    out_degree_histogram,
    page_rank,
)
from repro.algorithms.map_reduce import map_reduce, word_count
from repro.algorithms.sorting import p_is_sorted, p_sample_sort
from repro.containers.parray import PArray
from repro.containers.pgraph import UNDIRECTED, PGraph
from repro.views import Array1DView
from repro.workloads.meshes import local_mesh_edges
from repro.workloads.ssca2 import SSCA2Spec, local_edges
from repro.workloads.trees import (
    binary_tree_edges,
    caterpillar_tree_edges,
    random_tree_edges,
    tree_parents,
)
from tests.conftest import run


def _mesh_graph(ctx, rows, cols, directed=True, dynamic=False):
    g = PGraph(ctx, rows * cols, directed=directed, dynamic=dynamic,
               default_property=0)
    for (u, v) in local_mesh_edges(rows, cols, ctx.id, ctx.nlocs):
        g.add_edge_async(u, v)
    ctx.rmi_fence()
    return g


class TestBFS:
    def test_mesh_levels(self):
        def prog(ctx):
            g = _mesh_graph(ctx, 3, 4)
            reached, levels = bfs(g, 0)
            corner = g.vertex_property(11)  # opposite corner
            return reached, levels, corner
        out = run(prog, nlocs=4)
        assert out[0] == (12, 6, 5)  # (3-1)+(4-1) = 5 hops, 6 levels

    def test_unreachable_vertices(self):
        def prog(ctx):
            g = PGraph(ctx, 6, default_property=0)
            if ctx.id == 0:
                g.add_edge_async(0, 1)
            ctx.rmi_fence()
            reached, _ = bfs(g, 0)
            return reached, g.vertex_property(5)
        assert run(prog, nlocs=3)[0] == (2, None)

    def test_dynamic_graph_bfs(self):
        def prog(ctx):
            g = _mesh_graph(ctx, 2, 4, dynamic=True)
            reached, _ = bfs(g, 0)
            return reached
        assert run(prog, nlocs=2) == [8, 8]


class TestFindSources:
    def test_chain_plus_isolated(self):
        def prog(ctx):
            g = PGraph(ctx, 6, default_property=0)
            if ctx.id == 0:
                for v in range(4):
                    g.add_edge_async(v, v + 1)
            ctx.rmi_fence()
            return find_sources(g)
        # vertex 0 heads the chain; vertex 5 is isolated (in-degree 0 too)
        assert run(prog, nlocs=3)[0] == [0, 5]

    def test_cycle_has_no_sources(self):
        def prog(ctx):
            g = PGraph(ctx, 5, default_property=0)
            if ctx.id == 0:
                for v in range(5):
                    g.add_edge_async(v, (v + 1) % 5)
            ctx.rmi_fence()
            return find_sources(g)
        assert run(prog, nlocs=2)[0] == []

    @pytest.mark.parametrize("dynamic,forwarding", [
        (False, True), (True, True), (True, False)])
    def test_same_answer_under_all_partitions(self, dynamic, forwarding):
        def prog(ctx):
            g = PGraph(ctx, 48, dynamic=dynamic, forwarding=forwarding,
                       default_property=0)
            spec = SSCA2Spec(num_vertices=48)
            for (u, v) in local_edges(spec, ctx.id, ctx.nlocs):
                g.add_edge_async(u, v)
            ctx.rmi_fence()
            return find_sources(g)
        out = run(prog, nlocs=4)
        assert all(o == out[0] for o in out)


class TestConnectedComponents:
    def test_two_components(self):
        def prog(ctx):
            g = PGraph(ctx, 8, directed=UNDIRECTED, default_property=0)
            if ctx.id == 0:
                g.add_edge(0, 1)
                g.add_edge(1, 2)
                g.add_edge(4, 5)
            ctx.rmi_fence()
            return connected_components(g)
        # {0,1,2}, {4,5}, {3}, {6}, {7}
        assert run(prog, nlocs=4) == [5] * 4

    def test_single_component_mesh(self):
        def prog(ctx):
            g = _mesh_graph(ctx, 3, 3, directed=True)
            return connected_components(g)
        assert run(prog, nlocs=3) == [1] * 3


class TestPageRank:
    def test_mass_conserved(self):
        def prog(ctx):
            g = _mesh_graph(ctx, 3, 5)
            return page_rank(g, iterations=8)
        for s in run(prog, nlocs=4):
            assert s == pytest.approx(1.0, abs=1e-9)

    def test_sink_heavy_vertex(self):
        """Star pointing at vertex 0: it must out-rank the leaves."""
        def prog(ctx):
            g = PGraph(ctx, 6, default_property=0)
            if ctx.id == 0:
                for v in range(1, 6):
                    g.add_edge_async(v, 0)
            ctx.rmi_fence()
            page_rank(g, iterations=10)
            hub = g.vertex_property(0)[0]
            leaf = g.vertex_property(3)[0]
            return hub > leaf
        assert all(run(prog, nlocs=2))


class TestColoring:
    def test_proper_coloring(self):
        def prog(ctx):
            g = _mesh_graph(ctx, 3, 4, directed=UNDIRECTED)
            ncolors = graph_coloring(g)
            # verify properness locally
            ok = True
            for bc in g.local_bcontainers():
                for vd in bc.vertices():
                    mine = bc.vertex_property(vd)["color"]
                    for t in bc.adjacents(vd):
                        other = g.apply_vertex_get(
                            t, lambda v: v.property["color"])
                        if other == mine:
                            ok = False
            return ncolors, ctx.allreduce_rmi(ok, lambda a, b: a and b)
        out = run(prog, nlocs=4)
        ncolors, proper = out[0]
        assert proper and 2 <= ncolors <= 5

    def test_histogram(self):
        def prog(ctx):
            g = _mesh_graph(ctx, 2, 3)
            return out_degree_histogram(g, buckets=4)
        hist = run(prog, nlocs=2)[0]
        assert sum(hist) == 6


class TestEulerTour:
    @pytest.mark.parametrize("maker,n", [
        (binary_tree_edges, 7),
        (binary_tree_edges, 15),
        (lambda n: random_tree_edges(n, seed=3), 12),
        (caterpillar_tree_edges, 9),
    ])
    def test_rooting_matches_bfs_parents(self, maker, n):
        edges = maker(n)

        def prog(ctx):
            tour = EulerTour(ctx, edges, n, root=0)
            tour.rank()
            parent = tree_rooting(tour)
            return [parent.get_element(v) for v in range(n)]
        got = run(prog, nlocs=4)[0]
        assert got == tree_parents(edges, n, 0)

    def test_positions_are_permutation(self):
        n = 9
        edges = binary_tree_edges(n)

        def prog(ctx):
            tour = EulerTour(ctx, edges, n, root=0)
            pos = tour.rank()
            return sorted(pos.get_element(a) for a in range(tour.num_arcs))
        assert run(prog, nlocs=2)[0] == list(range(2 * (n - 1)))

    def test_levels_preorder_sizes(self):
        n = 7
        edges = binary_tree_edges(n)

        def prog(ctx):
            tour = EulerTour(ctx, edges, n, root=0)
            tour.rank()
            parent = tree_rooting(tour)
            lv = vertex_levels(tour, parent)
            pre = preorder_numbering(tour, parent)
            sz = subtree_sizes(tour, parent)
            return ([lv.get_element(v) for v in range(n)],
                    [pre.get_element(v) for v in range(n)],
                    [sz.get_element(v) for v in range(n)])
        levels, pre, sizes = run(prog, nlocs=2)[0]
        assert levels == [0, 1, 1, 2, 2, 2, 2]
        assert sorted(pre) == list(range(n)) and pre[0] == 0
        assert sizes == [7, 3, 3, 1, 1, 1, 1]

    def test_nonzero_root(self):
        n = 7
        edges = binary_tree_edges(n)

        def prog(ctx):
            tour = EulerTour(ctx, edges, n, root=3)
            tour.rank()
            parent = tree_rooting(tour)
            return [parent.get_element(v) for v in range(n)]
        assert run(prog, nlocs=2)[0] == tree_parents(edges, n, 3)


class TestMapReduce:
    def test_word_count_total(self):
        def prog(ctx):
            docs = [f"w{ctx.id} common", "common"]
            out = word_count(ctx, docs)
            return out.to_dict()
        d = run(prog, nlocs=3)[0]
        assert d["common"] == 6
        assert d["w0"] == d["w1"] == d["w2"] == 1

    def test_combiner_equivalence(self):
        def prog(ctx, combine):
            docs = ["a a b", "b c"]
            out = word_count(ctx, docs, combine_locally=combine)
            return out.to_dict()
        with_c = run(prog, nlocs=2, args=(True,))[0]
        without = run(prog, nlocs=2, args=(False,))[0]
        assert with_c == without == {"a": 4, "b": 4, "c": 2}

    def test_generic_map_reduce(self):
        def prog(ctx):
            items = range(ctx.id * 10, ctx.id * 10 + 10)
            out = map_reduce(ctx, items,
                             lambda x: [("even" if x % 2 == 0 else "odd", 1)])
            return out.to_dict()
        assert run(prog, nlocs=2)[0] == {"even": 10, "odd": 10}


class TestSampleSort:
    @pytest.mark.parametrize("nlocs", [1, 2, 4])
    def test_sorts_permutation(self, nlocs):
        def prog(ctx):
            pa = PArray(ctx, 32, dtype=int)
            v = Array1DView(pa)
            from repro.algorithms.generic import p_generate

            p_generate(v, lambda i: (i * 13) % 32,
                       vector=lambda g: (g * 13) % 32)
            p_sample_sort(v)
            return p_is_sorted(v), pa.to_list()
        ok, data = run(prog, nlocs=nlocs)[0]
        assert ok and data == list(range(32))

    def test_sorts_with_duplicates(self):
        def prog(ctx):
            pa = PArray(ctx, 24, dtype=int)
            v = Array1DView(pa)
            from repro.algorithms.generic import p_generate

            p_generate(v, lambda i: i % 5, vector=lambda g: g % 5)
            p_sample_sort(v)
            return pa.to_list()
        assert run(prog, nlocs=3)[0] == sorted(i % 5 for i in range(24))

    def test_is_sorted_detects_disorder(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            v = Array1DView(pa)
            from repro.algorithms.generic import p_generate

            p_generate(v, lambda i: -i, vector=lambda g: -g)
            return p_is_sorted(v)
        assert run(prog, nlocs=2) == [False, False]
