"""Matrix pAlgorithm and column-view tests."""

import math

import pytest

from repro.algorithms import (
    p_col_sums,
    p_frobenius_norm,
    p_matrix_fill,
    p_matvec,
    p_row_sums,
)
from repro.containers.parray import PArray
from repro.containers.pmatrix import PMatrix
from repro.core import Matrix2DPartition
from repro.views.matrix_views import MatrixColsView
from tests.conftest import run


def _filled(ctx, rows=4, cols=3, partition=None):
    pm = PMatrix(ctx, rows, cols, dtype=float, partition=partition)
    p_matrix_fill(pm, lambda r, c: r * 10.0 + c)
    return pm


class TestMatrixFill:
    @pytest.mark.parametrize("partition_factory", [
        lambda P: None,
        lambda P: Matrix2DPartition(P, 1),
        lambda P: Matrix2DPartition(1, P),
    ])
    def test_fill_all_layouts(self, partition_factory):
        def prog(ctx):
            pm = _filled(ctx, partition=partition_factory(ctx.nlocs))
            return pm.to_nested()
        out = run(prog, nlocs=2)
        assert out[0] == [[r * 10.0 + c for c in range(3)] for r in range(4)]


class TestMatVec:
    def test_matches_numpy(self):
        import numpy as np

        def prog(ctx):
            pm = _filled(ctx, 4, 3)
            return p_matvec(pm, [1.0, 2.0, 3.0])
        got = run(prog, nlocs=4)[0]
        a = np.array([[r * 10.0 + c for c in range(3)] for r in range(4)])
        assert got == pytest.approx((a @ [1.0, 2.0, 3.0]).tolist())

    def test_writes_into_parray(self):
        def prog(ctx):
            pm = _filled(ctx, 4, 3, partition=Matrix2DPartition(ctx.nlocs, 1))
            y = PArray(ctx, 4, dtype=float)
            p_matvec(pm, [1.0, 1.0, 1.0], y_parray=y)
            return y.to_list()
        got = run(prog, nlocs=2)[0]
        assert got == [3.0, 33.0, 63.0, 93.0]

    def test_dimension_check(self):
        def prog(ctx):
            pm = _filled(ctx)
            try:
                p_matvec(pm, [1.0, 2.0])
                return False
            except ValueError:
                return True
        assert all(run(prog, nlocs=2))


class TestReductions:
    def test_row_and_col_sums(self):
        def prog(ctx):
            pm = _filled(ctx, 3, 3)
            return p_row_sums(pm), p_col_sums(pm)
        rows, cols = run(prog, nlocs=3)[0]
        assert rows == [3.0, 33.0, 63.0]
        assert cols == [30.0, 33.0, 36.0]

    def test_frobenius(self):
        def prog(ctx):
            pm = PMatrix(ctx, 2, 2, dtype=float)
            p_matrix_fill(pm, lambda r, c: 2.0)
            return p_frobenius_norm(pm)
        assert run(prog, nlocs=2)[0] == pytest.approx(math.sqrt(16.0))


class TestColsView:
    def test_local_when_column_partitioned(self):
        def prog(ctx):
            pm = _filled(ctx, 3, 4, partition=Matrix2DPartition(1, ctx.nlocs))
            cv = MatrixColsView(pm)
            names = [type(ch).__name__ for ch in cv.local_chunks()]
            return names, cv.read(2)
        names, col2 = run(prog, nlocs=2)[0]
        assert names == ["_LocalColsChunk"]
        assert col2 == [2.0, 12.0, 22.0]

    def test_col_write(self):
        def prog(ctx):
            pm = _filled(ctx, 3, 4, partition=Matrix2DPartition(1, ctx.nlocs))
            cv = MatrixColsView(pm)
            for ch in cv.local_chunks():
                for c in ch.gids():
                    ch.write(c, [float(c)] * 3)
            ctx.rmi_fence()
            return pm.get_col(3)
        assert run(prog, nlocs=2)[0] == [3.0, 3.0, 3.0]

    def test_col_reduce(self):
        import numpy as np

        def prog(ctx):
            pm = _filled(ctx, 3, 4, partition=Matrix2DPartition(1, ctx.nlocs))
            cv = MatrixColsView(pm)
            out = {}
            for ch in cv.local_chunks():
                out.update(dict(ch.col_reduce(np.max)))
            gathered = ctx.allgather_rmi(out)
            merged = {}
            for d in gathered:
                merged.update(d)
            return [merged[c] for c in range(4)]
        assert run(prog, nlocs=2)[0] == [20.0, 21.0, 22.0, 23.0]
