"""Tests for the dependence-driven executor: ready-queue scheduling,
cross-location data-flow edges, quiescence, deadlock detection, the
multi-view synchronisation fix, and dataflow-on/off equivalence of every
rewritten algorithm."""

import pytest

from repro.algorithms.generic import (
    p_adjacent_difference,
    p_generate,
    p_partial_sum,
    p_transform,
)
from repro.algorithms.pipelines import p_sort_scan_pipeline
from repro.algorithms.prange import Executor, Paragraph, PRange, set_dataflow
from repro.algorithms.sorting import build_sort_tasks, p_sample_sort
from repro.algorithms.sssp import distances_of, sssp
from repro.containers.parray import PArray
from repro.containers.pgraph import PGraph
from repro.runtime.scheduler import SpmdError
from repro.views.array_views import Array1DView
from tests.conftest import run, run_detailed


def _toggled(prog, on, nlocs, **kw):
    prev = set_dataflow(on)
    try:
        return run(prog, nlocs=nlocs, **kw)
    finally:
        set_dataflow(prev)


class TestExecutorScheduling:
    def test_diamond_dependencies_topological(self):
        def prog(ctx):
            order = []
            pr = PRange([])
            a = pr.add_task(lambda _c: order.append("a"))
            b = pr.add_task(lambda _c: order.append("b"), deps=(a,))
            c = pr.add_task(lambda _c: order.append("c"), deps=(a,))
            d = pr.add_task(lambda _c: order.append("d"), deps=(b, c))
            Executor(fence=False).run(pr)
            return order
        (order,) = run(prog, nlocs=1)
        assert order[0] == "a" and order[-1] == "d"
        assert set(order) == {"a", "b", "c", "d"}

    def test_wide_chain_completes(self):
        """The O(1)-trigger scheduler handles a long chain plus fan-out
        (the seed's O(n^2) rescan was the motivating fix)."""
        def prog(ctx):
            pr = PRange([])
            prev = pr.add_task(lambda _c: 0)
            for _ in range(300):
                prev = pr.add_task(lambda _c: 0, deps=(prev,))
            tail = [pr.add_task(lambda _c: 1, deps=(prev,))
                    for _ in range(50)]
            return len(Executor(fence=False).run(pr)), all(
                t.done for t in tail)
        assert run(prog, nlocs=1)[0] == (351, True)

    def test_cycle_detected_in_larger_graph(self):
        def prog(ctx):
            pr = PRange([])
            a = pr.add_task(lambda _c: None)
            b = pr.add_task(lambda _c: None, deps=(a,))
            c = pr.add_task(lambda _c: None, deps=(b,))
            # close the cycle after construction: b also waits on c
            b.deps = (a, c)
            try:
                Executor(fence=False).run(pr)
                return False
            except RuntimeError as exc:
                return "cycle" in str(exc)
        assert all(run(prog, nlocs=2))

    def test_tasks_executed_counter(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            p_generate(Array1DView(pa), lambda i: i)
            return None
        report = run_detailed(prog, nlocs=4)
        assert report.stats.total.tasks_executed >= 4


class TestMultiViewSync:
    def test_post_execute_every_view_once_per_container(self):
        """Satellite fix: a multi-view pRange must commit *all* its
        containers (deduplicated), with a single fence."""
        def prog(ctx):
            a = PArray(ctx, 8, dtype=int)
            b = PArray(ctx, 8, dtype=int)
            calls = []
            for name, c in (("a", a), ("b", b)):
                c.post_execute = lambda n=name: calls.append(n)
            pr = PRange([Array1DView(a), Array1DView(b), Array1DView(a)])
            pr.add_task(lambda _c: None)
            fences0 = ctx.stats.fences
            Executor().run(pr)
            return calls, ctx.stats.fences - fences0
        for calls, fences in run(prog, nlocs=2):
            assert calls == ["a", "b"]  # each container once, dst included
            assert fences == 1          # deduped: one fence, not one per view

    def test_p_transform_synchronises_destination(self):
        """p_transform's pRange carries both views, so the destination
        container's post_execute hook runs too."""
        def prog(ctx):
            a = PArray(ctx, 12, dtype=int)
            b = PArray(ctx, 12, dtype=int)
            hooked = []
            b.post_execute = lambda: hooked.append(1)
            p_generate(Array1DView(a), lambda i: i + 1)
            p_transform(Array1DView(a), Array1DView(b), lambda v: v * 2)
            return b.to_list(), len(hooked)
        for data, hooks in run(prog, nlocs=3):
            assert data == [(i + 1) * 2 for i in range(12)]
            assert hooks >= 1


class TestParagraphDataflow:
    def test_cross_location_edges_deliver_values(self):
        def prog(ctx):
            pg = Paragraph(ctx)
            me = pg.group.members.index(ctx.id)
            P = len(pg.group.members)
            right = pg.group.members[(me + 1) % P]
            got = []
            pg.add_task(lambda _c: pg.send(right, "ring", me * 10, tag="v"))
            pg.add_task(lambda _c, inputs: got.append(inputs["v"]),
                        key="ring", needs=1)
            pg.run(fence=False)
            pg.destroy()
            return got
        out = run(prog, nlocs=4)
        assert [g[0] for g in out] == [30, 0, 10, 20]

    def test_early_arrival_before_task_registration(self):
        """A dependence message may land before the consumer task is
        added; it must be held and delivered on registration."""
        def prog(ctx):
            pg = Paragraph(ctx)
            got = []
            if ctx.id == 0:
                pg.send(1, "late", 42, tag="v")
            ctx.rmi_fence()  # deliver the message before the task exists
            if ctx.id == 1:
                pg.add_task(lambda _c, inputs: got.append(inputs["v"]),
                            key="late", needs=1)
            pg.run(fence=False)
            ctx.rmi_fence()
            pg.destroy()
            return got
        out = run(prog, nlocs=2)
        assert out[1] == [42]

    def test_deadlock_detected(self):
        def prog(ctx):
            pg = Paragraph(ctx)
            # every location waits for an input nobody sends
            pg.add_task(lambda _c, inputs: None, key="never", needs=1)
            pg.run(fence=False)
        with pytest.raises(SpmdError, match="deadlock"):
            run(prog, nlocs=2)

    def test_subgroup_deadlock_detected_despite_outside_traffic(self):
        """Progress is group-scoped: messages among locations outside a
        stuck Paragraph's group must not mask its deadlock."""
        from repro.runtime.scheduler import LocationGroup

        def prog(ctx):
            if ctx.id in (0, 1):
                pg = Paragraph(ctx, group=LocationGroup([0, 1]))
                pg.add_task(lambda _c, inputs: None, key="never", needs=1)
                pg.run(fence=False)
            else:
                # unrelated churn on the other subgroup: a chain of real
                # cross-location dependence messages
                pg = Paragraph(ctx, group=LocationGroup([2, 3]))
                other = 5 - ctx.id
                if ctx.id == 2:
                    prev = None
                    for r in range(30):
                        prev = pg.add_task(
                            lambda _c, r=r: pg.send(other, r, r, tag="v"),
                            deps=(prev,) if prev else ())
                else:
                    for r in range(30):
                        pg.add_task(lambda _c, inputs: None, key=r, needs=1)
                pg.run(fence=False)
        with pytest.raises(SpmdError, match="deadlock"):
            run(prog, nlocs=4)

    def test_dependence_message_counters(self):
        def prog(ctx):
            pg = Paragraph(ctx)
            me = pg.group.members.index(ctx.id)
            P = len(pg.group.members)
            right = pg.group.members[(me + 1) % P]
            pg.add_task(lambda _c: pg.send(right, "x", 1, tag="v"))
            pg.add_task(lambda _c, inputs: None, key="x", needs=1)
            pg.run(fence=False)
            pg.destroy()
            return None
        report = run_detailed(prog, nlocs=4)
        total = report.stats.total
        assert total.dependence_messages == 4
        assert total.tasks_executed == 8

    def test_edge_delivery_crossing_migration_epoch(self):
        """Dependence edges are location-addressed: a migration (epoch
        bump) between graph construction and execution must neither lose
        deliveries nor misroute the container writes consumer tasks
        issue against the new placement."""
        def prog(ctx):
            P = ctx.nlocs
            pa = PArray(ctx, 4 * P, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: i + 1)
            pg = Paragraph(ctx, views=(v,))
            me = pg.group.members.index(ctx.id)
            right = pg.group.members[(me + 1) % P]

            def produce(_c):
                sl = v.balanced_slices()
                pg.send(right, "sum", sum(v.read(i) for i in sl), tag="s")

            def consume(_c, inputs):
                pa.set_element(me, inputs["s"])

            pg.add_task(produce)
            pg.add_task(consume, key="sum", needs=1)
            # rotate every bContainer one location right: epoch bump
            epoch0 = pa.distribution.epoch
            mapper = pa.distribution.mapper
            nbcs = pa.distribution.partition.size()
            pa.migrate({bcid: pg.group.members[
                (pg.group.members.index(mapper.map(bcid)) + 1) % P]
                for bcid in range(nbcs)})
            bumped = pa.distribution.epoch - epoch0
            pg.run()
            pg.destroy()
            return pa.to_list(), bumped
        out = run(prog, nlocs=4)
        data, bumped = out[0]
        assert bumped == 1
        # element i holds the left neighbour's pre-migration slab sum
        n = 16
        slabs = [list(range(lo + 1, lo + 5)) for lo in range(0, n, 4)]
        expected = [sum(slabs[(i - 1) % 4]) for i in range(4)]
        assert data[:4] == expected
        assert data[4:] == list(range(5, n + 1))


class TestDataflowEquivalence:
    """set_dataflow(on) == set_dataflow(off), byte for byte."""

    @pytest.mark.parametrize("nlocs", [1, 2, 3, 4])
    def test_sample_sort(self, nlocs):
        def prog(ctx):
            pa = PArray(ctx, 30, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: (i * 17) % 13)
            p_sample_sort(v)
            return pa.to_list()
        off = _toggled(prog, False, nlocs)
        on = _toggled(prog, True, nlocs)
        assert on == off
        assert on[0] == sorted((i * 17) % 13 for i in range(30))

    @pytest.mark.parametrize("nlocs,inclusive", [(1, True), (3, True),
                                                 (4, True), (4, False)])
    def test_partial_sum(self, nlocs, inclusive):
        def prog(ctx):
            a = PArray(ctx, 23, dtype=int)
            b = PArray(ctx, 23, dtype=int)
            p_generate(Array1DView(a), lambda i: i - 7)
            p_partial_sum(Array1DView(a), Array1DView(b),
                          inclusive=inclusive)
            return b.to_list()
        assert _toggled(prog, True, nlocs) == _toggled(prog, False, nlocs)

    @pytest.mark.parametrize("nlocs", [1, 2, 4])
    def test_adjacent_difference(self, nlocs):
        def prog(ctx):
            a = PArray(ctx, 19, dtype=int)
            b = PArray(ctx, 19, dtype=int)
            p_generate(Array1DView(a), lambda i: (i * i) % 31)
            p_adjacent_difference(Array1DView(a), Array1DView(b))
            return b.to_list()
        off = _toggled(prog, False, nlocs)
        on = _toggled(prog, True, nlocs)
        assert on == off
        vals = [(i * i) % 31 for i in range(19)]
        assert on[0] == [vals[0]] + [vals[i] - vals[i - 1]
                                     for i in range(1, 19)]

    @pytest.mark.parametrize("nlocs", [1, 3, 4])
    def test_sort_scan_pipeline(self, nlocs):
        def prog(ctx):
            src = PArray(ctx, 26, dtype=int)
            sums = PArray(ctx, 26, dtype=int)
            diffs = PArray(ctx, 26, dtype=int)
            p_generate(Array1DView(src), lambda i: (i * 11) % 7)
            p_sort_scan_pipeline(Array1DView(src), Array1DView(sums),
                                 Array1DView(diffs))
            return src.to_list(), sums.to_list(), diffs.to_list()
        off = _toggled(prog, False, nlocs)
        on = _toggled(prog, True, nlocs)
        assert on == off
        s = sorted((i * 11) % 7 for i in range(26))
        assert on[0][0] == s
        acc = 0
        assert on[0][1] == [acc := acc + v for v in s]

    def test_pipeline_fence_reduction(self):
        """The acceptance claim at unit scale: the one-PARAGRAPH pipeline
        fences at most half as often as the fence-per-phase baseline."""
        def prog(ctx):
            src = PArray(ctx, 32, dtype=int)
            sums = PArray(ctx, 32, dtype=int)
            diffs = PArray(ctx, 32, dtype=int)
            p_generate(Array1DView(src), lambda i: (i * 13) % 17)
            fences0 = ctx.stats.fences
            p_sort_scan_pipeline(Array1DView(src), Array1DView(sums),
                                 Array1DView(diffs))
            return ctx.stats.fences - fences0
        prev = set_dataflow(False)
        try:
            fenced = run(prog, nlocs=4)[0]
        finally:
            set_dataflow(prev)
        prev = set_dataflow(True)
        try:
            dataflow = run(prog, nlocs=4)[0]
        finally:
            set_dataflow(prev)
        assert fenced >= 2 * dataflow

    @pytest.mark.parametrize("nlocs", [2, 4])
    def test_sssp(self, nlocs):
        def prog(ctx):
            g = PGraph(ctx, 8, default_property=0)
            if ctx.id == 0:
                g.add_edge_async(0, 1, 4.0)
                g.add_edge_async(0, 2, 1.0)
                g.add_edge_async(2, 1, 2.0)
                g.add_edge_async(1, 3, 1.0)
                g.add_edge_async(2, 3, 5.0)
                g.add_edge_async(3, 4, 1.0)
                g.add_edge_async(5, 6, 1.0)  # unreachable island
            ctx.rmi_fence()
            sssp(g, 0)
            return distances_of(g, list(range(8)))
        off = _toggled(prog, False, nlocs)
        on = _toggled(prog, True, nlocs)
        assert on == off
        inf = float("inf")
        assert on[0] == [0.0, 3.0, 1.0, 4.0, 5.0, inf, inf, inf]

    def test_sssp_async_fences_fewer_on_deep_graph(self):
        """A path graph forces one fence per level in the baseline; the
        asynchronous mode needs only its quiescence reductions."""
        def prog(ctx):
            n = 12
            g = PGraph(ctx, n, default_property=0)
            if ctx.id == 0:
                for i in range(n - 1):
                    g.add_edge_async(i, i + 1, 1.0)
            ctx.rmi_fence()
            fences0 = ctx.stats.fences
            sssp(g, 0)
            return ctx.stats.fences - fences0, distances_of(g, [n - 1])
        fenced = _toggled(prog, False, 4)
        dataflow = _toggled(prog, True, 4)
        assert dataflow[0][1] == fenced[0][1] == [11.0]
        assert dataflow[0][0] < fenced[0][0]


class TestSplitterDegeneracies:
    """Satellite fix: splitter clamping/spreading on degenerate inputs."""

    @pytest.mark.parametrize("nlocs", [3, 5, 6])
    def test_non_power_of_two_locations(self, nlocs):
        def prog(ctx):
            pa = PArray(ctx, 41, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: (41 - i) % 9)
            p_sample_sort(v)
            return pa.to_list()
        assert run(prog, nlocs=nlocs)[0] == sorted(
            (41 - i) % 9 for i in range(41))

    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_more_locations_than_elements(self, n):
        def prog(ctx):
            pa = PArray(ctx, max(1, n), dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: -i)
            if n:
                p_sample_sort(v)
            return pa.to_list()
        expected = sorted(-i for i in range(max(1, n)))
        assert run(prog, nlocs=4)[0] == expected

    def test_all_equal_keys_spread_across_locations(self):
        """All-equal inputs used to collapse into one bucket; the
        round-robin spread must keep every location's run near n/P."""
        def prog(ctx):
            pa = PArray(ctx, 64, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: 7)
            pg = Paragraph(ctx, views=(v,))
            st = {}
            build_sort_tasks(pg, v, 4, st)
            pg.run()
            pg.destroy()
            return len(st["merged"]), pa.to_list()
        out = run(prog, nlocs=4)
        sizes = [o[0] for o in out]
        assert sum(sizes) == 64
        assert max(sizes) <= 2 * (64 // 4)   # spread, not collapsed
        assert min(sizes) >= 1
        assert out[0][1] == [7] * 64

    def test_duplicate_heavy_mixed_input(self):
        def prog(ctx):
            pa = PArray(ctx, 48, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: 3 if i % 4 else i % 2)
            p_sample_sort(v)
            return pa.to_list()
        assert run(prog, nlocs=4)[0] == sorted(
            3 if i % 4 else i % 2 for i in range(48))


class TestSortingBulkTransport:
    def test_read_and_write_back_ride_slabs(self):
        """Satellite regression: the sort's portion read and sorted
        write-back must use ``read_range``/``write_range`` — per-element
        mode pays an order of magnitude more physical messages.  The
        block→location mapping is rotated so every balanced-slice access
        is remote (the scalar-storm worst case)."""
        n = 4096

        def prog(ctx):
            from repro.core.mappers import GeneralMapper
            from repro.core.traits import Traits

            rotated = [(i + 1) % ctx.nlocs for i in range(ctx.nlocs)]
            pa = PArray(ctx, n, dtype=int,
                        traits=Traits(mapper_factory=lambda: GeneralMapper(
                            rotated)))
            v = Array1DView(pa)
            p_generate(v, lambda i: (i * 2654435761) % 2039,
                       vector=lambda g: (g * 2654435761) % 2039)
            ctx.rmi_fence()
            msgs0 = ctx.stats.physical_messages
            p_sample_sort(v)
            return ctx.stats.physical_messages - msgs0, pa.to_list()

        from repro.views.base import set_bulk_transport

        prev_df = set_dataflow(False)  # isolate transport from the executor
        try:
            prev = set_bulk_transport(False)
            try:
                scalar = run(prog, nlocs=4)
            finally:
                set_bulk_transport(prev)
            prev = set_bulk_transport(True)
            try:
                bulk = run(prog, nlocs=4)
            finally:
                set_bulk_transport(prev)
        finally:
            set_dataflow(prev_df)
        assert bulk[0][1] == scalar[0][1] == sorted(
            (i * 2654435761) % 2039 for i in range(n))
        scalar_msgs = sum(o[0] for o in scalar)
        bulk_msgs = sum(o[0] for o in bulk)
        assert scalar_msgs >= 10 * bulk_msgs
