"""Generic pAlgorithm tests (Ch. VIII.C)."""

import operator

import pytest

from repro.algorithms.generic import (
    p_accumulate,
    p_adjacent_difference,
    p_copy,
    p_count,
    p_count_if,
    p_equal,
    p_fill,
    p_find,
    p_find_if,
    p_for_each,
    p_generate,
    p_inner_product,
    p_max_element,
    p_min_element,
    p_partial_sum,
    p_transform,
    p_visit,
)
from repro.containers.parray import PArray
from repro.containers.plist import PList
from repro.core import BlockCyclicPartition
from repro.views import Array1DView, BalancedView
from repro.views.list_views import StaticListView
from tests.conftest import run


def _view(ctx, n=20, **kw):
    return Array1DView(PArray(ctx, n, dtype=int, **kw))


class TestMapAlgorithms:
    def test_generate_scalar_and_vector(self):
        def prog(ctx, vectorised):
            v = _view(ctx)
            if vectorised:
                p_generate(v, lambda i: i * 2, vector=lambda g: g * 2)
            else:
                p_generate(v, lambda i: i * 2)
            return v.container.to_list()
        exp = [i * 2 for i in range(20)]
        assert run(prog, nlocs=4, args=(True,))[0] == exp
        assert run(prog, nlocs=4, args=(False,))[0] == exp

    def test_for_each_mutates(self):
        def prog(ctx):
            v = _view(ctx)
            p_generate(v, lambda i: i, vector=lambda g: g)
            p_for_each(v, lambda x: x + 100, vector=lambda a: a + 100)
            return v.container.to_list()
        assert run(prog, nlocs=2)[0] == [i + 100 for i in range(20)]

    def test_fill(self):
        def prog(ctx):
            v = _view(ctx)
            p_fill(v, 9)
            return v.container.to_list()
        assert run(prog, nlocs=3)[0] == [9] * 20

    def test_visit_read_only(self):
        def prog(ctx):
            v = _view(ctx, 8)
            p_fill(v, 2)
            seen = []
            p_visit(v, seen.append)
            return sum(seen)
        out = run(prog, nlocs=2)
        assert sum(out) == 16  # every element visited exactly once globally

    def test_works_on_plist(self):
        def prog(ctx):
            pl = PList(ctx, 12, value=1)
            v = StaticListView(pl)
            p_for_each(v, lambda x: x * 5)
            return p_accumulate(v, 0)
        assert run(prog, nlocs=3) == [60] * 3


class TestReductions:
    def test_accumulate(self):
        def prog(ctx):
            v = _view(ctx)
            p_generate(v, lambda i: i, vector=lambda g: g)
            return p_accumulate(v, 0)
        assert run(prog, nlocs=4) == [190] * 4

    def test_accumulate_custom_op(self):
        def prog(ctx):
            v = _view(ctx, 8)
            p_generate(v, lambda i: i + 1, vector=lambda g: g + 1)
            return p_accumulate(v, 1, operator.mul)
        import math

        assert run(prog, nlocs=2) == [math.factorial(8)] * 2

    def test_count(self):
        def prog(ctx):
            v = _view(ctx)
            p_generate(v, lambda i: i % 4, vector=lambda g: g % 4)
            return p_count(v, 2), p_count_if(v, lambda x: x > 1)
        assert run(prog, nlocs=4) == [(5, 10)] * 4

    def test_min_max(self):
        def prog(ctx):
            v = _view(ctx)
            p_generate(v, lambda i: (i * 7) % 20, vector=lambda g: (g * 7) % 20)
            return p_min_element(v), p_max_element(v)
        mn, mx = run(prog, nlocs=4)[0]
        assert mn[1] == 0 and mx[1] == 19

    def test_min_first_occurrence(self):
        def prog(ctx):
            v = _view(ctx, 8)
            p_fill(v, 5)
            return p_min_element(v)
        assert run(prog, nlocs=2) == [(0, 5)] * 2

    def test_find(self):
        def prog(ctx):
            v = _view(ctx)
            p_generate(v, lambda i: i * 3, vector=lambda g: g * 3)
            return p_find(v, 27), p_find(v, 1000), p_find_if(v, lambda x: x > 50)
        assert run(prog, nlocs=4) == [(9, None, 17)] * 4


class TestTwoViewAlgorithms:
    def test_copy_and_equal_aligned(self):
        def prog(ctx):
            a = _view(ctx)
            b = _view(ctx)
            p_generate(a, lambda i: i, vector=lambda g: g)
            p_copy(a, b)
            eq = p_equal(a, b)
            if ctx.id == 0:
                b.container.set_element(5, -1)
            ctx.rmi_fence()
            return eq, p_equal(a, b)
        assert run(prog, nlocs=4) == [(True, False)] * 4

    def test_copy_misaligned_distributions(self):
        def prog(ctx):
            a = Array1DView(PArray(ctx, 12, dtype=int))
            b = Array1DView(PArray(ctx, 12, dtype=int,
                                   partition=BlockCyclicPartition(ctx.nlocs, 1)))
            p_generate(a, lambda i: i, vector=lambda g: g)
            p_copy(a, b)
            return b.container.to_list()
        assert run(prog, nlocs=3)[0] == list(range(12))

    def test_transform(self):
        def prog(ctx):
            a, b = _view(ctx, 10), _view(ctx, 10)
            p_generate(a, lambda i: i, vector=lambda g: g)
            p_transform(a, b, lambda x: x * x, vector=lambda v: v * v)
            return b.container.to_list()
        assert run(prog, nlocs=2)[0] == [i * i for i in range(10)]

    def test_inner_product(self):
        def prog(ctx):
            a, b = _view(ctx, 6), _view(ctx, 6)
            p_fill(a, 2)
            p_fill(b, 3)
            return p_inner_product(a, b, init=1)
        assert run(prog, nlocs=3) == [37] * 3

    def test_equal_size_mismatch(self):
        def prog(ctx):
            a = _view(ctx, 4)
            b = _view(ctx, 6)
            return p_equal(a, b)
        assert run(prog, nlocs=2) == [False, False]


class TestScanFamily:
    def test_adjacent_difference(self):
        def prog(ctx):
            a, b = _view(ctx, 12), _view(ctx, 12)
            p_generate(a, lambda i: i * i, vector=lambda g: g * g)
            p_adjacent_difference(a, b)
            return b.container.to_list()
        out = run(prog, nlocs=4)[0]
        assert out == [0] + [i * i - (i - 1) ** 2 for i in range(1, 12)]

    @pytest.mark.parametrize("nlocs", [1, 2, 4])
    def test_partial_sum_inclusive(self, nlocs):
        def prog(ctx):
            a, b = _view(ctx, 13), _view(ctx, 13)
            p_generate(a, lambda i: i + 1, vector=lambda g: g + 1)
            p_partial_sum(a, b)
            return b.container.to_list()
        exp = []
        acc = 0
        for i in range(13):
            acc += i + 1
            exp.append(acc)
        assert run(prog, nlocs=nlocs)[0] == exp

    def test_partial_sum_exclusive(self):
        def prog(ctx):
            a, b = _view(ctx, 8), _view(ctx, 8)
            p_fill(a, 1)
            p_fill(b, 0)
            p_partial_sum(a, b, inclusive=False)
            return b.container.to_list()
        out = run(prog, nlocs=4)[0]
        assert out == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_partial_sum_custom_op(self):
        def prog(ctx):
            a, b = _view(ctx, 6), _view(ctx, 6)
            p_generate(a, lambda i: i + 1, vector=lambda g: g + 1)
            p_partial_sum(a, b, op=operator.mul)
            return b.container.to_list()
        import math

        assert run(prog, nlocs=3)[0] == [math.factorial(i + 1)
                                         for i in range(6)]


class TestBalancedViewAlgorithms:
    def test_accumulate_via_balanced_view(self):
        def prog(ctx):
            v = _view(ctx, 17)
            p_generate(v, lambda i: 1, vector=lambda g: g * 0 + 1)
            return p_accumulate(BalancedView(v), 0)
        assert run(prog, nlocs=4) == [17] * 4
