"""Memory-consistency model tests (Ch. VII).

These verify the *specified* guarantees and the *specified* relaxations:
the default pContainer MCM keeps per-element program order and source FIFO,
completes asyncs at fences, and is neither sequentially nor processor
consistent; the SEQUENTIAL traits restore SC (Claim 3).
"""

from repro.containers.parray import PArray
from repro.core import ConsistencyMode, Traits
from repro.evaluation.consistency_figs import mcm_demonstrations
from tests.conftest import run, run_detailed


class TestCompletionGuarantees:
    def test_async_completes_at_fence(self):
        def prog(ctx):
            pa = PArray(ctx, 4, dtype=int)
            if ctx.id == 1:
                pa.set_element(0, 5)  # remote for location 1
            pending_before = ctx.runtime.network.total_pending
            ctx.rmi_fence()
            pending_after = ctx.runtime.network.total_pending
            return pending_before, pending_after, pa.get_element(0)
        out = run(prog, nlocs=2)
        assert out[1][0] >= 1          # write was buffered at loc 1
        assert all(o[1] == 0 and o[2] == 5 for o in out)

    def test_sync_on_same_element_forces_async(self):
        """Ch. VII.B: a sync method on x forces completion of pending async
        methods on x from the same location."""
        def prog(ctx):
            pa = PArray(ctx, 4, dtype=int)
            remote = (ctx.id + 1) % ctx.nlocs
            pa.set_element(remote, 7)
            got = pa.get_element(remote)   # same element -> sees the write
            ctx.rmi_fence()
            return got
        assert run(prog, nlocs=4) == [7] * 4

    def test_future_get_forces_completion(self):
        def prog(ctx):
            pa = PArray(ctx, 4, dtype=int)
            remote = (ctx.id + 1) % ctx.nlocs
            pa.set_element(remote, 9)
            f = pa.split_phase_get_element(remote)
            got = f.get()                   # source FIFO: write first
            ctx.rmi_fence()
            return got
        assert run(prog, nlocs=2) == [9, 9]

    def test_async_ordering_same_element_same_source(self):
        """Condition 4: two asyncs on the same element from one location
        complete in invocation order."""
        def prog(ctx):
            pa = PArray(ctx, 2, dtype=int)
            if ctx.id == 1:
                pa.set_element(0, 1)
                pa.set_element(0, 2)
            ctx.rmi_fence()
            return pa.get_element(0)
        assert run(prog, nlocs=2) == [2, 2]

    def test_post_fence_agreement(self):
        """After a fence, all locations read the same value (Ch. VII.C)."""
        def prog(ctx):
            pa = PArray(ctx, 4, dtype=int)
            pa.set_element(2, ctx.id)  # racing writes to one element
            ctx.rmi_fence()
            return pa.get_element(2)
        out = run(prog, nlocs=4)
        assert len(set(out)) == 1  # some winner, agreed by everyone


class TestRelaxations:
    def test_not_sequentially_consistent(self):
        """Dekker outcome (0, 0) is observable under the default MCM."""
        def prog(ctx):
            flags = PArray(ctx, 2, value=0, dtype=int)
            mine, theirs = (1, 0) if ctx.id == 0 else (0, 1)
            flags.set_element(mine, 1)      # remote buffered write
            seen = flags.get_element(theirs)  # local read
            ctx.rmi_fence()
            return seen
        assert run(prog, nlocs=2) == [0, 0]

    def test_sequential_traits_restore_sc(self):
        """Claim 3: with sync-only methods Dekker cannot read both zeros."""
        def prog(ctx):
            traits = Traits(consistency=ConsistencyMode.SEQUENTIAL)
            flags = PArray(ctx, 2, value=0, dtype=int, traits=traits)
            mine, theirs = (1, 0) if ctx.id == 0 else (0, 1)
            flags.set_element(mine, 1)
            seen = flags.get_element(theirs)
            ctx.rmi_fence()
            return seen
        out = run(prog, nlocs=2)
        assert out != [0, 0]

    def test_not_processor_consistent(self):
        """Fig. 23: an observer sees the later write without the earlier."""
        def prog(ctx):
            pa = PArray(ctx, 2, value=0, dtype=int)
            if ctx.id == 0:
                pa.set_element(1, 7)  # first in program order, remote
                pa.set_element(0, 7)  # second, local (completes first)
            obs = (pa.get_element(0), pa.get_element(1)) if ctx.id == 1 else None
            ctx.rmi_fence()
            return obs
        assert run(prog, nlocs=2)[1] == (7, 0)

    def test_mcm_demonstration_table(self):
        res = mcm_demonstrations()
        rows = {r[0]: r[1] for r in res.rows}
        assert rows["same-element program order"] is True
        assert rows["Dekker: both flags read 0 (default MCM)"] is True
        assert rows["Dekker: both flags read 0 (SEQUENTIAL traits)"] is False
        assert rows["L1 sees (x=7 before y=7) inverted"] is True


class TestLiveness:
    def test_every_async_eventually_acknowledged(self):
        """Liveness: after the closing fence no requests remain anywhere."""
        def prog(ctx):
            pa = PArray(ctx, 64, dtype=int)
            for i in range(32):
                pa.set_element((ctx.id * 7 + i * 3) % 64, i)
            ctx.rmi_fence()
        rep = run_detailed(prog, nlocs=4)
        assert rep.runtime.network.total_pending == 0

    def test_size_resynchronised_by_post_execute(self):
        from repro.containers.plist import PList
        from repro.views.list_views import StaticListView

        def prog(ctx):
            pl = PList(ctx, 4)
            pl.push_anywhere(1)
            stale = pl.size()
            view = StaticListView(pl)
            view.post_execute()  # executor's automatic sync point (Ch. VII.H)
            return stale, pl.size()
        out = run(prog, nlocs=2)
        assert out[0] == (4, 6)
