"""ARMI primitive tests: RMI flavours, ordering guarantees, fences,
aggregation and p_object registration (Ch. III.B / VII.B)."""

import pytest

from repro.runtime import Future, PObject, SpmdError
from tests.conftest import run, run_detailed


class Cell(PObject):
    """Minimal shared object used to exercise the RMI layer."""

    def __init__(self, ctx, group=None):
        super().__init__(ctx, group)
        self.value = 0
        self.log = []
        ctx.barrier(self.group)  # collective-constructor epilogue

    def put(self, v):
        self.here.charge_access()
        self.log.append(v)
        self.value = v

    def get(self):
        self.here.charge_access()
        return self.value

    def add(self, v):
        self.value += v
        return self.value


class TestAsyncRMI:
    def test_buffered_until_fence(self):
        def prog(ctx):
            c = Cell(ctx)
            if ctx.id == 1:
                c._async(0, "put", 99)
            before = c.value if ctx.id == 0 else None
            ctx.rmi_fence()
            after = c.value if ctx.id == 0 else None
            return before, after
        out = run(prog, nlocs=2)
        assert out[0] == (0, 99)  # invisible before the fence, visible after

    def test_source_fifo_ordering(self):
        def prog(ctx):
            c = Cell(ctx)
            if ctx.id == 1:
                for v in range(5):
                    c._async(0, "put", v)
            ctx.rmi_fence()
            return c.log if ctx.id == 0 else None
        out = run(prog, nlocs=2)
        assert out[0] == [0, 1, 2, 3, 4]

    def test_async_to_self_deferred(self):
        def prog(ctx):
            c = Cell(ctx)
            ctx.async_rmi(ctx.id, c.handle, "put", 5)
            before = c.value
            ctx.rmi_fence()
            return before, c.value
        assert run(prog, nlocs=1) == [(0, 5)]


class TestSyncRMI:
    def test_returns_value(self):
        def prog(ctx):
            c = Cell(ctx)
            if ctx.id == 0:
                c._async(1, "put", 7)
                got = c._sync(1, "get")
            else:
                got = None
            ctx.rmi_fence()
            return got
        # sync to same dst flushes the pending async first (source FIFO)
        assert run(prog, nlocs=2)[0] == 7

    def test_sync_costs_round_trip(self):
        def prog(ctx):
            c = Cell(ctx)
            ctx.rmi_fence()
            t0 = ctx.start_timer()
            if ctx.id == 0:
                c._sync(1, "get")
            t = ctx.stop_timer(t0)
            ctx.rmi_fence()
            return t
        from repro.runtime.machine import CRAY4

        times = run(prog, nlocs=2, machine="cray4")
        # at least two one-way (intra-node: 2 locations share a node) hops
        assert times[0] > 2 * CRAY4.latency_intra

    def test_sync_rmi_executes_on_target_state(self):
        def prog(ctx):
            c = Cell(ctx)
            c.value = ctx.id * 100
            ctx.barrier()
            peer = (ctx.id + 1) % ctx.nlocs
            got = c._sync(peer, "get")
            ctx.rmi_fence()
            return got
        assert run(prog, nlocs=3) == [100, 200, 0]


class TestSplitPhase:
    def test_future_resolves(self):
        def prog(ctx):
            c = Cell(ctx)
            c.value = ctx.id
            ctx.barrier()
            f = c._opaque((ctx.id + 1) % ctx.nlocs, "get")
            assert isinstance(f, Future)
            return f.get()
        assert run(prog, nlocs=4) == [1, 2, 3, 0]

    def test_future_test_and_fence_resolution(self):
        def prog(ctx):
            c = Cell(ctx)
            out = None
            if ctx.id == 0:
                f = c._opaque(1, "get")
                assert not f.test()
                ctx.os_fence()  # one-sided completion
                out = (f.test(), f.get())
            ctx.rmi_fence()
            return out
        assert run(prog, nlocs=2)[0] == (True, 0)

    def test_split_phase_overlap_cheaper_than_sync(self):
        def prog(ctx, split):
            c = Cell(ctx)
            ctx.rmi_fence()
            t0 = ctx.start_timer()
            peer = (ctx.id + 1) % ctx.nlocs
            if split:
                futs = [c._opaque(peer, "get") for _ in range(20)]
                vals = [f.get() for f in futs]
            else:
                vals = [c._sync(peer, "get") for _ in range(20)]
            t = ctx.stop_timer(t0)
            ctx.rmi_fence()
            return t
        t_split = max(run(prog, nlocs=2, machine="cray4", args=(True,)))
        t_sync = max(run(prog, nlocs=2, machine="cray4", args=(False,)))
        assert t_split < t_sync


class TestFences:
    def test_fence_drains_forwarding_chains(self):
        class Hopper(PObject):
            def __init__(self, ctx):
                super().__init__(ctx)
                self.hits = 0
                ctx.barrier(self.group)

            def hop(self, remaining):
                if remaining == 0:
                    self.hits += 1
                else:
                    nxt = (self.here.id + 1) % self.get_num_locations()
                    self._async(nxt, "hop", remaining - 1)

        def prog(ctx):
            h = Hopper(ctx)
            if ctx.id == 0:
                h._async(1, "hop", 5)
            ctx.rmi_fence()
            return h.hits
        assert sum(run(prog, nlocs=3)) == 1

    def test_os_fence_completes_own_traffic_only(self):
        def prog(ctx):
            c = Cell(ctx)
            ctx.barrier()
            if ctx.id == 0:
                c._async(2, "put", 1)
                ctx.os_fence()
                done_mine = ctx.sync_rmi(2, c.handle, "get")
            else:
                done_mine = None
            ctx.rmi_fence()
            return done_mine
        assert run(prog, nlocs=3)[0] == 1


class TestAggregation:
    def test_aggregation_reduces_physical_messages(self):
        def prog(ctx):
            c = Cell(ctx)
            if ctx.id == 0:
                for i in range(128):
                    c._async(1, "put", i)
            ctx.rmi_fence()

        rep_agg = run_detailed(prog, nlocs=2, machine="cray4")
        total = rep_agg.stats.total
        assert total.async_rmi_sent == 128
        # 128 RMIs, aggregation 64 -> 2 physical messages
        assert total.physical_messages == 2

    def test_aggregation_lowers_cost(self):
        from repro.runtime.machine import CRAY4

        def prog(ctx):
            c = Cell(ctx)
            t0 = ctx.start_timer()
            if ctx.id == 0:
                for i in range(100):
                    c._async(1, "put", i)
            ctx.rmi_fence()
            return ctx.stop_timer(t0)

        slow = max(run(prog, nlocs=2, machine=CRAY4.with_(aggregation=1)))
        fast = max(run(prog, nlocs=2, machine=CRAY4))
        assert fast < slow


class TestPObjects:
    def test_handles_agree_across_locations(self):
        def prog(ctx):
            a = Cell(ctx)
            b = Cell(ctx)
            return (a.handle, b.handle)
        out = run(prog, nlocs=4)
        assert len({h for h, _ in out}) == 1
        assert len({h for _, h in out}) == 1
        assert out[0][0] != out[0][1]

    def test_destroy_unregisters(self):
        def prog(ctx):
            c = Cell(ctx)
            h = c.handle
            c.destroy()
            try:
                ctx.sync_rmi(0, h, "get")
                return False
            except SpmdError:
                return True
        assert all(run(prog, nlocs=2))

    def test_handler_cannot_block(self):
        class Bad(PObject):
            def blocker(self):
                self.here.rmi_fence()

        def prog(ctx):
            b = Bad(ctx)
            if ctx.id == 0:
                b._sync(1, "blocker")
            ctx.rmi_fence()
        with pytest.raises(SpmdError, match="handler"):
            run(prog, nlocs=2)
