"""Location-group hierarchy tests: group-scoped fences that leave
non-members alone, collectives and container construction on arbitrary
subgroups, split-derived groups, group-scoped stats and the derived-view
epoch machinery over subgroup bases."""

from repro.runtime import LocationGroup, PObject
from tests.conftest import run, run_detailed


class Cell(PObject):
    def __init__(self, ctx, group=None):
        super().__init__(ctx, group)
        self.value = 0
        ctx.barrier(self.group)

    def put(self, v):
        self.value = v


class TestSubgroupFenceScope:
    def test_nonmember_channels_stay_pending(self):
        """The regression the refactor guards: a fence on subgroup {0, 1}
        must not drain (or wait on) traffic between non-members.  Only a
        fence whose group covers the 2->3 channel may deliver it."""
        def prog(ctx):
            c = Cell(ctx)
            sub = ctx.runtime.world.subgroup([0, 1])
            if ctx.id == 2:
                c._async(3, "put", 7)
            ctx.barrier()           # everyone's sends enqueued; no drain
            pending_after_subfence = None
            if ctx.id in (0, 1):
                ctx.rmi_fence(sub)
                pending_after_subfence = (
                    ctx.runtime.network.has_pending(2, 3))
            ctx.rmi_fence()
            return pending_after_subfence, c.value if ctx.id == 3 else None

        out = run(prog, nlocs=4)
        # the subgroup fence completed while 2->3 was still in flight
        assert out[0][0] is True and out[1][0] is True
        # the world fence then delivered it
        assert out[3][1] == 7

    def test_member_traffic_delivered(self):
        """The same subgroup fence *does* commit traffic between members."""
        def prog(ctx):
            c = Cell(ctx)
            sub = ctx.runtime.world.subgroup([0, 1])
            if ctx.id == 0:
                c._async(1, "put", 42)
            seen = None
            if ctx.id in sub:
                ctx.rmi_fence(sub)
                seen = c.value if ctx.id == 1 else None
            ctx.rmi_fence()
            return seen

        assert run(prog, nlocs=4)[1] == 42

    def test_subgroup_fence_stats(self):
        def prog(ctx):
            sub = ctx.runtime.world.subgroup([0, 1])
            if ctx.id in sub:
                ctx.rmi_fence(sub)
                ctx.rmi_fence(sub)
            ctx.rmi_fence()     # world: not a subgroup fence
            return None

        rep = run_detailed(prog, nlocs=4)
        total = rep.stats.total
        assert total.subgroup_fences == 4      # 2 fences x 2 members
        assert total.fences == 4 + 4           # plus the world fence

    def test_fence_on_split_group(self):
        """Fences scope to split-derived groups exactly as to subgroups."""
        def prog(ctx):
            c = Cell(ctx)
            g = ctx.runtime.world.split(ctx, ctx.id % 2)
            peer = [m for m in g.members if m != ctx.id][0]
            c._async(peer, "put", ctx.id + 10)
            ctx.rmi_fence(g)
            seen = c.value
            ctx.rmi_fence()
            return seen

        out = run(prog, nlocs=4)
        assert out == [12, 13, 10, 11]


class TestContainersOnSubgroups:
    def test_parray_on_noncontiguous_subgroup(self):
        """Construction and directory registration on an arbitrary
        (non-contiguous) subgroup; non-members never participate."""
        from repro.containers.parray import PArray

        def prog(ctx):
            g = ctx.runtime.world.subgroup([1, 3])
            if ctx.id in g:
                pa = PArray(ctx, 10, value=0, dtype=int, group=g)
                pa.set_element(g.rank_of(ctx.id), ctx.id)
                ctx.rmi_fence(g)
                out = pa.to_list()
                pa.destroy()
                return out[:2]
            return None

        out = run(prog, nlocs=4)
        assert out[1] == out[3] == [1, 3]
        assert out[0] is None and out[2] is None

    def test_disjoint_teams_independent_containers(self):
        """Two disjoint split groups register containers concurrently;
        handles must never cross between the teams."""
        from repro.containers.parray import PArray

        def prog(ctx):
            g = ctx.runtime.world.split(ctx, ctx.id // 2)
            pa = PArray(ctx, 4, value=0, dtype=int, group=g)
            pa.set_element(g.rank_of(ctx.id), 100 * ctx.id)
            ctx.rmi_fence(g)
            out = pa.to_list()
            pa.destroy()
            return out

        out = run(prog, nlocs=4)
        assert out[0] == out[1] == [0, 100, 0, 0]
        assert out[2] == out[3] == [200, 300, 0, 0]


class TestDerivedViewsOnSubgroups:
    def test_segmented_view_over_subgroup_base(self):
        """Derived-view epoch composition must survive a base container
        living on a proper subgroup: chunk caches key on the composed
        epoch, and every sync stays group-scoped."""
        from repro.algorithms.nested import p_segmented_reduce
        from repro.containers.parray import PArray
        from repro.views.array_views import Array1DView
        from repro.views.derived_views import segmented_view, slab_write

        def prog(ctx):
            g = ctx.runtime.world.subgroup([0, 2])
            if ctx.id not in g:
                return None
            pa = PArray(ctx, 12, value=0, dtype=int, group=g)
            v = Array1DView(pa)
            sl = v.balanced_slices()
            slab_write(v, sl.lo, list(range(sl.lo, sl.hi)))
            ctx.rmi_fence(g)
            sv = segmented_view(v, [3, 4, 5])
            sums = p_segmented_reduce(sv, lambda a, b: a + b, 0)
            assert sv._distribution_epoch() == sv._distribution_epoch()
            pa.destroy()
            return sums

        out = run(prog, nlocs=4)
        assert out[0] == out[2] == [3, 18, 45]
        assert out[1] is None and out[3] is None

    def test_composed_container_on_split_teams(self):
        """compose_* + nested algorithms run wholly inside a split-derived
        half of the machine while the other half computes independently."""
        import operator

        from repro.containers.composition import (
            compose_parray_of_parrays,
            segmented_reduce,
        )

        def prog(ctx):
            g = ctx.runtime.world.split(ctx, ctx.id // 2)
            outer = compose_parray_of_parrays(
                ctx, [2, 3], value=ctx.id // 2 + 1, dtype=int, group=g,
                inner_group_size=2)
            sums = segmented_reduce(outer, operator.add, 0)
            return sums

        out = run(prog, nlocs=4)
        assert out[0] == out[1] == [2, 3]
        assert out[2] == out[3] == [4, 6]
