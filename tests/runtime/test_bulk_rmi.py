"""Bulk-RMI primitive tests: slab transport (``bulk_set_range`` /
``bulk_get_range`` / ``bulk_exchange``), its ordering guarantees against
scalar RMIs, message accounting, and the ``estimate_size`` regressions for
dict and ndarray payloads."""

import numpy as np

from repro.runtime import PObject
from repro.runtime.comm import estimate_size
from tests.conftest import run, run_detailed


class Slab(PObject):
    """Shared object exposing scalar and slab handlers over a plain list."""

    def __init__(self, ctx, n=16):
        super().__init__(ctx, None)
        self.data = [0] * n
        self.log = []
        ctx.barrier(self.group)

    def put(self, i, v):
        self.log.append(("put", i, v))
        self.data[i] = v

    def put_range(self, lo, values):
        self.log.append(("put_range", lo, len(values)))
        for k, v in enumerate(values):
            self.data[lo + k] = v

    def get_range(self, lo, hi):
        return list(self.data[lo:hi])


class TestBulkSetRange:
    def test_slab_applied_after_fence(self):
        def prog(ctx):
            s = Slab(ctx)
            if ctx.id == 1:
                ctx.bulk_set_range(0, s.handle, "put_range", 4, [9, 9, 9],
                                   nelems=3)
            before = list(s.data) if ctx.id == 0 else None
            ctx.rmi_fence()
            after = list(s.data) if ctx.id == 0 else None
            return before, after

        before, after = run(prog, nlocs=2)[0]
        assert before == [0] * 16  # buffered until the fence
        assert after[4:7] == [9, 9, 9]

    def test_source_fifo_with_scalar_rmis(self):
        """A slab enqueues on the same (src, dst) channel as scalar asyncs:
        program order at the source is execution order at the target."""

        def prog(ctx):
            s = Slab(ctx)
            if ctx.id == 1:
                ctx.async_rmi(0, s.handle, "put", 0, 1)
                ctx.bulk_set_range(0, s.handle, "put_range", 0, [2, 2],
                                   nelems=2)
                ctx.async_rmi(0, s.handle, "put", 0, 3)
            ctx.rmi_fence()
            return (s.log, s.data[0]) if ctx.id == 0 else None

        log, final = run(prog, nlocs=2)[0]
        assert log == [("put", 0, 1), ("put_range", 0, 2), ("put", 0, 3)]
        assert final == 3  # last write in program order wins

    def test_one_physical_message_per_slab(self):
        def prog(ctx):
            s = Slab(ctx, n=4096)
            if ctx.id == 1:
                ctx.bulk_set_range(0, s.handle, "put_range", 0,
                                   list(range(4096)), nelems=4096)
            ctx.rmi_fence()

        rep = run_detailed(prog, nlocs=2)
        total = rep.stats.total
        assert total.bulk_rmi_sent == 1
        assert total.bulk_elements_moved == 4096
        # one slab = one physical message, no matter how many elements
        assert total.physical_messages == 1

    def test_slab_closes_aggregation_window(self):
        """Scalar RMIs after a slab start a fresh physical message."""

        def prog(ctx):
            s = Slab(ctx)
            if ctx.id == 1:
                ctx.async_rmi(0, s.handle, "put", 0, 1)
                ctx.bulk_set_range(0, s.handle, "put_range", 0, [5],
                                   nelems=1)
                ctx.async_rmi(0, s.handle, "put", 1, 2)
            ctx.rmi_fence()

        rep = run_detailed(prog, nlocs=2)
        # scalar, slab, scalar -> 3 physical messages (window closed twice)
        assert rep.stats.total.physical_messages == 3


class TestBulkGetRange:
    def test_returns_slab(self):
        def prog(ctx):
            s = Slab(ctx)
            if ctx.id == 0:
                for i in range(16):
                    s.data[i] = i * 10
            ctx.barrier()
            got = None
            if ctx.id == 1:
                got = ctx.bulk_get_range(0, s.handle, "get_range", 3, 7,
                                         nelems=4)
            ctx.rmi_fence()
            return got

        assert run(prog, nlocs=2)[1] == [30, 40, 50, 60]

    def test_flushes_pending_asyncs_first(self):
        """Source FIFO: a slab fetch sees earlier async writes."""

        def prog(ctx):
            s = Slab(ctx)
            got = None
            if ctx.id == 1:
                ctx.async_rmi(0, s.handle, "put", 2, 77)
                got = ctx.bulk_get_range(0, s.handle, "get_range", 2, 3,
                                         nelems=1)
            ctx.rmi_fence()
            return got

        assert run(prog, nlocs=2)[1] == [77]

    def test_counts_round_trip_messages(self):
        def prog(ctx):
            s = Slab(ctx)
            if ctx.id == 1:
                ctx.bulk_get_range(0, s.handle, "get_range", 0, 16,
                                   nelems=16)
            ctx.rmi_fence()

        rep = run_detailed(prog, nlocs=2)
        total = rep.stats.total
        assert total.bulk_rmi_sent == 1
        assert total.physical_messages == 2  # request + slab reply


class TestBulkExchange:
    def test_personalised_exchange(self):
        def prog(ctx):
            slabs = [np.full(3, ctx.id * 10 + dest)
                     for dest in range(ctx.nlocs)]
            received = ctx.bulk_exchange(slabs, nelems=3 * ctx.nlocs)
            return [int(r[0]) for r in received]

        out = run(prog, nlocs=3)
        # location d receives slabs [s*10 + d for s in 0..2]
        for d, got in enumerate(out):
            assert got == [s * 10 + d for s in range(3)]

    def test_one_message_per_pair(self):
        def prog(ctx):
            slabs = [np.arange(100) for _ in range(ctx.nlocs)]
            ctx.bulk_exchange(slabs, nelems=100 * ctx.nlocs)

        rep = run_detailed(prog, nlocs=4)
        total = rep.stats.total
        # 4 senders x 3 remote destinations (self-slab is free)
        assert total.physical_messages == 12
        assert total.bulk_rmi_sent == 12

    def test_empty_slabs_are_free(self):
        def prog(ctx):
            slabs = [[] for _ in range(ctx.nlocs)]
            ctx.bulk_exchange(slabs)

        rep = run_detailed(prog, nlocs=4)
        assert rep.stats.total.physical_messages == 0


class TestEstimateSizeRegressions:
    def test_empty_dict(self):
        assert estimate_size({}) == 16

    def test_small_dict_scales_with_entries(self):
        one = estimate_size({1: 1})
        four = estimate_size({i: i for i in range(4)})
        assert four > one

    def test_huge_dict_scales_linearly_from_sample(self):
        small = estimate_size({i: i for i in range(100)})
        large = estimate_size({i: i for i in range(100_000)})
        # both are scalar->scalar dicts: the estimate extrapolates the
        # 16-item sample, so size must scale ~linearly with len()
        assert 500 * small < large < 2000 * small

    def test_ndarray_payload_counts_nbytes(self):
        a = np.zeros(1000, dtype=np.float64)
        assert estimate_size(a) == 64 + 8000

    def test_ndarray_inside_tuple(self):
        a = np.zeros(100, dtype=np.float64)
        assert estimate_size((3, a)) >= 800
